#!/usr/bin/env python
"""Multiprocess sweep: work-stealing workers + shared-memory artifacts.

The thread-based sweep (``run_sweep(jobs=N)``) parallelises I/O-ish work but
LP assembly and the simulator still contend on the GIL.  This example runs
the same grid — overlap x degradation x scheme on a hypercube, so several
scenarios share hot synthesize/lower artifacts — through the work-stealing
multiprocess executor instead, and prints the executor accounting the CLI
surfaces in its ``[stats] ... exec:`` footer: per-worker completed counts,
steals, shared-artifact plane hits, scenarios/sec.

The same sweep is available from the command line::

    python -m repro.cli sweep \
        --set topology=hypercube:dim=3 --set buffers=1048576 \
        --axis 'scheme=mcf-extp;ewsp' --axis 'overlap=1;2' \
        --out results.jsonl --workers 2

Run:  python examples/parallel_sweep.py
"""

import os
import tempfile

from repro.analysis import format_engine_footer, format_table
from repro.engine import get_engine
from repro.experiments import (
    SweepGrid,
    get_plan_cache,
    run_sweep_workers,
    sweep_stats,
)
from repro.simulator import engine_counters


def main() -> None:
    grid = SweepGrid(
        base={"topology": "hypercube:dim=3",
              "buffers": [2 ** 20], "max_denominator": 16},
        axes={"scheme": ["mcf-extp", "ewsp"],
              "overlap": ["1", "2"],
              # healthy fabric vs one link degraded to half bandwidth
              "fabric": ["hpc", "hpc:scale=0~1:0.5"]},
    )
    scenarios = grid.scenarios()
    print(f"grid: {len(grid)} scenarios "
          f"({' x '.join(f'{k}={len(v)}' for k, v in grid.axes.items())})")

    out = os.path.join(tempfile.mkdtemp(prefix="repro-psweep-"), "results.jsonl")
    results, stats = run_sweep_workers(scenarios, out_path=out, workers=2)

    rows = []
    for res in results:
        flow = res.metrics.get("concurrent_flow")
        rows.append([
            res.scenario.label(),
            res.status,
            "-" if flow is None else round(float(flow), 4),
            "-" if res.metrics.get("all_to_all_time") is None
            else round(float(res.metrics["all_to_all_time"]), 3),
        ])
    print(format_table(["scenario", "status", "F", "all-to-all time"],
                       rows, title="Work-stealing multiprocess sweep"))

    totals = sweep_stats(results, executor=stats)
    print(f"\nexecutor: {totals['workers']} workers completed "
          f"{totals['per_worker_completed']} scenarios "
          f"({totals['steals']} steals, "
          f"{totals['shared_hits']} shared-artifact hits, "
          f"{totals['scenarios_per_sec']:.1f} scenarios/sec)")
    print(format_engine_footer(get_engine().stats(), get_plan_cache().stats(),
                               sim_stats=engine_counters(),
                               executor_stats=stats.to_dict()))
    print(f"merged JSONL at {out}")


if __name__ == "__main__":
    main()
