#!/usr/bin/env python
"""Overlap and degraded-fabric sweep on the unified simulation engine.

Two questions the new scenario axes answer directly:

1. **Overlap** — what happens to a collective's completion time when 1, 2 or
   3 copies of it share the fabric?  (Fair sharing predicts ~k-times slower;
   unbalanced schedules degrade worse because their hot link saturates
   first.)
2. **Degraded fabric** — how much throughput survives when one physical
   link runs at half/quarter bandwidth?  The schedule is *not* re-synthesized
   (same stage-cache artifact), so this isolates the fabric effect.

Both axes are ordinary scenario fields, so the whole study is one grid: the
synthesize/lower stages run once per scheme and every overlap/fabric variant
reuses them from the stage cache.

The same sweep from the command line::

    python -m repro.cli sweep --set topology=hypercube:dim=3 \
        --set scheme=mcf-extp --set buffers=1048576 \
        --axis 'overlap=1;2;3' \
        --axis 'fabric=hpc;hpc:scale=0~1:0.5;hpc:scale=0~1:0.25'

Run:  python examples/overlap_sweep.py
"""

from repro.analysis import format_table
from repro.experiments import SweepGrid, run_sweep, sweep_stats
from repro.simulator import engine_counters


def main() -> None:
    grid = SweepGrid(
        base={"topology": "hypercube:dim=3", "scheme": "mcf-extp",
              "max_denominator": 16, "buffers": [2 ** 20]},
        axes={"overlap": [1, 2, 3],
              "fabric": ["hpc", "hpc:scale=0~1:0.5", "hpc:scale=0~1:0.25"]},
    )
    results = run_sweep(grid.scenarios())

    rows = []
    for res in results:
        buf = str(2 ** 20)
        tp = res.metrics["throughput_bytes_per_s"][buf]
        per_copy = (res.metrics.get("overlap_completion_seconds", {})
                    .get(buf, [res.metrics["completion_seconds"][buf]]))
        rows.append([
            res.scenario.fabric,
            res.scenario.overlap,
            f"{tp / 1e9:.3f}",
            " ".join(f"{t * 1e3:.3f}" for t in per_copy),
        ])
    print(format_table(
        ["fabric", "overlap", "throughput GB/s", "per-collective (ms)"],
        rows, title="MCF-extP on hypercube:dim=3, 1 MiB buffer"))

    totals = sweep_stats(results)
    counters = engine_counters()
    print(f"\nstage cache: {totals['stage_hits']} hits / "
          f"{totals['stage_misses']} misses "
          f"(one synthesize for all {len(results)} scenarios); "
          f"simulator: {counters['fill_rounds']} fill rounds / "
          f"{counters['events']} events")


if __name__ == "__main__":
    main()
