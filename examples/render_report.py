#!/usr/bin/env python
"""Programmatic use of the report spec registry.

``repro report`` renders the whole registry, but every spec is also a plain
Python object: you can run one figure's panel against a *custom* topology
spec string, reuse its aggregation (upper bound + byte-identical table text),
and render the result wherever you like.  This example:

1. lists the registry;
2. runs the Fig. 4 spec's aggregation against a custom topology
   (a generalized Kautz graph the paper's figure doesn't include) by
   declaring a one-off panel;
3. renders the artifact to a temp directory with the CSV/Markdown fallback
   (PNG appears automatically when matplotlib is installed).

Run:  python examples/render_report.py
"""

import os
import tempfile

from repro.report import describe_registry, render_spec, run_panel
from repro.report.aggregate import SpecResult
from repro.report.specs import FIG4, PanelSpec, SeriesSpec


def main() -> None:
    print(describe_registry())
    print()

    # A panel the paper doesn't ship: Fig. 4's scheme comparison on a custom
    # topology spec string.  The spec supplies the fabric, chunking
    # denominator, upper-bound formula and table format; we supply the data.
    panel = PanelSpec(
        key="genkautz",
        name="GenKautz d=3 n=12",
        topology="genkautz:d=3,n=12",
        series=(SeriesSpec("MCF-extP/C", "mcf-extp"),
                SeriesSpec("EwSP/C", "ewsp"),
                SeriesSpec("SSSP/C", "sssp")),
    )
    data = run_panel(FIG4, panel, buffers=(2 ** 18, 2 ** 22, 2 ** 26))
    print(data.tables[0].text)
    print()

    mcf = data.series["MCF-extP/C"][-1].throughput
    bound = data.series["Upper Bound"][-1].throughput
    print(f"MCF-extP reaches {mcf / bound:.1%} of the theoretical bound "
          f"at the largest buffer\n")

    # Render it like `repro report` would: CSV always, PNG when matplotlib
    # is importable, and a Markdown section embedding the exact table text.
    out_dir = tempfile.mkdtemp(prefix="repro-report-")
    result = SpecResult(spec_id="fig4-custom", kind="figure",
                        title="Fig. 4 on a custom GenKautz topology",
                        description="One-off panel through the Fig. 4 spec.",
                        tables=data.tables, plots=data.plots)
    art = render_spec(result, out_dir)
    print(f"rendered ({art.figure_backend} figure backend):")
    for path in art.files:
        print(f"  {os.path.relpath(path, out_dir)} in {out_dir}")


if __name__ == "__main__":
    main()
