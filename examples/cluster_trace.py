#!/usr/bin/env python
"""Multi-job cluster co-simulation: slowdown under increasing offered load.

Four jobs share one synthesized MCF-extP schedule on a 3-cube.  Each job is
a barrier-separated (compute, all-to-all) phase sequence; arrivals follow a
seeded Poisson process and every live comm phase's flows max-min fair share
the fabric with everyone else's (see docs/cluster.md for the job/phase
model, the trace-spec grammar and the metric definitions).

At a low arrival rate the jobs barely overlap and per-job slowdown stays
~1.0; as the rate grows the fabric saturates, slowdown climbs and the
time-weighted fabric utilization approaches 1.

The same study from the command line::

    python -m repro.cli cluster hypercube:dim=3 \
        --trace 'cluster:jobs=4:arrival=poisson~500:placement=packed:seed=0' \
        --trace 'cluster:jobs=4:arrival=poisson~8000:placement=packed:seed=0'

Run:  python examples/cluster_trace.py
"""

from repro.analysis import format_table
from repro.experiments import Scenario, run_sweep, sweep_stats

RATES = (500, 2000, 8000)


def main() -> None:
    scenarios = [
        Scenario(topology="hypercube:dim=3", scheme="mcf-extp",
                 max_denominator=16, buffers=(float(2 ** 20),),
                 cluster=f"cluster:jobs=4:arrival=poisson~{rate}"
                         ":placement=packed:seed=0",
                 name=f"poisson-{rate}")
        for rate in RATES
    ]
    results = run_sweep(scenarios)

    rows = []
    for rate, res in zip(RATES, results):
        m = res.metrics
        rows.append([
            rate,
            m["cluster_jobs"],
            f"{m['makespan_seconds'] * 1e3:.3f}",
            f"{m['job_slowdown_p50']:.2f}",
            f"{m['job_slowdown_p99']:.2f}",
            f"{m['fabric_utilization']:.3f}",
        ])
    print(format_table(
        ["arrivals/s", "jobs", "makespan (ms)", "slowdown p50",
         "slowdown p99", "utilization"],
        rows, title="4 Poisson jobs, packed, MCF-extP on hypercube:dim=3"))

    totals = sweep_stats(results)
    print(f"\nstage cache: {totals['stage_hits']} hits / "
          f"{totals['stage_misses']} misses "
          f"(one synthesize shared by all {len(results)} traces)")


if __name__ == "__main__":
    main()
