#!/usr/bin/env python
"""Declarative experiment sweep: grid spec -> streaming JSONL -> summary table.

The old way to compare schemes across topologies was a hand-rolled loop over
``compare_schemes`` calls; the declarative layer replaces it with data: a
grid spec (here ``examples/sweep_grid.json``) expands into scenarios, each
scenario runs the staged synthesize -> lower -> validate -> simulate
pipeline, and one JSONL record streams out per completed scenario, so a
killed sweep is resumable (``resume=True`` skips every scenario whose
content hash already has a record).

The same sweep is available from the command line::

    python -m repro.cli sweep --grid examples/sweep_grid.json \
        --out results.jsonl --jobs 2 --resume

Run:  python examples/declarative_sweep.py
"""

import os
import tempfile

from repro.analysis import format_table
from repro.engine import get_engine
from repro.experiments import SweepGrid, load_results, run_sweep, sweep_stats

GRID_FILE = os.path.join(os.path.dirname(__file__), "sweep_grid.json")


def main() -> None:
    grid = SweepGrid.from_file(GRID_FILE)
    scenarios = grid.scenarios()
    print(f"grid: {len(grid)} scenarios "
          f"({' x '.join(f'{k}={len(v)}' for k, v in grid.axes.items())})")

    out = os.path.join(tempfile.mkdtemp(prefix="repro-sweep-"), "results.jsonl")
    results = run_sweep(scenarios, out_path=out, jobs=2)

    rows = []
    for res in results:
        tps = res.metrics.get("throughput_bytes_per_s", {})
        rows.append([
            res.scenario.label(),
            round(res.metrics["concurrent_flow"], 4),
            round(res.metrics["all_to_all_time"], 3),
            " ".join(f"{tp / 1e9:.2f}" for tp in tps.values()),
        ])
    print(format_table(["scenario", "F", "all-to-all time", "throughput GB/s"],
                       rows, title="Declarative sweep (Fig. 8 style)"))
    print(f"{len(load_results(out))} JSONL records streamed to {out}")

    # Re-running the same grid is free: every scenario resumes from its
    # JSONL record, and even without the file the stage/LP caches serve it.
    misses_before = get_engine().cache.misses
    rerun = run_sweep(scenarios, out_path=out, jobs=2, resume=True)
    stats = sweep_stats(rerun)
    print(f"re-run: {stats['resumed']} of {stats['scenarios']} scenarios resumed "
          f"from JSONL, {get_engine().cache.misses - misses_before} new LP solves")


if __name__ == "__main__":
    main()
