#!/usr/bin/env python
"""Distributed 3D FFT on a torus: the Fig. 6 workload as a runnable example.

A slab-decomposed 3D FFT (the paper's FFTW workload, §5.2) runs on a simulated
direct-connect torus.  Each rank computes its 2D FFTs with NumPy, the
all-to-all transpose is executed on the simulated Cerio-like fabric with the
schedule under test, and the final 1D FFTs complete the transform.  The result
is verified against ``numpy.fft.fftn`` and the phase breakdown (the stacked
bands of Fig. 6) is printed for each schedule.

Run:  python examples/fft3d_torus.py [grid_width]
"""

import sys

from repro.analysis import format_table
from repro.baselines import native_alltoall_schedule
from repro.core import solve_mcf_extract_paths
from repro.paths import dor_schedule, ewsp_schedule, sssp_schedule
from repro.simulator import cerio_hpc_fabric
from repro.topology import torus_2d
from repro.workloads import DistributedFFT3D


def main() -> None:
    topo = torus_2d(3)                      # 9 ranks, degree 4
    grid = int(sys.argv[1]) if len(sys.argv) > 1 else 72
    fft = DistributedFFT3D(topo, grid_width=grid, fabric=cerio_hpc_fabric())
    print(f"3D FFT, grid {grid}^3 on {topo.num_nodes} ranks ({topo.name}); "
          f"all-to-all buffer {fft.alltoall_buffer_bytes() / 2**20:.2f} MiB per rank")

    schedules = {
        "MCF-extP": solve_mcf_extract_paths(topo),
        "DOR": dor_schedule(topo),
        "EwSP": ewsp_schedule(topo),
        "SSSP": sssp_schedule(topo),
        "OMPI-native": native_alltoall_schedule(topo),
    }

    rows = []
    for name, schedule in schedules.items():
        result = fft.run(schedule, seed=0, schedule_label=name)
        rows.append([name,
                     f"{result.fft2d_pack_seconds * 1e3:.2f}",
                     f"{result.alltoall_seconds * 1e6:.1f}",
                     f"{result.unpack_fft1d_seconds * 1e3:.2f}",
                     f"{result.total_seconds * 1e3:.2f}",
                     f"{result.max_abs_error:.2e}"])
    print()
    print(format_table(
        ["schedule", "fft2d+pack (ms)", "all-to-all (us)", "unpack+fft1d (ms)",
         "total (ms)", "max |error|"],
        rows, title="Distributed 3D FFT phase breakdown (Fig. 6 style)"))
    print("\nAll-to-all times follow the schedule quality; every run is verified "
          "against numpy.fft.fftn.")


if __name__ == "__main__":
    main()
