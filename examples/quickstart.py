#!/usr/bin/env python
"""Quickstart: synthesise, lower and simulate an all-to-all schedule.

This walks the full pipeline of the paper on a small example:

1. build a direct-connect topology (a degree-3 generalized Kautz graph),
2. synthesise a bandwidth-optimal all-to-all schedule with the decomposed MCF
   and widest-path extraction (MCF-extP),
3. make the routes deadlock-free with LASH-sequential,
4. lower the schedule to an OMPI/UCX-style XML,
5. execute the XML on the simulated Cerio-like fabric across a sweep of buffer
   sizes and compare against the theoretical upper bound and the native
   (single shortest path per destination) baseline.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_throughput_sweep
from repro.baselines import native_alltoall_schedule
from repro.core import solve_mcf_extract_paths
from repro.routing import lash_sequential_assign
from repro.schedule import chunk_path_schedule, compile_to_ompi_xml, parse_ompi_xml
from repro.simulator import cerio_hpc_fabric, steady_state_throughput, throughput_sweep
from repro.topology import generalized_kautz


def main() -> None:
    # 1. Topology: 12 nodes, 3 ports per node, constructible for any (N, d).
    topo = generalized_kautz(degree=3, num_nodes=12)
    print(f"topology: {topo.name}  N={topo.num_nodes}  directed links={topo.num_edges} "
          f"diameter={topo.diameter()}")

    # 2. Schedule synthesis (decomposed MCF + widest-path extraction).
    schedule = solve_mcf_extract_paths(topo)
    print(f"optimal concurrent flow F = {schedule.concurrent_flow:.4f} "
          f"(normalized all-to-all time {1 / schedule.concurrent_flow:.2f}), "
          f"synthesis took {schedule.solve_seconds:.2f}s")

    # 3. Deadlock-free virtual channel assignment.
    routes = [tuple(p.nodes) for plist in schedule.paths.values() for p in plist]
    layers = lash_sequential_assign(routes)
    print(f"LASH-sequential: {len(routes)} routes packed into {layers.num_layers} layer(s)")

    # 4. Chunking + lowering to the runtime XML.
    routed = chunk_path_schedule(schedule, layers=layers.layer_of)
    xml = compile_to_ompi_xml(routed)
    print(f"lowered schedule: {len(routed.assignments)} chunk-route assignments, "
          f"{len(xml)} bytes of XML")

    # 5. Execute on the simulated fabric and compare against baselines.
    fabric = cerio_hpc_fabric()
    buffers = [2 ** k for k in range(16, 29, 4)]
    parsed = parse_ompi_xml(xml, topo)
    mcf_results = throughput_sweep(parsed, buffers, fabric=fabric)
    native = chunk_path_schedule(native_alltoall_schedule(topo))
    native_results = throughput_sweep(native, buffers, fabric=fabric)

    bound = steady_state_throughput(topo.num_nodes, schedule.concurrent_flow, fabric)
    print()
    print(format_throughput_sweep(
        {"MCF-extP": mcf_results, "native": native_results},
        title=f"All-to-all throughput (GB/s); upper bound {bound / 1e9:.2f} GB/s"))


if __name__ == "__main__":
    main()
