#!/usr/bin/env python
"""Failure recovery on punctured tori: re-synthesising schedules after link loss.

Direct-connect fabrics lose links and nodes; Fig. 5 of the paper emulates this
by puncturing a torus and shows that (a) MCF-based schedules keep most of the
throughput where single-path heuristics degrade, and (b) the decomposed MCF is
fast enough to re-synthesise a schedule on the fly when the topology changes.

This example removes links from a torus one failure at a time, re-runs the
MCF-extP pipeline and the SSSP baseline after each failure, and prints the
surviving throughput and the re-synthesis time.

Run:  python examples/failure_recovery.py
"""

import random
import time

from repro.analysis import format_table
from repro.core import solve_mcf_extract_paths
from repro.paths import sssp_schedule
from repro.schedule import chunk_path_schedule
from repro.simulator import cerio_hpc_fabric, throughput_sweep
from repro.topology import torus_2d

BUFFER = 2 ** 26          # 64 MiB per node
FABRIC = cerio_hpc_fabric()


def throughput(schedule) -> float:
    routed = chunk_path_schedule(schedule, max_denominator=16)
    return throughput_sweep(routed, [BUFFER], fabric=FABRIC)[0].throughput / 1e9


def main() -> None:
    rng = random.Random(7)
    topo = torus_2d(3)
    print(f"starting topology: {topo.name} with {topo.num_edges} directed links\n")

    rows = []
    for failures in range(0, 4):
        start = time.perf_counter()
        mcf = solve_mcf_extract_paths(topo)
        resynthesis = time.perf_counter() - start
        sssp = sssp_schedule(topo)
        rows.append([failures, topo.num_edges, f"{throughput(mcf):.2f}",
                     f"{throughput(sssp):.2f}", f"{resynthesis:.2f}"])

        # Inject the next failure: drop a random bidirectional link that keeps
        # the fabric connected.
        for _ in range(50):
            u, v = rng.choice(topo.edges)
            try:
                topo = topo.remove_edges([(u, v), (v, u)])
                break
            except ValueError:
                continue

    print(format_table(
        ["failed links", "remaining directed links", "MCF-extP GB/s", "SSSP GB/s",
         "re-synthesis (s)"],
        rows, title="Throughput and re-synthesis time as links fail (64 MiB buffers)"))
    print("\nMCF-extP retains more throughput after failures, and re-synthesis takes "
          "well under a second at this scale, so the scheduler can react to topology "
          "changes (the paper's Fig. 5 + Fig. 7 argument).")


if __name__ == "__main__":
    main()
