#!/usr/bin/env python
"""ML-fabric example: DLRM and Mixture-of-Experts iterations on a GPU-style fabric.

The paper's introduction motivates all-to-all optimization with DLRM embedding
exchanges and MoE dispatch/combine.  This example builds an 8-GPU twisted
hypercube (one of the paper's testbed topologies), synthesises a time-stepped
MCF schedule (the store-and-forward ML fabric has no NIC routing), lowers it
to MSCCL-style XML, and estimates DLRM iteration time and MoE layer time with
that schedule versus the TACCL-like baseline.

Run:  python examples/ml_fabric_dlrm_moe.py
"""

from repro.analysis import format_table
from repro.baselines import taccl_like_schedule
from repro.core import solve_timestepped_mcf
from repro.schedule import chunk_timestepped_flow, compile_to_msccl_xml
from repro.simulator import a100_ml_fabric
from repro.topology import twisted_hypercube
from repro.workloads import DLRMConfig, MoEConfig, simulate_dlrm_iteration, simulate_moe_layer


def main() -> None:
    topo = twisted_hypercube(3)             # 8 accelerators, degree 3
    fabric = a100_ml_fabric()
    print(f"fabric: {fabric.name}, topology: {topo.name} (N={topo.num_nodes})")

    ts = solve_timestepped_mcf(topo)
    mcf_schedule = chunk_timestepped_flow(ts)
    xml = compile_to_msccl_xml(mcf_schedule)
    print(f"tsMCF schedule: {ts.num_steps} steps, total utilization "
          f"{ts.total_utilization:.2f} (lower is better); MSCCL XML {len(xml)} bytes")
    taccl_schedule = taccl_like_schedule(topo)
    print(f"TACCL-like baseline: {taccl_schedule.num_steps} steps\n")

    schedules = {"tsMCF": mcf_schedule, "TACCL-like": taccl_schedule}

    dlrm_rows = []
    dlrm_cfg = DLRMConfig(global_batch=8192, embedding_dim=128)
    for name, schedule in schedules.items():
        r = simulate_dlrm_iteration(topo, schedule, dlrm_cfg, fabric=fabric,
                                    schedule_label=name)
        dlrm_rows.append([name, f"{r.alltoall_bytes_per_node / 2**20:.1f}",
                          f"{r.compute_seconds * 1e3:.2f}",
                          f"{(r.forward_alltoall_seconds + r.backward_alltoall_seconds) * 1e3:.2f}",
                          f"{r.total_seconds * 1e3:.2f}",
                          f"{r.communication_fraction * 100:.0f}%"])
    print(format_table(
        ["schedule", "exchange MiB/rank", "compute (ms)", "all-to-all (ms)",
         "iteration (ms)", "comm share"],
        dlrm_rows, title="DLRM training iteration (embedding exchange forward+backward)"))

    moe_rows = []
    moe_cfg = MoEConfig(tokens_per_rank=8192, model_dim=2048, zipf_alpha=1.0)
    for name, schedule in schedules.items():
        r = simulate_moe_layer(topo, schedule, moe_cfg, fabric=fabric, seed=0,
                               schedule_label=name)
        moe_rows.append([name, f"{r.max_bytes_per_node / 2**20:.1f}",
                         f"{r.imbalance:.2f}",
                         f"{(r.dispatch_seconds + r.combine_seconds) * 1e3:.2f}",
                         f"{r.expert_compute_seconds * 1e3:.2f}",
                         f"{r.total_seconds * 1e3:.2f}"])
    print()
    print(format_table(
        ["schedule", "dispatch MiB/rank", "token imbalance", "all-to-all (ms)",
         "expert compute (ms)", "layer (ms)"],
        moe_rows, title="Mixture-of-Experts layer (dispatch + experts + combine)"))


if __name__ == "__main__":
    main()
