#!/usr/bin/env python
"""Topology design study: which direct-connect topology is best for all-to-all?

Reproduces the Fig. 10 analysis as a runnable example: for a fixed degree it
compares generalized Kautz graphs, Xpander, random regular graphs (Jellyfish)
and 2D tori against the Theorem 1 lower bound, using the schedule-independent
optimal all-to-all time 1/F from the master MCF.

Run:  python examples/topology_design.py [degree] [num_nodes]
"""

import math
import sys

from repro.analysis import format_table
from repro.core import lower_bound_time_regular, solve_master_lp
from repro.topology import generalized_kautz, properties, random_regular, torus_2d, xpander


def main() -> None:
    degree = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 36

    bound = lower_bound_time_regular(degree, n)
    print(f"degree {degree}, N = {n}; Theorem 1 lower bound on all-to-all time: "
          f"{bound:.2f} (shard / link-bandwidth units)\n")

    candidates = {"GenKautz": generalized_kautz(degree, n)}
    side = int(round(math.sqrt(n)))
    if side * side == n and degree == 4:
        candidates["2D Torus"] = torus_2d(side)
    if n % (degree + 1) == 0:
        candidates["Xpander"] = xpander(degree, n // (degree + 1), seed=0)
    if (degree * n) % 2 == 0:
        candidates["Random Regular"] = random_regular(degree, n, seed=0)

    rows = []
    for name, topo in candidates.items():
        stats = properties.summary(topo)
        alltoall_time = 1.0 / solve_master_lp(topo).concurrent_flow
        rows.append([
            name,
            int(stats["diameter"]),
            f"{stats['average_distance']:.2f}",
            f"{stats['spectral_gap']:.2f}",
            f"{alltoall_time:.2f}",
            f"{alltoall_time / bound:.3f}",
        ])
    rows.sort(key=lambda r: float(r[-1]))
    print(format_table(
        ["topology", "diameter", "avg distance", "spectral gap",
         "all-to-all time (1/F)", "vs lower bound"],
        rows, title="Topology comparison for all-to-all (lower is better)"))
    print("\nGeneralized Kautz graphs track the lower bound and can be built for any "
          "(N, degree), which is the paper's §5.4 recommendation.")


if __name__ == "__main__":
    main()
