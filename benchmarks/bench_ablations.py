"""Ablation studies for the design choices called out in DESIGN.md.

Not a figure of the paper, but the knobs the paper's text discusses:

* **tsMCF step budget (l_max)** -- §3.1.3 sets l_max >= diameter; the ablation
  shows how the total utilization (and hence throughput) converges to the
  steady-state optimum 1/F as extra steps are allowed.
* **Child-LP parallelism** -- §3.1.2's N child LPs are embarrassingly
  parallel; the ablation measures serial vs process-pool execution.
* **Chunking granularity** -- §4/§5.5: finer chunks approximate the fractional
  MCF weights better but multiply the number of chunk flows (queue pairs).
"""

import time

import pytest

from repro.analysis import format_table
from repro.core import solve_decomposed_mcf, solve_mcf_extract_paths, solve_timestepped_mcf
from repro.schedule import chunk_path_schedule, routed_schedule_stats
from repro.simulator import cerio_hpc_fabric, throughput_sweep
from repro.topology import generalized_kautz, hypercube, torus_2d


def test_ablation_tsmcf_step_budget(benchmark, record):
    """Total utilization vs number of allowed communication steps."""
    topo = hypercube(3)
    steady = 1.0 / solve_decomposed_mcf(topo).concurrent_flow
    rows = []

    def run():
        for steps in (3, 4, 5, 6):
            flow = solve_timestepped_mcf(topo, num_steps=steps)
            rows.append([steps, flow.total_utilization, steady,
                         flow.total_utilization / steady])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablations", format_table(
        ["l_max (steps)", "tsMCF total utilization", "steady-state 1/F", "ratio"],
        rows, title="Ablation: tsMCF step budget on the 3D hypercube (diameter 3)"))
    # Monotone improvement, converging to the steady state within ~1 extra step.
    utils = [r[1] for r in rows]
    assert all(a >= b - 1e-9 for a, b in zip(utils, utils[1:]))
    assert rows[1][3] == pytest.approx(1.0, abs=0.01)


def test_ablation_child_lp_parallelism(benchmark, record):
    """Serial vs parallel child-LP execution of the decomposed MCF."""
    topo = generalized_kautz(4, 24)
    rows = []

    def run():
        for jobs in (1, 4):
            start = time.perf_counter()
            sol = solve_decomposed_mcf(topo, n_jobs=jobs)
            wall = time.perf_counter() - start
            timings = sol.meta["timings"]
            rows.append([jobs, wall, timings.master_seconds,
                         timings.parallel_seconds, sol.concurrent_flow])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablations", format_table(
        ["child-LP workers", "wall clock (s)", "master LP (s)",
         "master + slowest child (s)", "F"],
        rows, title="Ablation: child-LP parallelism on GenKautz(4, 24)"))
    # Same optimum regardless of parallelism.
    assert rows[0][4] == pytest.approx(rows[1][4], rel=1e-6)


def test_ablation_chunking_granularity(benchmark, record):
    """Finer chunking tracks the MCF weights better but opens more queue pairs."""
    topo = torus_2d(3)
    schedule = solve_mcf_extract_paths(topo)
    fabric = cerio_hpc_fabric()
    buf = 2 ** 26
    rows = []

    def run():
        for denom in (2, 8, 32):
            routed = chunk_path_schedule(schedule, max_denominator=denom)
            stats = routed_schedule_stats(routed)
            tp = throughput_sweep(routed, [buf], fabric=fabric)[0].throughput
            rows.append([denom, stats.num_assignments, stats.queue_pairs_per_rank_max,
                         stats.load_imbalance, tp / 1e9])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablations", format_table(
        ["max denominator", "chunk flows", "max QPs per rank", "load imbalance",
         "throughput GB/s"],
        rows, title="Ablation: chunking granularity on the 3x3 torus (64 MiB buffers)"))
    # More granular chunking -> at least as many queue pairs.
    qps = [r[2] for r in rows]
    assert qps == sorted(qps)
    # Throughput is not destroyed by coarse chunking on this symmetric topology.
    tps = [r[4] for r in rows]
    assert max(tps) / min(tps) < 1.5
