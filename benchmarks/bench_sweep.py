"""Sweep executor benchmark: work-stealing worker processes vs. in-process.

Runs the same scenario grid — distinct ``rrg:d=3,n=10`` instances (one per
seed, so no stage artifacts are shared and the comparison measures raw
process parallelism, not cache luck) — once through the serial in-process
sweep (:func:`repro.experiments.run_sweep`) and once through the
work-stealing multiprocess executor
(:func:`repro.experiments.run_sweep_workers` with 2 workers).

Asserted acceptance gates:

* both paths report identical per-scenario metrics (the executor's reason to
  exist is throughput, not different answers);
* on machines with >= 2 usable CPUs, 2 workers complete the grid at least
  1.6x faster than the serial path.  Single-CPU machines (some CI sandboxes)
  still run the benchmark and record timings, but skip the scaling assert —
  there is no parallel speedup to be had on one core.

Machine-readable output lands in ``results/BENCH_sweep.json`` (same schema
as ``BENCH_runtime.json``; ``objective`` is the deterministic sum of
concurrent-flow values across the grid, so the perf gate also catches
semantic drift).  The CI sweep-parallel job uploads it and gates it against
``benchmarks/baseline_sweep.json`` via ``check_regression.py``.
"""

import os
import time

from repro.analysis import format_table
from repro.experiments import Scenario, run_sweep, run_sweep_workers

MIN_PARALLEL_SPEEDUP = 1.6
WORKERS = 2


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _grid(scale: str):
    """Distinct random-regular instances: no shared stage keys by design."""
    seeds = range(16 if scale == "paper" else 8)
    return [Scenario(topology=f"rrg:d=3,n=10,seed={seed}", scheme="mcf-extp",
                     fabric="hpc", buffers=[2 ** 20], max_denominator=16)
            for seed in seeds]


def _objective(results) -> float:
    assert all(r.status == "ok" for r in results)
    return sum(float(r.metrics["concurrent_flow"]) for r in results)


def test_sweep_worker_speedup(record, record_json, scale):
    """Distinct-topology grid: 2 worker processes >= 1.6x serial, same metrics."""
    scenarios = _grid(scale)

    start = time.perf_counter()
    serial = run_sweep(scenarios)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel, stats = run_sweep_workers(scenarios, workers=WORKERS)
    parallel_seconds = time.perf_counter() - start

    # Differential gate: identical deterministic metrics, scenario by scenario.
    for a, b in zip(serial, parallel):
        assert a.key == b.key
        assert a.metrics == b.metrics

    speedup = serial_seconds / parallel_seconds
    objective = _objective(serial)
    assert abs(objective - _objective(parallel)) <= 1e-12

    series = {
        "sweep": {
            "1": {
                "sweep_seconds": serial_seconds,
                "scenarios_per_sec": len(scenarios) / serial_seconds,
                "objective": objective,
            },
            str(WORKERS): {
                "sweep_seconds": parallel_seconds,
                "scenarios_per_sec": stats.scenarios_per_sec,
                "steals": stats.steals,
                "objective": objective,
            },
        },
    }
    record_json("sweep", series)
    record("sweep", format_table(
        ["executor", "sweep (s)", "scen/s", "speedup"],
        [["in-process (serial)", serial_seconds,
          len(scenarios) / serial_seconds, 1.0],
         [f"{WORKERS} worker processes", parallel_seconds,
          stats.scenarios_per_sec, speedup]],
        title=f"Sweep executor: {len(scenarios)} distinct rrg:d=3,n=10 "
              f"scenarios ({_usable_cpus()} usable CPU(s))"))

    if _usable_cpus() >= WORKERS:
        assert speedup >= MIN_PARALLEL_SPEEDUP, (
            f"{WORKERS} workers only {speedup:.2f}x faster than serial "
            f"(gate: {MIN_PARALLEL_SPEEDUP}x)")
