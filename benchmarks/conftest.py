"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it runs the
relevant schedule generators and the simulator, prints the figure's series as
a text table, and appends the same table to ``benchmarks/results/<figure>.txt``
so the output survives pytest's output capture.

Scale control
-------------
The paper's largest experiments (27-node torus hardware runs, 1000-node
synthesis sweeps) are scaled to laptop/CI sizes by default.  Set
``REPRO_BENCH_SCALE=paper`` to run closer to the paper's sizes (minutes to
hours), ``REPRO_BENCH_SCALE=small`` (default) for the quick configuration.
EXPERIMENTS.md records results from the default configuration.

Parallelism
-----------
``REPRO_BENCH_JOBS=N`` runs independent benchmark work items (per-size
sweeps, per-instance samples) on N threads through the engine's shared
:class:`~repro.engine.runner.ParallelRunner` via the ``runner`` fixture.
The default of 1 is serial and byte-identical to previous releases.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    """Current benchmark scale: 'small' (default) or 'paper'."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if scale not in ("small", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be 'small' or 'paper', got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


def bench_jobs() -> int:
    """Worker count for parallel benchmark sections (default 1 = serial)."""
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


@pytest.fixture(scope="session")
def jobs() -> int:
    return bench_jobs()


@pytest.fixture(scope="session")
def runner(jobs):
    """Shared ParallelRunner for independent benchmark work items."""
    from repro.engine import ParallelRunner

    return ParallelRunner(jobs=jobs)


@pytest.fixture(scope="session", autouse=True)
def _engine_cache_off():
    """Disable the engine's solution cache for the whole benchmark session.

    The figures regenerated here (Fig. 7 runtime scaling, the parallelism
    ablation) time LP solves; serving a repeated (topology, formulation) from
    the cache would report dict-lookup times as solve times and corrupt the
    comparison.  Correctness tests keep the cache on; benchmarks measure.
    """
    from repro.engine import get_engine

    engine = get_engine()
    prev = engine.cache.enabled
    engine.cache.enabled = False
    yield
    engine.cache.enabled = prev


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    """Print a table and append it to the per-figure results file."""

    def _record(figure: str, text: str) -> None:
        print(f"\n{text}\n")
        path = results_dir / f"{figure}.txt"
        with path.open("a") as fh:
            fh.write(text + "\n\n")

    # Start each session with clean files: remove stale results once.
    for old in results_dir.glob("*.txt"):
        old.unlink()
    return _record


@pytest.fixture(scope="session")
def buffer_sweep(scale):
    """Buffer-size sweep (total per-node bytes), the x-axis of Fig. 3/4/5."""
    if scale == "paper":
        return [2 ** k for k in range(13, 29, 3)]
    return [2 ** 15, 2 ** 19, 2 ** 23, 2 ** 27]
