"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it runs the
relevant schedule generators and the simulator, prints the figure's series as
a text table, and appends the same table to ``benchmarks/results/<figure>.txt``
so the output survives pytest's output capture.

Scale control
-------------
The paper's largest experiments (27-node torus hardware runs, 1000-node
synthesis sweeps) are scaled to laptop/CI sizes by default.  Set
``REPRO_BENCH_SCALE=paper`` to run closer to the paper's sizes (minutes to
hours), ``REPRO_BENCH_SCALE=small`` (default) for the quick configuration.
EXPERIMENTS.md records results from the default configuration.

Parallelism
-----------
``REPRO_BENCH_JOBS=N`` runs independent benchmark work items (per-size
sweeps, per-instance samples) on N threads through the engine's shared
:class:`~repro.engine.runner.ParallelRunner` via the ``runner`` fixture.
The default of 1 is serial and byte-identical to previous releases.

Machine-readable results (``BENCH_*.json``) and the perf-smoke gate
-------------------------------------------------------------------
Benchmarks that participate in perf-regression CI additionally record their
series through the ``record_json`` fixture, which writes
``benchmarks/results/BENCH_<name>.json``:

.. code-block:: json

    {
      "benchmark": "runtime",          // fixture argument <name>
      "schema_version": 1,
      "scale": "small",                 // REPRO_BENCH_SCALE in effect
      "series": {
        "mcf-link": {                   // one entry per algorithm series
          "12": {                       // topology size N (stringified)
            "assemble_seconds": 0.05,   // LP construction + to_arrays()
            "solve_seconds": 0.45,      // backend (HiGHS) wall clock
            "extract_seconds": 0.01,    // ndarray -> FlowSolution dicts
            "total_seconds": 0.51,
            "objective": 0.153846       // optimal concurrent flow F
          }
        }
      }
    }

The CI ``perf-smoke`` job runs the Fig. 7 phase-breakdown benchmark, uploads
``BENCH_runtime.json`` as a build artifact, and gates the build with
``python benchmarks/check_regression.py``: the current numbers are compared
against the committed ``benchmarks/baseline.json`` (same schema) and the job
fails when any phase is more than ``REPRO_BENCH_MAX_SLOWDOWN`` (default 2.0)
times slower than the baseline, or when an objective drifts beyond
``FLOW_TOL``.  Phases faster than 250 ms in the baseline are not gated
(timer/scheduler noise and runner hardware variance dominate there);
new/removed series entries are reported but only missing ones fail.  The
committed baseline should come from a trusted run on the same runner class
as CI — refresh it by copying that run's ``BENCH_runtime.json`` over
``benchmarks/baseline.json`` (the perf-smoke job uploads it as an artifact
precisely so a maintainer can promote it).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    """Current benchmark scale: 'small' (default) or 'paper'."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if scale not in ("small", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be 'small' or 'paper', got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


def bench_jobs() -> int:
    """Worker count for parallel benchmark sections (default 1 = serial)."""
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


@pytest.fixture(scope="session")
def jobs() -> int:
    return bench_jobs()


@pytest.fixture(scope="session")
def runner(jobs):
    """Shared ParallelRunner for independent benchmark work items."""
    from repro.engine import ParallelRunner

    return ParallelRunner(jobs=jobs)


@pytest.fixture(scope="session", autouse=True)
def _engine_cache_off():
    """Disable the engine's solution cache and the experiment layer's stage
    cache for the whole benchmark session.

    The figures regenerated here (Fig. 7 runtime scaling, the parallelism
    ablation) time LP solves; serving a repeated (topology, formulation) from
    the cache — or a whole synthesize stage from the plan's artifact cache —
    would report dict-lookup times as solve times and corrupt the comparison.
    Correctness tests keep the caches on; benchmarks measure.
    """
    from repro.engine import get_engine
    from repro.experiments import get_plan_cache

    engine = get_engine()
    plan_cache = get_plan_cache()
    prev = engine.cache.enabled
    prev_plan = plan_cache.enabled
    engine.cache.enabled = False
    plan_cache.enabled = False
    yield
    engine.cache.enabled = prev
    plan_cache.enabled = prev_plan


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    """Print a table and append it to the per-figure results file."""

    def _record(figure: str, text: str) -> None:
        print(f"\n{text}\n")
        path = results_dir / f"{figure}.txt"
        with path.open("a") as fh:
            fh.write(text + "\n\n")

    # Start each session with clean files: remove stale results once.
    for old in results_dir.glob("*.txt"):
        old.unlink()
    return _record


@pytest.fixture(scope="session")
def record_json(results_dir, scale):
    """Write a benchmark's series as ``results/BENCH_<name>.json``.

    ``series`` maps algorithm name -> {size -> phase dict}; see the module
    docstring for the exact schema.  The file is what the CI perf-smoke job
    uploads and feeds to ``check_regression.py``.
    """

    def _record_json(name: str, series: dict) -> Path:
        payload = {
            "benchmark": name,
            "schema_version": 1,
            "scale": scale,
            "series": {alg: {str(size): dict(phases)
                             for size, phases in sizes.items()}
                       for alg, sizes in series.items()},
        }
        path = results_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    return _record_json


@pytest.fixture
def bench_timer(benchmark):
    """One-shot timing hook for :func:`repro.report.specs.run_panel`.

    Wraps a callable in a single ``benchmark.pedantic`` round — the timing
    discipline every spec-wrapping benchmark (Fig. 3/4, Table 1) shares.
    """
    return lambda fn: benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def buffer_sweep(scale):
    """Buffer-size sweep (total per-node bytes), the x-axis of Fig. 3/4/5."""
    if scale == "paper":
        return [2 ** k for k in range(13, 29, 3)]
    return [2 ** 15, 2 ** 19, 2 ** 23, 2 ** 27]
