"""Fig. 10: topology comparison -- GenKautz vs the lower bound and other families.

Left panel: all-to-all time of degree-4 generalized Kautz graphs versus the
Theorem 1 lower bound, over a sweep of N.

Right panel: all-to-all time (normalized by the lower bound) of GenKautz,
2D tori, Xpander and random regular graphs at degree 4 and matched sizes.

Expected shape: GenKautz tracks the lower bound closely (ratio -> small
constant), expanders (GenKautz, Xpander, random regular) clearly beat the 2D
torus (~2x+ at larger N), and GenKautz is the best or tied-best expander.

The all-to-all time of each topology is 1 / F from the master LP (the
schedule-independent optimum), exactly what the paper's simulation reports.
"""

import math


from repro.analysis import format_table
from repro.core import lower_bound_time_regular, solve_master_lp
from repro.topology import generalized_kautz, random_regular, torus_2d, xpander

DEGREE = 4


def test_fig10_genkautz_vs_lower_bound(benchmark, record, scale):
    sizes = [25, 64, 121, 256, 400] if scale == "paper" else [16, 36, 64]
    rows = []

    def run_sweep():
        for n in sizes:
            topo = generalized_kautz(DEGREE, n)
            t = 1.0 / solve_master_lp(topo).concurrent_flow
            bound = lower_bound_time_regular(DEGREE, n)
            rows.append([n, t, bound, t / bound])
        return rows

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record("fig10_topologies", format_table(
        ["N", "GenKautz all-to-all time", "lower bound", "ratio"], rows,
        title=f"Fig. 10 (left): GenKautz degree {DEGREE} vs Theorem 1 lower bound"))
    for n, t, bound, ratio in rows:
        assert t >= bound - 1e-9
        assert ratio <= 2.0
    # The ratio does not blow up with N (near-optimal family).
    assert rows[-1][3] <= rows[0][3] + 0.5


def test_fig10_topology_families(benchmark, record, scale):
    # Sizes chosen so every family exists: squares for the 2D torus,
    # multiples of (degree+1) for Xpander.
    sizes = [25, 100, 225, 400] if scale == "paper" else [25, 64]
    rows = []
    per_size = {}

    def make_families(n):
        families = {"GenKautz": generalized_kautz(DEGREE, n)}
        side = int(round(math.sqrt(n)))
        if side * side == n:
            families["2D Torus"] = torus_2d(side)
        if n % (DEGREE + 1) == 0:
            families["Xpander"] = xpander(DEGREE, n // (DEGREE + 1), seed=0)
        families["Random Regular"] = random_regular(DEGREE, n if (DEGREE * n) % 2 == 0 else n + 1,
                                                    seed=0)
        return families

    def run_sweep():
        for n in sizes:
            bound = lower_bound_time_regular(DEGREE, n)
            per_family = {}
            for name, topo in make_families(n).items():
                t = 1.0 / solve_master_lp(topo).concurrent_flow
                per_family[name] = t / bound
                rows.append([name, topo.num_nodes, t, t / bound])
            per_size[n] = per_family
        return per_size

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record("fig10_topologies", format_table(
        ["family", "N", "all-to-all time", "normalized by lower bound"], rows,
        title=f"Fig. 10 (right): topology families at degree {DEGREE}"))

    for n, per_family in per_size.items():
        # Expanders beat the torus whenever the torus exists at this size.
        if "2D Torus" in per_family:
            assert per_family["GenKautz"] < per_family["2D Torus"]
        # GenKautz is the best (or tied-best) expander.
        for other in ("Xpander", "Random Regular"):
            if other in per_family:
                assert per_family["GenKautz"] <= per_family[other] * 1.05
    largest = per_size[sizes[-1]]
    if "2D Torus" in largest:
        assert largest["2D Torus"] / largest["GenKautz"] >= 1.3
