#!/usr/bin/env python
"""Strict markdown link check for the docs site (CI ``docs`` job gate).

Usage: python benchmarks/check_docs.py README.md docs/*.md

For every ``[text](target)`` link in the given files:

* relative file targets must exist on disk (resolved against the containing
  file's directory, URL fragments stripped);
* in-page and cross-page ``#fragment`` anchors must match a heading slug in
  the target file (GitHub-style slugification);
* ``http(s)://`` / ``mailto:`` targets are skipped (no network in CI).

Exit code 0 when every link resolves, 1 with a per-link report otherwise.
Fenced code blocks are ignored so shell snippets containing brackets don't
produce false positives.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def _strip_fences(text: str) -> str:
    out: List[str] = []
    in_fence = False
    for line in text.splitlines():
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def _slugify(heading: str) -> str:
    """GitHub-style heading slug: lowercase, punctuation dropped, spaces -> dashes."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _anchors(path: str, cache: Dict[str, set]) -> set:
    if path not in cache:
        with open(path) as fh:
            text = _strip_fences(fh.read())
        cache[path] = {_slugify(m.group(1))
                       for line in text.splitlines()
                       if (m := HEADING_RE.match(line))}
    return cache[path]


def check_file(path: str, anchor_cache: Dict[str, set], errors: List[str]) -> int:
    with open(path) as fh:
        text = _strip_fences(fh.read())
    base = os.path.dirname(os.path.abspath(path))
    count = 0
    for match in LINK_RE.finditer(text):
        target = match.group(0)
        dest = match.group(1)
        count += 1
        if dest.startswith(EXTERNAL_PREFIXES):
            continue
        file_part, _, fragment = dest.partition("#")
        target_path = (os.path.normpath(os.path.join(base, file_part))
                       if file_part else os.path.abspath(path))
        if not os.path.exists(target_path):
            errors.append(f"{path}: broken link {target} -> {target_path}")
            continue
        if fragment and os.path.isfile(target_path) and target_path.endswith(".md"):
            if _slugify(fragment) not in _anchors(target_path, anchor_cache):
                errors.append(f"{path}: missing anchor #{fragment} in {file_part or path}")
    return count


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="markdown files to check")
    args = parser.parse_args(argv)

    errors: List[str] = []
    anchor_cache: Dict[str, set] = {}
    total = 0
    for path in args.files:
        if not os.path.exists(path):
            errors.append(f"{path}: file does not exist")
            continue
        total += check_file(path, anchor_cache, errors)

    if errors:
        for err in errors:
            print(f"DOCS: {err}", file=sys.stderr)
        return 1
    print(f"docs ok: {total} link(s) across {len(args.files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
