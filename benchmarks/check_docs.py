#!/usr/bin/env python
"""Strict markdown link check for the docs site (CI ``docs`` job gate).

Usage: python benchmarks/check_docs.py README.md docs/*.md examples/*.py

For every ``[text](target)`` link in the given markdown files:

* relative file targets must exist on disk (resolved against the containing
  file's directory, URL fragments stripped);
* in-page and cross-page ``#fragment`` anchors must match a heading slug in
  the target file (GitHub-style slugification);
* ``http(s)://`` / ``mailto:`` targets are skipped (no network in CI).

``.py`` arguments are checked through their module docstring: it must exist,
and every markdown link or bare ``docs/<page>.md`` reference in it must
resolve on disk (tried against the file's directory, its parent, and the
working directory — so ``docs/cluster.md`` works from ``examples/``).

Orphan gate: every ``docs/*.md`` argument must be reachable from a root page
(``README.md`` or ``index.md`` among the arguments) by following markdown
links; unreachable pages are errors — a docs page nobody links to is dead.

Exit code 0 when every link resolves, 1 with a per-link report otherwise.
Fenced code blocks are ignored so shell snippets containing brackets don't
produce false positives.
"""

from __future__ import annotations

import argparse
import ast
import os
import re
import sys
from typing import Dict, List, Set

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
DOC_REF_RE = re.compile(r"\bdocs/[\w\-./]+\.md\b")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")
ROOT_PAGES = ("README.md", "index.md")


def _strip_fences(text: str) -> str:
    out: List[str] = []
    in_fence = False
    for line in text.splitlines():
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def _slugify(heading: str) -> str:
    """GitHub-style heading slug: lowercase, punctuation dropped, spaces -> dashes."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _anchors(path: str, cache: Dict[str, set]) -> set:
    if path not in cache:
        with open(path) as fh:
            text = _strip_fences(fh.read())
        cache[path] = {_slugify(m.group(1))
                       for line in text.splitlines()
                       if (m := HEADING_RE.match(line))}
    return cache[path]


def check_file(path: str, anchor_cache: Dict[str, set], errors: List[str],
               out_links: Set[str]) -> int:
    with open(path) as fh:
        text = _strip_fences(fh.read())
    base = os.path.dirname(os.path.abspath(path))
    count = 0
    for match in LINK_RE.finditer(text):
        target = match.group(0)
        dest = match.group(1)
        count += 1
        if dest.startswith(EXTERNAL_PREFIXES):
            continue
        file_part, _, fragment = dest.partition("#")
        target_path = (os.path.normpath(os.path.join(base, file_part))
                       if file_part else os.path.abspath(path))
        if not os.path.exists(target_path):
            errors.append(f"{path}: broken link {target} -> {target_path}")
            continue
        out_links.add(os.path.abspath(target_path))
        if fragment and os.path.isfile(target_path) and target_path.endswith(".md"):
            if _slugify(fragment) not in _anchors(target_path, anchor_cache):
                errors.append(f"{path}: missing anchor #{fragment} in {file_part or path}")
    return count


def check_python_file(path: str, errors: List[str], out_links: Set[str]) -> int:
    """Check a ``.py`` file's module docstring for dead docs references."""
    with open(path) as fh:
        try:
            tree = ast.parse(fh.read(), filename=path)
        except SyntaxError as exc:
            errors.append(f"{path}: does not parse ({exc})")
            return 0
    doc = ast.get_docstring(tree)
    if not doc:
        errors.append(f"{path}: missing module docstring")
        return 0
    base = os.path.dirname(os.path.abspath(path))
    refs = {m.group(1) for m in LINK_RE.finditer(doc)
            if not m.group(1).startswith(EXTERNAL_PREFIXES)}
    refs.update(m.group(0) for m in DOC_REF_RE.finditer(doc))
    count = 0
    for dest in sorted(refs):
        count += 1
        file_part = dest.partition("#")[0]
        candidates = [os.path.normpath(os.path.join(root, file_part))
                      for root in (base, os.path.dirname(base), os.getcwd())]
        found = next((c for c in candidates if os.path.exists(c)), None)
        if found is None:
            errors.append(f"{path}: docstring references missing file {dest}")
        else:
            out_links.add(os.path.abspath(found))
    return count


def check_orphans(md_files: List[str], links_from: Dict[str, Set[str]],
                  errors: List[str]) -> None:
    """Every docs page must be reachable from a root page via markdown links."""
    roots = [p for p in links_from
             if os.path.basename(p) in ROOT_PAGES]
    if not roots:
        return  # nothing to anchor reachability on (partial invocation)
    reached: Set[str] = set(roots)
    frontier = list(roots)
    while frontier:
        here = frontier.pop()
        for dest in links_from.get(here, ()):
            if dest not in reached:
                reached.add(dest)
                frontier.append(dest)
    for path in md_files:
        abspath = os.path.abspath(path)
        if abspath not in reached and os.path.basename(path) not in ROOT_PAGES:
            errors.append(f"{path}: orphaned page — not reachable from "
                          f"{'/'.join(ROOT_PAGES)} via markdown links")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+",
                        help="markdown files (and .py files, checked via "
                             "their module docstring)")
    args = parser.parse_args(argv)

    errors: List[str] = []
    anchor_cache: Dict[str, set] = {}
    links_from: Dict[str, Set[str]] = {}
    md_files: List[str] = []
    total = 0
    for path in args.files:
        if not os.path.exists(path):
            errors.append(f"{path}: file does not exist")
            continue
        out_links: Set[str] = set()
        if path.endswith(".py"):
            total += check_python_file(path, errors, out_links)
        else:
            md_files.append(path)
            total += check_file(path, anchor_cache, errors, out_links)
        links_from[os.path.abspath(path)] = out_links

    check_orphans(md_files, links_from, errors)

    if errors:
        for err in errors:
            print(f"DOCS: {err}", file=sys.stderr)
        return 1
    print(f"docs ok: {total} link(s) across {len(args.files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
