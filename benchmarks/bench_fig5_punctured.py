"""Fig. 5: performance on edge- and node-punctured tori (failure emulation).

Samples several punctured-torus instances (3 random links or 3 random nodes
removed at the paper scale; 2 at the default small scale), runs MCF-extP,
ILP-disjoint and SSSP on each, and reports the min/mean/max envelope of the
large-buffer throughput -- the same envelope Fig. 5 plots.

Expected shape: MCF-extP >= SSSP on every instance (by ~30% max link load in
the paper), and comparable to ILP-disjoint.
"""


from repro.analysis import Envelope, format_table
from repro.baselines import ilp_disjoint_schedule
from repro.core import solve_mcf_extract_paths
from repro.paths import sssp_schedule
from repro.schedule import chunk_path_schedule
from repro.simulator import cerio_hpc_fabric, throughput_sweep
from repro.topology import edge_punctured_torus, node_punctured_torus

FABRIC = cerio_hpc_fabric()
BUFFER = 2 ** 27


def _throughput(schedule):
    routed = chunk_path_schedule(schedule, max_denominator=16)
    return throughput_sweep(routed, [BUFFER], fabric=FABRIC)[0].throughput


def _run_envelopes(make_instance, num_instances, record, label, benchmark, runner):
    per_scheme = {"MCF-extP/C": [], "ILP-disjoint/C": [], "SSSP/C": []}

    def run_seed(seed):
        topo = make_instance(seed)
        return (_throughput(solve_mcf_extract_paths(topo)),
                _throughput(ilp_disjoint_schedule(topo, mip_rel_gap=0.05, time_limit=60)),
                _throughput(sssp_schedule(topo)))

    def run_all():
        # Instances are independent; the shared runner samples them
        # concurrently when REPRO_BENCH_JOBS > 1, keeping seed order.
        for mcf, ilp, sssp in runner.map(run_seed, range(num_instances)):
            per_scheme["MCF-extP/C"].append(mcf)
            per_scheme["ILP-disjoint/C"].append(ilp)
            per_scheme["SSSP/C"].append(sssp)
        return per_scheme

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for scheme, values in per_scheme.items():
        env = Envelope.of(values)
        rows.append([scheme, env.minimum / 1e9, env.mean / 1e9, env.maximum / 1e9])
    record("fig5_punctured", format_table(
        ["scheme", "min GB/s", "mean GB/s", "max GB/s"], rows,
        title=f"Fig. 5 ({label}, {num_instances} instances, buffer 128MiB)"))
    return per_scheme


def test_fig5_edge_punctured_torus(benchmark, record, scale, runner):
    dims = [3, 3, 3] if scale == "paper" else [3, 3]
    removed = 3 if scale == "paper" else 2
    instances = 10 if scale == "paper" else 3
    per_scheme = _run_envelopes(
        lambda seed: edge_punctured_torus(dims, num_removed=removed, seed=seed),
        instances, record, f"edge-punctured torus {'x'.join(map(str, dims))}", benchmark,
        runner)
    for mcf, sssp in zip(per_scheme["MCF-extP/C"], per_scheme["SSSP/C"]):
        assert mcf >= sssp * 0.99


def test_fig5_node_punctured_torus(benchmark, record, scale, runner):
    dims = [3, 3, 3] if scale == "paper" else [3, 3]
    removed = 3 if scale == "paper" else 2
    instances = 10 if scale == "paper" else 3
    per_scheme = _run_envelopes(
        lambda seed: node_punctured_torus(dims, num_removed=removed, seed=seed),
        instances, record, f"node-punctured torus {'x'.join(map(str, dims))}", benchmark,
        runner)
    for mcf, sssp in zip(per_scheme["MCF-extP/C"], per_scheme["SSSP/C"]):
        assert mcf >= sssp * 0.99
