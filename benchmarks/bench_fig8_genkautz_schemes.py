"""Fig. 8: normalized all-to-all time of path-based schemes on GenKautz (d=4).

For a sweep of network sizes, computes the all-to-all time (1 / concurrent
flow = max link load at unit demand) of each scheme normalized by the optimal
link-based MCF:

* Link-based MCF (the 1.0 reference),
* pMCF-disjoint (path MCF on link-disjoint candidate paths),
* pMCF-shortest (path MCF on all-shortest-path candidates),
* EwSP, SSSP, ILP-disjoint, ILP-shortest.

Expected shape (paper Fig. 8): pMCF-disjoint stays within a few percent of
1.0; pMCF-shortest / EwSP / SSSP drift up to ~1.3-1.7x on expanders because
they have few shortest paths; ILP variants are competitive but only at the
sizes where they still solve.
"""

import pytest

from repro.analysis import format_table, normalize_times
from repro.baselines import ilp_disjoint_schedule, ilp_shortest_schedule
from repro.core import solve_decomposed_mcf, solve_path_mcf
from repro.paths import (
    all_shortest_path_sets,
    edge_disjoint_path_sets,
    ewsp_schedule,
    sssp_schedule,
)
from repro.topology import generalized_kautz

DEGREE = 4


def test_fig8_normalized_alltoall_time(benchmark, record, scale, runner):
    sizes = [25, 50, 75, 100] if scale == "paper" else [16, 24, 32]
    ilp_limit = 50 if scale == "paper" else 24

    rows = []
    per_size = {}

    def run_size(n):
        topo = generalized_kautz(DEGREE, n)
        optimal = solve_decomposed_mcf(topo)
        reference = 1.0 / optimal.concurrent_flow
        times = {"Link-based MCF": reference}
        times["pMCF-disjoint"] = 1.0 / solve_path_mcf(
            topo, edge_disjoint_path_sets(topo)).concurrent_flow
        times["pMCF-shortest"] = 1.0 / solve_path_mcf(
            topo, all_shortest_path_sets(topo, limit_per_pair=16)).concurrent_flow
        times["EwSP"] = ewsp_schedule(topo).all_to_all_time()
        times["SSSP"] = sssp_schedule(topo).all_to_all_time()
        if n <= ilp_limit:
            times["ILP-disjoint"] = ilp_disjoint_schedule(
                topo, mip_rel_gap=0.05, time_limit=120).all_to_all_time()
            times["ILP-shortest"] = ilp_shortest_schedule(
                topo, mip_rel_gap=0.05, time_limit=120).all_to_all_time()
        return n, normalize_times(times, reference)

    def run_sweep():
        # Sizes are independent; the shared runner solves them concurrently
        # when REPRO_BENCH_JOBS > 1 and keeps input order either way.
        for n, normalized in runner.map(run_size, sizes):
            per_size[n] = normalized
            for name, value in normalized.items():
                rows.append([name, n, value])
        return per_size

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record("fig8_genkautz_schemes", format_table(
        ["scheme", "N", "normalized all-to-all time"], rows,
        title=f"Fig. 8: GenKautz degree {DEGREE}, normalized by link-based MCF"))

    for n, normalized in per_size.items():
        assert normalized["Link-based MCF"] == pytest.approx(1.0)
        assert normalized["pMCF-disjoint"] <= 1.15
        assert normalized["SSSP"] >= 1.0 - 1e-9
        assert normalized["EwSP"] >= normalized["pMCF-disjoint"] - 1e-9
    # At the largest size the single-/equal-path schemes are clearly suboptimal.
    last = per_size[sizes[-1]]
    assert max(last["EwSP"], last["SSSP"]) > 1.1
