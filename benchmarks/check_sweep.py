#!/usr/bin/env python
"""Validate a sweep JSONL file against the record schema (CI sweep-smoke gate).

Usage: python benchmarks/check_sweep.py results.jsonl [--expect N]
       [--require-sim] [--require-cluster] [--require-faults]
       [--compare OTHER]

Checks every line parses, carries the mandatory record fields with the right
shapes (64-hex key, current schema_version, ok/error status, numeric metrics
and timings), and — with ``--expect`` — that exactly N records exist and all are
``ok``.  ``--require-sim`` (the CI sim-smoke gate) additionally requires each
ok record to carry the simulator cost counters (``sim_fill_rounds``,
``sim_events``) and, for scenarios with ``overlap > 1``, per-collective
completion times with exactly ``overlap`` entries per buffer point.
``--require-cluster`` (the CI cluster-smoke gate) requires each ok record to
carry the multi-job co-simulation metrics (``job_slowdown_p50``,
``makespan_seconds``, ``fabric_utilization``) with sane values.
``--require-faults`` (the CI faults-smoke gate) requires each ok record to
carry the dynamic-failure metrics (``robustness_slowdown``, ``reroute_count``,
``stranded_bytes``, ``fault_events``) with sane values.
``--compare OTHER`` (the CI sweep-parallel gate) requires the two files to be
canonically identical: records sorted by scenario hash, the volatile
execution-accounting sections (``timings``, ``engine``, ``stage_cache`` —
wall clock and cache luck) dropped, everything else equal byte for byte —
how a multiprocess ``--workers`` sweep is checked against the serial run.
Exit code 0 on success, 1 with a per-line report otherwise.

The record schema is documented in :mod:`repro.experiments.sweep`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

REQUIRED_FIELDS = ("schema_version", "key", "label", "status", "through",
                   "scenario", "metrics", "timings", "engine", "stage_cache",
                   "error")

#: Mirrors repro.experiments.scenario_schema_version() without importing the
#: package (this script runs without PYTHONPATH=src in CI).
SCHEMA_VERSION = 4

#: Mirrors repro.experiments.executor.VOLATILE_RECORD_FIELDS: execution
#: accounting (wall clock, cache luck) that legitimately differs between a
#: serial and a multiprocess run of the same grid.
VOLATILE_RECORD_FIELDS = ("timings", "engine", "stage_cache")


def canonical_records(path: str) -> List[str]:
    """Records of a sweep JSONL, volatile fields dropped, sorted by hash."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing line; the schema pass reports it
            for name in VOLATILE_RECORD_FIELDS:
                rec.pop(name, None)
            records.append(rec)
    records.sort(key=lambda r: str(r.get("key", "")))
    return [json.dumps(rec, sort_keys=True) for rec in records]


def compare_canonical(path_a: str, path_b: str, errors: List[str]) -> None:
    """The --compare gate: canonical equality of two sweep JSONL files."""
    a, b = canonical_records(path_a), canonical_records(path_b)
    if len(a) != len(b):
        errors.append(f"--compare: {path_a} has {len(a)} record(s), "
                      f"{path_b} has {len(b)}")
    for i, (left, right) in enumerate(zip(a, b), start=1):
        if left != right:
            errors.append(f"--compare: canonical record {i} differs:\n"
                          f"  {path_a}: {left}\n  {path_b}: {right}")
            return  # first divergence is enough; the rest is usually noise


def check_record(index: int, line: str, errors: List[str]) -> dict:
    try:
        rec = json.loads(line)
    except json.JSONDecodeError as exc:
        errors.append(f"line {index}: not valid JSON ({exc})")
        return {}
    missing = [f for f in REQUIRED_FIELDS if f not in rec]
    if missing:
        errors.append(f"line {index}: missing field(s) {missing}")
        return rec
    if rec["schema_version"] != SCHEMA_VERSION:
        errors.append(f"line {index}: schema_version {rec['schema_version']!r} "
                      f"!= {SCHEMA_VERSION}")
    if rec["status"] not in ("ok", "error"):
        errors.append(f"line {index}: bad status {rec['status']!r}")
    if rec["status"] == "ok":
        if not (isinstance(rec["key"], str) and len(rec["key"]) == 64
                and all(c in "0123456789abcdef" for c in rec["key"])):
            errors.append(f"line {index}: key is not a 64-char hex digest")
        if rec["error"] is not None:
            errors.append(f"line {index}: ok record carries an error")
    for section in ("metrics", "timings"):
        values = rec.get(section)
        if not isinstance(values, dict):
            errors.append(f"line {index}: {section} is not an object")
            continue
        for name, value in values.items():
            if not isinstance(value, (int, float, dict)):
                errors.append(f"line {index}: {section}[{name!r}] is not numeric/nested")
    if not isinstance(rec.get("scenario"), dict) or "topology" not in rec.get("scenario", {}):
        errors.append(f"line {index}: scenario object missing topology")
    return rec


def check_sim_metrics(index: int, rec: dict, errors: List[str]) -> None:
    """The --require-sim gate: simulator counters and overlap metrics."""
    if rec.get("status") != "ok":
        return
    metrics = rec.get("metrics", {})
    for counter in ("sim_fill_rounds", "sim_events"):
        value = metrics.get(counter)
        if not isinstance(value, int) or value < 1:
            errors.append(f"line {index}: metrics[{counter!r}] missing or < 1")
    overlap = rec.get("scenario", {}).get("overlap", 1)
    if isinstance(overlap, int) and overlap > 1:
        times = metrics.get("overlap_completion_seconds")
        if not isinstance(times, dict) or not times:
            errors.append(f"line {index}: overlap={overlap} record lacks "
                          "overlap_completion_seconds")
            return
        for buf, values in times.items():
            if not isinstance(values, list) or len(values) != overlap:
                errors.append(f"line {index}: overlap_completion_seconds[{buf}] "
                              f"has {len(values) if isinstance(values, list) else '?'} "
                              f"entries, expected {overlap}")


def check_cluster_metrics(index: int, rec: dict, errors: List[str]) -> None:
    """The --require-cluster gate: multi-job co-simulation metrics."""
    if rec.get("status") != "ok":
        return
    metrics = rec.get("metrics", {})
    for name in ("job_slowdown_p50", "makespan_seconds", "fabric_utilization"):
        value = metrics.get(name)
        if not isinstance(value, (int, float)) or value < 0:
            errors.append(f"line {index}: metrics[{name!r}] missing or negative")
    slowdown = metrics.get("job_slowdown_p50")
    if isinstance(slowdown, (int, float)) and slowdown and slowdown < 1.0 - 1e-6:
        errors.append(f"line {index}: job_slowdown_p50 {slowdown} < 1 "
                      "(a shared fabric cannot beat the isolated run)")
    utilization = metrics.get("fabric_utilization")
    if isinstance(utilization, (int, float)) and utilization > 1.0 + 1e-6:
        errors.append(f"line {index}: fabric_utilization {utilization} > 1")
    jobs = metrics.get("cluster_jobs")
    if not isinstance(jobs, int) or jobs < 1:
        errors.append(f"line {index}: metrics['cluster_jobs'] missing or < 1")


def check_faults_metrics(index: int, rec: dict, errors: List[str]) -> None:
    """The --require-faults gate: dynamic-failure robustness metrics."""
    if rec.get("status") != "ok":
        return
    metrics = rec.get("metrics", {})
    slowdown = metrics.get("robustness_slowdown")
    if not isinstance(slowdown, (int, float)):
        errors.append(f"line {index}: metrics['robustness_slowdown'] missing")
    elif slowdown < 1.0 - 1e-6:
        errors.append(f"line {index}: robustness_slowdown {slowdown} < 1 "
                      "(a degraded fabric cannot beat the healthy run)")
    for name in ("reroute_count", "fault_events"):
        value = metrics.get(name)
        if not isinstance(value, int) or value < 0:
            errors.append(f"line {index}: metrics[{name!r}] missing or negative")
    stranded = metrics.get("stranded_bytes")
    if not isinstance(stranded, (int, float)) or stranded < 0:
        errors.append(f"line {index}: metrics['stranded_bytes'] missing or negative")
    if rec.get("scenario", {}).get("faults") is None:
        errors.append(f"line {index}: record lacks a faults axis in its scenario")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("jsonl", help="sweep results file to validate")
    parser.add_argument("--expect", type=int, default=None,
                        help="require exactly N records, all with status ok")
    parser.add_argument("--require-sim", action="store_true",
                        help="require simulator counters (and per-collective "
                             "times for overlap scenarios) in every ok record")
    parser.add_argument("--require-cluster", action="store_true",
                        help="require multi-job cluster metrics (slowdown, "
                             "makespan, utilization) in every ok record")
    parser.add_argument("--require-faults", action="store_true",
                        help="require dynamic-failure metrics (robustness "
                             "slowdown, reroutes, stranded bytes) in every "
                             "ok record")
    parser.add_argument("--compare", default=None, metavar="OTHER",
                        help="require canonical equality with another sweep "
                             "JSONL (volatile fields dropped, hash-sorted)")
    args = parser.parse_args(argv)

    errors: List[str] = []
    records = []
    with open(args.jsonl) as fh:
        for index, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            rec = check_record(index, line, errors)
            if args.require_sim:
                check_sim_metrics(index, rec, errors)
            if args.require_cluster:
                check_cluster_metrics(index, rec, errors)
            if args.require_faults:
                check_faults_metrics(index, rec, errors)
            records.append(rec)

    if args.compare is not None:
        compare_canonical(args.jsonl, args.compare, errors)

    statuses = [r.get("status") for r in records]
    if args.expect is not None:
        if len(records) != args.expect:
            errors.append(f"expected {args.expect} records, found {len(records)}")
        bad = statuses.count("error")
        if bad:
            errors.append(f"{bad} record(s) have status=error")

    if errors:
        for err in errors:
            print(f"SWEEP SCHEMA: {err}", file=sys.stderr)
        return 1
    print(f"sweep schema ok: {len(records)} record(s), "
          f"{statuses.count('ok')} ok / {statuses.count('error')} error")
    return 0


if __name__ == "__main__":
    sys.exit(main())
