#!/usr/bin/env python
"""Validate a sweep JSONL file against the record schema (CI sweep-smoke gate).

Usage: python benchmarks/check_sweep.py results.jsonl [--expect N]

Checks every line parses, carries the mandatory record fields with the right
shapes (64-hex key, schema_version 1, ok/error status, numeric metrics and
timings), and — with ``--expect`` — that exactly N records exist and all are
``ok``.  Exit code 0 on success, 1 with a per-line report otherwise.

The record schema is documented in :mod:`repro.experiments.sweep`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

REQUIRED_FIELDS = ("schema_version", "key", "label", "status", "through",
                   "scenario", "metrics", "timings", "engine", "stage_cache",
                   "error")


def check_record(index: int, line: str, errors: List[str]) -> dict:
    try:
        rec = json.loads(line)
    except json.JSONDecodeError as exc:
        errors.append(f"line {index}: not valid JSON ({exc})")
        return {}
    missing = [f for f in REQUIRED_FIELDS if f not in rec]
    if missing:
        errors.append(f"line {index}: missing field(s) {missing}")
        return rec
    if rec["schema_version"] != 1:
        errors.append(f"line {index}: schema_version {rec['schema_version']!r} != 1")
    if rec["status"] not in ("ok", "error"):
        errors.append(f"line {index}: bad status {rec['status']!r}")
    if rec["status"] == "ok":
        if not (isinstance(rec["key"], str) and len(rec["key"]) == 64
                and all(c in "0123456789abcdef" for c in rec["key"])):
            errors.append(f"line {index}: key is not a 64-char hex digest")
        if rec["error"] is not None:
            errors.append(f"line {index}: ok record carries an error")
    for section in ("metrics", "timings"):
        values = rec.get(section)
        if not isinstance(values, dict):
            errors.append(f"line {index}: {section} is not an object")
            continue
        for name, value in values.items():
            if not isinstance(value, (int, float, dict)):
                errors.append(f"line {index}: {section}[{name!r}] is not numeric/nested")
    if not isinstance(rec.get("scenario"), dict) or "topology" not in rec.get("scenario", {}):
        errors.append(f"line {index}: scenario object missing topology")
    return rec


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("jsonl", help="sweep results file to validate")
    parser.add_argument("--expect", type=int, default=None,
                        help="require exactly N records, all with status ok")
    args = parser.parse_args(argv)

    errors: List[str] = []
    records = []
    with open(args.jsonl) as fh:
        for index, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            records.append(check_record(index, line, errors))

    statuses = [r.get("status") for r in records]
    if args.expect is not None:
        if len(records) != args.expect:
            errors.append(f"expected {args.expect} records, found {len(records)}")
        bad = statuses.count("error")
        if bad:
            errors.append(f"{bad} record(s) have status=error")

    if errors:
        for err in errors:
            print(f"SWEEP SCHEMA: {err}", file=sys.stderr)
        return 1
    print(f"sweep schema ok: {len(records)} record(s), "
          f"{statuses.count('ok')} ok / {statuses.count('error')} error")
    return 0


if __name__ == "__main__":
    sys.exit(main())
