"""Warm-started LP family benchmark: batched multi-RHS vs cold scipy solves.

Solves a 16-point degraded-fabric family — the link-based MCF on one
topology with uniformly scaled link capacities, the LP shape produced by
``hpc:scale=...`` degradation sweeps and bandwidth axes — twice:

* **cold**: 16 independent ``Engine.solve`` calls through the default
  scipy/HiGHS backend with caching off (the pre-batching behaviour);
* **family**: one :func:`repro.perf.solve_family` call, which solves the
  first member cold and derives the rest by LP homogeneity (uniform RHS
  scaling of an identical constraint structure), warm-starting through the
  ``highs-native`` backend where ``highspy`` is installed.

Asserted acceptance gates:

* every family member's optimum matches its cold solve (rel 1e-6);
* the family path is at least 2x faster than the cold path.

Machine-readable output lands in ``results/BENCH_warmstart.json``
(``objective`` is the first member's concurrent flow value F).  The CI
``perf-kernels`` job gates it against ``benchmarks/baseline_warmstart.json``
via ``check_regression.py``.
"""

import time

from repro.analysis import format_table
from repro.engine import Engine, MCFProblem, SolutionCache
from repro.perf import solve_family
from repro.topology import random_regular

MIN_FAMILY_SPEEDUP = 2.0
FAMILY_POINTS = 16


def _family_problems(scale):
    """16 uniformly degraded copies of one link-MCF (scales 1.0 down to 0.25)."""
    n = 16 if scale == "paper" else 12
    base = random_regular(3, n, seed=7)
    scales = [1.0 - 0.05 * i for i in range(FAMILY_POINTS)]
    return [MCFProblem("mcf-link", base.with_capacity(s), maximize=True)
            for s in scales]


def test_warmstart_family_speedup(record, record_json, scale):
    """16-point degraded family: batched path >= 2x cold, identical optima."""
    problems = _family_problems(scale)
    engine = Engine(cache=SolutionCache(enabled=False))

    start = time.perf_counter()
    cold = [engine.solve(p, use_cache=False) for p in problems]
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    family, stats = solve_family(problems, engine=engine, use_cache=False)
    family_seconds = time.perf_counter() - start

    for cold_sol, family_sol in zip(cold, family):
        delta = abs(family_sol.objective - cold_sol.objective)
        assert delta <= 1e-6 * max(1.0, abs(cold_sol.objective)), (
            f"family optimum drifted: {family_sol.objective!r} vs "
            f"{cold_sol.objective!r}")

    speedup = cold_seconds / family_seconds
    series = {
        "cold-scipy": {FAMILY_POINTS: {
            "solve_seconds": cold_seconds,
            "objective": cold[0].objective,
        }},
        "family-batched": {FAMILY_POINTS: {
            "solve_seconds": family_seconds,
            "lp_solves": stats["solves"],
            "rhs_scaled": stats["scaled"],
            "objective": family[0].objective,
        }},
    }
    record_json("warmstart", series)
    record("warmstart", format_table(
        ["path", "16 solves (s)", "LP solves", "speedup"],
        [["cold scipy", cold_seconds, len(problems), 1.0],
         ["family (warm/scaled)", family_seconds, stats["solves"], speedup]],
        title=(f"Warm-started degraded family: mcf-link x {FAMILY_POINTS} "
               f"capacity scales on rrg:d=3 "
               f"(backend={engine.backend_name})")))

    assert stats["solves"] == 1 and stats["scaled"] == FAMILY_POINTS - 1
    assert speedup >= MIN_FAMILY_SPEEDUP, (
        f"family path only {speedup:.1f}x faster than cold solves "
        f"(gate: {MIN_FAMILY_SPEEDUP:.0f}x)")
