"""Faulted-simulation benchmark: the delta engine vs the recompile oracle.

Times the two hot paths the incremental layer (:mod:`repro.perf.delta`)
optimizes, on one 108-flow ewsp schedule over a 4x4 torus (6x6 at
``REPRO_BENCH_SCALE=paper``):

* **faulted run** — a 40-epoch flapping timeline (one link dropping and
  recovering every 7 us) through :func:`repro.faults.run_faulted`, where
  the oracle pays ``compile_flows`` + a fresh workspace per epoch and the
  delta engine patches capacities/incidence in place;
* **adversarial search** — :func:`repro.faults.worst_case_failures`
  (k=1, exhaustive over the 10 heaviest links, strike at 0.7), where the
  delta engine additionally shares one prepared context, resumes every
  candidate from the captured pre-strike prefix, and serves repairs and
  LASH certifications from the reroute cache.

Asserted acceptance gates:

* both modes agree **exactly**: same completion time, slowdowns within
  1e-9, identical reroute counts and worst sets (the fill kernels never
  read flow sizes, so delta-masked programs fill bit-identically to
  recompiled survivor programs);
* the serial and ``jobs=4`` adversarial searches return identical
  evaluation tables (order-preserving merge);
* the delta engine is at least 3x faster than ``REPRO_DELTA=off`` on both
  legs.

Machine-readable output lands in ``results/BENCH_faults.json``
(``objective`` is the deterministic faulted completion time / worst
slowdown).  The CI ``perf-kernels`` job uploads it and gates it against
``benchmarks/baseline_faults.json`` via ``check_regression.py``.
"""

import time

from repro.analysis import format_table
from repro.experiments import Plan, Scenario
from repro.faults import PreparedFaultContext, run_faulted, worst_case_failures
from repro.perf import set_delta_enabled
from repro.simulator import fabric_from_spec

MIN_DELTA_SPEEDUP = 3.0
FLAP_EPOCHS = 20          # down+up pairs -> 40 fabric events
TIMING_REPS = 3
ADV_CANDIDATES = 10
ADV_AT = 0.7
BUFFER = float(2 ** 20)


def _flapping_spec(epochs: int = FLAP_EPOCHS) -> str:
    """One link flapping: ``epochs`` down/up pairs, 7 us apart."""
    parts = []
    for i in range(epochs):
        t = 10 + 7 * i
        parts.append(f"down=0~1@{t}us")
        parts.append(f"up@{t + 4}us")
    return "faults:" + ":".join(parts)


def _best_of(fn, reps: int = TIMING_REPS):
    """Best wall time over ``reps`` runs (first run also warms caches)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_faulted_delta_throughput(record, record_json, scale):
    """Delta engine >= 3x oracle on faulted runs and adversarial search."""
    topology = "torus:rows=6,cols=6" if scale == "paper" else "torus:rows=4,cols=4"
    lowered = Plan(Scenario(topology=topology, scheme="ewsp",
                            max_denominator=16)).run("lower").lowered
    fabric = fabric_from_spec("hpc")
    spec = _flapping_spec()
    context = PreparedFaultContext(lowered, fabric)
    num_flows = context.num_flows

    def faulted():
        return run_faulted(lowered, BUFFER, spec, fabric=fabric,
                           validate=False, context=context)

    def adversarial(jobs=1):
        return worst_case_failures(lowered, BUFFER, k=1, fabric=fabric,
                                   at=ADV_AT, candidates=ADV_CANDIDATES,
                                   mode="exhaustive", jobs=jobs,
                                   context=context)

    try:
        set_delta_enabled(True)
        run_delta, run_delta_s = _best_of(faulted)
        adv_delta, adv_delta_s = _best_of(adversarial)
        adv_jobs = adversarial(jobs=4)
        set_delta_enabled(False)
        run_oracle, run_oracle_s = _best_of(faulted)
        adv_oracle, adv_oracle_s = _best_of(adversarial)
    finally:
        set_delta_enabled(None)

    # Exact agreement between the delta engine and the recompile oracle.
    assert run_delta.completion_time == run_oracle.completion_time
    assert run_delta.meta["reroute_count"] == run_oracle.meta["reroute_count"]
    assert run_delta.meta["fill_rounds"] == run_oracle.meta["fill_rounds"]
    assert run_delta.meta["fault_events"] == run_oracle.meta["fault_events"]
    assert adv_delta.worst_links == adv_oracle.worst_links
    assert abs(adv_delta.worst_slowdown - adv_oracle.worst_slowdown) <= 1e-9
    for ev_d, ev_o in zip(adv_delta.evaluations, adv_oracle.evaluations):
        assert ev_d["links"] == ev_o["links"]
        assert abs(ev_d["slowdown"] - ev_o["slowdown"]) <= 1e-9
        assert ev_d["reroute_count"] == ev_o["reroute_count"]

    # Deterministic parallel merge: jobs=4 is identical to serial.
    assert adv_jobs.worst_links == adv_delta.worst_links
    assert [(ev["links"], ev["slowdown"]) for ev in adv_jobs.evaluations] == \
           [(ev["links"], ev["slowdown"]) for ev in adv_delta.evaluations]

    run_speedup = run_oracle_s / run_delta_s
    adv_speedup = adv_oracle_s / adv_delta_s
    series = {
        "delta": {num_flows: {
            "faulted_seconds": run_delta_s,
            "adversarial_seconds": adv_delta_s,
            "total_seconds": run_delta_s + adv_delta_s,
            "objective": run_delta.completion_time,
        }},
        "oracle": {num_flows: {
            "faulted_seconds": run_oracle_s,
            "adversarial_seconds": adv_oracle_s,
            "total_seconds": run_oracle_s + adv_oracle_s,
            "objective": run_oracle.completion_time,
        }},
    }
    record_json("faults", series)
    record("faults", format_table(
        ["mode", "faulted run (s)", "adversarial (s)", "speedup"],
        [["delta (REPRO_DELTA=on)", run_delta_s, adv_delta_s,
          f"{run_speedup:.1f}x / {adv_speedup:.1f}x"],
         ["oracle (REPRO_DELTA=off)", run_oracle_s, adv_oracle_s, "1.0x"]],
        title=(f"Faulted simulation: {num_flows}-flow ewsp on {topology}, "
               f"{2 * FLAP_EPOCHS}-epoch flap + k=1 adversarial "
               f"({ADV_CANDIDATES} candidates), worst slowdown "
               f"{adv_delta.worst_slowdown:.4f}")))

    assert run_speedup >= MIN_DELTA_SPEEDUP, (
        f"delta faulted run only {run_speedup:.1f}x faster than the oracle "
        f"(gate: {MIN_DELTA_SPEEDUP:.0f}x)")
    assert adv_speedup >= MIN_DELTA_SPEEDUP, (
        f"delta adversarial search only {adv_speedup:.1f}x faster than the "
        f"oracle (gate: {MIN_DELTA_SPEEDUP:.0f}x)")
