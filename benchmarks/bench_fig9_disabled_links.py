"""Fig. 9: performance on GenKautz graphs with randomly disabled links.

The paper disables 0..60 links of an 81-node degree-8 generalized Kautz graph
and shows that MCF-based schemes stay near-optimal on the resulting
heterogeneous, degree-irregular topologies while SSSP degrades.  The default
scale uses a 27-node degree-4 GenKautz graph and 0..12 disabled links; the
paper scale uses the 81-node graph.

Expected shape: normalized times of pMCF-disjoint stay close to 1.0 across the
whole failure sweep; SSSP drifts upward as links disappear.
"""

import random


from repro.analysis import format_table, normalize_times
from repro.baselines import ilp_disjoint_schedule
from repro.core import solve_decomposed_mcf, solve_path_mcf
from repro.paths import edge_disjoint_path_sets, sssp_schedule
from repro.topology import generalized_kautz


def _disable_links(topo, count, seed):
    """Remove ``count`` random directed links, keeping the graph strongly connected."""
    rng = random.Random(seed)
    current = topo
    removed = 0
    attempts = 0
    while removed < count and attempts < 20 * count + 50:
        attempts += 1
        edge = rng.choice(current.edges)
        try:
            current = current.remove_edges([edge])
            removed += 1
        except ValueError:
            continue
    return current


def test_fig9_disabled_links(benchmark, record, scale):
    if scale == "paper":
        n, degree = 81, 8
        disabled_counts = [0, 15, 30, 45, 60]
        run_ilp = False
    else:
        n, degree = 27, 4
        disabled_counts = [0, 4, 8, 12]
        run_ilp = True

    base = generalized_kautz(degree, n)
    rows = []
    per_count = {}

    def run_sweep():
        for count in disabled_counts:
            topo = _disable_links(base, count, seed=count)
            optimal = solve_decomposed_mcf(topo)
            reference = 1.0 / optimal.concurrent_flow
            times = {"Link-based MCF": reference}
            times["pMCF-disjoint"] = 1.0 / solve_path_mcf(
                topo, edge_disjoint_path_sets(topo)).concurrent_flow
            times["SSSP"] = sssp_schedule(topo).all_to_all_time()
            if run_ilp:
                times["ILP-disjoint (10% tol)"] = ilp_disjoint_schedule(
                    topo, mip_rel_gap=0.10, time_limit=120).all_to_all_time()
            normalized = normalize_times(times, reference)
            per_count[count] = normalized
            for name, value in normalized.items():
                rows.append([name, count, value])
        return per_count

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record("fig9_disabled_links", format_table(
        ["scheme", "disabled links", "normalized all-to-all time"], rows,
        title=f"Fig. 9: GenKautz N={n} degree {degree} with disabled links"))

    for count, normalized in per_count.items():
        assert normalized["pMCF-disjoint"] <= 1.25
        assert normalized["SSSP"] >= 1.0 - 1e-9
    # SSSP is noticeably worse than pMCF somewhere in the sweep.
    assert any(norm["SSSP"] > norm["pMCF-disjoint"] + 0.05 for norm in per_count.values())
