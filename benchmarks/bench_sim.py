"""Simulator benchmark: vectorized engine vs. scalar reference fill time.

Simulates a ~1k-flow all-to-all (every commodity of a degree-4 random
regular graph routed along one shortest path, with heterogeneous sizes so
completions spread over many progressive-filling rounds) on the Cerio-like
HPC fabric, once on the vectorized engine
(:func:`repro.simulator.simulate_flows`) and once on the retained scalar
reference (:func:`repro.simulator.simulate_flows_reference`).

Asserted acceptance gates:

* the two implementations agree on every completion time within 1e-9;
* the vectorized engine is at least 5x faster end to end.

Machine-readable output lands in ``results/BENCH_sim.json`` (same schema as
``BENCH_runtime.json``; ``objective`` is the deterministic overall
completion time, so the perf gate also catches semantic drift).  The CI
perf-smoke job uploads it and gates it against
``benchmarks/baseline_sim.json`` via ``check_regression.py``.
"""

import random
import time

import networkx as nx

from repro.analysis import format_table
from repro.simulator import (
    FluidFlow,
    cerio_hpc_fabric,
    simulate_flows,
    simulate_flows_reference,
)
from repro.topology import random_regular

MIN_SPEEDUP = 5.0


def _alltoall_flows(topo, seed=3):
    """One flow per commodity along a shortest path, sizes varying 1..13 x 64KiB."""
    rng = random.Random(seed)
    paths = dict(nx.all_pairs_shortest_path(topo.graph))
    flows = []
    for s in topo.nodes:
        dests = [d for d in topo.nodes if d != s]
        rng.shuffle(dests)
        for k, d in enumerate(dests):
            size = float((k % 13 + 1) * 2 ** 16)
            flows.append(FluidFlow(path=tuple(paths[s][d]), size_bytes=size))
    return flows


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_sim_engine_speedup(record, record_json, scale):
    """1k-flow all-to-all fill: engine >= 5x the scalar reference, same result."""
    n = 64 if scale == "paper" else 32
    topo = random_regular(4, n, seed=3)
    fabric = cerio_hpc_fabric()
    flows = _alltoall_flows(topo)

    fast, engine_seconds = _timed(lambda: simulate_flows(topo, flows, fabric))
    slow, reference_seconds = _timed(
        lambda: simulate_flows_reference(topo, flows, fabric))

    # Differential gate: identical completion times (the engine's reason to
    # exist is speed, not different physics).
    assert abs(fast.completion_time - slow.completion_time) <= 1e-9
    for a, b in zip(fast.flow_completion_times, slow.flow_completion_times):
        assert abs(a - b) <= 1e-9

    speedup = reference_seconds / engine_seconds
    events_per_sec = fast.events_processed / engine_seconds

    series = {
        "engine": {len(flows): {
            "fill_seconds": engine_seconds,
            "events_per_sec": events_per_sec,
            "fill_rounds": fast.fill_rounds,
            "objective": fast.completion_time,
        }},
        "reference": {len(flows): {
            "fill_seconds": reference_seconds,
            "objective": slow.completion_time,
        }},
    }
    record_json("sim", series)
    record("sim", format_table(
        ["implementation", "fill (s)", "events/s", "speedup"],
        [["engine (vectorized)", engine_seconds, events_per_sec, speedup],
         ["reference (scalar)", reference_seconds, "-", 1.0]],
        title=f"Simulator fill: {len(flows)}-flow all-to-all on rrg:d=4,n={n}"))

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized engine only {speedup:.1f}x faster than the scalar "
        f"reference (gate: {MIN_SPEEDUP:.0f}x)")
