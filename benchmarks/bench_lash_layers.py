"""§5.5 deadlock-freedom study: virtual-channel layers needed per algorithm/topology.

The paper reports that its LASH-sequential variant never needed more than 4
layers to make the routes of any evaluated algorithm (MCF, ILP, EwSP, ...)
deadlock-free on any evaluated topology.  This benchmark reproduces that
study: it generates route sets with each algorithm on each topology, runs
LASH, LASH-sequential and DF-SSSP, and reports the layer counts.
"""


from repro.analysis import format_table
from repro.baselines import ilp_disjoint_schedule, native_alltoall_schedule
from repro.core import solve_mcf_extract_paths
from repro.paths import ewsp_schedule, sssp_schedule
from repro.routing import dfsssp_assign, lash_assign, lash_sequential_assign, verify_layers
from repro.topology import complete_bipartite, generalized_kautz, hypercube, torus

MAX_LAYERS_CLAIM = 4


def _routes_of(schedule):
    return [tuple(p.nodes) for plist in schedule.paths.values() for p in plist]


def test_lash_layers_across_algorithms_and_topologies(benchmark, record, scale):
    topologies = {
        "bipartite-4x4": complete_bipartite(4, 4),
        "hypercube-3d": hypercube(3),
        "torus": torus([3, 3, 3]) if scale == "paper" else torus([3, 3]),
        "genkautz-d4": generalized_kautz(4, 24),
    }
    rows = []
    seq_layer_counts = []

    def run_all():
        for topo_name, topo in topologies.items():
            algorithms = {
                "MCF-extP": lambda t=topo: solve_mcf_extract_paths(t),
                "EwSP": lambda t=topo: ewsp_schedule(t),
                "SSSP": lambda t=topo: sssp_schedule(t),
                "native": lambda t=topo: native_alltoall_schedule(t),
            }
            if topo.num_nodes <= 16:
                algorithms["ILP-disjoint"] = lambda t=topo: ilp_disjoint_schedule(
                    t, mip_rel_gap=0.05, time_limit=60)
            for algo_name, make in algorithms.items():
                routes = _routes_of(make())
                seq = lash_sequential_assign(routes)
                ff = lash_assign(routes)
                df = dfsssp_assign(routes)
                assert verify_layers(seq) and verify_layers(ff) and verify_layers(df)
                seq_layer_counts.append(seq.num_layers)
                rows.append([topo_name, algo_name, len(routes),
                             seq.num_layers, ff.num_layers, df.num_layers])
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    record("lash_layers", format_table(
        ["topology", "algorithm", "#routes", "LASH-seq layers", "LASH layers", "DF-SSSP layers"],
        rows, title="§5.5: virtual-channel layers needed for deadlock freedom"))

    # The paper's claim: LASH-sequential needs at most 4 layers everywhere.
    assert max(seq_layer_counts) <= MAX_LAYERS_CLAIM
