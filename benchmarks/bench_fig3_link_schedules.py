"""Fig. 3: throughput of link-based all-to-all schedules.

Schemes: tsMCF (ours), the TACCL-like surrogate baseline, and the theoretical
upper bound ``(N-1) * f * b``; the SCCL baseline fails to synthesise at these
scales (§5.2), which bench_fig7 demonstrates explicitly.

Topologies: complete bipartite K4,4, 3D hypercube and 3D twisted hypercube
(all N=8, as on the paper's GPU testbed), plus a torus with a host-injection
bottleneck standing in for the 27-node TACC torus (3x3 at the default scale,
3x3x3 with REPRO_BENCH_SCALE=paper).

Expected shape: tsMCF tracks the upper bound at large buffers and beats the
TACCL surrogate (by ~20-60%); all schemes are latency-bound at small buffers.
"""


from repro.analysis import format_throughput_sweep
from repro.baselines import taccl_like_schedule
from repro.core import augment_host_nic_bottleneck, solve_timestepped_mcf
from repro.schedule import chunk_timestepped_flow
from repro.simulator import a100_ml_fabric, steady_state_throughput, throughput_sweep
from repro.topology import complete_bipartite, hypercube, torus, twisted_hypercube

FABRIC = a100_ml_fabric()          # 25 Gbps links, store-and-forward


def _upper_bound_row(topology, flow_value, buffers):
    bound = steady_state_throughput(topology.num_nodes, flow_value, FABRIC)

    class _Fake:
        def __init__(self, buf):
            self.buffer_bytes = buf
            self.throughput = bound

    return [_Fake(b) for b in buffers]


def _run_topology(name, topo, buffer_sweep, record, benchmark=None, terminals=None):
    def solve():
        return solve_timestepped_mcf(topo, terminals=terminals)

    ts = benchmark.pedantic(solve, rounds=1, iterations=1) if benchmark is not None else solve()
    link_schedule = chunk_timestepped_flow(ts)
    flow_value = ts.equivalent_concurrent_flow()

    results = {
        "Upper Bound": _upper_bound_row(topo, flow_value, buffer_sweep),
        "tsMCF/G": throughput_sweep(link_schedule, buffer_sweep, fabric=FABRIC),
    }
    if terminals is None:
        taccl = taccl_like_schedule(topo)
        results["TACCL/G"] = throughput_sweep(taccl, buffer_sweep, fabric=FABRIC)
    record("fig3_link_schedules", format_throughput_sweep(
        results, title=f"Fig. 3 ({name}, N={len(terminals) if terminals else topo.num_nodes}): throughput GB/s vs buffer size"))
    return results


def test_fig3_complete_bipartite(benchmark, record, buffer_sweep):
    topo = complete_bipartite(4, 4)
    results = _run_topology("Complete Bipartite", topo, buffer_sweep, record, benchmark)
    mcf = results["tsMCF/G"][-1].throughput
    taccl = results["TACCL/G"][-1].throughput
    bound = results["Upper Bound"][-1].throughput
    assert mcf <= bound * 1.001
    assert mcf >= 0.85 * bound
    assert mcf >= taccl


def test_fig3_hypercube(benchmark, record, buffer_sweep):
    topo = hypercube(3)
    results = _run_topology("3D Hypercube", topo, buffer_sweep, record, benchmark)
    assert results["tsMCF/G"][-1].throughput >= results["TACCL/G"][-1].throughput


def test_fig3_twisted_hypercube(benchmark, record, buffer_sweep):
    topo = twisted_hypercube(3)
    results = _run_topology("3D Twisted Hypercube", topo, buffer_sweep, record, benchmark)
    assert results["tsMCF/G"][-1].throughput >= results["TACCL/G"][-1].throughput


def test_fig3_torus_with_host_bottleneck(benchmark, record, buffer_sweep, scale):
    """Torus column of Fig. 3: tsMCF on the host-NIC-bottleneck augmented graph."""
    dims = [3, 3, 3] if scale == "paper" else [3, 3]
    topo = torus(dims)
    # §5.1 ratio: 100 Gbps injection vs degree * 25 Gbps NIC bandwidth, i.e. the
    # host moves 2/3 of the NIC aggregate (4 link-units at degree 6).
    aug = augment_host_nic_bottleneck(topo, host_bandwidth=topo.degree() * 2.0 / 3.0,
                                      link_bandwidth=1.0)
    results = _run_topology(f"Torus {'x'.join(map(str, dims))} (host bottleneck)",
                            aug.topology, buffer_sweep, record, benchmark,
                            terminals=list(aug.host_nodes()))
    bound = results["Upper Bound"][-1].throughput
    assert results["tsMCF/G"][-1].throughput <= bound * 1.001
