"""Fig. 3: throughput of link-based all-to-all schedules.

Schemes: tsMCF (ours), the TACCL-like surrogate baseline, and the theoretical
upper bound ``(N-1) * f * b``; the SCCL baseline fails to synthesise at these
scales (§5.2), which bench_fig7 demonstrates explicitly.

Topologies: complete bipartite K4,4, 3D hypercube and 3D twisted hypercube
(all N=8, as on the paper's GPU testbed), plus a torus with a host-injection
bottleneck standing in for the 27-node TACC torus (3x3 at the default scale,
3x3x3 with REPRO_BENCH_SCALE=paper).

Each column is one declarative :class:`~repro.experiments.Scenario` executed
through the staged :class:`~repro.experiments.Plan` pipeline — the benchmark
declares topology spec + scheme + fabric + buffers and reads the simulated
series back; the tsMCF column's synthesize stage is what ``benchmark`` times.

Expected shape: tsMCF tracks the upper bound at large buffers and beats the
TACCL surrogate (by ~20-60%); all schemes are latency-bound at small buffers.
"""


from repro.analysis import format_throughput_sweep
from repro.experiments import Plan, Scenario
from repro.simulator import a100_ml_fabric, steady_state_throughput
from repro.topology import from_spec

FABRIC = a100_ml_fabric()          # 25 Gbps links, store-and-forward


def _upper_bound_row(num_terminals, flow_value, buffers):
    bound = steady_state_throughput(num_terminals, flow_value, FABRIC)

    class _Fake:
        def __init__(self, buf):
            self.buffer_bytes = buf
            self.throughput = bound

    return [_Fake(b) for b in buffers]


def _run_topology(name, spec, buffer_sweep, record, benchmark=None, host_bandwidth=None):
    plan = Plan(Scenario(topology=spec, fabric="ml", scheme="tsmcf",
                         host_bandwidth=host_bandwidth, buffers=tuple(buffer_sweep)))
    if benchmark is not None:
        benchmark.pedantic(lambda: plan.run(through="synthesize"), rounds=1, iterations=1)
    ts = plan.run()
    flow_value = ts.concurrent_flow

    # The bound (like the simulated series) is expressed over the graph the
    # schedule runs on — the augmented graph when a host bottleneck applies.
    results = {
        "Upper Bound": _upper_bound_row(ts.schedule.topology.num_nodes, flow_value,
                                        buffer_sweep),
        "tsMCF/G": ts.sim_results,
    }
    if host_bandwidth is None:
        taccl = Plan(Scenario(topology=spec, fabric="ml", scheme="taccl",
                              buffers=tuple(buffer_sweep))).run()
        results["TACCL/G"] = taccl.sim_results
    record("fig3_link_schedules", format_throughput_sweep(
        results, title=f"Fig. 3 ({name}, N={ts.num_terminals}): throughput GB/s vs buffer size"))
    return results


def test_fig3_complete_bipartite(benchmark, record, buffer_sweep):
    results = _run_topology("Complete Bipartite", "bipartite:left=4,right=4",
                            buffer_sweep, record, benchmark)
    mcf = results["tsMCF/G"][-1].throughput
    taccl = results["TACCL/G"][-1].throughput
    bound = results["Upper Bound"][-1].throughput
    assert mcf <= bound * 1.001
    assert mcf >= 0.85 * bound
    assert mcf >= taccl


def test_fig3_hypercube(benchmark, record, buffer_sweep):
    results = _run_topology("3D Hypercube", "hypercube:dim=3", buffer_sweep,
                            record, benchmark)
    assert results["tsMCF/G"][-1].throughput >= results["TACCL/G"][-1].throughput


def test_fig3_twisted_hypercube(benchmark, record, buffer_sweep):
    results = _run_topology("3D Twisted Hypercube", "twisted:dim=3", buffer_sweep,
                            record, benchmark)
    assert results["tsMCF/G"][-1].throughput >= results["TACCL/G"][-1].throughput


def test_fig3_torus_with_host_bottleneck(benchmark, record, buffer_sweep, scale):
    """Torus column of Fig. 3: tsMCF on the host-NIC-bottleneck augmented graph."""
    dims = "3x3x3" if scale == "paper" else "3x3"
    spec = f"torus:dims={dims}"
    # §5.1 ratio: 100 Gbps injection vs degree * 25 Gbps NIC bandwidth, i.e. the
    # host moves 2/3 of the NIC aggregate (4 link-units at degree 6).
    host_bandwidth = from_spec(spec).degree() * 2.0 / 3.0
    results = _run_topology(f"Torus {dims} (host bottleneck)", spec, buffer_sweep,
                            record, benchmark, host_bandwidth=host_bandwidth)
    bound = results["Upper Bound"][-1].throughput
    assert results["tsMCF/G"][-1].throughput <= bound * 1.001
