"""Fig. 3: throughput of link-based all-to-all schedules.

Schemes: tsMCF (ours), the TACCL-like surrogate baseline, and the theoretical
upper bound ``(N-1) * f * b``; the SCCL baseline fails to synthesise at these
scales (§5.2), which bench_fig7 demonstrates explicitly.

Topologies: complete bipartite K4,4, 3D hypercube and 3D twisted hypercube
(all N=8, as on the paper's GPU testbed), plus a torus with a host-injection
bottleneck standing in for the 27-node TACC torus (3x3 at the default scale,
3x3x3 with REPRO_BENCH_SCALE=paper).

Each panel is declared once in :data:`repro.report.specs.FIG3` — the same
spec ``repro report`` renders — and executed here through
:func:`repro.report.specs.run_panel`, which drives the staged
:class:`~repro.experiments.Plan` pipeline and reproduces the pre-registry
result tables byte-for-byte; the tsMCF synthesize stage is what ``benchmark``
times.

Expected shape: tsMCF tracks the upper bound at large buffers and beats the
TACCL surrogate (by ~20-60%); all schemes are latency-bound at small buffers.
"""

from repro.report.specs import FIG3, run_panel


def _run_panel(key, buffer_sweep, record, bench_timer, scale="small"):
    data = run_panel(FIG3, FIG3.panel(key, scale=scale), buffers=buffer_sweep,
                     timer=bench_timer)
    record("fig3_link_schedules", data.tables[0].text)
    return data.series


def test_fig3_complete_bipartite(bench_timer, record, buffer_sweep):
    results = _run_panel("bipartite", buffer_sweep, record, bench_timer)
    mcf = results["tsMCF/G"][-1].throughput
    taccl = results["TACCL/G"][-1].throughput
    bound = results["Upper Bound"][-1].throughput
    assert mcf <= bound * 1.001
    assert mcf >= 0.85 * bound
    assert mcf >= taccl


def test_fig3_hypercube(bench_timer, record, buffer_sweep):
    results = _run_panel("hypercube", buffer_sweep, record, bench_timer)
    assert results["tsMCF/G"][-1].throughput >= results["TACCL/G"][-1].throughput


def test_fig3_twisted_hypercube(bench_timer, record, buffer_sweep):
    results = _run_panel("twisted", buffer_sweep, record, bench_timer)
    assert results["tsMCF/G"][-1].throughput >= results["TACCL/G"][-1].throughput


def test_fig3_torus_with_host_bottleneck(bench_timer, record, buffer_sweep, scale):
    """Torus column of Fig. 3: tsMCF on the host-NIC-bottleneck augmented graph."""
    results = _run_panel("torus", buffer_sweep, record, bench_timer, scale=scale)
    bound = results["Upper Bound"][-1].throughput
    assert results["tsMCF/G"][-1].throughput <= bound * 1.001
