"""Table 1: HPC vs ML accelerator fabric models.

Reproduces the qualitative comparison of Table 1 as concrete fabric-model
parameters and measures the simulator's throughput for the same schedule under
both models (forwarding bandwidth vs none), which is the quantitative content
behind the table's "Forwarding BW >= B vs = B" row.
"""


from repro.analysis import format_table
from repro.engine.cache import SolutionCache
from repro.experiments import Plan, Scenario
from repro.simulator import a100_ml_fabric, cerio_hpc_fabric


def test_table1_fabric_models(benchmark, record):
    hpc = cerio_hpc_fabric()
    ml = a100_ml_fabric()

    rows = [
        ["Schedules", "Path-based", "Link-based"],
        ["Topology focus", "Bisection bandwidth", "Node bandwidth"],
        ["Flow control", "Cut-through", "Store-and-forward"],
        ["NIC forwarding", str(hpc.nic_forwarding), str(ml.nic_forwarding)],
        ["Link bandwidth (GB/s)", f"{hpc.link_bandwidth / 1e9:.3f}", f"{ml.link_bandwidth / 1e9:.3f}"],
        ["Injection BW (GB/s)",
         f"{(hpc.injection_bandwidth or 0) / 1e9:.3f}",
         "= d*b" if ml.injection_bandwidth is None else f"{ml.injection_bandwidth / 1e9:.3f}"],
        ["Forwarding BW (GB/s)",
         f"{(hpc.forwarding_bandwidth or 0) / 1e9:.3f}", "= injection"],
        ["Per-step latency (us)", f"{hpc.per_step_latency * 1e6:.1f}", f"{ml.per_step_latency * 1e6:.1f}"],
    ]
    record("table1_fabrics", format_table(
        ["Property", "HPC (Cerio-like)", "ML accelerator (A100-like)"], rows,
        title="Table 1: fabric models used by the simulator"))

    # Quantify the forwarding-bandwidth effect: the same path schedule on a
    # 3x3 torus is faster when the NIC fabric has extra forwarding bandwidth.
    # Two declarative scenarios differing only in the fabric spec: they share
    # the synthesize/lower stage keys, so through a (local, benchmark-scoped)
    # stage cache the second scenario reuses the first one's schedule instead
    # of re-solving the MCF.  Local because the session conftest disables the
    # global caches; the timed first run still starts cold.
    buf = 2 ** 26
    stage_cache = SolutionCache(suffix=".stage.pkl", payload_type=object)
    full = Plan(Scenario(topology="torus:dims=3x3", scheme="mcf-extp",
                         fabric="hpc", buffers=(buf,)), cache=stage_cache)
    benchmark.pedantic(lambda: full.run(through="lower"), rounds=1, iterations=1)
    hpc_tp = full.run().sim_results[0].throughput
    capped = Plan(Scenario(topology="torus:dims=3x3", scheme="mcf-extp",
                           fabric="hpc:forwarding_gbps=100",   # capped at injection
                           buffers=(buf,)), cache=stage_cache)
    capped_result = capped.run()
    assert capped_result.stage_cache["synthesize"] == "hit"    # shared, not re-solved
    capped_tp = capped_result.sim_results[0].throughput
    record("table1_fabrics", format_table(
        ["fabric", "throughput GB/s"],
        [["forwarding 300 Gbps", hpc_tp / 1e9], ["forwarding 100 Gbps", capped_tp / 1e9]],
        title="Forwarding-bandwidth effect (same MCF-extP schedule, 3x3 torus, 64 MiB)"))
    assert hpc_tp >= capped_tp
