"""Table 1: HPC vs ML accelerator fabric models.

Reproduces the qualitative comparison of Table 1 as concrete fabric-model
parameters and measures the simulator's throughput for the same schedule under
both models (forwarding bandwidth vs none), which is the quantitative content
behind the table's "Forwarding BW >= B vs = B" row.

Both tables are declared in :data:`repro.report.specs.TABLE1` — the same spec
``repro report`` renders — and regenerated here byte-identically through
:func:`repro.report.specs.run_panel`.
"""

from repro.engine.cache import SolutionCache
from repro.report.specs import TABLE1, run_panel


def test_table1_fabric_models(bench_timer, record):
    record("table1_fabrics", TABLE1.static_table().text)

    # Quantify the forwarding-bandwidth effect: the same path schedule on a
    # 3x3 torus under two forwarding-bandwidth settings.  The two scenarios
    # differ only in the fabric spec, so they share the synthesize/lower stage
    # keys and — through a local, benchmark-scoped stage cache — the second
    # reuses the first one's schedule instead of re-solving the MCF.  Local
    # because the session conftest disables the global caches; the timed
    # first run (through the lower stage) still starts cold.
    stage_cache = SolutionCache(suffix=".stage.pkl", payload_type=object)
    data = run_panel(TABLE1, TABLE1.panel("forwarding"), cache=stage_cache,
                     timer=bench_timer)
    assert data.results["forwarding 100 Gbps"].stage_cache["synthesize"] == "hit"
    record("table1_fabrics", data.tables[-1].text)
    hpc_tp = data.series["forwarding 300 Gbps"][0].throughput
    capped_tp = data.series["forwarding 100 Gbps"][0].throughput
    assert hpc_tp >= capped_tp
