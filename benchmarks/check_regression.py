"""Perf-regression gate: compare a BENCH_*.json run against a baseline.

Usage::

    python benchmarks/check_regression.py [CURRENT] [BASELINE]

defaulting to ``benchmarks/results/BENCH_runtime.json`` vs
``benchmarks/baseline.json``.  The schema of both files is documented in
``benchmarks/conftest.py``.

Gate rules (see also the conftest docstring):

* every ``*_seconds`` phase present in both files is compared; a phase is a
  regression when ``current > max_slowdown * baseline`` (default 2.0,
  override with ``REPRO_BENCH_MAX_SLOWDOWN``);
* baseline phases faster than ``MIN_GATED_SECONDS`` (250 ms) are
  informational only — at that magnitude timer and scheduler noise (and
  runner-to-runner hardware variance) routinely exceeds the gate ratio;
* ``objective`` values must match the baseline within ``FLOW_TOL`` — a drift
  means the refactor changed the LP, not just its speed;
* series/size entries missing from the current run fail (a benchmark that
  silently stopped covering a size is a regression too); entries new in the
  current run are reported and pass.

Exit status: 0 when the gate passes, 1 on any regression, 2 on bad input.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

MIN_GATED_SECONDS = 0.25
FLOW_TOL = 1e-6  # mirrors repro.constants.FLOW_TOL without importing the package


def load(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    if payload.get("schema_version") != 1 or "series" not in payload:
        print(f"error: {path} is not a schema-version-1 BENCH file",
              file=sys.stderr)
        sys.exit(2)
    return payload


def main(argv) -> int:
    root = Path(__file__).parent
    current_path = Path(argv[1]) if len(argv) > 1 else (
        root / "results" / "BENCH_runtime.json")
    baseline_path = Path(argv[2]) if len(argv) > 2 else root / "baseline.json"
    max_slowdown = float(os.environ.get("REPRO_BENCH_MAX_SLOWDOWN", "2.0"))

    current = load(current_path)
    baseline = load(baseline_path)
    if current.get("scale") != baseline.get("scale"):
        print(f"error: scale mismatch: current={current.get('scale')!r} "
              f"baseline={baseline.get('scale')!r}", file=sys.stderr)
        return 2

    failures = []
    notes = []
    for alg, base_sizes in baseline["series"].items():
        cur_sizes = current["series"].get(alg)
        if cur_sizes is None:
            failures.append(f"series {alg!r} missing from current run")
            continue
        for size, base_phases in base_sizes.items():
            cur_phases = cur_sizes.get(size)
            if cur_phases is None:
                failures.append(f"{alg} N={size} missing from current run")
                continue
            base_obj = base_phases.get("objective")
            cur_obj = cur_phases.get("objective")
            if base_obj is not None and cur_obj is not None and \
                    abs(cur_obj - base_obj) > FLOW_TOL:
                failures.append(f"{alg} N={size}: objective drifted "
                                f"{base_obj} -> {cur_obj}")
            for phase, base_val in base_phases.items():
                if not phase.endswith("_seconds"):
                    continue
                cur_val = cur_phases.get(phase)
                if cur_val is None:
                    failures.append(f"{alg} N={size}: phase {phase} missing")
                    continue
                ratio = cur_val / base_val if base_val > 0 else float("inf")
                line = (f"{alg} N={size} {phase}: "
                        f"{base_val:.3f}s -> {cur_val:.3f}s ({ratio:.2f}x)")
                if base_val < MIN_GATED_SECONDS:
                    notes.append(line + " [below gate floor]")
                elif cur_val > max_slowdown * base_val:
                    failures.append(line + f" exceeds {max_slowdown:.1f}x gate")
                else:
                    notes.append(line)
    for alg, cur_sizes in current["series"].items():
        base_sizes = baseline["series"].get(alg, {})
        for size in cur_sizes:
            if size not in base_sizes:
                notes.append(f"{alg} N={size}: new entry (not gated)")

    for line in notes:
        print(f"  ok: {line}")
    if failures:
        print(f"\nperf gate FAILED ({len(failures)} regression(s) vs "
              f"{baseline_path.name}, slowdown gate {max_slowdown:.1f}x):")
        for line in failures:
            print(f"  FAIL: {line}")
        return 1
    print(f"\nperf gate passed vs {baseline_path.name} "
          f"(slowdown gate {max_slowdown:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
