"""Fill-kernel benchmark: JIT CSR kernel vs the vectorized numpy fallback.

Times raw :func:`repro.simulator.engine.fill_rates` throughput on the same
992-flow all-to-all program as ``bench_sim.py`` (every commodity of a
degree-4 random regular graph on 32 nodes, Cerio-like HPC fabric), driving
each kernel through one shared :class:`~repro.perf.FillWorkspace` across a
deterministic sequence of active-flow masks — the exact shape of the
engine's per-event refills.

Asserted acceptance gates:

* every kernel's rates agree with the numpy path within 1e-9 and the full
  simulation agrees with the scalar ``reference.py`` oracle within 1e-9;
* with numba installed, the JIT kernel is at least 5x faster than the
  numpy path (skipped, not failed, where numba is absent — the fallback
  is the point of the auto-selection).

Machine-readable output lands in ``results/BENCH_kernel.json``
(``objective`` is the deterministic simulated completion time).  The CI
``perf-kernels`` job uploads it and gates it against
``benchmarks/baseline_kernel.json`` via ``check_regression.py``; the
committed baseline carries the numpy series only, so the numba series
reports as a new (ungated) entry on runners that have the compiler.
"""

import random
import time

import networkx as nx
import numpy as np

from repro.analysis import format_table
from repro.perf import (
    FillWorkspace,
    fill_rates_csr,
    fill_rates_numpy,
    numba_available,
    set_fill_kernel,
)
from repro.simulator import (
    FluidFlow,
    cerio_hpc_fabric,
    compile_flows,
    simulate_flows,
    simulate_flows_reference,
)
from repro.topology import random_regular

MIN_JIT_SPEEDUP = 5.0
FILL_REPS = 30


def _alltoall_flows(topo, seed=3):
    """One flow per commodity along a shortest path, sizes varying 1..13 x 64KiB."""
    rng = random.Random(seed)
    paths = dict(nx.all_pairs_shortest_path(topo.graph))
    flows = []
    for s in topo.nodes:
        dests = [d for d in topo.nodes if d != s]
        rng.shuffle(dests)
        for k, d in enumerate(dests):
            size = float((k % 13 + 1) * 2 ** 16)
            flows.append(FluidFlow(path=tuple(paths[s][d]), size_bytes=size))
    return flows


def _active_masks(num_flows, reps):
    """Deterministic shrinking active sets, like execute() between events."""
    rng = random.Random(17)
    masks = []
    active = np.ones(num_flows, dtype=bool)
    for _ in range(reps):
        masks.append(active.copy())
        done = rng.sample(range(num_flows), max(1, num_flows // (2 * reps)))
        active = active.copy()
        active[done] = False
    return masks


def _time_fills(fill, program, masks):
    """Total seconds for one pass over ``masks`` with a shared workspace."""
    workspace = FillWorkspace(program)
    fill(program, masks[0], workspace)  # warm-up (JIT compile, caches)
    start = time.perf_counter()
    rounds = 0
    for mask in masks:
        _, r = fill(program, mask, workspace)
        rounds += r
    return time.perf_counter() - start, rounds


def test_fill_kernel_throughput(record, record_json, scale):
    """992-flow fill throughput: numba >= 5x numpy; all kernels agree."""
    n = 64 if scale == "paper" else 32
    topo = random_regular(4, n, seed=3)
    fabric = cerio_hpc_fabric()
    flows = _alltoall_flows(topo)
    program = compile_flows(topo, flows, fabric)
    masks = _active_masks(program.num_flows, FILL_REPS)

    # Differential gate across kernels on every mask (copies: the shared
    # workspace reuses the rate buffer).
    check_ws = FillWorkspace(program)
    for mask in masks[:: max(1, FILL_REPS // 6)]:
        base, base_rounds = fill_rates_numpy(program, mask)
        csr, csr_rounds = fill_rates_csr(program, mask, check_ws)
        np.testing.assert_allclose(csr, base, rtol=1e-9, atol=1e-9)
        assert csr_rounds == base_rounds

    numpy_seconds, numpy_rounds = _time_fills(fill_rates_numpy, program, masks)
    series = {
        "numpy": {program.num_flows: {
            "fill_seconds": numpy_seconds,
            "fills_per_sec": len(masks) / numpy_seconds,
            "fill_rounds": numpy_rounds,
            "objective": 0.0,  # filled below from the simulation
        }},
    }
    rows = [["numpy (vectorized)", numpy_seconds,
             len(masks) / numpy_seconds, 1.0]]

    speedup = None
    if numba_available():
        numba_seconds, numba_rounds = _time_fills(
            fill_rates_csr, program, masks)
        assert numba_rounds == numpy_rounds
        speedup = numpy_seconds / numba_seconds
        series["numba"] = {program.num_flows: {
            "fill_seconds": numba_seconds,
            "fills_per_sec": len(masks) / numba_seconds,
            "fill_rounds": numba_rounds,
            "objective": 0.0,
        }}
        rows.insert(0, ["numba (JIT CSR)", numba_seconds,
                        len(masks) / numba_seconds, speedup])

    # End-to-end agreement with the scalar oracle under each kernel; the
    # deterministic completion time is the recorded objective.
    reference = simulate_flows_reference(topo, flows, fabric)
    for kernel in series:
        set_fill_kernel(kernel)
        try:
            sim = simulate_flows(topo, flows, fabric)
        finally:
            set_fill_kernel(None)
        assert abs(sim.completion_time - reference.completion_time) <= 1e-9
        for a, b in zip(sim.flow_completion_times,
                        reference.flow_completion_times):
            assert abs(a - b) <= 1e-9
        series[kernel][program.num_flows]["objective"] = sim.completion_time

    record_json("kernel", series)
    record("kernel", format_table(
        ["kernel", f"{len(masks)} fills (s)", "fills/s", "speedup vs numpy"],
        rows,
        title=(f"Fill kernel: {program.num_flows}-flow all-to-all on "
               f"rrg:d=4,n={n} (numba "
               f"{'available' if numba_available() else 'absent'})")))

    if speedup is not None:
        assert speedup >= MIN_JIT_SPEEDUP, (
            f"JIT fill kernel only {speedup:.1f}x faster than numpy "
            f"(gate: {MIN_JIT_SPEEDUP:.0f}x)")
