"""Fig. 4: throughput of path-based (routed) all-to-all schedules.

Schemes: MCF-extP (ours), ILP-disjoint, EwSP, SSSP, DOR (torus only) and the
NCCL/OMPI-native single-path baseline; plus the theoretical upper bound.
Executed on the cut-through fluid simulator with the Cerio-like fabric
(forwarding bandwidth above injection bandwidth), so path-based schedules can
exploit the extra forwarding bandwidth.

Every panel is declared once in :data:`repro.report.specs.FIG4` (topology
spec x scheme x chunking denominator x buffer sweep) — the same spec
``repro report`` renders — and executed here through
:func:`repro.report.specs.run_panel` with byte-identical result tables; the
MCF-extP synthesize stage is what ``benchmark`` times.

Expected shape (paper §5.2): MCF-extP tracks the upper bound; it beats the
native baseline by up to ~2.3x on the complete bipartite topology and beats
SSSP clearly on the torus; ILP-disjoint is competitive on tori but not on the
bipartite topology; DOR matches ILP-disjoint on the torus.
"""

import pytest

from repro.report.specs import FIG4, run_panel


def _run_panel(key, buffer_sweep, record, bench_timer, scale="small"):
    data = run_panel(FIG4, FIG4.panel(key, scale=scale), buffers=buffer_sweep,
                     timer=bench_timer)
    record("fig4_path_schedules", data.tables[0].text)
    return data.series


def test_fig4_complete_bipartite(bench_timer, record, buffer_sweep):
    results = _run_panel("bipartite", buffer_sweep, record, bench_timer)
    large = -1
    mcf = results["MCF-extP/C"][large].throughput
    assert mcf >= results["ILP-disjoint/C"][large].throughput - 1e6
    assert mcf >= 1.5 * results["NCCL-native/G"][large].throughput
    assert mcf >= 0.8 * results["Upper Bound"][large].throughput


def test_fig4_hypercube(bench_timer, record, buffer_sweep):
    results = _run_panel("hypercube", buffer_sweep, record, bench_timer)
    assert results["MCF-extP/C"][-1].throughput >= 0.8 * results["Upper Bound"][-1].throughput


def test_fig4_twisted_hypercube(bench_timer, record, buffer_sweep):
    results = _run_panel("twisted", buffer_sweep, record, bench_timer)
    assert results["MCF-extP/C"][-1].throughput >= 0.8 * results["Upper Bound"][-1].throughput


def test_fig4_torus(bench_timer, record, buffer_sweep, scale):
    results = _run_panel("torus", buffer_sweep, record, bench_timer, scale=scale)
    large = -1
    mcf = results["MCF-extP/C"][large].throughput
    assert mcf >= results["SSSP/C"][large].throughput
    assert mcf >= results["OMPI-native/C"][large].throughput
    # DOR is bandwidth-optimal on the symmetric torus: MCF matches it closely.
    assert mcf == pytest.approx(results["DOR/C"][large].throughput, rel=0.15)
