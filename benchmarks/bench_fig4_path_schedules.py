"""Fig. 4: throughput of path-based (routed) all-to-all schedules.

Schemes: MCF-extP (ours), ILP-disjoint, EwSP, SSSP, DOR (torus only) and the
NCCL/OMPI-native single-path baseline; plus the theoretical upper bound.
Executed on the cut-through fluid simulator with the Cerio-like fabric
(forwarding bandwidth above injection bandwidth), so path-based schedules can
exploit the extra forwarding bandwidth.

Every column is one declarative :class:`~repro.experiments.Scenario`
(topology spec x scheme x chunking denominator x buffer sweep) executed
through the staged :class:`~repro.experiments.Plan` pipeline; the MCF-extP
synthesize stage is what ``benchmark`` times.

Expected shape (paper §5.2): MCF-extP tracks the upper bound; it beats the
native baseline by up to ~2.3x on the complete bipartite topology and beats
SSSP clearly on the torus; ILP-disjoint is competitive on tori but not on the
bipartite topology; DOR matches ILP-disjoint on the torus.
"""

import pytest

from repro.analysis import format_throughput_sweep
from repro.experiments import Plan, Scenario
from repro.simulator import cerio_hpc_fabric, steady_state_throughput
from repro.topology import from_spec

FABRIC = cerio_hpc_fabric()
MAX_DENOM = 16


class _Bound:
    def __init__(self, buf, tp):
        self.buffer_bytes = buf
        self.throughput = tp


def _scenario(spec, scheme, buffer_sweep, scheme_params=None):
    return Scenario(topology=spec, scheme=scheme,
                    scheme_params=scheme_params or {}, fabric="hpc",
                    max_denominator=MAX_DENOM, buffers=tuple(buffer_sweep))


def _run(name, spec, schemes, buffer_sweep, record, benchmark=None):
    results = {}
    optimal_flow = None
    for label, (scheme, params) in schemes.items():
        plan = Plan(_scenario(spec, scheme, buffer_sweep, params))
        if label == "MCF-extP/C" and benchmark is not None:
            benchmark.pedantic(lambda: plan.run(through="synthesize"),
                               rounds=1, iterations=1)
        done = plan.run()
        if label == "MCF-extP/C":
            optimal_flow = done.concurrent_flow
        results[label] = done.sim_results
    topo = from_spec(spec)
    bound = steady_state_throughput(topo.num_nodes, optimal_flow, FABRIC)
    results = {"Upper Bound": [_Bound(b, bound) for b in buffer_sweep], **results}
    record("fig4_path_schedules", format_throughput_sweep(
        results, title=f"Fig. 4 ({name}, N={topo.num_nodes}): throughput GB/s vs buffer size"))
    return results


def test_fig4_complete_bipartite(benchmark, record, buffer_sweep):
    schemes = {
        "MCF-extP/C": ("mcf-extp", None),
        "ILP-disjoint/C": ("ilp-disjoint", None),
        "EwSP/C": ("ewsp", None),
        "NCCL-native/G": ("native", None),
    }
    results = _run("Complete Bipartite", "bipartite:left=4,right=4", schemes,
                   buffer_sweep, record, benchmark)
    large = -1
    mcf = results["MCF-extP/C"][large].throughput
    assert mcf >= results["ILP-disjoint/C"][large].throughput - 1e6
    assert mcf >= 1.5 * results["NCCL-native/G"][large].throughput
    assert mcf >= 0.8 * results["Upper Bound"][large].throughput


def test_fig4_hypercube(benchmark, record, buffer_sweep):
    schemes = {
        "MCF-extP/C": ("mcf-extp", None),
        "ILP-disjoint/C": ("ilp-disjoint", None),
        "EwSP/C": ("ewsp", None),
        "SSSP/C": ("sssp", None),
    }
    results = _run("3D Hypercube", "hypercube:dim=3", schemes, buffer_sweep,
                   record, benchmark)
    assert results["MCF-extP/C"][-1].throughput >= 0.8 * results["Upper Bound"][-1].throughput


def test_fig4_twisted_hypercube(benchmark, record, buffer_sweep):
    schemes = {
        "MCF-extP/C": ("mcf-extp", None),
        "EwSP/C": ("ewsp", None),
        "SSSP/C": ("sssp", None),
    }
    results = _run("3D Twisted Hypercube", "twisted:dim=3", schemes, buffer_sweep,
                   record, benchmark)
    assert results["MCF-extP/C"][-1].throughput >= 0.8 * results["Upper Bound"][-1].throughput


def test_fig4_torus(benchmark, record, buffer_sweep, scale):
    dims = "3x3x3" if scale == "paper" else "3x3"
    schemes = {
        "MCF-extP/C": ("mcf-extp", None),
        "ILP-disjoint/C": ("ilp-disjoint", {"mip_rel_gap": 0.05, "time_limit": 120}),
        "DOR/C": ("dor", None),
        "SSSP/C": ("sssp", None),
        "EwSP/C": ("ewsp", None),
        "OMPI-native/C": ("native", None),
    }
    results = _run(f"Torus {dims}", f"torus:dims={dims}", schemes, buffer_sweep,
                   record, benchmark)
    large = -1
    mcf = results["MCF-extP/C"][large].throughput
    assert mcf >= results["SSSP/C"][large].throughput
    assert mcf >= results["OMPI-native/C"][large].throughput
    # DOR is bandwidth-optimal on the symmetric torus: MCF matches it closely.
    assert mcf == pytest.approx(results["DOR/C"][large].throughput, rel=0.15)
