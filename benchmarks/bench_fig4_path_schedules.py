"""Fig. 4: throughput of path-based (routed) all-to-all schedules.

Schemes: MCF-extP (ours), ILP-disjoint, EwSP, SSSP, DOR (torus only) and the
NCCL/OMPI-native single-path baseline; plus the theoretical upper bound.
Executed on the cut-through fluid simulator with the Cerio-like fabric
(forwarding bandwidth above injection bandwidth), so path-based schedules can
exploit the extra forwarding bandwidth.

Expected shape (paper §5.2): MCF-extP tracks the upper bound; it beats the
native baseline by up to ~2.3x on the complete bipartite topology and beats
SSSP clearly on the torus; ILP-disjoint is competitive on tori but not on the
bipartite topology; DOR matches ILP-disjoint on the torus.
"""

import pytest

from repro.analysis import format_throughput_sweep
from repro.baselines import ilp_disjoint_schedule, native_alltoall_schedule
from repro.core import solve_mcf_extract_paths
from repro.paths import dor_schedule, ewsp_schedule, sssp_schedule
from repro.schedule import chunk_path_schedule
from repro.simulator import cerio_hpc_fabric, steady_state_throughput, throughput_sweep
from repro.topology import complete_bipartite, hypercube, torus, twisted_hypercube

FABRIC = cerio_hpc_fabric()
MAX_DENOM = 16


class _Bound:
    def __init__(self, buf, tp):
        self.buffer_bytes = buf
        self.throughput = tp


def _sweep(schedule, buffers):
    return throughput_sweep(chunk_path_schedule(schedule, max_denominator=MAX_DENOM),
                            buffers, fabric=FABRIC)


def _run(name, topo, schemes, buffer_sweep, record, benchmark=None):
    results = {}
    optimal_flow = None
    for label, make in schemes.items():
        if label == "MCF-extP/C" and benchmark is not None:
            schedule = benchmark.pedantic(make, rounds=1, iterations=1)
        else:
            schedule = make()
        if label == "MCF-extP/C":
            optimal_flow = schedule.concurrent_flow
        results[label] = _sweep(schedule, buffer_sweep)
    bound = steady_state_throughput(topo.num_nodes, optimal_flow, FABRIC)
    results = {"Upper Bound": [_Bound(b, bound) for b in buffer_sweep], **results}
    record("fig4_path_schedules", format_throughput_sweep(
        results, title=f"Fig. 4 ({name}, N={topo.num_nodes}): throughput GB/s vs buffer size"))
    return results


def test_fig4_complete_bipartite(benchmark, record, buffer_sweep):
    topo = complete_bipartite(4, 4)
    schemes = {
        "MCF-extP/C": lambda: solve_mcf_extract_paths(topo),
        "ILP-disjoint/C": lambda: ilp_disjoint_schedule(topo),
        "EwSP/C": lambda: ewsp_schedule(topo),
        "NCCL-native/G": lambda: native_alltoall_schedule(topo),
    }
    results = _run("Complete Bipartite", topo, schemes, buffer_sweep, record, benchmark)
    large = -1
    mcf = results["MCF-extP/C"][large].throughput
    assert mcf >= results["ILP-disjoint/C"][large].throughput - 1e6
    assert mcf >= 1.5 * results["NCCL-native/G"][large].throughput
    assert mcf >= 0.8 * results["Upper Bound"][large].throughput


def test_fig4_hypercube(benchmark, record, buffer_sweep):
    topo = hypercube(3)
    schemes = {
        "MCF-extP/C": lambda: solve_mcf_extract_paths(topo),
        "ILP-disjoint/C": lambda: ilp_disjoint_schedule(topo),
        "EwSP/C": lambda: ewsp_schedule(topo),
        "SSSP/C": lambda: sssp_schedule(topo),
    }
    results = _run("3D Hypercube", topo, schemes, buffer_sweep, record, benchmark)
    assert results["MCF-extP/C"][-1].throughput >= 0.8 * results["Upper Bound"][-1].throughput


def test_fig4_twisted_hypercube(benchmark, record, buffer_sweep):
    topo = twisted_hypercube(3)
    schemes = {
        "MCF-extP/C": lambda: solve_mcf_extract_paths(topo),
        "EwSP/C": lambda: ewsp_schedule(topo),
        "SSSP/C": lambda: sssp_schedule(topo),
    }
    results = _run("3D Twisted Hypercube", topo, schemes, buffer_sweep, record, benchmark)
    assert results["MCF-extP/C"][-1].throughput >= 0.8 * results["Upper Bound"][-1].throughput


def test_fig4_torus(benchmark, record, buffer_sweep, scale):
    dims = [3, 3, 3] if scale == "paper" else [3, 3]
    topo = torus(dims)
    schemes = {
        "MCF-extP/C": lambda: solve_mcf_extract_paths(topo),
        "ILP-disjoint/C": lambda: ilp_disjoint_schedule(topo, mip_rel_gap=0.05, time_limit=120),
        "DOR/C": lambda: dor_schedule(topo),
        "SSSP/C": lambda: sssp_schedule(topo),
        "EwSP/C": lambda: ewsp_schedule(topo),
        "OMPI-native/C": lambda: native_alltoall_schedule(topo),
    }
    results = _run(f"Torus {'x'.join(map(str, dims))}", topo, schemes, buffer_sweep,
                   record, benchmark)
    large = -1
    mcf = results["MCF-extP/C"][large].throughput
    assert mcf >= results["SSSP/C"][large].throughput
    assert mcf >= results["OMPI-native/C"][large].throughput
    # DOR is bandwidth-optimal on the symmetric torus: MCF matches it closely.
    assert mcf == pytest.approx(results["DOR/C"][large].throughput, rel=0.15)
