"""Fig. 7: schedule-generation (algorithm) runtime scaling on GenKautz graphs.

Measures wall-clock synthesis time versus network size N (degree-4 generalized
Kautz graphs) for:

* MCF-original  -- the monolithic link-based LP (O(N^3) variables),
* MCF-decomp    -- master LP + N child LPs + widest-path extraction, with the
                   master / child / extraction breakdown the figure shows,
* 5% FPTAS      -- the Fleischer/Karakostas-style approximation,
* ILP-disjoint  -- the NP-hard single-path baseline,
* TACCL-like    -- the heuristic synthesiser surrogate,
* SCCL-like     -- the exhaustive synthesiser surrogate (times out at tiny N).

Expected shape: MCF-decomp scales polynomially and is orders of magnitude
faster than MCF-original / FPTAS / ILP at equal N; SCCL fails outright;
the decomposed runtime is dominated by the master LP.

The N sweep is scaled down from the paper's 1000 nodes (see conftest); the
separation between the curves is already decisive at these sizes.
"""

import time


from repro.analysis import format_table
from repro.baselines import (
    SynthesisTimeout,
    fptas_max_concurrent_flow,
    ilp_disjoint_schedule,
    sccl_like_schedule,
    taccl_like_schedule,
)
from repro.core import extract_paths, solve_decomposed_mcf, solve_link_mcf
from repro.topology import generalized_kautz

DEGREE = 4


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_fig7_lp_phase_breakdown(benchmark, record, record_json, scale):
    """Fig. 7 companion: per-phase LP timings, machine-readable.

    Runs the monolithic and decomposed MCF on GenKautz graphs and records
    assembly / solve / extraction wall-clock (plus the optimal objective) per
    topology size into ``results/BENCH_runtime.json`` — the series the CI
    perf-smoke job uploads and gates against ``benchmarks/baseline.json``.
    Sizes are chosen so the whole sweep stays around a CI-friendly minute at
    the default small scale.
    """
    if scale == "paper":
        link_sizes = [20, 50, 100]
        decomp_sizes = [20, 50, 100, 200]
    else:
        link_sizes = [12, 16]
        decomp_sizes = [12, 20, 32]

    series = {"mcf-link": {}, "mcf-decomposed": {}}

    def run_sweep():
        for n in link_sizes:
            topo = generalized_kautz(DEGREE, n)
            sol, total = _timed(lambda: solve_link_mcf(topo, repair=False))
            eng = sol.meta["engine"]
            assemble = float(eng.get("assemble_seconds", 0.0))
            solve = float(eng.get("solve_seconds", 0.0))
            series["mcf-link"][n] = {
                "assemble_seconds": assemble,
                "solve_seconds": solve,
                "extract_seconds": max(total - assemble - solve, 0.0),
                "total_seconds": total,
                "objective": sol.concurrent_flow,
            }
        for n in decomp_sizes:
            topo = generalized_kautz(DEGREE, n)
            sol, total = _timed(lambda: solve_decomposed_mcf(topo, repair=False))
            eng = sol.meta["master_engine"]
            timings = sol.meta["timings"]
            assemble = float(eng.get("assemble_seconds", 0.0))
            solve = float(eng.get("solve_seconds", 0.0))
            children = float(sum(timings.child_seconds_each))
            series["mcf-decomposed"][n] = {
                "assemble_seconds": assemble,
                "solve_seconds": solve,
                "children_seconds": children,
                "extract_seconds": max(total - assemble - solve - children, 0.0),
                "total_seconds": total,
                "objective": sol.concurrent_flow,
            }

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record_json("runtime", series)
    record("fig7_phase_breakdown", format_table(
        ["algorithm", "N", "assemble (s)", "solve (s)", "total (s)", "F"],
        [[alg, n, f"{p['assemble_seconds']:.3f}", f"{p['solve_seconds']:.3f}",
          f"{p['total_seconds']:.3f}", f"{p['objective']:.6f}"]
         for alg, sizes in series.items() for n, p in sizes.items()],
        title="Fig. 7 companion: LP phase breakdown (GenKautz, degree 4)"))

    # Vectorized block assembly must stay a small fraction of total runtime:
    # the seed's per-key assembly path took longer than the HiGHS solve at
    # these sizes; the block path must never dominate again.
    for alg, sizes in series.items():
        for n, p in sizes.items():
            assert p["assemble_seconds"] < max(0.25, 0.5 * p["total_seconds"]), \
                f"{alg} N={n}: assembly {p['assemble_seconds']:.3f}s dominates"
    # Both formulations must agree on the optimum at the shared sizes.
    for n in set(link_sizes) & set(decomp_sizes):
        link_f = series["mcf-link"][n]["objective"]
        decomp_f = series["mcf-decomposed"][n]["objective"]
        assert abs(link_f - decomp_f) < 1e-6, \
            f"N={n}: link F={link_f} != decomposed F={decomp_f}"


def test_fig7_runtime_scaling(benchmark, record, scale):
    if scale == "paper":
        decomp_sizes = [20, 50, 100, 200, 400]
        original_sizes = [20, 50, 100]
        fptas_sizes = [20, 50]
        ilp_sizes = [20, 44]
        taccl_sizes = [20, 50, 100]
    else:
        decomp_sizes = [12, 20, 32, 48, 64]
        original_sizes = [12, 20, 28]
        fptas_sizes = [12, 20]
        ilp_sizes = [12, 20, 28]
        taccl_sizes = [12, 20, 32]

    rows = []

    def run_sweep():
        # Decomposed MCF with breakdown (the headline curve).
        for n in decomp_sizes:
            topo = generalized_kautz(DEGREE, n)
            sol, total = _timed(lambda: solve_decomposed_mcf(topo))
            timings = sol.meta["timings"]
            _, extract_seconds = _timed(lambda: extract_paths(sol))
            rows.append(["MCF-decomp", n, total])
            rows.append(["  master LP", n, timings.master_seconds])
            rows.append(["  child LP (max, parallel)", n, timings.max_child_seconds])
            rows.append(["  widest path", n, extract_seconds])
        # Original monolithic MCF.
        for n in original_sizes:
            topo = generalized_kautz(DEGREE, n)
            _, seconds = _timed(lambda: solve_link_mcf(topo, repair=False))
            rows.append(["MCF-original", n, seconds])
        # FPTAS at 5%.
        for n in fptas_sizes:
            topo = generalized_kautz(DEGREE, n)
            _, seconds = _timed(lambda: fptas_max_concurrent_flow(topo, epsilon=0.05))
            rows.append(["5% FPTAS", n, seconds])
        # ILP-disjoint.
        for n in ilp_sizes:
            topo = generalized_kautz(DEGREE, n)
            _, seconds = _timed(lambda: ilp_disjoint_schedule(topo, mip_rel_gap=0.0,
                                                              time_limit=120))
            rows.append(["ILP-disjoint", n, seconds])
        # TACCL surrogate.
        for n in taccl_sizes:
            topo = generalized_kautz(DEGREE, n)
            _, seconds = _timed(lambda: taccl_like_schedule(topo, time_budget=120.0))
            rows.append(["TACCL-like", n, seconds])
        # SCCL surrogate: demonstrate the timeout.
        topo = generalized_kautz(DEGREE, 8)
        try:
            _, seconds = _timed(lambda: sccl_like_schedule(topo, time_budget=5.0))
            rows.append(["SCCL-like", 8, seconds])
        except SynthesisTimeout:
            rows.append(["SCCL-like", 8, float("nan")])
        return rows

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record("fig7_runtime", format_table(
        ["algorithm", "N", "runtime (s)"],
        [[name, n, f"{sec:.3f}" if sec == sec else "TIMEOUT"] for name, n, sec in rows],
        title=f"Fig. 7: schedule-generation runtime on GenKautz (degree {DEGREE})"))

    # Shape assertions: decomposition beats the original LP at the largest
    # common size, and the master LP dominates the decomposed runtime.
    def runtime(name, n):
        for row in rows:
            if row[0] == name and row[1] == n:
                return row[2]
        raise KeyError((name, n))

    n_common = max(n for n in original_sizes if n in decomp_sizes)
    assert runtime("MCF-decomp", n_common) < runtime("MCF-original", n_common)
    assert runtime("MCF-decomp", decomp_sizes[-1]) < runtime("MCF-original", original_sizes[-1]) * 50
    assert runtime("  master LP", decomp_sizes[-1]) <= runtime("MCF-decomp", decomp_sizes[-1])
    # FPTAS at 5% is slower than the decomposed MCF at a comparable N
    # (paper's claim); compare at the largest decomposed size not above the
    # largest FPTAS size.
    n_fptas = fptas_sizes[-1]
    n_decomp_ref = max(n for n in decomp_sizes if n <= n_fptas) if any(
        n <= n_fptas for n in decomp_sizes) else decomp_sizes[0]
    assert runtime("5% FPTAS", n_fptas) > runtime("MCF-decomp", n_decomp_ref)
