"""Fig. 6: distributed 3D FFT times with different all-to-all schedules.

Runs the slab-decomposed 3D FFT workload on the torus (and an edge-punctured
torus), once per all-to-all schedule, and reports the three phase bands
(2D FFT + pack, all-to-all, unpack + 1D FFT) exactly as the stacked bars of
Fig. 6 do.  The per-rank FFT compute uses real NumPy transforms (verified
against ``numpy.fft.fftn``); the all-to-all phase is timed by the simulator.

Expected shape: the all-to-all band shrinks with MCF-extP versus SSSP/native,
and the total FFT time follows (the paper reports up to ~20% total speedup).
"""


from repro.analysis import format_table
from repro.baselines import native_alltoall_schedule
from repro.core import solve_mcf_extract_paths
from repro.paths import dor_schedule, ewsp_schedule, sssp_schedule
from repro.simulator import cerio_hpc_fabric
from repro.topology import edge_punctured_torus, torus
from repro.workloads import DistributedFFT3D

FABRIC = cerio_hpc_fabric()


def _run_fft(topo, grid, schemes, record, label, benchmark):
    fft = DistributedFFT3D(topo, grid_width=grid, fabric=FABRIC)

    results = {}

    def run_all():
        for name, make in schemes.items():
            results[name] = fft.run(make(), seed=0, schedule_label=name, verify=True)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, r in results.items():
        rows.append([name, r.fft2d_pack_seconds, r.alltoall_seconds,
                     r.unpack_fft1d_seconds, r.total_seconds])
    record("fig6_fft3d", format_table(
        ["scheme", "fft2d+pack s", "alltoall s", "unpack+fft1d s", "total s"], rows,
        title=f"Fig. 6 ({label}, grid {grid}^3, N={topo.num_nodes}, "
              f"alltoall buffer {fft.alltoall_buffer_bytes() / 2**20:.1f} MiB/rank)"))
    return results


def test_fig6_fft_on_torus(benchmark, record, scale):
    dims = [3, 3, 3] if scale == "paper" else [3, 3]
    grid = 108 if scale == "paper" else 72
    topo = torus(dims)
    schemes = {
        "MCF-extP/C": lambda: solve_mcf_extract_paths(topo),
        "SSSP/C": lambda: sssp_schedule(topo),
        "EwSP/C": lambda: ewsp_schedule(topo),
        "DOR/C": lambda: dor_schedule(topo),
        "OMPI-native/C": lambda: native_alltoall_schedule(topo),
    }
    results = _run_fft(topo, grid, schemes, record, f"Torus {'x'.join(map(str, dims))}",
                       benchmark)
    assert results["MCF-extP/C"].alltoall_seconds <= results["SSSP/C"].alltoall_seconds + 1e-9
    assert results["MCF-extP/C"].max_abs_error < 1e-6


def test_fig6_fft_on_edge_punctured_torus(benchmark, record, scale):
    dims = [3, 3, 3] if scale == "paper" else [3, 3]
    removed = 3 if scale == "paper" else 2
    grid = 108 if scale == "paper" else 72
    topo = edge_punctured_torus(dims, num_removed=removed, seed=1)
    schemes = {
        "MCF-extP/C": lambda: solve_mcf_extract_paths(topo),
        "SSSP/C": lambda: sssp_schedule(topo),
        "EwSP/C": lambda: ewsp_schedule(topo),
        "OMPI-native/C": lambda: native_alltoall_schedule(topo),
    }
    results = _run_fft(topo, grid, schemes, record,
                       f"Edge-punctured torus {'x'.join(map(str, dims))}", benchmark)
    assert results["MCF-extP/C"].alltoall_seconds <= results["SSSP/C"].alltoall_seconds + 1e-9
