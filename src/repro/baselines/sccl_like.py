"""SCCL-surrogate: exhaustive step-bounded schedule synthesis with a timeout.

SCCL [14] synthesises pareto-optimal collective schedules by encoding the
problem in SMT; the encoding is exact but NP-hard, and the paper observes that
it cannot produce an all-to-all schedule for even 16 nodes within 10^4 seconds
(Fig. 7) and fails to terminate at the 27-node scale (Fig. 3).

This surrogate reproduces that behaviour envelope without an SMT solver: it
performs an exhaustive branch-and-bound search for a minimum-step integral
all-to-all schedule (each link carries at most one whole shard per step).  The
search is exact for the tiny networks where it terminates (<= ~6 nodes) and
raises :class:`SynthesisTimeout` otherwise, exactly how the SCCL baseline
behaves in the paper's experiments.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Tuple

import networkx as nx

from ..schedule.ir import Chunk, LinkSchedule, LinkSendOp
from ..topology.base import Topology

__all__ = ["SynthesisTimeout", "sccl_like_schedule"]


class SynthesisTimeout(TimeoutError):
    """Raised when exhaustive synthesis exceeds its time budget."""


def sccl_like_schedule(topology: Topology, time_budget: float = 10.0,
                       max_steps: Optional[int] = None) -> LinkSchedule:
    """Exhaustively synthesise a minimum-step all-to-all schedule (tiny N only).

    Parameters
    ----------
    time_budget:
        Wall-clock budget in seconds; :class:`SynthesisTimeout` is raised when
        exceeded (mirroring SCCL's failure to terminate at modest scales).
    max_steps:
        Upper bound on the schedule length to search (defaults to
        ``2 * diameter + 2``).

    Returns
    -------
    LinkSchedule
        A provably minimum-step schedule under the whole-shard-per-link-per-step
        model, when the search completes within budget.
    """
    n = topology.num_nodes
    diam = topology.diameter()
    if max_steps is None:
        max_steps = 2 * diam + 2
    deadline = time.perf_counter() + time_budget
    dist = dict(nx.all_pairs_shortest_path_length(topology.graph))

    # State: tuple of current locations for every undelivered shard.
    shards = [(s, d) for s in range(n) for d in range(n) if s != d]

    for steps in range(diam, max_steps + 1):
        ops = _search(topology, shards, dist, steps, deadline)
        if ops is not None:
            schedule = LinkSchedule(topology=topology, num_steps=steps, operations=ops,
                                    meta={"method": "sccl-like", "optimal_steps": steps})
            schedule.validate_links()
            return schedule
    raise RuntimeError(f"no schedule within {max_steps} steps")


def _search(topology: Topology, shards: List[Tuple[int, int]],
            dist: Dict[int, Dict[int, int]], budget_steps: int,
            deadline: float) -> Optional[List[LinkSendOp]]:
    """Depth-first search over per-step link assignments."""

    def recurse(locations: Tuple[int, ...], step: int,
                ops: List[LinkSendOp]) -> Optional[List[LinkSendOp]]:
        if time.perf_counter() > deadline:
            raise SynthesisTimeout(
                f"exhaustive synthesis exceeded its time budget at N={topology.num_nodes}")
        # Done?
        if all(loc == shards[i][1] for i, loc in enumerate(locations)):
            return list(ops)
        remaining_steps = budget_steps - step
        # Admissible pruning: every shard must still be reachable in time.
        worst = max(dist[loc][shards[i][1]] for i, loc in enumerate(locations))
        if worst > remaining_steps:
            return None
        if remaining_steps <= 0:
            return None

        # Enumerate candidate moves per shard (progress-making hops only),
        # then greedily order shards by urgency and branch over link choices.
        pending = [i for i, loc in enumerate(locations) if loc != shards[i][1]]
        pending.sort(key=lambda i: -dist[locations[i]][shards[i][1]])

        def assign(index: int, used_links: FrozenSet, new_locations: List[int],
                   step_ops: List[LinkSendOp]) -> Optional[List[LinkSendOp]]:
            if index == len(pending):
                return recurse(tuple(new_locations), step + 1, ops + step_ops)
            i = pending[index]
            here = locations[i]
            target = shards[i][1]
            slack = (budget_steps - step) - dist[here][target]
            moved_options = []
            for v in sorted(topology.successors(here), key=lambda v: (dist[v][target], v)):
                if (here, v) in used_links:
                    continue
                if dist[v][target] < dist[here][target]:
                    moved_options.append(v)
            # Option to stay put is allowed only if there is slack.
            choices: List[Optional[int]] = list(moved_options)
            if slack > 0:
                choices.append(None)
            for choice in choices:
                if choice is None:
                    new_locations[i] = here
                    result = assign(index + 1, used_links, new_locations, step_ops)
                else:
                    new_locations[i] = choice
                    op = LinkSendOp(chunk=Chunk(shards[i][0], shards[i][1], 0.0, 1.0),
                                    src=here, dst=choice, step=step + 1)
                    result = assign(index + 1, used_links | {(here, choice)},
                                    new_locations, step_ops + [op])
                if result is not None:
                    return result
                new_locations[i] = locations[i]
            return None

        return assign(0, frozenset(), list(locations), [])

    initial = tuple(s for s, d in shards)
    try:
        return recurse(initial, 0, [])
    except RecursionError:
        return None
