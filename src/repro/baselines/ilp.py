"""ILP single-path baselines: ILP-disjoint and ILP-shortest (§5.2).

These baselines pick exactly one path per commodity from a candidate set
(link-disjoint paths or shortest paths) so as to minimize the maximum link
load -- low maximum load means high all-to-all throughput.  The selection is a
mixed-integer program:

    minimize L
    s.t.  sum_p x[(s,d),p] = 1                        for every commodity
          sum over paths p through link e of x <= L    for every link
          x binary

Being single-path, ILP is *not* bandwidth optimal in general (e.g. on the
complete bipartite topology, Fig. 4 left) and being NP-hard it stops scaling
beyond a few dozen nodes (Fig. 7), which is the paper's motivation for MCF.
A relative MIP gap ("tolerance") can be supplied, as the paper does for the
N = 81 experiments (Fig. 9, 10% tolerance).
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np
import scipy.sparse as sp
from scipy.optimize import LinearConstraint, Bounds, milp

from ..core.flow import Commodity
from ..core.mcf_path import PathSchedule, path_schedule_from_single_paths
from ..paths.disjoint import edge_disjoint_path_sets
from ..paths.shortest import all_shortest_path_sets
from ..topology.base import Edge, Topology

__all__ = ["solve_ilp_path_selection", "ilp_disjoint_schedule", "ilp_shortest_schedule"]


def solve_ilp_path_selection(topology: Topology,
                             path_sets: Mapping[Commodity, Sequence[Sequence[int]]],
                             mip_rel_gap: float = 0.0,
                             time_limit: Optional[float] = None) -> PathSchedule:
    """Select one path per commodity minimizing the maximum link load (MILP).

    Parameters
    ----------
    mip_rel_gap:
        Relative optimality tolerance passed to the MILP solver (0 = exact).
    time_limit:
        Wall-clock limit in seconds for the solver (None = unlimited).
    """
    start = time.perf_counter()
    commodities = list(topology.commodities())
    edges = topology.edges
    caps = topology.capacities()

    # Variable layout: [x vars ...., L]
    var_offset: Dict[Commodity, int] = {}
    num_x = 0
    for c in commodities:
        if c not in path_sets or not path_sets[c]:
            raise ValueError(f"no candidate paths for commodity {c}")
        var_offset[c] = num_x
        num_x += len(path_sets[c])
    num_vars = num_x + 1
    l_index = num_x

    c_obj = np.zeros(num_vars)
    c_obj[l_index] = 1.0

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    lb: List[float] = []
    ub: List[float] = []
    row = 0

    # One path per commodity (equality).
    for c in commodities:
        for i in range(len(path_sets[c])):
            rows.append(row)
            cols.append(var_offset[c] + i)
            vals.append(1.0)
        lb.append(1.0)
        ub.append(1.0)
        row += 1

    # Link load <= L (normalized by capacity).
    link_rows: Dict[Edge, int] = {}
    for e in edges:
        link_rows[e] = row
        rows.append(row)
        cols.append(l_index)
        vals.append(-1.0)
        lb.append(-np.inf)
        ub.append(0.0)
        row += 1
    for c in commodities:
        for i, p in enumerate(path_sets[c]):
            for e in zip(p[:-1], p[1:]):
                rows.append(link_rows[e])
                cols.append(var_offset[c] + i)
                vals.append(1.0 / caps[e])

    constraints = LinearConstraint(
        sp.coo_matrix((vals, (rows, cols)), shape=(row, num_vars)).tocsr(),
        lb=np.asarray(lb), ub=np.asarray(ub))
    integrality = np.zeros(num_vars)
    integrality[:num_x] = 1  # x binary, L continuous
    bounds = Bounds(lb=np.zeros(num_vars),
                    ub=np.concatenate([np.ones(num_x), [np.inf]]))
    options = {"mip_rel_gap": mip_rel_gap}
    if time_limit is not None:
        options["time_limit"] = time_limit
    result = milp(c=c_obj, constraints=constraints, integrality=integrality,
                  bounds=bounds, options=options)
    if result.x is None:
        raise RuntimeError(f"ILP path selection failed: {result.message}")
    elapsed = time.perf_counter() - start

    chosen: Dict[Commodity, Sequence[int]] = {}
    for c in commodities:
        values = result.x[var_offset[c]: var_offset[c] + len(path_sets[c])]
        chosen[c] = list(path_sets[c][int(np.argmax(values))])
    schedule = path_schedule_from_single_paths(topology, chosen, method="ilp")
    schedule.solve_seconds = elapsed
    schedule.meta.update({"max_load": float(result.x[l_index]),
                          "mip_rel_gap": mip_rel_gap,
                          "milp_status": result.message})
    return schedule


def ilp_disjoint_schedule(topology: Topology, mip_rel_gap: float = 0.0,
                          time_limit: Optional[float] = None,
                          max_paths: Optional[int] = None) -> PathSchedule:
    """ILP-disjoint: candidate set = maximal link-disjoint paths per commodity."""
    path_sets = edge_disjoint_path_sets(topology, max_paths=max_paths)
    schedule = solve_ilp_path_selection(topology, path_sets, mip_rel_gap=mip_rel_gap,
                                        time_limit=time_limit)
    schedule.meta["method"] = "ilp-disjoint"
    return schedule


def ilp_shortest_schedule(topology: Topology, mip_rel_gap: float = 0.0,
                          time_limit: Optional[float] = None,
                          limit_per_pair: Optional[int] = 16) -> PathSchedule:
    """ILP-shortest: candidate set = (capped) shortest paths per commodity."""
    path_sets = all_shortest_path_sets(topology, limit_per_pair=limit_per_pair)
    schedule = solve_ilp_path_selection(topology, path_sets, mip_rel_gap=mip_rel_gap,
                                        time_limit=time_limit)
    schedule.meta["method"] = "ilp-shortest"
    return schedule
