"""Native NCCL/OMPI-style all-to-all baseline (§5.2).

The stock NCCL and Open MPI all-to-all algorithms simply post ``N - 1``
point-to-point send/receive operations per rank; the fabric's default
(deadlock-free, single) route per destination carries each flow.  There is no
load balancing across paths and no awareness of the topology beyond the
routing tables, which is why MCF-extP outperforms it by up to 2.3x on the
complete bipartite topology and ~55% on the 3D torus (Fig. 4).
"""

from __future__ import annotations

from typing import List

from ..core.mcf_path import PathSchedule, path_schedule_from_single_paths
from ..paths.shortest import first_shortest_path_sets
from ..schedule.ir import Chunk, LinkSchedule, LinkSendOp
from ..topology.base import Topology

__all__ = ["native_alltoall_schedule", "direct_pairwise_link_schedule"]


def native_alltoall_schedule(topology: Topology) -> PathSchedule:
    """NCCL/OMPI-native baseline: one fabric-computed (shortest) route per pair."""
    routes = first_shortest_path_sets(topology)
    schedule = path_schedule_from_single_paths(topology, routes, method="native")
    return schedule


def direct_pairwise_link_schedule(topology: Topology) -> LinkSchedule:
    """A naive link-level all-to-all: relay every shard hop-by-hop on one shortest path.

    This is the store-and-forward analogue of the native baseline, used as a
    simple correct-by-construction reference schedule in tests: shard (s, d)
    moves one hop per step along a fixed shortest path, so the number of steps
    equals the topology diameter and link contention is whatever the shortest
    paths induce.
    """
    routes = first_shortest_path_sets(topology)
    ops: List[LinkSendOp] = []
    max_steps = 0
    for (s, d), path in routes.items():
        for hop_index, (u, v) in enumerate(zip(path[:-1], path[1:]), start=1):
            ops.append(LinkSendOp(chunk=Chunk(s, d, 0.0, 1.0), src=u, dst=v, step=hop_index))
            max_steps = max(max_steps, hop_index)
    schedule = LinkSchedule(topology=topology, num_steps=max_steps, operations=ops,
                            meta={"method": "direct-pairwise"})
    schedule.validate_links()
    return schedule
