"""FPTAS baseline for maximum concurrent multicommodity flow.

Implements the Fleischer / Garg-Konemann style fully polynomial time
approximation scheme that the paper compares against (Karakostas' scheme [26]
is an optimized variant of the same multiplicative-weights framework; the
asymptotics and the practical behaviour -- polynomial but much slower than the
decomposed exact MCF at small epsilon -- are shared, which is the property
Fig. 7 exercises).

Algorithm sketch (phases / iterations):

* every edge gets a length ``l(e) = delta / cap(e)``;
* in each *phase*, every commodity routes its unit demand over successive
  shortest paths under ``l``, saturating the bottleneck edge and multiplying
  the traversed lengths by ``(1 + eps * sent / cap)``;
* phases repeat until the "dual" value ``D = sum_e cap(e) l(e)`` reaches 1;
* the accumulated per-commodity flows, scaled down by the maximum link
  over-subscription, form a feasible concurrent flow within ``(1 - O(eps))``
  of the optimum.

The implementation is deliberately sequential (per the paper's observation
that the FPTAS cannot exploit the parallelism the decomposed MCF can).
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Dict, Optional

import networkx as nx

from ..core.flow import Commodity, FlowSolution
from ..topology.base import Edge, Topology

__all__ = ["fptas_max_concurrent_flow"]


def fptas_max_concurrent_flow(topology: Topology, epsilon: float = 0.05,
                              max_phases: Optional[int] = None) -> FlowSolution:
    """Approximate the all-to-all max concurrent flow to a (1 - O(eps)) factor.

    Parameters
    ----------
    epsilon:
        Accuracy parameter; the paper's Fig. 7 uses 5% (eps = 0.05).
    max_phases:
        Optional safety cap on the number of phases (None = run to the
        standard termination condition).

    Returns
    -------
    FlowSolution
        Feasible per-commodity flows and the achieved concurrent flow value
        (a lower bound on the optimum).
    """
    if not (0.0 < epsilon < 1.0):
        raise ValueError("epsilon must be in (0, 1)")
    if not topology.is_strongly_connected():
        raise ValueError("FPTAS requires a strongly connected topology")

    start = time.perf_counter()
    edges = topology.edges
    caps = topology.capacities()
    commodities = list(topology.commodities())
    m = len(edges)
    delta = (m / (1.0 - epsilon)) ** (-1.0 / epsilon)

    length: Dict[Edge, float] = {e: delta / caps[e] for e in edges}
    flows: Dict[Commodity, Dict[Edge, float]] = {c: defaultdict(float) for c in commodities}

    graph = topology.graph

    def dual() -> float:
        return sum(caps[e] * length[e] for e in edges)

    phases = 0
    while dual() < 1.0:
        phases += 1
        if max_phases is not None and phases > max_phases:
            break
        for (s, d) in commodities:
            remaining = 1.0
            while remaining > 1e-12:
                path = nx.shortest_path(graph, s, d,
                                        weight=lambda u, v, data: length[(u, v)])
                path_edges = list(zip(path[:-1], path[1:]))
                bottleneck = min(caps[e] for e in path_edges)
                send = min(remaining, bottleneck)
                for e in path_edges:
                    flows[(s, d)][e] += send
                    length[e] *= (1.0 + epsilon * send / caps[e])
                remaining -= send

    elapsed = time.perf_counter() - start
    if phases == 0:
        # Degenerate: delta so large the loop never ran; fall back to one phase.
        raise RuntimeError("FPTAS terminated before any phase; epsilon too large")

    # Scale the accumulated flows down to feasibility.
    loads: Dict[Edge, float] = {e: 0.0 for e in edges}
    for per in flows.values():
        for e, val in per.items():
            loads[e] += val
    max_over = max(loads[e] / caps[e] for e in edges if caps[e] > 0)
    scale = 1.0 / max_over if max_over > 0 else 0.0
    scaled_flows: Dict[Commodity, Dict[Edge, float]] = {
        c: {e: v * scale for e, v in per.items() if v * scale > 1e-12}
        for c, per in flows.items()
    }
    concurrent = phases * scale

    return FlowSolution(
        concurrent_flow=concurrent,
        flows=scaled_flows,
        topology=topology,
        solve_seconds=elapsed,
        meta={"method": "fptas", "epsilon": epsilon, "phases": phases,
              "guarantee": f">= (1 - O({epsilon})) * OPT"},
    )
