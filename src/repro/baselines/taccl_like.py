"""TACCL-surrogate: sketch-guided greedy time-stepped schedule synthesiser.

The real TACCL [46] synthesises collective schedules with a mixed-integer
program guided by human "communication sketches"; its cost grows quickly with
network size (over 30 minutes for 32-node all-to-all, per §5.3) and the
resulting schedules trail the MCF optimum by ~20-60% on the paper's
topologies (Fig. 3).

Reproducing the proprietary MILP encoding is out of scope, so this module
provides a *behaviour-faithful surrogate* (documented in DESIGN.md): a
sketch-enumerating greedy synthesiser.

* A "sketch" fixes a priority order over commodities (rotation offset +
  direction), mimicking TACCL's user-provided structure.
* For a given sketch, the greedy pass schedules whole chunks step by step:
  each link carries at most one chunk per step, and each node forwards the
  queued chunk that makes the most progress toward its destination.
* The synthesiser enumerates ``num_sketches`` sketches (default grows with N,
  like TACCL's solver effort) and keeps the schedule with the fewest steps.

Properties preserved from the baseline it stands in for: produces *valid*
store-and-forward schedules on any topology, is markedly slower to synthesise
than decomposed MCF as N grows, and achieves noticeably lower throughput than
tsMCF (it moves whole chunks on single paths and cannot fractionally balance
load).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..schedule.ir import Chunk, LinkSchedule, LinkSendOp
from ..topology.base import Topology

__all__ = ["taccl_like_schedule"]


def taccl_like_schedule(topology: Topology, chunks_per_shard: int = 1,
                        num_sketches: Optional[int] = None,
                        max_steps: Optional[int] = None,
                        time_budget: Optional[float] = None) -> LinkSchedule:
    """Synthesise a link-based all-to-all schedule with the TACCL-like surrogate.

    Parameters
    ----------
    chunks_per_shard:
        Split every shard into this many equal chunks (finer granularity can
        shorten the schedule at the cost of more instructions).
    num_sketches:
        Number of candidate sketches (commodity orderings) to try; defaults to
        ``max(4, N // 2)`` so the synthesis effort grows with network size.
    max_steps:
        Safety bound on schedule length (defaults to ``4 * diameter + 8``).
    time_budget:
        Optional wall-clock budget in seconds; synthesis stops early and keeps
        the best schedule found so far once exceeded.
    """
    if chunks_per_shard < 1:
        raise ValueError("chunks_per_shard must be >= 1")
    n = topology.num_nodes
    if num_sketches is None:
        num_sketches = max(4, n // 2)

    start = time.perf_counter()
    dist = dict(nx.all_pairs_shortest_path_length(topology.graph))
    if max_steps is None:
        # One whole chunk per link per step, so the schedule needs at least
        # total-shard-hops / num-links steps; allow generous greedy slack.
        total_hops = sum(dist[s][d] for s, d in topology.commodities())
        congestion_bound = -(-total_hops * chunks_per_shard // max(topology.num_edges, 1))
        max_steps = max(4 * topology.diameter() + 8, 3 * congestion_bound + 10)

    best: Optional[List[LinkSendOp]] = None
    best_steps = None
    sketches_tried = 0
    for sketch in range(num_sketches):
        if time_budget is not None and time.perf_counter() - start > time_budget and best is not None:
            break
        ops, steps = _greedy_synthesis(topology, dist, chunks_per_shard,
                                       rotation=sketch, max_steps=max_steps)
        sketches_tried += 1
        if ops is None:
            continue
        if best is None or steps < best_steps:
            best, best_steps = ops, steps
    if best is None:
        raise RuntimeError("TACCL-like synthesis failed to produce a schedule")

    elapsed = time.perf_counter() - start
    schedule = LinkSchedule(topology=topology, num_steps=best_steps, operations=best,
                            meta={"method": "taccl-like", "chunks_per_shard": chunks_per_shard,
                                  "sketches_tried": sketches_tried,
                                  "synthesis_seconds": elapsed})
    schedule.validate_links()
    return schedule


def _greedy_synthesis(topology: Topology, dist: Dict[int, Dict[int, int]],
                      chunks_per_shard: int, rotation: int,
                      max_steps: int) -> Tuple[Optional[List[LinkSendOp]], Optional[int]]:
    """One greedy pass for a given sketch (rotation of the commodity priority)."""
    n = topology.num_nodes
    frac = 1.0 / chunks_per_shard
    # Each chunk: (source, destination, index); location tracks where it currently is.
    chunks: List[Tuple[int, int, int]] = []
    for s in range(n):
        for d in range(n):
            if d == s:
                continue
            for k in range(chunks_per_shard):
                chunks.append((s, d, k))
    location = {c: c[0] for c in chunks}
    pending = set(c for c in chunks if c[0] != c[1])

    ops: List[LinkSendOp] = []
    step = 0
    while pending:
        step += 1
        if step > max_steps:
            return None, None
        used_links: set = set()
        moved_this_step: set = set()
        # Priority: chunks furthest from destination move first (they are on
        # the critical path), ties broken by the sketch ordering.
        order = sorted(pending,
                       key=lambda c: (-dist[location[c]][c[1]], (c[0] + rotation) % n, c[1], c[2]))
        for c in order:
            if c in moved_this_step:
                continue
            here = location[c]
            target = c[1]
            # Candidate next hops sorted by remaining distance then node id.
            candidates = sorted(topology.successors(here),
                                key=lambda v: (dist[v][target], v))
            for v in candidates:
                if dist[v][target] >= dist[here][target]:
                    break  # no progress possible via remaining candidates
                if (here, v) in used_links:
                    continue
                used_links.add((here, v))
                lo = c[2] * frac
                hi = min((c[2] + 1) * frac, 1.0)
                ops.append(LinkSendOp(chunk=Chunk(c[0], c[1], lo, hi), src=here, dst=v, step=step))
                location[c] = v
                moved_this_step.add(c)
                if v == target:
                    pending.discard(c)
                break
        if not moved_this_step:
            # Deadlock in the greedy pass (all useful links taken by chunks
            # that cannot progress); treat as failure for this sketch.
            return None, None
    return ops, step
