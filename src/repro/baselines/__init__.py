"""Comparison baselines: ILP path selection, FPTAS, native all-to-all, and
surrogates for the SCCL/TACCL schedule synthesisers."""

from .direct import direct_pairwise_link_schedule, native_alltoall_schedule
from .fptas import fptas_max_concurrent_flow
from .ilp import ilp_disjoint_schedule, ilp_shortest_schedule, solve_ilp_path_selection
from .sccl_like import SynthesisTimeout, sccl_like_schedule
from .taccl_like import taccl_like_schedule

__all__ = [
    "direct_pairwise_link_schedule",
    "native_alltoall_schedule",
    "fptas_max_concurrent_flow",
    "ilp_disjoint_schedule",
    "ilp_shortest_schedule",
    "solve_ilp_path_selection",
    "SynthesisTimeout",
    "sccl_like_schedule",
    "taccl_like_schedule",
]
