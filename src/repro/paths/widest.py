"""Widest-path (maximum-bottleneck) computations.

A widest path maximizes the minimum residual capacity along the path.  It is
the inner primitive of the MCF-extP extraction loop (§3.2.1) -- exposed here as
a standalone utility (on an arbitrary capacity map) so it can be tested and
reused independently of :mod:`repro.core.flow`.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional, Tuple

from ..topology.base import Edge, Topology

__all__ = ["widest_path", "widest_path_in_topology", "path_bottleneck"]


def widest_path(capacities: Mapping[Edge, float], source: int, destination: int,
                tol: float = 1e-12) -> Optional[Tuple[List[int], float]]:
    """Maximum-bottleneck path on an explicit edge-capacity map.

    Returns ``(path, bottleneck)`` or ``None`` when no positive-capacity path
    exists.  Runs the classic Dijkstra variant where the label of a node is the
    best bottleneck found so far (maximized instead of minimized).
    """
    adj: Dict[int, List[Tuple[int, float]]] = {}
    for (u, v), c in capacities.items():
        if c > tol:
            adj.setdefault(u, []).append((v, c))
    best: Dict[int, float] = {source: float("inf")}
    parent: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(-float("inf"), source)]
    done = set()
    while heap:
        neg_width, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        if u == destination:
            break
        for v, c in adj.get(u, []):
            width = min(-neg_width, c)
            if width > best.get(v, 0.0) + tol:
                best[v] = width
                parent[v] = u
                heapq.heappush(heap, (-width, v))
    if destination not in best:
        return None
    path = [destination]
    while path[-1] != source:
        nxt = parent.get(path[-1])
        if nxt is None:
            return None
        path.append(nxt)
    path.reverse()
    return path, best[destination]


def widest_path_in_topology(topology: Topology, source: int,
                            destination: int) -> Optional[Tuple[List[int], float]]:
    """Widest path using the topology's link capacities."""
    return widest_path(topology.capacities(), source, destination)


def path_bottleneck(capacities: Mapping[Edge, float], path: List[int]) -> float:
    """Bottleneck (minimum capacity) along an explicit path."""
    if len(path) < 2:
        return float("inf")
    return min(capacities[(u, v)] for u, v in zip(path[:-1], path[1:]))
