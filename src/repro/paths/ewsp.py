"""Equal-weight shortest paths (EwSP) baseline (§5.2, §5.3).

EwSP distributes every commodity evenly across *all* of its shortest paths.
It performs well on highly symmetric topologies (tori, hypercubes, complete
bipartite) where shortest paths are naturally load balanced, but on expanders
with few shortest paths per pair it degenerates towards single-path routing
and loses up to ~1.6x versus MCF (Fig. 8).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..topology.base import Topology
from ..core.flow import Commodity, WeightedPath
from ..core.mcf_path import PathSchedule
from .shortest import all_shortest_paths

__all__ = ["ewsp_schedule"]


def ewsp_schedule(topology: Topology, limit_per_pair: Optional[int] = None) -> PathSchedule:
    """Build the EwSP schedule: each commodity split equally over its shortest paths.

    Parameters
    ----------
    limit_per_pair:
        Optional cap on the number of shortest paths enumerated per commodity
        (tori have exponentially many; the paper's baseline uses all of them,
        which is feasible at the evaluated scales).
    """
    paths: Dict[Commodity, List[WeightedPath]] = {}
    for (s, d) in topology.commodities():
        candidates = all_shortest_paths(topology, s, d, limit=limit_per_pair)
        share = 1.0 / len(candidates)
        paths[(s, d)] = [WeightedPath(nodes=tuple(p), weight=share) for p in candidates]

    # Derive the concurrent flow value from the induced max link utilization.
    loads = {e: 0.0 for e in topology.edges}
    for plist in paths.values():
        for p in plist:
            for e in p.edges:
                loads[e] += p.weight
    caps = topology.capacities()
    max_util = max(loads[e] / caps[e] for e in loads if caps[e] > 0)
    flow = 0.0 if max_util == 0 else 1.0 / max_util
    return PathSchedule(concurrent_flow=flow, paths=paths, topology=topology,
                        meta={"method": "ewsp"})
