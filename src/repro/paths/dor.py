"""Dimension-ordered routing (DOR) on meshes and tori (§5.2).

DOR routes every packet by correcting coordinates one dimension at a time
(x, then y, then z, ...), taking the shorter wrap-around direction in each
dimension.  It is deadlock-free with a small number of virtual channels and is
bandwidth-optimal for uniform all-to-all on symmetric tori, which is why the
paper uses it as a strong torus baseline -- but it is undefined for
non-torus/punctured topologies, which is where MCF's topology-agnostic
behaviour pays off.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..topology.base import Topology
from ..topology.torus import coordinate_of, node_of
from ..core.flow import Commodity
from ..core.mcf_path import PathSchedule, path_schedule_from_single_paths

__all__ = ["dor_route", "dor_routes", "dor_schedule"]


def _dims_of(topology: Topology) -> Sequence[int]:
    dims = topology.metadata.get("dims")
    if not dims:
        raise ValueError("DOR requires a torus/mesh topology built by repro.topology.torus")
    if topology.metadata.get("family") not in ("torus", "mesh"):
        raise ValueError("DOR is only defined on (unpunctured) torus or mesh topologies")
    return dims


def dor_route(topology: Topology, source: int, destination: int) -> List[int]:
    """The dimension-ordered route from ``source`` to ``destination``."""
    dims = _dims_of(topology)
    wrap = bool(topology.metadata.get("wrap", True))
    cur = list(coordinate_of(source, dims))
    dst = coordinate_of(destination, dims)
    path = [source]
    for axis, size in enumerate(dims):
        while cur[axis] != dst[axis]:
            forward = (dst[axis] - cur[axis]) % size
            backward = (cur[axis] - dst[axis]) % size
            if wrap:
                step = +1 if forward <= backward else -1
            else:
                step = +1 if dst[axis] > cur[axis] else -1
            cur[axis] = (cur[axis] + step) % size if wrap else cur[axis] + step
            nxt = node_of(cur, dims)
            if not topology.has_edge(path[-1], nxt):
                raise ValueError(
                    f"DOR step {path[-1]}->{nxt} missing from topology (punctured torus?)")
            path.append(nxt)
    return path


def dor_routes(topology: Topology) -> Dict[Commodity, List[int]]:
    """Dimension-ordered route for every commodity."""
    return {(s, d): dor_route(topology, s, d) for s, d in topology.commodities()}


def dor_schedule(topology: Topology) -> PathSchedule:
    """DOR baseline as a single-path :class:`PathSchedule`."""
    return path_schedule_from_single_paths(topology, dor_routes(topology), method="dor")
