"""Maximal edge-disjoint path sets.

The paper's tractable pMCF heuristic restricts the candidate set to a maximal
set of link-disjoint (s, d) paths: there are at most ``d`` of them per pair in
a d-regular graph, so the pMCF variable count stays at ``O(d N^2)``, comparable
to the decomposed link MCF, while empirically matching the optimal MCF value on
the topologies studied (§3.1.4, Fig. 8 "pMCF-disjoint").
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

from ..topology.base import Topology
from ..core.flow import Commodity

__all__ = ["edge_disjoint_paths", "edge_disjoint_path_sets"]


def edge_disjoint_paths(topology: Topology, source: int, destination: int,
                        max_paths: Optional[int] = None,
                        prefer_short: bool = True) -> List[List[int]]:
    """A maximal set of edge-disjoint paths from ``source`` to ``destination``.

    Uses max-flow on a unit-capacity copy of the graph (the standard
    Menger-type construction); the number of returned paths equals the local
    edge connectivity, capped at ``max_paths`` if given.

    Parameters
    ----------
    prefer_short:
        If True, iteratively peel off the *shortest* remaining disjoint path
        (greedy), which yields the same cardinality but shorter paths --
        beneficial for the load the schedule induces.
    """
    if source == destination:
        raise ValueError("source and destination must differ")
    if prefer_short:
        return _greedy_short_disjoint(topology, source, destination, max_paths)
    flow_func = nx.algorithms.flow.edmonds_karp
    paths = list(nx.edge_disjoint_paths(topology.graph, source, destination,
                                        flow_func=flow_func))
    paths = [list(p) for p in paths]
    paths.sort(key=len)
    if max_paths is not None:
        paths = paths[:max_paths]
    return paths


def _greedy_short_disjoint(topology: Topology, source: int, destination: int,
                           max_paths: Optional[int]) -> List[List[int]]:
    """Peel shortest paths one at a time, removing used edges."""
    g = topology.graph.copy()
    out: List[List[int]] = []
    while True:
        if max_paths is not None and len(out) >= max_paths:
            break
        try:
            p = nx.shortest_path(g, source, destination)
        except nx.NetworkXNoPath:
            break
        out.append(list(p))
        g.remove_edges_from(list(zip(p[:-1], p[1:])))
    if not out:
        raise nx.NetworkXNoPath(f"no path {source}->{destination}")
    return out


def edge_disjoint_path_sets(topology: Topology, max_paths: Optional[int] = None,
                            prefer_short: bool = True) -> Dict[Commodity, List[List[int]]]:
    """Edge-disjoint candidate path sets for every commodity."""
    return {(s, d): edge_disjoint_paths(topology, s, d, max_paths=max_paths,
                                        prefer_short=prefer_short)
            for s, d in topology.commodities()}
