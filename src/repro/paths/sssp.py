"""Congestion-aware iterative SSSP baseline (§5.2).

The SSSP heuristic of Domke et al. [19] iteratively computes single shortest
paths through a graph whose link weights reflect the congestion added by the
paths chosen so far: each commodity is routed on the currently cheapest path,
after which the weights of the used links are increased.  It is fast and
topology agnostic, but the resulting single-path routing can be up to ~1.6x
worse than the MCF optimum (Fig. 8) because it cannot split commodities across
paths or look ahead.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

from ..topology.base import Edge, Topology
from ..core.flow import Commodity
from ..core.mcf_path import PathSchedule, path_schedule_from_single_paths

__all__ = ["sssp_routes", "sssp_schedule"]


def sssp_routes(topology: Topology, congestion_weight: float = 1.0,
                order_seed: Optional[int] = None) -> Dict[Commodity, List[int]]:
    """Compute one congestion-aware shortest path per commodity.

    Parameters
    ----------
    congestion_weight:
        Additive weight penalty per unit of load already placed on a link,
        normalized by link capacity.  Larger values spread load more
        aggressively at the cost of longer paths.
    order_seed:
        Optional seed to shuffle the commodity processing order; the default
        processes commodities in deterministic lexicographic order (as the
        reference heuristic does).
    """
    caps = topology.capacities()
    load: Dict[Edge, float] = {e: 0.0 for e in topology.edges}
    routes: Dict[Commodity, List[int]] = {}

    commodities = list(topology.commodities())
    if order_seed is not None:
        import random

        random.Random(order_seed).shuffle(commodities)

    def weight(u: int, v: int, data: dict) -> float:
        e = (u, v)
        return 1.0 + congestion_weight * load[e] / caps[e]

    for (s, d) in commodities:
        path = nx.shortest_path(topology.graph, s, d, weight=weight)
        routes[(s, d)] = list(path)
        for e in zip(path[:-1], path[1:]):
            load[e] += 1.0 / caps[e]
    return routes


def sssp_schedule(topology: Topology, congestion_weight: float = 1.0,
                  order_seed: Optional[int] = None) -> PathSchedule:
    """SSSP baseline as a single-path :class:`PathSchedule`."""
    routes = sssp_routes(topology, congestion_weight=congestion_weight,
                         order_seed=order_seed)
    schedule = path_schedule_from_single_paths(topology, routes, method="sssp")
    return schedule
