"""Shortest-path and bounded-length path enumeration.

Candidate path sets for pMCF (§3.1.4) and for the EwSP / ILP-shortest
baselines.  Enumerating *all* shortest paths is cheap on expanders (few
shortest paths per pair) but blows up combinatorially on highly symmetric
topologies such as tori -- exactly the path-diversity dichotomy the paper uses
to choose between pMCF and MCF-extP (Fig. 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

from ..topology.base import Topology
from ..core.flow import Commodity

__all__ = [
    "shortest_path",
    "all_shortest_paths",
    "all_shortest_path_sets",
    "k_shortest_paths",
    "bounded_length_paths",
    "bounded_length_path_sets",
    "first_shortest_path_sets",
]


def shortest_path(topology: Topology, source: int, destination: int) -> List[int]:
    """One shortest path (deterministic: lexicographically smallest node order)."""
    # networkx BFS explores neighbours in insertion order; sort for determinism.
    return _lexicographic_bfs_path(topology, source, destination)


def _lexicographic_bfs_path(topology: Topology, source: int, destination: int) -> List[int]:
    from collections import deque

    parent = {source: None}
    q = deque([source])
    while q:
        u = q.popleft()
        if u == destination:
            break
        for v in topology.successors(u):
            if v not in parent:
                parent[v] = u
                q.append(v)
    if destination not in parent:
        raise nx.NetworkXNoPath(f"no path {source}->{destination}")
    path = [destination]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def all_shortest_paths(topology: Topology, source: int, destination: int,
                       limit: Optional[int] = None) -> List[List[int]]:
    """All shortest paths between a pair (optionally capped at ``limit``)."""
    out: List[List[int]] = []
    for p in nx.all_shortest_paths(topology.graph, source, destination):
        out.append(list(p))
        if limit is not None and len(out) >= limit:
            break
    return out


def all_shortest_path_sets(topology: Topology,
                           limit_per_pair: Optional[int] = None) -> Dict[Commodity, List[List[int]]]:
    """All shortest paths for every commodity."""
    return {(s, d): all_shortest_paths(topology, s, d, limit=limit_per_pair)
            for s, d in topology.commodities()}


def first_shortest_path_sets(topology: Topology) -> Dict[Commodity, List[int]]:
    """One deterministic shortest path per commodity (the 'native fabric' routing)."""
    return {(s, d): shortest_path(topology, s, d) for s, d in topology.commodities()}


def k_shortest_paths(topology: Topology, source: int, destination: int,
                     k: int) -> List[List[int]]:
    """K shortest simple paths (Yen's algorithm via networkx)."""
    gen = nx.shortest_simple_paths(topology.graph, source, destination)
    out = []
    for p in gen:
        out.append(list(p))
        if len(out) >= k:
            break
    return out


def bounded_length_paths(topology: Topology, source: int, destination: int,
                         max_length: int, limit: Optional[int] = None) -> List[List[int]]:
    """All simple paths with at most ``max_length`` hops (optionally capped)."""
    out: List[List[int]] = []
    for p in nx.all_simple_paths(topology.graph, source, destination, cutoff=max_length):
        out.append(list(p))
        if limit is not None and len(out) >= limit:
            break
    if not out:
        # Always include at least a shortest path so callers never end up with
        # an unroutable commodity.
        out = [shortest_path(topology, source, destination)]
    return out


def bounded_length_path_sets(topology: Topology, max_length: Optional[int] = None,
                             limit_per_pair: Optional[int] = None) -> Dict[Commodity, List[List[int]]]:
    """Bounded-length candidate path sets for every commodity.

    ``max_length`` defaults to the topology diameter (the paper's ``l_max``).
    """
    if max_length is None:
        max_length = topology.diameter()
    return {(s, d): bounded_length_paths(topology, s, d, max_length, limit=limit_per_pair)
            for s, d in topology.commodities()}
