"""Path computation: candidate path sets and single-path routing heuristics."""

from .disjoint import edge_disjoint_path_sets, edge_disjoint_paths
from .dor import dor_route, dor_routes, dor_schedule
from .ewsp import ewsp_schedule
from .shortest import (
    all_shortest_path_sets,
    all_shortest_paths,
    bounded_length_path_sets,
    bounded_length_paths,
    first_shortest_path_sets,
    k_shortest_paths,
    shortest_path,
)
from .sssp import sssp_routes, sssp_schedule
from .widest import path_bottleneck, widest_path, widest_path_in_topology

__all__ = [
    "edge_disjoint_path_sets",
    "edge_disjoint_paths",
    "dor_route",
    "dor_routes",
    "dor_schedule",
    "ewsp_schedule",
    "all_shortest_path_sets",
    "all_shortest_paths",
    "bounded_length_path_sets",
    "bounded_length_paths",
    "first_shortest_path_sets",
    "k_shortest_paths",
    "shortest_path",
    "sssp_routes",
    "sssp_schedule",
    "path_bottleneck",
    "widest_path",
    "widest_path_in_topology",
]
