"""Fault spec grammar: timed fabric events with canonical hashing.

A *fault spec* is a compact string describing how the fabric changes while a
schedule is running::

    faults:down=0~1@0.5ms:up@1.2ms:scale=2~3*0.5@0.8ms:seed=7

Fields are ``:``-separated after the ``faults`` prefix.  Event keys may
repeat (a real outage log has many events); ``seed=`` and ``vc=`` are
unique-once knobs:

- ``down=<links>@<time>`` — the listed directed links go hard-down at
  ``time``.  Links use the fabric grammar: ``u-v`` is one direction,
  ``u~v`` both, ``|`` separates several links (``down=0~1|2-3@1ms``);
- ``up@<time>`` / ``up=<links>@<time>`` — fault-downed links recover.  The
  bare form recovers *every* link the fault timeline has taken down so far;
  the explicit form recovers only the listed links.  Links down on the
  *base* fabric never recover (they model permanent damage, not faults);
- ``scale=<links>*<factor>@<time>`` — bandwidth flap: the listed links run
  at ``factor`` times their current bandwidth from ``time`` on (factors
  multiply onto the base fabric's ``link_scale``);
- ``straggler=<node>*<factor>@<time>`` — host slowdown: every directed
  link incident to ``node`` (either direction) is scaled by ``factor``;
- ``seed=S`` — RNG seed recorded for randomized tooling (adversarial
  search tie-breaking); does not change deterministic replay;
- ``vc=lash|dfsssp|off`` — which deadlock-free layer assignment certifies
  the repaired route set at each fabric epoch (default ``lash``).

Times are seconds, with optional ``s``/``ms``/``us`` suffixes (``0.5ms``,
``300us``, ``0.002``).  ``*`` attaches factors (not ``:`` as in the static
fabric grammar, because ``:`` separates spec fields here).

Parsing is strict — unknown keys, malformed tokens and duplicate
``seed=``/``vc=`` raise ``ValueError`` — and :meth:`FaultSpec.canonical` is
field-order invariant (events sort by time, then kind, then payload), so
equivalent spellings hash identically in the scenario layer, exactly like
:meth:`~repro.cluster.trace.ClusterSpec.canonical`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

from ..simulator.fabric import FabricModel, parse_link_set

__all__ = ["FaultEvent", "FaultSpec", "FaultTimeline", "parse_fault_spec",
           "VC_POLICIES"]

VC_POLICIES = ("lash", "dfsssp", "off")

#: Event kinds in canonical sort order at equal timestamps: recoveries
#: apply before outages, outages before bandwidth changes, so a link both
#: recovered and re-downed at the same instant ends down (documented
#: tie-break, mirrored by the runner's per-epoch state build).
_KINDS = ("up", "down", "scale", "straggler")

Link = Tuple[int, int]


@dataclass(frozen=True)
class FaultEvent:
    """One timed fabric mutation.

    ``links`` is empty for a bare ``up@t`` (recover everything);
    ``factor`` is None for ``down``/``up`` events.  ``node`` is set only
    for straggler events (kept alongside the expanded incident ``links``
    so the canonical form stays payload-explicit).
    """

    time: float
    kind: str                        # "down" | "up" | "scale" | "straggler"
    links: Tuple[Link, ...] = ()
    factor: Optional[float] = None
    node: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault event kind {self.kind!r}")
        if self.time < 0:
            raise ValueError(f"fault event time must be >= 0, got {self.time}")
        object.__setattr__(self, "links",
                           tuple(sorted((int(u), int(v)) for u, v in self.links)))

    def canonical(self) -> Tuple[object, ...]:
        return (float(self.time), self.kind, self.links,
                None if self.factor is None else float(self.factor),
                self.node)


@dataclass(frozen=True)
class FaultSpec:
    """A parsed fault schedule: timed events plus the rerouting knobs."""

    events: Tuple[FaultEvent, ...]
    seed: int = 0
    vc: str = "lash"

    def __post_init__(self) -> None:
        if self.vc not in VC_POLICIES:
            raise ValueError(f"vc must be one of {VC_POLICIES}, got {self.vc!r}")
        # Canonical event order: time, then kind rank, then payload — so two
        # specs listing the same events in a different textual order compare
        # and hash identically.
        ordered = tuple(sorted(
            self.events,
            key=lambda e: (e.time, _KINDS.index(e.kind), e.links,
                           -1.0 if e.factor is None else e.factor,
                           -1 if e.node is None else e.node)))
        object.__setattr__(self, "events", ordered)

    def canonical(self) -> Tuple[object, ...]:
        """Field-order-invariant tuple used for scenario content hashing."""
        return ("faults", tuple(e.canonical() for e in self.events),
                int(self.seed), self.vc)

    @property
    def trivial(self) -> bool:
        """True when the spec cannot change any run.

        No epoch boundaries after t=0 and nothing degrading the initial
        state: ``up`` events over a pristine fault layer are no-ops, so a
        spec made only of those (e.g. ``faults:up@0``) is trivial and the
        runner delegates to the plain engine path byte-for-byte.
        """
        if FaultTimeline(self).epochs:
            return False
        return all(e.kind == "up" for e in self.events)


def _parse_time(text: str, spec: str) -> float:
    text = text.strip().lower()
    scale = 1.0
    for suffix, mult in (("us", 1e-6), ("ms", 1e-3), ("s", 1.0)):
        if text.endswith(suffix):
            text = text[: -len(suffix)]
            scale = mult
            break
    try:
        value = float(text) * scale
    except ValueError:
        raise ValueError(f"malformed fault time {text!r} in {spec!r}") from None
    if value < 0:
        raise ValueError(f"fault time must be >= 0, got {value} in {spec!r}")
    return value


def _split_at(token: str, spec: str) -> Tuple[str, float]:
    """Split ``payload@time`` and parse the time."""
    if "@" not in token:
        raise ValueError(
            f"fault event {token!r} needs @<time> (in {spec!r})")
    payload, _, when = token.rpartition("@")
    return payload, _parse_time(when, spec)


def _split_factor(payload: str, spec: str) -> Tuple[str, float]:
    """Split ``target*factor`` and parse the factor."""
    if "*" not in payload:
        raise ValueError(
            f"fault event payload {payload!r} needs *<factor> (in {spec!r})")
    target, _, factor_text = payload.rpartition("*")
    try:
        factor = float(factor_text)
    except ValueError:
        raise ValueError(
            f"malformed fault factor {factor_text!r} in {spec!r}") from None
    if factor <= 0:
        raise ValueError(
            f"fault scale factor must be > 0, got {factor} in {spec!r} "
            "(use down= to take a link out of service)")
    return target.strip(), factor


def parse_fault_spec(spec: str) -> FaultSpec:
    """Parse a ``faults:...`` spec string into a :class:`FaultSpec`."""
    text = str(spec).strip()
    parts = text.split(":")
    if parts[0].strip().lower() != "faults":
        raise ValueError(f"fault spec must start with 'faults:', got {spec!r}")
    events: List[FaultEvent] = []
    seed: Optional[int] = None
    vc: Optional[str] = None
    for part in parts[1:]:
        part = part.strip()
        if not part:
            continue
        key, eq, value = part.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if key == "seed":
            if seed is not None:
                raise ValueError(f"duplicate fault spec key 'seed' in {spec!r}")
            seed = int(value)
        elif key == "vc":
            if vc is not None:
                raise ValueError(f"duplicate fault spec key 'vc' in {spec!r}")
            vc = value.lower()
        elif key == "down":
            if not eq:
                raise ValueError(f"down events need links: down=<links>@<time> "
                                 f"(in {spec!r})")
            links_text, when = _split_at(value, spec)
            links = parse_link_set(links_text)
            if not links:
                raise ValueError(f"down event has no links in {spec!r}")
            events.append(FaultEvent(time=when, kind="down", links=links))
        elif key == "up" or (not eq and key.partition("@")[0] == "up"):
            # "up@t" has no '='; partition("=") left the whole token in `key`.
            token = part if not eq else value
            payload, when = _split_at(token, spec)
            if not eq:
                links: Tuple[Link, ...] = ()
            else:
                links = parse_link_set(payload)
                if not links:
                    raise ValueError(f"up event has no links in {spec!r} "
                                     "(use bare up@<time> to recover all)")
            events.append(FaultEvent(time=when, kind="up", links=links))
        elif key == "scale":
            if not eq:
                raise ValueError(f"scale events need links: "
                                 f"scale=<links>*<factor>@<time> (in {spec!r})")
            payload, when = _split_at(value, spec)
            links_text, factor = _split_factor(payload, spec)
            links = parse_link_set(links_text)
            if not links:
                raise ValueError(f"scale event has no links in {spec!r}")
            events.append(FaultEvent(time=when, kind="scale", links=links,
                                     factor=factor))
        elif key == "straggler":
            if not eq:
                raise ValueError(f"straggler events need a node: "
                                 f"straggler=<node>*<factor>@<time> (in {spec!r})")
            payload, when = _split_at(value, spec)
            node_text, factor = _split_factor(payload, spec)
            try:
                node = int(node_text)
            except ValueError:
                raise ValueError(
                    f"malformed straggler node {node_text!r} in {spec!r}") from None
            events.append(FaultEvent(time=when, kind="straggler", links=(),
                                     factor=factor, node=node))
        else:
            raise ValueError(
                f"unknown fault spec key {key!r} in {spec!r}; known keys: "
                "['down', 'scale', 'seed', 'straggler', 'up', 'vc']")
    return FaultSpec(events=tuple(events), seed=0 if seed is None else seed,
                     vc="lash" if vc is None else vc)


class FaultTimeline:
    """The fault schedule resolved against time: epochs and fabric states.

    An *epoch* starts at each distinct event timestamp.  Events at t=0 fold
    into the initial fabric state (so ``up@0`` over a pristine fabric is a
    literal no-op and ``down=...@0`` equals a statically degraded fabric).
    At equal timestamps events apply in the canonical kind order
    (up, down, scale, straggler — see :data:`_KINDS`), so simultaneous
    recover+fail of the same link deterministically leaves it down.

    ``fabric_at(base, t)`` materializes the effective
    :class:`~repro.simulator.fabric.FabricModel` at time ``t``: the base
    fabric's ``down_links`` stay down forever; fault ``down`` links stack on
    top until recovered; ``scale``/``straggler`` factors multiply onto the
    base ``link_scale`` cumulatively.  Straggler events expand to concrete
    incident links lazily (they need the topology's edge list).
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        #: Distinct event times > 0, ascending — the epoch boundaries.
        self.epochs: Tuple[float, ...] = tuple(sorted(
            {e.time for e in spec.events if e.time > 0.0}))

    def _events_through(self, t: float) -> List[FaultEvent]:
        return [e for e in self.spec.events if e.time <= t]

    def state_at(self, t: float, edges: Tuple[Link, ...]
                 ) -> Tuple[Set[Link], Dict[Link, float]]:
        """Fault-layer state at time ``t``: (down set, scale-factor map).

        ``edges`` is the topology's directed edge list (needed to expand
        straggler events); the returned down set excludes base-fabric down
        links (the caller unions them in).
        """
        down: Set[Link] = set()
        factors: Dict[Link, float] = {}
        edge_set = set(edges)
        for event in self._events_through(t):   # canonical order by spec
            if event.kind == "down":
                down.update(event.links)
            elif event.kind == "up":
                if event.links:
                    down.difference_update(event.links)
                else:
                    down.clear()
            elif event.kind == "scale":
                for link in event.links:
                    factors[link] = factors.get(link, 1.0) * float(event.factor)
            else:  # straggler: every directed link touching the node
                node = event.node
                for link in edge_set:
                    if node in link:
                        factors[link] = factors.get(link, 1.0) * float(event.factor)
        return down, factors

    def fabric_at(self, base: FabricModel, t: float,
                  edges: Tuple[Link, ...]) -> FabricModel:
        """The effective fabric at time ``t`` (base degradation included)."""
        down, factors = self.state_at(t, edges)
        if not down and not factors:
            return base
        scales = dict(base.link_scale_map())
        for link, factor in factors.items():
            scales[link] = scales.get(link, 1.0) * factor
        all_down = set(base.down_links) | down
        return replace(base, down_links=tuple(sorted(all_down)),
                       link_scale=tuple(sorted(scales.items())),
                       name=f"{base.name}@t={t:g}")
