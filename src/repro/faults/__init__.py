"""Dynamic fabric failures with online rerouting.

The static degraded-fabric axis (PR 5) snapshots a broken fabric before the
run; this package makes the fabric *move*: a strict fault-spec grammar
(:mod:`.spec`) describes timed link outages, recoveries, bandwidth flaps
and straggler hosts; :mod:`.runner` injects them as events into the fluid
engine's queue, rerouting in-flight flows deterministically around down
links (:mod:`.reroute`, certified deadlock-free through LASH / DF-SSSP)
and re-filling incrementally over the survivors; :mod:`.adversarial`
searches worst-case k-link failure sets against a schedule (optionally in
parallel via ``jobs``).  :mod:`.context` hoists per-flow arrays, the
compiled delta template (:mod:`repro.perf.delta`) and the shared
reroute/certification caches so sweeps and searches pay the setup once.

Correctness is pinned by ``tests/test_faults.py``: every faulted run must
agree to 1e-9 with a hand-stitched sequence of piecewise-static engine
runs, and zero-fault specs are byte-identical to the plain engine.
"""

from .adversarial import (
    AdversarialResult,
    ranked_physical_links,
    worst_case_failures,
)
from .context import PreparedFaultContext, RerouteCache
from .reroute import (
    certify_routes,
    down_set,
    effective_path,
    repair_path,
    surviving_adjacency,
)
from .runner import (FaultPrefix, StrandedScheduleError, capture_fault_prefix,
                     run_faulted, run_faulted_sweep)
from .spec import (
    VC_POLICIES,
    FaultEvent,
    FaultSpec,
    FaultTimeline,
    parse_fault_spec,
)

__all__ = [
    "AdversarialResult",
    "ranked_physical_links",
    "worst_case_failures",
    "certify_routes",
    "down_set",
    "effective_path",
    "repair_path",
    "surviving_adjacency",
    "PreparedFaultContext",
    "RerouteCache",
    "FaultPrefix",
    "StrandedScheduleError",
    "capture_fault_prefix",
    "run_faulted",
    "run_faulted_sweep",
    "VC_POLICIES",
    "FaultEvent",
    "FaultSpec",
    "FaultTimeline",
    "parse_fault_spec",
]
