"""Event-driven execution of a schedule under timed fabric faults.

:func:`run_faulted` executes one routed collective while the fabric mutates
underneath it.  Fault epochs and flow completions share one
:class:`~repro.simulator.events.EventQueue`; every fabric epoch:

1. integrates the fluid state to the epoch instant and retires finished
   flows (cancelling the in-flight completion event);
2. materializes the epoch's effective fabric
   (:meth:`~repro.faults.spec.FaultTimeline.fabric_at`) and recomputes each
   survivor's route — original route if still clear, deterministic BFS
   repair otherwise, *stranded* if disconnected (:mod:`.reroute`);
3. recompiles the survivors against the new fabric with their **residual**
   bytes as sizes (the engine's own
   :func:`~repro.simulator.engine.compile_flows`, then compacted exactly
   like :meth:`repro.cluster.injector.FlowInjector.retire`) and certifies
   the active route set deadlock-free through LASH / DF-SSSP;
4. re-fills incrementally over the survivors and schedules the next
   completion edge, with mechanics identical to
   :func:`~repro.simulator.engine.execute`.

Between epochs the run *is* the engine: max-min fair rates, completion-to-
completion advancement, latency stamped after the transfer.  Completion
latency always uses the flow's **originally planned** route (the repair
happens mid-flight; the planned-path latency was already committed), so a
zero-fault spec reproduces the plain engine byte-for-byte — the
differential suite pins every faulted run to a hand-stitched sequence of
piecewise-static engine runs at 1e-9.

Two fault events at the same timestamp fire in spec-canonical order inside
one epoch; a fault epoch colliding with a flow-completion instant fires
*first* (epoch events are scheduled before any completion, and the queue
breaks time ties by insertion order — see
:class:`~repro.simulator.events.Event`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..constants import SIM_BYTES_EPS, SIM_EPS
from ..schedule.ir import LinkSchedule, RoutedSchedule
from ..schedule.validate import validate_routed_schedule
from ..simulator.collective import CollectiveResult, run_routed_collective
from ..simulator.engine import (FillWorkspace, FluidFlow, compile_flows,
                                fill_rates, record_fault_events,
                                record_simulation)
from ..simulator.events import EventQueue
from ..simulator.fabric import FabricModel
from .reroute import certify_routes, effective_path, surviving_adjacency
from .spec import FaultSpec, FaultTimeline, parse_fault_spec

__all__ = ["StrandedScheduleError", "run_faulted", "run_faulted_sweep"]

Path = Tuple[int, ...]


class StrandedScheduleError(RuntimeError):
    """Raised when flows stay disconnected past the last fault epoch."""

    def __init__(self, flow_ids: Sequence[int], stranded_bytes: float) -> None:
        self.flow_ids = tuple(int(i) for i in flow_ids)
        self.stranded_bytes = float(stranded_bytes)
        super().__init__(
            f"{len(self.flow_ids)} flow(s) permanently stranded "
            f"({self.stranded_bytes:.0f} residual bytes): the failure set "
            "disconnects their endpoints and no recovery event follows; "
            "pass allow_stranded=True to measure anyway")


@dataclass
class _EpochRecord:
    """Per-epoch trace entry for the incidence-check tests."""

    time: float
    down: Tuple[Tuple[int, int], ...]
    paths: Dict[int, Path]            # live flow id -> route in force
    stranded: Tuple[int, ...]


def run_faulted(schedule: RoutedSchedule, buffer_bytes: float,
                spec: Union[FaultSpec, str],
                fabric: Optional[FabricModel] = None,
                validate: bool = True,
                max_events: int = 1_000_000,
                allow_stranded: bool = False,
                collect_trace: bool = False,
                baseline_seconds: Optional[float] = None) -> CollectiveResult:
    """Execute a routed schedule under a fault timeline at one buffer size.

    ``baseline_seconds`` (the zero-fault completion time on the same base
    fabric) backs the ``robustness_slowdown`` metric; when omitted it is
    computed with one extra plain engine run.  ``allow_stranded=True``
    records permanently stranded flows as an infinite completion instead of
    raising (the adversarial search treats disconnection as the worst
    outcome); ``collect_trace=True`` stores per-epoch routes and down sets
    in ``meta["epoch_trace"]`` for the differential tests.
    """
    if isinstance(spec, str):
        spec = parse_fault_spec(spec)
    if isinstance(schedule, LinkSchedule):
        raise ValueError(
            "fault injection supports routed (path-based) schedules only; "
            "LinkSchedule steps are globally synchronized and cannot be "
            "rerouted mid-step — use a cut-through scheme (e.g. mcf-extp)")
    if validate:
        validate_routed_schedule(schedule)

    if baseline_seconds is None:
        baseline_seconds = run_routed_collective(
            schedule, buffer_bytes, fabric=fabric,
            validate=False).completion_time

    if spec.trivial:
        # Literal delegation: a no-op fault timeline must be byte-identical
        # to today's engine output, so it *is* today's engine.
        result = run_routed_collective(schedule, buffer_bytes, fabric=fabric,
                                       validate=False)
        result.meta.update(
            robustness_slowdown=(result.completion_time / baseline_seconds
                                 if baseline_seconds > 0 else 1.0),
            baseline_seconds=float(baseline_seconds),
            reroute_count=0, stranded_bytes=0.0, fault_events=0,
            vc_layers=0, fault_spec=spec.canonical())
        return result

    fabric = fabric or FabricModel()
    timeline = FaultTimeline(spec)
    topology = schedule.topology
    edges = tuple(topology.edges)
    n = topology.num_nodes
    shard = buffer_bytes / n

    orig_paths: List[Path] = [tuple(a.route) for a in schedule.assignments]
    sizes = np.array([a.chunk.bytes(shard) for a in schedule.assignments])
    delays = np.array([fabric.per_message_overhead
                       + (len(p) - 1) * fabric.per_hop_latency
                       for p in orig_paths])
    num_flows = len(orig_paths)

    remaining = sizes.astype(float, copy=True)
    active = remaining > SIM_EPS
    completion = np.where(active, 0.0, delays)
    stranded = np.zeros(num_flows, dtype=bool)
    current_paths: List[Optional[Path]] = list(orig_paths)

    queue = EventQueue()
    counters = {"fill_rounds": 0, "reroutes": 0, "stranded_bytes": 0.0,
                "fault_events": 0, "vc_layers": 0}
    trace: List[_EpochRecord] = []
    # Live-subprogram state: the compiled survivors, their global flow ids,
    # the local active mask, the workspace-aliased rates and the pending
    # completion event.
    state: Dict[str, object] = {"program": None, "workspace": None,
                                "gids": np.zeros(0, dtype=np.int64),
                                "local_active": np.zeros(0, dtype=bool),
                                "rates": np.zeros(0), "last": 0.0,
                                "pending": None}

    def _compile_epoch(epoch_fabric: FabricModel) -> None:
        """Compile the live flows (residual sizes) against the epoch fabric."""
        gids = np.nonzero(active & ~stranded)[0]
        state["gids"] = gids
        if len(gids) == 0:
            state["program"] = None
            state["workspace"] = None
            state["local_active"] = np.zeros(0, dtype=bool)
            state["rates"] = np.zeros(0)
            return
        flows = [FluidFlow(path=current_paths[i], size_bytes=remaining[i])
                 for i in gids]
        program = compile_flows(topology, flows, epoch_fabric,
                                include_latency=False)
        state["program"] = program
        state["workspace"] = FillWorkspace(program)
        state["local_active"] = np.ones(len(gids), dtype=bool)

    def _refill() -> None:
        """Engine-identical re-fill over the survivors; schedule the edge."""
        pending = state["pending"]
        if pending is not None:
            pending.cancel()
            state["pending"] = None
        local = state["local_active"]
        if state["program"] is None or not local.any():
            return
        rates, rounds = fill_rates(state["program"], local, state["workspace"])
        state["rates"] = rates
        counters["fill_rounds"] += rounds
        eligible = local & (rates > SIM_EPS)
        if not eligible.any():
            raise RuntimeError(
                "faulted simulation stalled: active flows have zero rate")
        state["last"] = queue.now
        gids = state["gids"]
        dt = float(np.min(remaining[gids[eligible]] / rates[eligible]))
        state["pending"] = queue.schedule(dt, _on_completion)

    def _integrate() -> None:
        """Drain the current rates into the global residuals up to now."""
        dt = queue.now - state["last"]
        state["last"] = queue.now
        local = state["local_active"]
        if dt <= 0 or state["program"] is None or not local.any():
            return
        gids = state["gids"]
        rates = state["rates"]
        live = gids[local]
        remaining[live] -= rates[local] * dt
        done = live[remaining[live] <= SIM_BYTES_EPS]
        if len(done):
            remaining[done] = 0.0
            completion[done] = queue.now + delays[done]
            active[done] = False
            local[np.isin(gids, done)] = False

    def _on_completion() -> None:
        state["pending"] = None
        _integrate()
        _refill()

    def _on_epoch(t: float, initial: bool = False) -> None:
        """A fabric epoch: mutate the fabric, reroute, recompile, refill."""
        if not initial:
            counters["fault_events"] += 1
        _integrate()
        pending = state["pending"]
        if pending is not None:
            pending.cancel()
            state["pending"] = None
        epoch_fabric = timeline.fabric_at(fabric, t, edges)
        down: Set[Tuple[int, int]] = set(epoch_fabric.down_links)
        adjacency = surviving_adjacency(topology, down)
        for i in np.nonzero(active)[0]:
            new_path = effective_path(orig_paths[i], down, adjacency)
            if new_path is None:
                if not stranded[i]:
                    stranded[i] = True
                    counters["stranded_bytes"] += float(remaining[i])
                current_paths[i] = None
            else:
                stranded[i] = False
                if new_path != current_paths[i]:
                    counters["reroutes"] += 1
                current_paths[i] = new_path
        live_ids = np.nonzero(active & ~stranded)[0]
        counters["vc_layers"] = max(
            counters["vc_layers"],
            certify_routes([current_paths[i] for i in live_ids], spec.vc))
        if collect_trace:
            trace.append(_EpochRecord(
                time=t, down=tuple(sorted(down)),
                paths={int(i): current_paths[i] for i in live_ids},
                stranded=tuple(int(i) for i in np.nonzero(stranded & active)[0])))
        _compile_epoch(epoch_fabric)
        _refill()

    # Fabric epochs are scheduled before any completion event exists, so
    # their sequence numbers are the lowest in the queue: an epoch colliding
    # with a completion instant deterministically fires first.
    for t in timeline.epochs:
        queue.schedule_at(t, lambda t=t: _on_epoch(t))

    _on_epoch(0.0, initial=True)   # fold t=0 events into the starting state
    try:
        queue.run(max_events=max_events)
    except RuntimeError as exc:
        raise RuntimeError("faulted simulation did not converge") from exc

    record_simulation(counters["fill_rounds"], queue.processed)
    record_fault_events(counters["fault_events"], counters["reroutes"])

    if active.any():
        stuck = np.nonzero(active)[0]
        if not allow_stranded:
            raise StrandedScheduleError(stuck, float(remaining[stuck].sum()))
        completion_time = float("inf")
    else:
        completion_time = float(completion.max()) if num_flows else 0.0

    meta: Dict[str, object] = {
        "num_flows": num_flows,
        "fill_rounds": counters["fill_rounds"],
        "events": queue.processed,
        "fault_events": counters["fault_events"],
        "reroute_count": counters["reroutes"],
        "stranded_bytes": float(counters["stranded_bytes"]),
        "vc_layers": counters["vc_layers"],
        "baseline_seconds": float(baseline_seconds),
        "robustness_slowdown": (completion_time / baseline_seconds
                                if baseline_seconds > 0 else float("inf")),
        "fault_spec": spec.canonical(),
    }
    if collect_trace:
        meta["epoch_trace"] = trace
    return CollectiveResult(
        buffer_bytes=buffer_bytes,
        shard_bytes=shard,
        completion_time=completion_time,
        num_nodes=n,
        schedule_kind="routed",
        meta=meta,
    )


def run_faulted_sweep(schedule: Union[RoutedSchedule, LinkSchedule],
                      buffer_sizes: Sequence[float],
                      spec: Union[FaultSpec, str],
                      fabric: Optional[FabricModel] = None,
                      validate_first: bool = True,
                      max_events: int = 1_000_000) -> List[CollectiveResult]:
    """Run the faulted schedule across a buffer sweep (simulate-stage entry).

    The schedule is validated once; the zero-fault baseline is computed per
    buffer point so every result carries its own ``robustness_slowdown``.
    """
    if isinstance(spec, str):
        spec = parse_fault_spec(spec)
    results: List[CollectiveResult] = []
    for i, buf in enumerate(buffer_sizes):
        results.append(run_faulted(
            schedule, buf, spec, fabric=fabric,
            validate=validate_first and i == 0,
            max_events=max_events))
    return results
