"""Event-driven execution of a schedule under timed fabric faults.

:func:`run_faulted` executes one routed collective while the fabric mutates
underneath it.  Fault epochs and flow completions share one
:class:`~repro.simulator.events.EventQueue`; every fabric epoch:

1. integrates the fluid state to the epoch instant and retires finished
   flows (cancelling the in-flight completion event);
2. materializes the epoch's effective fabric
   (:meth:`~repro.faults.spec.FaultTimeline.fabric_at`) and recomputes each
   survivor's route — original route if still clear, deterministic BFS
   repair otherwise, *stranded* if disconnected (:mod:`.reroute`);
3. re-targets the compiled program at the epoch state and certifies the
   active route set deadlock-free through LASH / DF-SSSP;
4. re-fills incrementally over the survivors and schedules the next
   completion edge, with mechanics identical to
   :func:`~repro.simulator.engine.execute`.

Step 3 has two engines.  The default **delta** path
(:mod:`repro.perf.delta`) compiles the full flow set once per context and
then patches capacities and rerouted incidence slots in place, with repairs
and certifications memoized in the context's
:class:`~repro.faults.context.RerouteCache`; epochs that change no route
skip compilation entirely.  ``REPRO_DELTA=off`` selects the retained
**oracle** path, which recompiles the survivors from scratch with
:func:`~repro.simulator.engine.compile_flows` every epoch (the
differential reference, like ``REPRO_KERNEL=python-csr``).  The two agree
bit-for-bit on rates — the fill kernels never read flow sizes, so a full
program under an active mask is the same fill as a compacted survivor
program — and the fuzz suite pins them at 1e-9 end to end.

Between epochs the run *is* the engine: max-min fair rates, completion-to-
completion advancement, latency stamped after the transfer.  Completion
latency always uses the flow's **originally planned** route (the repair
happens mid-flight; the planned-path latency was already committed), so a
zero-fault spec reproduces the plain engine byte-for-byte — the
differential suite pins every faulted run to a hand-stitched sequence of
piecewise-static engine runs at 1e-9.

Two fault events at the same timestamp fire in spec-canonical order inside
one epoch; a fault epoch colliding with a flow-completion instant fires
*first* (epoch events are scheduled before any completion, and the queue
breaks time ties by insertion order — see
:class:`~repro.simulator.events.Event`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..constants import SIM_BYTES_EPS, SIM_EPS
from ..perf.delta import delta_enabled
from ..schedule.ir import LinkSchedule, RoutedSchedule
from ..schedule.validate import validate_routed_schedule
from ..simulator.collective import CollectiveResult, run_routed_collective
from ..simulator.engine import (FillWorkspace, FluidFlow, compile_flows,
                                fill_rates, record_fault_events,
                                record_simulation)
from ..simulator.events import EventQueue
from ..simulator.fabric import FabricModel
from .context import PreparedFaultContext
from .reroute import certify_routes, effective_path, surviving_adjacency
from .spec import FaultSpec, FaultTimeline, parse_fault_spec

__all__ = ["StrandedScheduleError", "FaultPrefix", "capture_fault_prefix",
           "run_faulted", "run_faulted_sweep"]

Path = Tuple[int, ...]


class StrandedScheduleError(RuntimeError):
    """Raised when flows stay disconnected past the last fault epoch."""

    def __init__(self, flow_ids: Sequence[int], stranded_bytes: float) -> None:
        self.flow_ids = tuple(int(i) for i in flow_ids)
        self.stranded_bytes = float(stranded_bytes)
        super().__init__(
            f"{len(self.flow_ids)} flow(s) permanently stranded "
            f"({self.stranded_bytes:.0f} residual bytes): the failure set "
            "disconnects their endpoints and no recovery event follows; "
            "pass allow_stranded=True to measure anyway")


@dataclass
class _EpochRecord:
    """Per-epoch trace entry for the incidence-check tests."""

    time: float
    down: Tuple[Tuple[int, int], ...]
    paths: Dict[int, Path]            # live flow id -> route in force
    stranded: Tuple[int, ...]


@dataclass
class FaultPrefix:
    """Fluid state at an instant of the *pre-fault* (healthy) timeline.

    Every candidate of an adversarial search evolves identically until the
    strike instant — same fabric, same fills, same completions — so the
    search captures this state once (:func:`capture_fault_prefix`) and each
    evaluation resumes from it instead of re-simulating the shared prefix.
    Arrays are read-only snapshots; :func:`run_faulted` copies them.
    """

    at: float                          # capture instant (= first epoch time)
    vc: str                            # certification policy captured with
    vc_layers: int                     # layers certified at the t=0 epoch
    remaining: np.ndarray              # residual bytes per flow at ``at``
    completion: np.ndarray             # completion instants committed so far
    active: np.ndarray                 # live-flow mask at ``at``
    fill_rounds: int                   # saturation rounds spent in the prefix
    events: int                        # completion events fired in the prefix


def capture_fault_prefix(context: PreparedFaultContext, buffer_bytes: float,
                         at_seconds: float, vc: str = "lash") -> FaultPrefix:
    """Simulate the healthy prefix of a faulted run up to ``at_seconds``.

    Mirrors :func:`run_faulted`'s pre-epoch mechanics exactly (same fill
    kernel, same float expressions, same tie-break: an epoch colliding with
    a completion instant fires first), so a run resumed from the returned
    prefix is bit-identical to one simulated from t=0.  Requires the delta
    engine (the oracle path recomputes everything from scratch by design).
    """
    sizes = context.sizes_for(buffer_bytes)
    delays = context.delays
    remaining = sizes.astype(float, copy=True)
    active = remaining > SIM_EPS
    completion = np.where(active, 0.0, delays)
    fill_rounds = 0
    events = 0
    layers = 0
    if active.any():
        live = np.nonzero(active)[0]
        layers, _ = context.reroute_cache.certify(
            [context.orig_paths[i] for i in live], vc)
        delta = context.delta_program()
        delta.apply(context.fabric, context.orig_paths)
        program, workspace = delta.program, delta.workspace
        now = 0.0
        while active.any():
            rates, rounds = fill_rates(program, active, workspace)
            fill_rounds += rounds
            eligible = active & (rates > SIM_EPS)
            if not eligible.any():
                raise RuntimeError(
                    "faulted simulation stalled: active flows have zero rate")
            dt = float(np.min(remaining[eligible] / rates[eligible]))
            t_next = now + dt
            if t_next >= at_seconds:
                # The epoch at ``at_seconds`` fires before this completion
                # (epochs hold the lowest sequence numbers): integrate the
                # partial interval exactly as the epoch's _integrate would.
                dt_eff = at_seconds - now
                if dt_eff > 0:
                    remaining[active] -= rates[active] * dt_eff
                    done = active & (remaining <= SIM_BYTES_EPS)
                    if done.any():
                        remaining[done] = 0.0
                        completion[done] = at_seconds + delays[done]
                        active[done] = False
                break
            events += 1
            dt_eff = t_next - now
            remaining[active] -= rates[active] * dt_eff
            done = active & (remaining <= SIM_BYTES_EPS)
            if done.any():
                remaining[done] = 0.0
                completion[done] = t_next + delays[done]
                active[done] = False
            now = t_next
    record_simulation(fill_rounds, events)
    return FaultPrefix(at=float(at_seconds), vc=vc, vc_layers=layers,
                       remaining=remaining, completion=completion,
                       active=active, fill_rounds=fill_rounds, events=events)


def run_faulted(schedule: RoutedSchedule, buffer_bytes: float,
                spec: Union[FaultSpec, str],
                fabric: Optional[FabricModel] = None,
                validate: bool = True,
                max_events: int = 1_000_000,
                allow_stranded: bool = False,
                collect_trace: bool = False,
                baseline_seconds: Optional[float] = None,
                context: Optional[PreparedFaultContext] = None,
                _prefix: Optional[FaultPrefix] = None) -> CollectiveResult:
    """Execute a routed schedule under a fault timeline at one buffer size.

    ``baseline_seconds`` (the zero-fault completion time on the same base
    fabric) backs the ``robustness_slowdown`` metric; when omitted it is
    computed with one extra plain engine run.  ``allow_stranded=True``
    records permanently stranded flows as an infinite completion instead of
    raising (the adversarial search treats disconnection as the worst
    outcome); ``collect_trace=True`` stores per-epoch routes and down sets
    in ``meta["epoch_trace"]`` for the differential tests.  ``context`` is
    a :class:`~repro.faults.context.PreparedFaultContext` for this schedule
    and fabric — pass one when running the schedule repeatedly so the
    hoisted arrays, compiled delta template and reroute caches are shared;
    ``_prefix`` resumes from a :func:`capture_fault_prefix` snapshot whose
    capture instant equals the first epoch (adversarial search internal).
    """
    if isinstance(spec, str):
        spec = parse_fault_spec(spec)
    if isinstance(schedule, LinkSchedule):
        raise ValueError(
            "fault injection supports routed (path-based) schedules only; "
            "LinkSchedule steps are globally synchronized and cannot be "
            "rerouted mid-step — use a cut-through scheme (e.g. mcf-extp)")
    if validate:
        validate_routed_schedule(schedule)
    if context is not None:
        if context.schedule is not schedule:
            raise ValueError("context was prepared for a different schedule")
        if fabric is not None and fabric != context.fabric:
            raise ValueError("context was prepared for a different fabric")
        fabric = context.fabric

    if baseline_seconds is None:
        baseline_seconds = run_routed_collective(
            schedule, buffer_bytes, fabric=fabric,
            validate=False).completion_time

    if spec.trivial:
        # Literal delegation: a no-op fault timeline must be byte-identical
        # to today's engine output, so it *is* today's engine.
        result = run_routed_collective(schedule, buffer_bytes, fabric=fabric,
                                       validate=False)
        result.meta.update(
            robustness_slowdown=(result.completion_time / baseline_seconds
                                 if baseline_seconds > 0 else 1.0),
            baseline_seconds=float(baseline_seconds),
            reroute_count=0, stranded_bytes=0.0, fault_events=0,
            vc_layers=0, fault_spec=spec.canonical())
        return result

    fabric = fabric or FabricModel()
    if context is None:
        context = PreparedFaultContext(schedule, fabric)
    timeline = FaultTimeline(spec)
    topology = schedule.topology
    edges = context.edges
    n = topology.num_nodes
    shard = buffer_bytes / n

    orig_paths = context.orig_paths
    sizes = context.sizes_for(buffer_bytes)
    delays = context.delays
    num_flows = context.num_flows
    cache = context.reroute_cache

    delta = (context.delta_program()
             if delta_enabled() and num_flows else None)
    if _prefix is not None:
        if delta is None:
            _prefix = None             # oracle leg: simulate from scratch
        elif (_prefix.vc != spec.vc or not timeline.epochs
              or timeline.epochs[0] != _prefix.at):
            raise ValueError(
                "fault prefix does not match the spec timeline "
                "(capture instant must equal the first epoch)")

    remaining = sizes.astype(float, copy=True)
    active = remaining > SIM_EPS
    completion = np.where(active, 0.0, delays)
    stranded = np.zeros(num_flows, dtype=bool)
    current_paths: List[Optional[Path]] = list(orig_paths)

    queue = EventQueue()
    counters = {"fill_rounds": 0, "reroutes": 0, "stranded_bytes": 0.0,
                "fault_events": 0, "vc_layers": 0,
                "compile_seconds": 0.0, "reroute_seconds": 0.0,
                "delta_hits": 0, "delta_rebuilds": 0,
                "route_cache_hits": 0, "route_cache_misses": 0}
    trace: List[_EpochRecord] = []
    # Live-subprogram state: the compiled program, the global ids of its
    # rows, the local active mask, the workspace-aliased rates and the
    # pending completion event.  The delta engine keeps one full-flow-set
    # program (gids = identity, mask = live flows); the oracle compacts the
    # survivors per epoch.
    state: Dict[str, object] = {"program": None, "workspace": None,
                                "gids": np.zeros(0, dtype=np.int64),
                                "local_active": np.zeros(0, dtype=bool),
                                "rates": np.zeros(0), "last": 0.0,
                                "pending": None}
    all_gids = np.arange(num_flows, dtype=np.int64)

    def _compile_epoch(epoch_fabric: FabricModel) -> None:
        """Target the program at the epoch fabric (delta patch or rebuild)."""
        t0 = time.perf_counter()
        if delta is not None:
            live = active & ~stranded
            state["gids"] = all_gids
            if not live.any():
                state["program"] = None
                state["workspace"] = None
                state["local_active"] = np.zeros(num_flows, dtype=bool)
                state["rates"] = np.zeros(0)
            else:
                rebuilds = delta.apply(epoch_fabric, current_paths)
                if rebuilds:
                    counters["delta_rebuilds"] += rebuilds
                else:
                    counters["delta_hits"] += 1
                state["program"] = delta.program
                state["workspace"] = delta.workspace
                state["local_active"] = live
        else:
            gids = np.nonzero(active & ~stranded)[0]
            state["gids"] = gids
            if len(gids) == 0:
                state["program"] = None
                state["workspace"] = None
                state["local_active"] = np.zeros(0, dtype=bool)
                state["rates"] = np.zeros(0)
            else:
                flows = [FluidFlow(path=current_paths[i],
                                   size_bytes=remaining[i])
                         for i in gids]
                program = compile_flows(topology, flows, epoch_fabric,
                                        include_latency=False)
                state["program"] = program
                state["workspace"] = FillWorkspace(program)
                state["local_active"] = np.ones(len(gids), dtype=bool)
        counters["compile_seconds"] += time.perf_counter() - t0

    def _refill() -> None:
        """Engine-identical re-fill over the survivors; schedule the edge."""
        pending = state["pending"]
        if pending is not None:
            pending.cancel()
            state["pending"] = None
        local = state["local_active"]
        if state["program"] is None or not local.any():
            return
        rates, rounds = fill_rates(state["program"], local, state["workspace"])
        state["rates"] = rates
        counters["fill_rounds"] += rounds
        eligible = local & (rates > SIM_EPS)
        if not eligible.any():
            raise RuntimeError(
                "faulted simulation stalled: active flows have zero rate")
        state["last"] = queue.now
        gids = state["gids"]
        dt = float(np.min(remaining[gids[eligible]] / rates[eligible]))
        state["pending"] = queue.schedule(dt, _on_completion)

    def _integrate() -> None:
        """Drain the current rates into the global residuals up to now."""
        dt = queue.now - state["last"]
        state["last"] = queue.now
        local = state["local_active"]
        if dt <= 0 or state["program"] is None or not local.any():
            return
        gids = state["gids"]
        rates = state["rates"]
        live = gids[local]
        remaining[live] -= rates[local] * dt
        done = live[remaining[live] <= SIM_BYTES_EPS]
        if len(done):
            remaining[done] = 0.0
            completion[done] = queue.now + delays[done]
            active[done] = False
            local[np.isin(gids, done)] = False

    def _on_completion() -> None:
        state["pending"] = None
        _integrate()
        _refill()

    def _apply_route(i: int, new_path: Optional[Path]) -> None:
        """Credit one flow's epoch route decision into the run state."""
        if new_path is None:
            if not stranded[i]:
                stranded[i] = True
                counters["stranded_bytes"] += float(remaining[i])
            current_paths[i] = None
        else:
            stranded[i] = False
            if new_path != current_paths[i]:
                counters["reroutes"] += 1
            current_paths[i] = new_path

    def _on_epoch(t: float, initial: bool = False) -> None:
        """A fabric epoch: mutate the fabric, reroute, recompile, refill."""
        if not initial:
            counters["fault_events"] += 1
        _integrate()
        pending = state["pending"]
        if pending is not None:
            pending.cancel()
            state["pending"] = None
        epoch_fabric = timeline.fabric_at(fabric, t, edges)
        t0 = time.perf_counter()
        down: Set[Tuple[int, int]] = set(epoch_fabric.down_links)
        if delta is not None:
            down_key = epoch_fabric.down_links
            for i in np.nonzero(active)[0]:
                new_path, hit = cache.effective(down_key, down, orig_paths[i])
                counters["route_cache_hits" if hit
                         else "route_cache_misses"] += 1
                _apply_route(i, new_path)
        else:
            adjacency = surviving_adjacency(topology, down)
            for i in np.nonzero(active)[0]:
                _apply_route(i, effective_path(orig_paths[i], down, adjacency))
        live_ids = np.nonzero(active & ~stranded)[0]
        routes = [current_paths[i] for i in live_ids]
        if delta is not None:
            layers, hit = cache.certify(routes, spec.vc)
            if spec.vc != "off":
                counters["route_cache_hits" if hit
                         else "route_cache_misses"] += 1
        else:
            layers = certify_routes(routes, spec.vc)
        counters["vc_layers"] = max(counters["vc_layers"], layers)
        counters["reroute_seconds"] += time.perf_counter() - t0
        if collect_trace:
            trace.append(_EpochRecord(
                time=t, down=tuple(sorted(down)),
                paths={int(i): current_paths[i] for i in live_ids},
                stranded=tuple(int(i) for i in np.nonzero(stranded & active)[0])))
        _compile_epoch(epoch_fabric)
        _refill()

    # Fabric epochs are scheduled before any completion event exists, so
    # their sequence numbers are the lowest in the queue: an epoch colliding
    # with a completion instant deterministically fires first.
    if _prefix is not None:
        np.copyto(remaining, _prefix.remaining)
        np.copyto(active, _prefix.active)
        np.copyto(completion, _prefix.completion)
        counters["fill_rounds"] = _prefix.fill_rounds
        counters["vc_layers"] = _prefix.vc_layers
        queue.now = _prefix.at
        state["last"] = _prefix.at
        for t in timeline.epochs:
            queue.schedule_at(t, lambda t=t: _on_epoch(t))
    else:
        for t in timeline.epochs:
            queue.schedule_at(t, lambda t=t: _on_epoch(t))
        _on_epoch(0.0, initial=True)   # fold t=0 events into the start state
    try:
        queue.run(max_events=max_events)
    except RuntimeError as exc:
        raise RuntimeError("faulted simulation did not converge") from exc

    prefix_rounds = _prefix.fill_rounds if _prefix is not None else 0
    prefix_events = _prefix.events if _prefix is not None else 0
    record_simulation(counters["fill_rounds"] - prefix_rounds, queue.processed)
    record_fault_events(
        counters["fault_events"], counters["reroutes"],
        compile_seconds=counters["compile_seconds"],
        reroute_seconds=counters["reroute_seconds"],
        delta_hits=counters["delta_hits"],
        delta_rebuilds=counters["delta_rebuilds"],
        route_cache_hits=counters["route_cache_hits"],
        route_cache_misses=counters["route_cache_misses"])

    if active.any():
        stuck = np.nonzero(active)[0]
        if not allow_stranded:
            raise StrandedScheduleError(stuck, float(remaining[stuck].sum()))
        completion_time = float("inf")
    else:
        completion_time = float(completion.max()) if num_flows else 0.0

    meta: Dict[str, object] = {
        "num_flows": num_flows,
        "fill_rounds": counters["fill_rounds"],
        "events": queue.processed + prefix_events,
        "fault_events": counters["fault_events"],
        "reroute_count": counters["reroutes"],
        "stranded_bytes": float(counters["stranded_bytes"]),
        "vc_layers": counters["vc_layers"],
        "baseline_seconds": float(baseline_seconds),
        "robustness_slowdown": (completion_time / baseline_seconds
                                if baseline_seconds > 0 else float("inf")),
        "fault_spec": spec.canonical(),
        "delta": "on" if delta is not None else "off",
        "delta_hits": counters["delta_hits"],
        "delta_rebuilds": counters["delta_rebuilds"],
        "route_cache_hits": counters["route_cache_hits"],
        "route_cache_misses": counters["route_cache_misses"],
        "compile_seconds": counters["compile_seconds"],
        "reroute_seconds": counters["reroute_seconds"],
    }
    if collect_trace:
        meta["epoch_trace"] = trace
    return CollectiveResult(
        buffer_bytes=buffer_bytes,
        shard_bytes=shard,
        completion_time=completion_time,
        num_nodes=n,
        schedule_kind="routed",
        meta=meta,
    )


def run_faulted_sweep(schedule: Union[RoutedSchedule, LinkSchedule],
                      buffer_sizes: Sequence[float],
                      spec: Union[FaultSpec, str],
                      fabric: Optional[FabricModel] = None,
                      validate_first: bool = True,
                      max_events: int = 1_000_000) -> List[CollectiveResult]:
    """Run the faulted schedule across a buffer sweep (simulate-stage entry).

    The schedule is validated once and one
    :class:`~repro.faults.context.PreparedFaultContext` backs every buffer
    point, so the per-flow arrays, compiled delta template and reroute
    caches are built once for the whole sweep.  The zero-fault baseline is
    still computed per buffer point so every result carries its own
    ``robustness_slowdown``.
    """
    if isinstance(spec, str):
        spec = parse_fault_spec(spec)
    context = (PreparedFaultContext(schedule, fabric)
               if isinstance(schedule, RoutedSchedule) else None)
    results: List[CollectiveResult] = []
    for i, buf in enumerate(buffer_sizes):
        results.append(run_faulted(
            schedule, buf, spec, fabric=fabric,
            validate=validate_first and i == 0,
            max_events=max_events, context=context))
    return results
