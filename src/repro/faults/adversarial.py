"""Adversarial fault placement: worst-case k-link failure sets.

Given a synthesized schedule, which *k* physical links should an adversary
fail — and when — to slow it down the most?  :func:`worst_case_failures`
searches failure sets against one schedule + buffer point:

* **candidates** — physical (bidirectional) links ranked by the byte load
  the schedule puts on them, heaviest first, capped at ``candidates`` to
  bound the search;
* **exhaustive** mode evaluates every k-subset of the candidates (exact,
  cost C(candidates, k)); **greedy** grows the set one link at a time,
  keeping the worst extension (k evaluations per round — the classic
  submodular-style surrogate, not exact but near-linear);
* each candidate set is evaluated by a full faulted run
  (:func:`~repro.faults.runner.run_faulted`) with both directions of every
  chosen link downed at ``at`` (a fraction of the zero-fault completion
  time, default mid-run); a set that disconnects endpoints scores
  ``inf`` — disconnection *is* the worst case;
* ties break deterministically: by slowdown descending, then candidate
  rank ascending, so equal-loss sets resolve to the one failing the
  heaviest-loaded links.  ``seed`` is reserved for randomized candidate
  sampling and is recorded in the result.

The search batches its shared work.  One
:class:`~repro.faults.context.PreparedFaultContext` hoists the per-flow
arrays, the compiled delta template and the reroute caches for every
candidate; the healthy pre-strike prefix — identical for every candidate,
which only diverges at ``at`` — is simulated once
(:func:`~repro.faults.runner.capture_fault_prefix`) and resumed per
evaluation.  Candidate evaluations fan out across the shared
:class:`~repro.engine.runner.ParallelRunner` (``jobs``); the merge is
order-preserving and scoring is pure, so serial and parallel searches
return identical evaluation tables and worst sets.

The returned :class:`AdversarialResult` carries the worst set, its
slowdown, and the full sorted evaluation table (the ``repro robustness``
CLI prints it; the ``fig_robustness`` artifact plots the degradation curve
against failure count).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..engine.runner import ParallelRunner
from ..perf.delta import delta_enabled
from ..schedule.ir import RoutedSchedule
from ..simulator.collective import run_routed_collective
from ..simulator.fabric import FabricModel
from .context import PreparedFaultContext
from .runner import capture_fault_prefix, run_faulted
from .spec import FaultEvent, FaultSpec

__all__ = ["AdversarialResult", "ranked_physical_links", "worst_case_failures"]

Link = Tuple[int, int]


@dataclass
class AdversarialResult:
    """Outcome of a worst-case failure search against one schedule."""

    k: int
    at_seconds: float
    baseline_seconds: float
    worst_links: Tuple[Link, ...]          # physical links, (min, max) form
    worst_slowdown: float
    worst_stranded: bool
    evaluations: List[Dict[str, object]] = field(default_factory=list)
    mode: str = "exhaustive"
    seed: int = 0

    def worst_spec(self) -> FaultSpec:
        """The fault spec reproducing the worst case found."""
        return _failure_spec(self.worst_links, self.at_seconds, self.seed)


def ranked_physical_links(schedule: RoutedSchedule,
                          buffer_bytes: float) -> List[Tuple[Link, float]]:
    """Physical links by schedule byte load, heaviest first.

    Both directions of a physical link pool into one entry keyed by the
    ``(min, max)`` node pair — an adversary cutting a cable takes out both
    directions.  Ties break on the link id, so the ranking (and therefore
    greedy/exhaustive tie-breaks downstream) is fully deterministic.
    """
    n = schedule.topology.num_nodes
    shard = buffer_bytes / n
    load: Dict[Link, float] = {}
    for a in schedule.assignments:
        size = a.chunk.bytes(shard)
        for u, v in zip(a.route[:-1], a.route[1:]):
            key = (min(u, v), max(u, v))
            load[key] = load.get(key, 0.0) + size
    return sorted(load.items(), key=lambda kv: (-kv[1], kv[0]))


def _failure_spec(links: Sequence[Link], at: float, seed: int) -> FaultSpec:
    events = tuple(FaultEvent(time=at, kind="down", links=((u, v), (v, u)))
                   for u, v in links)
    return FaultSpec(events=events, seed=seed)


def worst_case_failures(schedule: RoutedSchedule, buffer_bytes: float,
                        k: int = 1,
                        fabric: Optional[FabricModel] = None,
                        at: Union[float, str] = 0.5,
                        candidates: int = 12,
                        mode: str = "auto",
                        seed: int = 0,
                        max_events: int = 1_000_000,
                        jobs: int = 1,
                        context: Optional[PreparedFaultContext] = None,
                        ) -> AdversarialResult:
    """Search the worst k-physical-link failure set against a schedule.

    ``at`` is the failure instant as a fraction of the zero-fault
    completion time (0 < at < 1; the default 0.5 strikes mid-run, when
    rerouting hurts most).  ``mode`` is ``exhaustive``, ``greedy`` or
    ``auto`` (exhaustive while C(candidates, k) stays under ~500 sets,
    greedy beyond).  ``jobs`` fans candidate evaluations across threads
    with an order-preserving merge — results are identical at any job
    count.  ``context`` shares a prepared fault context built elsewhere
    (e.g. by a sweep over ``k``); by default one is built here.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if mode not in ("auto", "exhaustive", "greedy"):
        raise ValueError(f"mode must be auto/exhaustive/greedy, got {mode!r}")
    at = float(at)
    if not 0.0 < at < 1.0:
        raise ValueError(f"at must be a fraction in (0, 1), got {at}")

    if context is None:
        context = PreparedFaultContext(schedule, fabric)
    elif context.schedule is not schedule:
        raise ValueError("context was prepared for a different schedule")
    elif fabric is not None and fabric != context.fabric:
        raise ValueError("context was prepared for a different fabric")
    fabric = context.fabric

    baseline = run_routed_collective(schedule, buffer_bytes, fabric=fabric,
                                     validate=False).completion_time
    at_seconds = at * baseline
    ranked = ranked_physical_links(schedule, buffer_bytes)[:max(candidates, k)]
    pool = [link for link, _ in ranked]
    rank = {link: i for i, link in enumerate(pool)}
    if len(pool) < k:
        raise ValueError(
            f"schedule only loads {len(pool)} physical links; cannot fail {k}")

    # Every candidate evolves identically until the strike instant: simulate
    # that healthy prefix once and resume each evaluation from the snapshot.
    prefix = None
    if delta_enabled() and context.num_flows and at_seconds > 0:
        prefix = capture_fault_prefix(
            context, buffer_bytes, at_seconds,
            vc=_failure_spec((), at_seconds, seed).vc)
    runner = ParallelRunner(jobs=jobs)

    def evaluate(links: Tuple[Link, ...]) -> Dict[str, object]:
        result = run_faulted(
            schedule, buffer_bytes, _failure_spec(links, at_seconds, seed),
            fabric=fabric, validate=False, max_events=max_events,
            allow_stranded=True, baseline_seconds=baseline,
            context=context, _prefix=prefix)
        stranded = result.completion_time == float("inf")
        slowdown = (float("inf") if stranded
                    else result.completion_time / baseline)
        return {"links": links, "slowdown": slowdown, "stranded": stranded,
                "completion_seconds": result.completion_time,
                "reroute_count": result.meta["reroute_count"],
                "stranded_bytes": result.meta["stranded_bytes"]}

    def sort_key(ev: Dict[str, object]) -> Tuple[float, Tuple[int, ...]]:
        # Slowdown descending (stranded = -inf sorts first), then the
        # heaviest-loaded (lowest-rank) links.
        return (-ev["slowdown"], tuple(rank[link] for link in ev["links"]))

    if mode == "auto":
        exhaustive_sets = 1
        for i in range(k):
            exhaustive_sets = exhaustive_sets * (len(pool) - i) // (i + 1)
        mode = "exhaustive" if exhaustive_sets <= 500 else "greedy"

    evaluations: List[Dict[str, object]] = []
    if mode == "exhaustive":
        evaluations.extend(
            runner.map(evaluate, list(itertools.combinations(pool, k))))
    else:
        chosen: Tuple[Link, ...] = ()
        for _ in range(k):
            round_evals = runner.map(
                evaluate,
                [chosen + (link,) for link in pool if link not in chosen])
            round_evals.sort(key=sort_key)
            evaluations.extend(round_evals)
            chosen = round_evals[0]["links"]

    evaluations.sort(key=sort_key)
    full = [ev for ev in evaluations if len(ev["links"]) == k]
    worst = full[0]
    return AdversarialResult(
        k=k,
        at_seconds=at_seconds,
        baseline_seconds=baseline,
        worst_links=tuple(worst["links"]),
        worst_slowdown=worst["slowdown"],
        worst_stranded=bool(worst["stranded"]),
        evaluations=evaluations,
        mode=mode,
        seed=seed,
    )
