"""Deterministic online route repair around down links.

When a fabric epoch takes links down, every in-flight flow whose remaining
path crosses a down link needs a new route.  The repair here is the online
analogue of the paper's deadlock-free routing layer:

* a flow whose original route avoids every down link keeps it (schedules
  are synthesized load-balanced; repair must not perturb untouched flows);
* an affected flow is re-steered onto the lexicographically-smallest
  shortest path from its source to its destination over the surviving
  links (BFS with neighbors visited in ascending node order — fully
  deterministic, no RNG);
* a flow whose endpoints are disconnected by the failure set is *stranded*
  (``None``): the caller parks it and accounts its residual bytes.

Each epoch's full active route set is then certified deadlock-free through
the existing LASH / DF-SSSP layer assignment (:func:`certify_routes`),
mirroring how the synthesized schedules are certified offline: the virtual
channel count the repair needs is reported alongside the rerouted paths.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..routing.dfsssp import dfsssp_assign
from ..routing.lash import lash_sequential_assign
from ..topology.base import Topology

__all__ = ["surviving_adjacency", "repair_path", "effective_path",
           "certify_routes", "down_set"]

Link = Tuple[int, int]
Path = Tuple[int, ...]


def surviving_adjacency(topology: Topology,
                        down: Set[Link]) -> Dict[int, List[int]]:
    """Ascending-order adjacency over the links that are still up."""
    adjacency: Dict[int, List[int]] = {node: [] for node in topology.nodes}
    for u, v in topology.edges:
        if (u, v) not in down:
            adjacency[u].append(v)
    for neighbors in adjacency.values():
        neighbors.sort()
    return adjacency


def repair_path(source: int, destination: int,
                adjacency: Dict[int, List[int]]) -> Optional[Path]:
    """Lexicographically-smallest shortest path over surviving links.

    BFS visiting neighbors in ascending order: the first parent to reach a
    node is the smallest among all shortest-path parents, so the extracted
    path is the unique lexicographic minimum (deterministic across runs and
    platforms).  Returns ``None`` when the endpoints are disconnected.
    """
    if source == destination:
        return (source,)
    parent: Dict[int, int] = {source: source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for neighbor in adjacency.get(node, ()):
            if neighbor not in parent:
                parent[neighbor] = node
                if neighbor == destination:
                    frontier.clear()
                    break
                frontier.append(neighbor)
    if destination not in parent:
        return None
    path = [destination]
    while path[-1] != source:
        path.append(parent[path[-1]])
    return tuple(reversed(path))


def effective_path(original: Path, down: Set[Link],
                   adjacency: Dict[int, List[int]]) -> Optional[Path]:
    """The route a flow runs on under the given down set.

    The original path wins whenever it is clear of down links; otherwise
    the flow is re-steered via :func:`repair_path` (or stranded).
    """
    if not down or all((u, v) not in down
                       for u, v in zip(original[:-1], original[1:])):
        return original
    return repair_path(original[0], original[-1], adjacency)


def certify_routes(routes: Sequence[Path], vc: str = "lash") -> int:
    """Deadlock-free layer count for an epoch's active route set.

    Runs the selected layer assignment (``lash`` sequential packing or
    ``dfsssp`` ordered insertion) over the distinct multi-hop routes and
    returns the number of virtual channels it needs; ``vc="off"`` skips
    certification and returns 0.  The assignment never fails — both
    algorithms open a fresh layer when a route fits nowhere — so this is
    an accounting knob, not a feasibility gate.
    """
    if vc == "off":
        return 0
    distinct: List[Path] = []
    seen: Set[Path] = set()
    for route in routes:
        route = tuple(route)
        if len(route) >= 2 and route not in seen:
            seen.add(route)
            distinct.append(route)
    if not distinct:
        return 0
    if vc == "dfsssp":
        return dfsssp_assign(distinct).num_layers
    return lash_sequential_assign(distinct).num_layers


def down_set(links: Sequence[Link]) -> FrozenSet[Link]:
    """Normalize a link sequence into the set form the repair functions take."""
    return frozenset((int(u), int(v)) for u, v in links)
