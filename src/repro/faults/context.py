"""Reusable prepared state for faulted runs: hoisted arrays + route caches.

Every call to :func:`~repro.faults.runner.run_faulted` used to rebuild the
same per-flow arrays (planned routes, completion-latency delays, shard
sizes) and re-derive every reroute from scratch.  A
:class:`PreparedFaultContext` binds one ``(schedule, fabric)`` pair and
hoists all of that so buffer sweeps (:func:`~repro.faults.runner.
run_faulted_sweep`), fault-grid sweeps and the adversarial search
(:func:`~repro.faults.adversarial.worst_case_failures`) pay it once:

* ``orig_paths`` / ``delays`` / :meth:`PreparedFaultContext.sizes_for` —
  the hoisted per-flow arrays (sizes are memoized per buffer point with
  bit-identical floats: ``fraction * shard`` exactly as the runner
  computed them inline);
* :meth:`PreparedFaultContext.delta_program` — a compiled
  :class:`~repro.perf.delta.DeltaProgram` template, cloned per run so
  concurrent evaluations mutate independent arenas;
* :class:`RerouteCache` — BFS repair and LASH/DF-SSSP certification
  memoized by ``(canonical down-set, planned path)`` and
  ``(vc, distinct route set)``, shared (and locked) across every run that
  reuses the context.

All caches are insertion-order faithful: the certification key is the
ordered first-seen distinct route tuple — the exact sequence
:func:`~repro.faults.reroute.certify_routes` feeds LASH — because layer
counts depend on insertion order and must match the uncached oracle.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..perf.delta import DeltaProgram
from ..simulator.fabric import FabricModel
from .reroute import certify_routes, effective_path, surviving_adjacency

__all__ = ["PreparedFaultContext", "RerouteCache"]

Link = Tuple[int, int]
Path = Tuple[int, ...]


class RerouteCache:
    """Memoized route repair + certification for one topology.

    Keys are canonical: the down set arrives as the epoch fabric's sorted
    ``down_links`` tuple, so repeated epochs, flapping timelines and every
    candidate of an adversarial search that lands on the same fabric state
    hit the same entries.  Thread-safe (the adversarial search shares one
    cache across ``--jobs`` workers); lookups report hit/miss so callers
    can credit the engine's ``route_cache_*`` counters per run.
    """

    def __init__(self, topology) -> None:
        self.topology = topology
        self._lock = threading.Lock()
        self._adjacency: Dict[Tuple[Link, ...], Dict[int, List[int]]] = {}
        self._paths: Dict[Tuple[Tuple[Link, ...], Path], Optional[Path]] = {}
        self._layers: Dict[Tuple[str, Tuple[Path, ...]], int] = {}
        self.hits = 0
        self.misses = 0

    def adjacency(self, down_key: Tuple[Link, ...],
                  down: Set[Link]) -> Dict[int, List[int]]:
        """The surviving adjacency for one down set, built at most once."""
        with self._lock:
            adj = self._adjacency.get(down_key)
        if adj is None:
            adj = surviving_adjacency(self.topology, down)
            with self._lock:
                adj = self._adjacency.setdefault(down_key, adj)
        return adj

    def effective(self, down_key: Tuple[Link, ...], down: Set[Link],
                  original: Path) -> Tuple[Optional[Path], bool]:
        """The route in force for one planned path under one down set.

        Returns ``(path_or_None, cache_hit)``; the path is exactly what
        :func:`~repro.faults.reroute.effective_path` computes (original if
        clear, BFS repair, or ``None`` when disconnected).
        """
        key = (down_key, original)
        with self._lock:
            if key in self._paths:
                self.hits += 1
                return self._paths[key], True
        path = effective_path(original, down, self.adjacency(down_key, down))
        with self._lock:
            self.misses += 1
            path = self._paths.setdefault(key, path)
        return path, False

    def certify(self, routes: Sequence[Path], vc: str) -> Tuple[int, bool]:
        """Memoized deadlock-free layer count for one epoch's route set.

        The key preserves the first-seen order of the distinct multi-hop
        routes (LASH layer counts are insertion-order dependent), so the
        cached value always equals the direct ``certify_routes`` call.
        """
        if vc == "off":
            return 0, False
        distinct: List[Path] = []
        seen: Set[Path] = set()
        for route in routes:
            route = tuple(route)
            if len(route) >= 2 and route not in seen:
                seen.add(route)
                distinct.append(route)
        key = (vc, tuple(distinct))
        with self._lock:
            if key in self._layers:
                self.hits += 1
                return self._layers[key], True
        layers = certify_routes(distinct, vc)
        with self._lock:
            self.misses += 1
            layers = self._layers.setdefault(key, layers)
        return layers, False


class PreparedFaultContext:
    """Hoisted per-flow arrays + shared caches for one (schedule, fabric).

    Build one and pass it to every :func:`~repro.faults.runner.run_faulted`
    call that shares the schedule and base fabric — the sweep and
    adversarial drivers do this automatically.  All members are either
    immutable or internally locked, so one context can back concurrent
    evaluations.
    """

    def __init__(self, schedule, fabric: Optional[FabricModel] = None) -> None:
        self.schedule = schedule
        self.fabric = fabric or FabricModel()
        self.topology = schedule.topology
        self.edges = tuple(self.topology.edges)
        self.num_nodes = int(self.topology.num_nodes)
        self.orig_paths: List[Path] = [tuple(a.route)
                                       for a in schedule.assignments]
        self.num_flows = len(self.orig_paths)
        # Per-flow shard fractions: bytes(shard) == fraction * shard with
        # fraction == bytes(1.0), so sizes_for() reproduces the runner's
        # inline computation bit-for-bit at any buffer point.
        self._fractions = [a.chunk.bytes(1.0) for a in schedule.assignments]
        self.delays = np.array([self.fabric.per_message_overhead
                                + (len(p) - 1) * self.fabric.per_hop_latency
                                for p in self.orig_paths])
        self.reroute_cache = RerouteCache(self.topology)
        self._lock = threading.Lock()
        self._sizes: Dict[float, np.ndarray] = {}
        self._template: Optional[DeltaProgram] = None

    def sizes_for(self, buffer_bytes: float) -> np.ndarray:
        """Per-flow byte sizes at one buffer point (memoized, read-only)."""
        key = float(buffer_bytes)
        with self._lock:
            sizes = self._sizes.get(key)
        if sizes is None:
            shard = key / self.num_nodes
            sizes = np.array([f * shard for f in self._fractions])
            with self._lock:
                sizes = self._sizes.setdefault(key, sizes)
        return sizes

    def delta_program(self) -> DeltaProgram:
        """A fresh :class:`DeltaProgram` clone of the compiled template."""
        with self._lock:
            template = self._template
        if template is None:
            template = DeltaProgram(self.topology, self.fabric,
                                    self.orig_paths, self._fractions)
            with self._lock:
                if self._template is None:
                    self._template = template
                template = self._template
        return template.clone()
