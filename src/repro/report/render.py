"""Rendering backends for report artifacts: CSV/Markdown always, PNG/HTML optional.

Every artifact is guaranteed a CSV file per table and a Markdown section
embedding the exact text tables the benchmarks print (the byte-identical
receipts).  When matplotlib is importable, figures additionally render as PNG
line charts; when the ``markdown`` package is importable, ``index.md`` is also
compiled to ``index.html``.  Both imports are gated through module-level
helpers so tests can simulate their absence with a monkeypatch.

Chart discipline (applies only to the optional PNG backend): one axis per
chart, series colors fixed per entity by the spec (never cycled per panel),
thin 2px lines with visible markers, a legend whenever two or more series
share the plot, and a recessive grid.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .aggregate import Plot, SpecResult, Table

__all__ = ["RenderedArtifact", "render_spec", "render_index",
           "table_to_markdown", "write_table_csv"]


# --------------------------------------------------------------------------- #
# Optional backends (monkeypatch targets in tests)
# --------------------------------------------------------------------------- #
def _import_pyplot():
    """Import matplotlib's Agg-backed pyplot; raises ImportError when absent."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    return plt


def _import_markdown():
    """Import the ``markdown`` package; raises ImportError when absent."""
    import markdown

    return markdown


@dataclass
class RenderedArtifact:
    """Files and index section produced for one artifact."""

    spec_id: str
    section: str                      # markdown section for index.md
    files: List[str] = field(default_factory=list)
    figure_backend: str = "none"      # "matplotlib" | "fallback" | "none"


# --------------------------------------------------------------------------- #
# Tables
# --------------------------------------------------------------------------- #
def table_to_markdown(table: Table) -> str:
    """A :class:`Table` as a Markdown pipe table (structured rows)."""
    lines = [f"**{table.title}**", ""]
    lines.append("| " + " | ".join(str(h) for h in table.headers) + " |")
    lines.append("| " + " | ".join("---" for _ in table.headers) + " |")
    for row in table.rows:
        lines.append("| " + " | ".join(_fmt_cell(cell) for cell in row) + " |")
    return "\n".join(lines)


def _fmt_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.6g}"
    return str(cell)


def write_table_csv(table: Table, path: str) -> str:
    """Write a table's structured rows as CSV; returns the path."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.headers)
        writer.writerows(table.rows)
    return path


# --------------------------------------------------------------------------- #
# Figures
# --------------------------------------------------------------------------- #
def _render_plot_png(plot: Plot, path: str) -> str:
    plt = _import_pyplot()
    fig, ax = plt.subplots(figsize=(6.4, 4.0), dpi=120)
    for label, ys in plot.series.items():
        color = plot.colors.get(label)
        bound_like = label.lower().endswith("bound")
        ax.plot(plot.x, ys, label=label, color=color, linewidth=2.0,
                linestyle="--" if bound_like else "-",
                marker=None if bound_like else "o", markersize=5)
    if plot.logx:
        ax.set_xscale("log", base=2)
    if plot.logy:
        ax.set_yscale("log")
    ax.set_title(plot.title, fontsize=10)
    ax.set_xlabel(plot.x_label)
    ax.set_ylabel(plot.y_label)
    ax.grid(True, alpha=0.25, linewidth=0.5)
    for spine in ("top", "right"):
        ax.spines[spine].set_visible(False)
    if len(plot.series) >= 2:
        ax.legend(frameon=False, fontsize=8)
    fig.tight_layout()
    fig.savefig(path)
    plt.close(fig)
    return path


# --------------------------------------------------------------------------- #
# Per-spec rendering
# --------------------------------------------------------------------------- #
def render_spec(result: SpecResult, out_dir: str) -> RenderedArtifact:
    """Render one artifact into ``out_dir`` and build its index section.

    Always writes one CSV per table; attempts a PNG per plot via matplotlib,
    falling back (with an explicit note) to the CSV/Markdown content when the
    import fails.  The exact benchmark text tables are embedded in fenced
    blocks so the report carries byte-identical receipts.
    """
    art = RenderedArtifact(spec_id=result.spec_id, section="")
    lines: List[str] = [f"## {result.spec_id} — {result.title}", ""]
    if result.description:
        lines.append(result.description)
        lines.append("")
    if result.errors:
        lines.append(f"**Status: error** ({len(result.errors)} failed scenario(s))")
        lines.append("")
        for err in result.errors:
            lines.append(f"- `{err}`")
        lines.append("")

    png_paths: List[str] = []
    if result.plots:
        try:
            for plot in result.plots:
                path = os.path.join(out_dir, f"{plot.name}.png")
                png_paths.append(_render_plot_png(plot, path))
            art.figure_backend = "matplotlib"
        except ImportError:
            art.figure_backend = "fallback"
            png_paths = []
            lines.append("_Figures: matplotlib unavailable — the tables and "
                         "CSV data below are the canonical fallback._")
            lines.append("")
    for path in png_paths:
        name = os.path.basename(path)
        lines.append(f"![{name}]({name})")
        art.files.append(path)
    if png_paths:
        lines.append("")

    for table in result.tables:
        lines.append("```text")
        lines.append(table.text)
        lines.append("```")
        csv_name = f"{result.spec_id}__{table.name}.csv"
        csv_path = write_table_csv(table, os.path.join(out_dir, csv_name))
        art.files.append(csv_path)
        lines.append(f"Data: [{csv_name}]({csv_name})")
        lines.append("")

    art.section = "\n".join(lines).rstrip() + "\n"
    return art


# --------------------------------------------------------------------------- #
# Index assembly
# --------------------------------------------------------------------------- #
def render_index(rendered: Sequence[RenderedArtifact], provenance_md: str,
                 out_dir: str, title: str = "Reproduction report",
                 intro: Optional[str] = None) -> List[str]:
    """Assemble ``index.md`` (and ``index.html`` when ``markdown`` is importable).

    Returns the list of index files written.
    """
    parts: List[str] = [f"# {title}", ""]
    if intro:
        parts.append(intro)
        parts.append("")
    for art in rendered:
        parts.append(art.section)
    parts.append(provenance_md)
    text = "\n".join(parts).rstrip() + "\n"

    written: List[str] = []
    index_md = os.path.join(out_dir, "index.md")
    with open(index_md, "w") as fh:
        fh.write(text)
    written.append(index_md)

    try:
        markdown = _import_markdown()
    except ImportError:
        return written
    body = markdown.markdown(text, extensions=["tables", "fenced_code"])
    html = ("<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
            f"<title>{title}</title>"
            "<style>body{font-family:sans-serif;max-width:60rem;margin:2rem auto;"
            "padding:0 1rem;color:#0b0b0b;background:#fcfcfb}"
            "pre{background:#f4f4f2;padding:0.75rem;overflow-x:auto}"
            "table{border-collapse:collapse}td,th{border:1px solid #d8d7d2;"
            "padding:0.25rem 0.6rem}</style></head><body>"
            f"{body}</body></html>")
    index_html = os.path.join(out_dir, "index.html")
    with open(index_html, "w") as fh:
        fh.write(html)
    written.append(index_html)
    return written
