"""Declarative registry of the paper's figures and tables.

Each :class:`ArtifactSpec` declares one artifact of conf_hpdc_BasuZFPKK24
(fig3, fig4, fig7, fig10, table1) as *data*: a scenario grid (executed through
:func:`repro.experiments.run_sweep`, so stage caching, ``--jobs`` and
``--resume`` come for free) plus an aggregation from sweep records to
:class:`~repro.report.aggregate.Table`/:class:`~repro.report.aggregate.Plot`
artifacts.

The Fig. 3 / Fig. 4 / Table 1 benchmarks are thin wrappers over the same
specs via :func:`run_panel` — identical scenario definitions and byte-identical
table text — so benchmarks, CI and ``repro report`` can never drift apart.

``fast=True`` selects reduced grids (fewer panels, sizes and buffer points)
sized for CI smoke runs; the full grids match the benchmarks' default
(``REPRO_BENCH_SCALE=small``) configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis import format_table
from ..core import lower_bound_time_regular
from ..experiments import Plan, Scenario, ScenarioResult, result_from_plan
from ..simulator import a100_ml_fabric, cerio_hpc_fabric, steady_state_throughput
from ..topology import from_spec
from .aggregate import (
    Plot,
    Point,
    SpecResult,
    Table,
    make_table,
    throughput_series,
    throughput_table,
)

__all__ = ["SeriesSpec", "PanelSpec", "PanelData", "ArtifactSpec",
           "ThroughputFigureSpec", "run_panel", "REGISTRY", "available_specs",
           "get_spec", "FIG3", "FIG4", "FIG7", "FIG10", "FIG_CLUSTER",
           "FIG_ROBUSTNESS", "TABLE1"]

#: Fixed categorical series colors (validated light-mode palette) — assigned
#: by *label* from each spec's canonical label order, never by position in a
#: panel, so a panel that omits a series does not repaint the survivors.
CATEGORICAL = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100",
               "#e87ba4", "#008300", "#4a3aa7", "#e34948")
#: Reference lines (theoretical bounds) wear neutral ink, not a series hue.
BOUND_COLOR = "#52514e"

#: Full-grid buffer sweep (matches ``benchmarks/conftest.py`` at small scale)
#: and the reduced --fast sweep.
FULL_BUFFERS = (2 ** 15, 2 ** 19, 2 ** 23, 2 ** 27)
FAST_BUFFERS = (2 ** 15, 2 ** 23)


@dataclass
class SeriesSpec:
    """One column of a panel: a display label bound to a scheme (+ knobs)."""

    label: str
    scheme: str
    scheme_params: Mapping[str, object] = field(default_factory=dict)
    fabric: Optional[str] = None          # overrides the spec's default fabric


@dataclass
class PanelSpec:
    """One panel of a figure: a topology plus the series drawn on it."""

    key: str                              # short id, e.g. "bipartite"
    name: str                             # display name, e.g. "Complete Bipartite"
    topology: str                         # topology spec string
    series: Tuple[SeriesSpec, ...]
    host_bandwidth: Optional[float] = None


@dataclass
class PanelData:
    """Everything :func:`run_panel` produced for one panel (benchmark-facing)."""

    panel: PanelSpec
    results: Dict[str, ScenarioResult]    # label -> executed scenario
    series: Dict[str, List[Point]]        # label -> simulated points (+ bounds)
    tables: List[Table]
    plots: List[Plot]


# --------------------------------------------------------------------------- #
# Spec base
# --------------------------------------------------------------------------- #
class ArtifactSpec:
    """Base class: a paper artifact as scenarios plus an aggregation.

    Subclasses define :meth:`panels` and :meth:`aggregate_panel`;
    :meth:`scenarios` / :meth:`aggregate` derive the flat sweep interface the
    report driver uses.  Scenario ``name`` fields encode
    ``<spec_id>/<panel>/<label>`` so sweep results map back to panels without
    re-hashing (names are cosmetic: they never enter the scenario key).
    """

    spec_id: str = ""
    kind: str = "figure"                  # "figure" | "table"
    title: str = ""
    description: str = ""
    through: str = "simulate"             # last Plan stage the scenarios run
    timed_through: str = "synthesize"     # stage run under the benchmark timer
    headline: str = ""                    # label the benchmark times
    label_order: Tuple[str, ...] = ()     # canonical label -> color assignment
    fabric: str = "hpc"
    max_denominator: int = 64

    # ------------------------------------------------------------------ #
    def buffers(self, fast: bool = False) -> Tuple[int, ...]:
        """Buffer sweep for the simulate stage (empty for synthesis-only specs)."""
        return FAST_BUFFERS if fast else FULL_BUFFERS

    def panels(self, fast: bool = False, scale: str = "small") -> Tuple[PanelSpec, ...]:
        """The spec's panels; ``fast`` trims to the CI subset."""
        raise NotImplementedError

    def panel(self, key: str, scale: str = "small") -> PanelSpec:
        """Look up one panel by key (benchmark entry point)."""
        for panel in self.panels(fast=False, scale=scale):
            if panel.key == key:
                return panel
        raise KeyError(f"{self.spec_id}: unknown panel {key!r}")

    def scenario_name(self, panel: PanelSpec, label: str) -> str:
        """The ``name`` stamped on a panel series' scenario."""
        return f"{self.spec_id}/{panel.key}/{label}"

    def scenario(self, panel: PanelSpec, series: SeriesSpec,
                 buffers: Sequence[float]) -> Scenario:
        """Materialize one panel series as a declarative scenario."""
        return Scenario(
            topology=panel.topology,
            fabric=series.fabric or self.fabric,
            scheme=series.scheme,
            scheme_params=dict(series.scheme_params),
            host_bandwidth=panel.host_bandwidth,
            max_denominator=self.max_denominator,
            buffers=tuple(buffers),
            name=self.scenario_name(panel, series.label),
        )

    def scenarios(self, fast: bool = False) -> List[Scenario]:
        """The spec's full scenario list (the grid ``run_sweep`` executes)."""
        buffers = self.buffers(fast)
        return [self.scenario(panel, series, buffers)
                for panel in self.panels(fast)
                for series in panel.series]

    # ------------------------------------------------------------------ #
    def aggregate_panel(self, panel: PanelSpec,
                        results_by_label: Mapping[str, ScenarioResult],
                        ) -> Tuple[List[Table], List[Plot], Dict[str, List[Point]]]:
        """Turn one panel's executed scenarios into tables/plots/series."""
        raise NotImplementedError

    def aggregate(self, results: Sequence[ScenarioResult],
                  fast: bool = False) -> SpecResult:
        """Turn a completed sweep into this spec's :class:`SpecResult`."""
        out = SpecResult(spec_id=self.spec_id, kind=self.kind, title=self.title,
                         description=self.description)
        out.num_scenarios = len(results)
        out.num_resumed = sum(1 for r in results if r.resumed)
        for res in results:
            for status in res.stage_cache.values():
                out.stage_cache[status] = out.stage_cache.get(status, 0) + 1
        by_name = {r.scenario.name: r for r in results}
        for panel in self.panels(fast):
            label_results: Dict[str, ScenarioResult] = {}
            failed = False
            for series in panel.series:
                res = by_name.get(self.scenario_name(panel, series.label))
                if res is None or res.status != "ok":
                    out.errors.append(
                        f"{self.scenario_name(panel, series.label)}: "
                        + (res.error or "unknown error" if res else "missing result"))
                    failed = True
                    continue
                label_results[series.label] = res
            if failed:
                continue
            tables, plots, _ = self.aggregate_panel(panel, label_results)
            out.tables.extend(tables)
            out.plots.extend(plots)
        return out

    # ------------------------------------------------------------------ #
    def series_color(self, label: str) -> str:
        """Fixed categorical color for a series label (bounds wear neutral ink)."""
        if label not in self.label_order:
            return BOUND_COLOR
        return CATEGORICAL[self.label_order.index(label) % len(CATEGORICAL)]

    def _throughput_plot(self, panel: PanelSpec, title: str,
                         series: Mapping[str, List[Point]]) -> Plot:
        buffers = next(iter(series.values()), [])
        return Plot(
            name=f"{self.spec_id}_{panel.key}",
            title=title,
            x_label="buffer size (bytes)",
            y_label="throughput (GB/s)",
            x=[p.buffer_bytes for p in buffers],
            series={label: [p.throughput / 1e9 for p in points]
                    for label, points in series.items()},
            colors={label: self.series_color(label) for label in series},
            logx=True,
        )


def run_panel(spec: ArtifactSpec, panel: PanelSpec,
              buffers: Optional[Sequence[float]] = None,
              timer=None, cache=None, n_jobs: int = 1) -> PanelData:
    """Execute one panel through the staged Plan pipeline (benchmark path).

    ``timer`` (if given) is called as ``timer(fn)`` exactly once, wrapping the
    headline series' partial run through ``spec.timed_through`` — the hook the
    benchmarks point at ``benchmark.pedantic``.  ``cache`` overrides the
    process-wide stage cache (benchmarks pass a local one so a disabled global
    cache still demonstrates stage sharing).  Tables are byte-identical to the
    report's rendering of the same panel.
    """
    if buffers is None:
        buffers = spec.buffers(fast=False)
    results: Dict[str, ScenarioResult] = {}
    for series in panel.series:
        scenario = spec.scenario(panel, series, buffers)
        plan = Plan(scenario, cache=cache, n_jobs=n_jobs)
        if timer is not None and series.label == spec.headline:
            timer(lambda: plan.run(through=spec.timed_through))
        results[series.label] = result_from_plan(
            scenario, plan.run(through=spec.through), through=spec.through)
    tables, plots, series_map = spec.aggregate_panel(panel, results)
    return PanelData(panel=panel, results=results, series=series_map,
                     tables=tables, plots=plots)


# --------------------------------------------------------------------------- #
# Fig. 3 / Fig. 4 — throughput-vs-buffer figures
# --------------------------------------------------------------------------- #
class ThroughputFigureSpec(ArtifactSpec):
    """Shared shape of Fig. 3/4: per-panel buffer sweeps plus an upper bound."""

    def _bound_and_title(self, panel: PanelSpec,
                         metrics: Mapping[str, object]) -> Tuple[float, str]:
        raise NotImplementedError

    def aggregate_panel(self, panel, results_by_label):
        head = results_by_label[self.headline]
        bound, title = self._bound_and_title(panel, head.metrics)
        series: Dict[str, List[Point]] = {}
        head_points = [Point(p.buffer_bytes, bound)
                       for p in throughput_series(head.metrics)]
        series["Upper Bound"] = head_points
        for s in panel.series:
            series[s.label] = throughput_series(results_by_label[s.label].metrics)
        table = throughput_table(panel.key, title, series)
        plot = self._throughput_plot(panel, title, series)
        return [table], [plot], series


class _Fig3Spec(ThroughputFigureSpec):
    """Fig. 3: link-based all-to-all schedules on the ML (A100-like) fabric."""

    spec_id = "fig3"
    title = "Fig. 3: throughput of link-based all-to-all schedules"
    description = ("tsMCF vs the TACCL-like surrogate and the theoretical "
                   "upper bound (N-1)*f*b on the store-and-forward ML fabric; "
                   "the torus panel adds the paper's host-injection bottleneck.")
    fabric = "ml"
    headline = "tsMCF/G"
    label_order = ("tsMCF/G", "TACCL/G")

    def panels(self, fast: bool = False, scale: str = "small"):
        both = (SeriesSpec("tsMCF/G", "tsmcf"), SeriesSpec("TACCL/G", "taccl"))
        panels = [PanelSpec("bipartite", "Complete Bipartite",
                            "bipartite:left=4,right=4", both)]
        if fast:
            return tuple(panels)
        panels.append(PanelSpec("hypercube", "3D Hypercube", "hypercube:dim=3", both))
        panels.append(PanelSpec("twisted", "3D Twisted Hypercube", "twisted:dim=3", both))
        dims = "3x3x3" if scale == "paper" else "3x3"
        spec = f"torus:dims={dims}"
        # §5.1 ratio: 100 Gbps injection vs degree * 25 Gbps NIC bandwidth.
        host_bandwidth = from_spec(spec).degree() * 2.0 / 3.0
        panels.append(PanelSpec("torus", f"Torus {dims} (host bottleneck)", spec,
                                (SeriesSpec("tsMCF/G", "tsmcf"),),
                                host_bandwidth=host_bandwidth))
        return tuple(panels)

    def _bound_and_title(self, panel, metrics):
        # The bound (like the simulated series) is expressed over the graph the
        # schedule runs on — the augmented graph when a host bottleneck applies.
        n_graph = int(metrics.get("num_graph_nodes", metrics.get("num_nodes", 0)))
        bound = steady_state_throughput(n_graph, float(metrics["concurrent_flow"]),
                                        a100_ml_fabric())
        title = (f"Fig. 3 ({panel.name}, N={metrics['num_nodes']}): "
                 "throughput GB/s vs buffer size")
        return bound, title


class _Fig4Spec(ThroughputFigureSpec):
    """Fig. 4: path-based (routed) schedules on the cut-through HPC fabric."""

    spec_id = "fig4"
    title = "Fig. 4: throughput of path-based all-to-all schedules"
    description = ("MCF-extP vs ILP-disjoint, EwSP, SSSP, DOR and the native "
                   "single-path baseline on the Cerio-like fabric, whose "
                   "forwarding bandwidth exceeds injection bandwidth.")
    fabric = "hpc"
    headline = "MCF-extP/C"
    max_denominator = 16
    label_order = ("MCF-extP/C", "ILP-disjoint/C", "EwSP/C", "SSSP/C",
                   "DOR/C", "NCCL-native/G", "OMPI-native/C")

    def panels(self, fast: bool = False, scale: str = "small"):
        if fast:
            return (PanelSpec("bipartite", "Complete Bipartite",
                              "bipartite:left=4,right=4",
                              (SeriesSpec("MCF-extP/C", "mcf-extp"),
                               SeriesSpec("EwSP/C", "ewsp"),
                               SeriesSpec("NCCL-native/G", "native"))),)
        dims = "3x3x3" if scale == "paper" else "3x3"
        return (
            PanelSpec("bipartite", "Complete Bipartite", "bipartite:left=4,right=4",
                      (SeriesSpec("MCF-extP/C", "mcf-extp"),
                       SeriesSpec("ILP-disjoint/C", "ilp-disjoint"),
                       SeriesSpec("EwSP/C", "ewsp"),
                       SeriesSpec("NCCL-native/G", "native"))),
            PanelSpec("hypercube", "3D Hypercube", "hypercube:dim=3",
                      (SeriesSpec("MCF-extP/C", "mcf-extp"),
                       SeriesSpec("ILP-disjoint/C", "ilp-disjoint"),
                       SeriesSpec("EwSP/C", "ewsp"),
                       SeriesSpec("SSSP/C", "sssp"))),
            PanelSpec("twisted", "3D Twisted Hypercube", "twisted:dim=3",
                      (SeriesSpec("MCF-extP/C", "mcf-extp"),
                       SeriesSpec("EwSP/C", "ewsp"),
                       SeriesSpec("SSSP/C", "sssp"))),
            PanelSpec("torus", f"Torus {dims}", f"torus:dims={dims}",
                      (SeriesSpec("MCF-extP/C", "mcf-extp"),
                       SeriesSpec("ILP-disjoint/C", "ilp-disjoint",
                                  {"mip_rel_gap": 0.05, "time_limit": 120}),
                       SeriesSpec("DOR/C", "dor"),
                       SeriesSpec("SSSP/C", "sssp"),
                       SeriesSpec("EwSP/C", "ewsp"),
                       SeriesSpec("OMPI-native/C", "native"))),
        )

    def _bound_and_title(self, panel, metrics):
        num_nodes = from_spec(panel.topology).num_nodes
        bound = steady_state_throughput(num_nodes, float(metrics["concurrent_flow"]),
                                        cerio_hpc_fabric())
        title = (f"Fig. 4 ({panel.name}, N={num_nodes}): "
                 "throughput GB/s vs buffer size")
        return bound, title


# --------------------------------------------------------------------------- #
# Table 1 — fabric models + forwarding-bandwidth effect
# --------------------------------------------------------------------------- #
class _Table1Spec(ArtifactSpec):
    """Table 1: HPC vs ML fabric models, plus the forwarding-BW effect."""

    spec_id = "table1"
    kind = "table"
    title = "Table 1: HPC vs ML accelerator fabric models"
    description = ("The qualitative comparison of Table 1 as concrete fabric "
                   "parameters, quantified by simulating one MCF-extP schedule "
                   "under two forwarding-bandwidth settings.")
    headline = "forwarding 300 Gbps"
    timed_through = "lower"
    label_order = ("forwarding 300 Gbps", "forwarding 100 Gbps")
    _BUF = 2 ** 26

    def buffers(self, fast: bool = False):
        return (self._BUF,)

    def panels(self, fast: bool = False, scale: str = "small"):
        return (PanelSpec(
            "forwarding", "Forwarding-bandwidth effect", "torus:dims=3x3",
            (SeriesSpec("forwarding 300 Gbps", "mcf-extp", fabric="hpc"),
             SeriesSpec("forwarding 100 Gbps", "mcf-extp",
                        fabric="hpc:forwarding_gbps=100"))),)

    @staticmethod
    def static_table() -> Table:
        """The fabric-parameter comparison (no scenarios: pure model data)."""
        hpc = cerio_hpc_fabric()
        ml = a100_ml_fabric()
        rows = [
            ["Schedules", "Path-based", "Link-based"],
            ["Topology focus", "Bisection bandwidth", "Node bandwidth"],
            ["Flow control", "Cut-through", "Store-and-forward"],
            ["NIC forwarding", str(hpc.nic_forwarding), str(ml.nic_forwarding)],
            ["Link bandwidth (GB/s)", f"{hpc.link_bandwidth / 1e9:.3f}",
             f"{ml.link_bandwidth / 1e9:.3f}"],
            ["Injection BW (GB/s)",
             f"{(hpc.injection_bandwidth or 0) / 1e9:.3f}",
             "= d*b" if ml.injection_bandwidth is None
             else f"{ml.injection_bandwidth / 1e9:.3f}"],
            ["Forwarding BW (GB/s)",
             f"{(hpc.forwarding_bandwidth or 0) / 1e9:.3f}", "= injection"],
            ["Per-step latency (us)", f"{hpc.per_step_latency * 1e6:.1f}",
             f"{ml.per_step_latency * 1e6:.1f}"],
        ]
        return make_table("fabrics", "Table 1: fabric models used by the simulator",
                          ["Property", "HPC (Cerio-like)", "ML accelerator (A100-like)"],
                          rows)

    def aggregate_panel(self, panel, results_by_label):
        series: Dict[str, List[Point]] = {}
        rows = []
        buf = float(self._BUF)
        for s in panel.series:
            # One simulated point per scenario; read the buffer that actually
            # ran so a caller-supplied buffers override aggregates correctly.
            points = throughput_series(results_by_label[s.label].metrics)
            series[s.label] = points[:1]
            buf = points[0].buffer_bytes
            rows.append([s.label, points[0].throughput / 1e9])
        label = (f"{int(buf // 2 ** 20)} MiB" if buf % 2 ** 20 == 0
                 else f"{int(buf)} B")
        effect = make_table(
            "forwarding_effect",
            "Forwarding-bandwidth effect (same MCF-extP schedule, "
            f"3x3 torus, {label})",
            ["fabric", "throughput GB/s"], rows)
        return [self.static_table(), effect], [], series


# --------------------------------------------------------------------------- #
# Fig. 7 — schedule-generation runtime (synthesize-only scenarios)
# --------------------------------------------------------------------------- #
class _Fig7Spec(ArtifactSpec):
    """Fig. 7 companion: synthesis runtime vs N through the scenario layer."""

    spec_id = "fig7"
    title = "Fig. 7: schedule-generation runtime on GenKautz graphs"
    description = ("Synthesis wall-clock versus network size (degree-4 "
                   "generalized Kautz) for the decomposed MCF-extP pipeline "
                   "and the TACCL-like surrogate; cached stages report their "
                   "stage-cache status instead of pretending to be solves.")
    through = "synthesize"
    headline = "MCF-extP"
    label_order = ("MCF-extP", "TACCL-like")
    _SCHEMES = (("MCF-extP", "mcf-extp"), ("TACCL-like", "taccl"))

    def buffers(self, fast: bool = False):
        return ()

    def sizes(self, fast: bool = False) -> Tuple[int, ...]:
        """GenKautz sizes swept (reduced from the paper's 1000-node sweep)."""
        return (12,) if fast else (12, 20, 32)

    def panels(self, fast: bool = False, scale: str = "small"):
        return tuple(
            PanelSpec(f"n{n}", f"GenKautz N={n}", f"genkautz:d=4,n={n}",
                      tuple(SeriesSpec(label, scheme)
                            for label, scheme in self._SCHEMES))
            for n in self.sizes(fast))

    def aggregate_panel(self, panel, results_by_label):
        rows = []
        series: Dict[str, List[Point]] = {}
        for s in panel.series:
            res = results_by_label[s.label]
            timings = res.timings
            rows.append([
                s.label,
                from_spec(panel.topology).num_nodes,
                f"{float(timings.get('synthesize_seconds', 0.0)):.3f}",
                f"{float(timings.get('assemble_seconds', 0.0)):.3f}",
                f"{float(timings.get('solve_seconds', 0.0)):.3f}",
                res.stage_cache.get("synthesize", "-"),
                "-" if res.metrics.get("concurrent_flow") is None
                else f"{float(res.metrics['concurrent_flow']):.6f}",
            ])
            series[s.label] = [Point(0.0, float(timings.get("synthesize_seconds", 0.0)))]
        table = make_table(
            panel.key,
            f"Fig. 7 ({panel.name}): synthesis runtime (degree-4 GenKautz)",
            ["algorithm", "N", "synthesize (s)", "assemble (s)", "solve (s)",
             "stage cache", "F"], rows)
        return [table], [], series

    def aggregate(self, results, fast: bool = False) -> SpecResult:
        out = super().aggregate(results, fast)
        if out.errors:
            return out
        # One cross-panel plot: runtime vs N per algorithm (log y).
        sizes = list(self.sizes(fast))
        by_name = {r.scenario.name: r for r in results}
        series = {}
        for label, _scheme in self._SCHEMES:
            ys = []
            for panel in self.panels(fast):
                res = by_name[self.scenario_name(panel, label)]
                ys.append(float(res.timings.get("synthesize_seconds", 0.0)))
            series[label] = ys
        out.plots.append(Plot(
            name="fig7_runtime", title=self.title,
            x_label="network size N", y_label="synthesis time (s)",
            x=[float(n) for n in sizes], series=series,
            colors={label: self.series_color(label) for label in series},
            logy=True))
        return out


# --------------------------------------------------------------------------- #
# Fig. 10 — topology families vs the Theorem 1 lower bound
# --------------------------------------------------------------------------- #
class _Fig10Spec(ArtifactSpec):
    """Fig. 10: all-to-all time of topology families vs the lower bound."""

    spec_id = "fig10"
    title = "Fig. 10: topology comparison vs the Theorem 1 lower bound"
    description = ("Left: degree-4 GenKautz all-to-all time (1/F from the "
                   "optimal MCF) vs the Theorem 1 lower bound over N.  Right: "
                   "topology families (GenKautz, 2D torus, Xpander, random "
                   "regular) normalized by the bound at matched sizes.")
    through = "synthesize"
    headline = "GenKautz"
    label_order = ("GenKautz", "2D Torus", "Xpander", "Random Regular")
    _DEGREE = 4

    def buffers(self, fast: bool = False):
        return ()

    def left_sizes(self, fast: bool = False) -> Tuple[int, ...]:
        """Left-panel GenKautz sizes."""
        return (16,) if fast else (16, 36, 64)

    def right_sizes(self, fast: bool = False) -> Tuple[int, ...]:
        """Right-panel family sizes (squares, so the 2D torus exists)."""
        return (25,) if fast else (25, 64)

    def _family_specs(self, n: int) -> List[Tuple[str, str]]:
        d = self._DEGREE
        families = [("GenKautz", f"genkautz:d={d},n={n}")]
        side = int(round(n ** 0.5))
        if side * side == n:
            families.append(("2D Torus", f"torus:dims={side}x{side}"))
        if n % (d + 1) == 0:
            families.append(("Xpander", f"xpander:d={d},lift={n // (d + 1)}"))
        families.append(("Random Regular", f"rrg:d={d},n={n},seed=0"))
        return families

    def panels(self, fast: bool = False, scale: str = "small"):
        panels = [PanelSpec(f"left-n{n}", f"GenKautz N={n}",
                            f"genkautz:d={self._DEGREE},n={n}",
                            (SeriesSpec("GenKautz", "mcf-extp"),))
                  for n in self.left_sizes(fast)]
        for n in self.right_sizes(fast):
            for family, spec in self._family_specs(n):
                panels.append(PanelSpec(f"right-n{n}-{family}", f"{family} N={n}",
                                        spec, (SeriesSpec(family, "mcf-extp"),)))
        return tuple(panels)

    def aggregate_panel(self, panel, results_by_label):
        # Per-panel artifacts are assembled into the two figure tables in
        # aggregate(); individual panels contribute rows only.
        return [], [], {}

    def aggregate(self, results, fast: bool = False) -> SpecResult:
        out = super().aggregate(results, fast)
        if out.errors:
            return out
        by_name = {r.scenario.name: r for r in results}

        def time_of(panel: PanelSpec, label: str) -> float:
            res = by_name[self.scenario_name(panel, label)]
            return 1.0 / float(res.metrics["concurrent_flow"])

        left_rows = []
        for n in self.left_sizes(fast):
            panel = self.panel(f"left-n{n}")
            t = time_of(panel, "GenKautz")
            bound = lower_bound_time_regular(self._DEGREE, n)
            left_rows.append([n, t, bound, t / bound])
        out.tables.append(make_table(
            "left", f"Fig. 10 (left): GenKautz degree {self._DEGREE} "
                    "vs Theorem 1 lower bound",
            ["N", "GenKautz all-to-all time", "lower bound", "ratio"], left_rows))
        out.plots.append(Plot(
            name="fig10_left", title="GenKautz vs Theorem 1 lower bound",
            x_label="network size N", y_label="all-to-all time",
            x=[float(r[0]) for r in left_rows],
            series={"GenKautz": [r[1] for r in left_rows],
                    "Lower bound": [r[2] for r in left_rows]},
            colors={"GenKautz": self.series_color("GenKautz"),
                    "Lower bound": BOUND_COLOR}))

        right_rows = []
        for n in self.right_sizes(fast):
            bound = lower_bound_time_regular(self._DEGREE, n)
            for family, _spec in self._family_specs(n):
                panel = self.panel(f"right-n{n}-{family}")
                t = time_of(panel, family)
                num_nodes = from_spec(panel.topology).num_nodes
                right_rows.append([family, num_nodes, t, t / bound])
        if right_rows:
            out.tables.append(make_table(
                "right", f"Fig. 10 (right): topology families at degree {self._DEGREE}",
                ["family", "N", "all-to-all time", "normalized by lower bound"],
                right_rows))
        return out


# --------------------------------------------------------------------------- #
# fig_cluster — multi-job slowdown vs offered load (cluster co-simulation)
# --------------------------------------------------------------------------- #
class _FigClusterSpec(ArtifactSpec):
    """Cluster co-simulation: per-job slowdown versus Poisson offered load.

    One panel per arrival rate, all sharing a single synthesized MCF-extP
    schedule (the cluster trace enters the simulate stage key only).  The
    aggregate is a slowdown-vs-load curve: p50/p99 job slowdown against the
    Poisson arrival rate, plus a table carrying makespan and time-weighted
    fabric utilization per load point.
    """

    spec_id = "fig_cluster"
    title = "Cluster co-simulation: job slowdown vs offered load"
    description = ("Six-job Poisson traces (packed placement) co-simulated "
                   "over one MCF-extP hypercube schedule at increasing "
                   "arrival rates; per-job slowdown is measured against the "
                   "same job running alone on the fabric (docs/cluster.md).")
    headline = "packed"
    label_order = ("packed",)
    _TOPOLOGY = "hypercube:dim=3"
    _JOBS = 6
    _BUF = 2 ** 20

    def buffers(self, fast: bool = False):
        return (self._BUF,)

    def rates(self, fast: bool = False) -> Tuple[int, ...]:
        """Poisson arrival rates (jobs/second) swept as panels."""
        return (500, 8000) if fast else (500, 2000, 8000, 32000)

    def _trace(self, key: str) -> str:
        rate = int(key[len("rate"):])
        return (f"cluster:jobs={self._JOBS}:arrival=poisson~{rate}"
                ":placement=packed:seed=0")

    def panels(self, fast: bool = False, scale: str = "small"):
        return tuple(
            PanelSpec(f"rate{rate}", f"Poisson {rate}/s", self._TOPOLOGY,
                      (SeriesSpec("packed", "mcf-extp"),))
            for rate in self.rates(fast))

    def scenario(self, panel: PanelSpec, series: SeriesSpec,
                 buffers: Sequence[float]) -> Scenario:
        """Panel scenarios carry the panel's cluster trace spec."""
        return Scenario(
            topology=panel.topology,
            fabric=series.fabric or self.fabric,
            scheme=series.scheme,
            scheme_params=dict(series.scheme_params),
            host_bandwidth=panel.host_bandwidth,
            max_denominator=self.max_denominator,
            buffers=tuple(buffers),
            cluster=self._trace(panel.key),
            name=self.scenario_name(panel, series.label),
        )

    def aggregate_panel(self, panel, results_by_label):
        # Panels contribute rows to the cross-panel load curve built in
        # aggregate(); no per-panel artifacts.
        return [], [], {}

    def aggregate(self, results, fast: bool = False) -> SpecResult:
        out = super().aggregate(results, fast)
        if out.errors:
            return out
        by_name = {r.scenario.name: r for r in results}
        rows = []
        rates: List[float] = []
        p50s: List[float] = []
        p99s: List[float] = []
        for panel in self.panels(fast):
            res = by_name[self.scenario_name(panel, "packed")]
            metrics = res.metrics
            rate = int(panel.key[len("rate"):])
            rates.append(float(rate))
            p50s.append(float(metrics["job_slowdown_p50"]))
            p99s.append(float(metrics["job_slowdown_p99"]))
            rows.append([
                rate,
                int(metrics["cluster_jobs"]),
                f"{float(metrics['makespan_seconds']):.6f}",
                f"{float(metrics['job_slowdown_p50']):.3f}",
                f"{float(metrics['job_slowdown_p99']):.3f}",
                f"{float(metrics['fabric_utilization']):.3f}",
            ])
        out.tables.append(make_table(
            "cluster", f"Cluster co-simulation ({self._JOBS} Poisson jobs, "
                       f"packed, {self._TOPOLOGY}, MCF-extP)",
            ["arrival rate (jobs/s)", "jobs", "makespan (s)", "slowdown p50",
             "slowdown p99", "fabric utilization"], rows))
        out.plots.append(Plot(
            name="fig_cluster_slowdown", title=self.title,
            x_label="offered load (job arrivals/s)",
            y_label="job slowdown (vs isolated run)",
            x=rates,
            series={"slowdown p50": p50s, "slowdown p99": p99s},
            colors={"slowdown p50": self.series_color("packed"),
                    "slowdown p99": CATEGORICAL[1]},
            logx=True))
        return out


# --------------------------------------------------------------------------- #
# fig_robustness — completion-time degradation under dynamic fabric failures
# --------------------------------------------------------------------------- #
class _FigRobustnessSpec(ArtifactSpec):
    """Robustness: completion-time degradation under timed link failures.

    One panel per fault schedule, all sharing a single synthesized MCF-extP
    schedule (the fault spec enters the simulate stage key only, like the
    cluster trace).  Two sweeps: failure *count* (k disjoint links failed
    mid-collective) and failure *timing* (one link failed early / mid / late).
    The aggregate is a degradation table plus slowdown-vs-count and
    slowdown-vs-timing curves.
    """

    spec_id = "fig_robustness"
    title = "Robustness: completion-time degradation under fabric failures"
    description = ("Timed link failures injected into one MCF-extP hypercube "
                   "collective with online BFS rerouting (docs/robustness.md); "
                   "slowdown is measured against the same schedule on the "
                   "healthy fabric.  Sweeps failure count (disjoint links "
                   "failed mid-run) and failure timing (one link, varying "
                   "epoch).")
    headline = "faulted"
    label_order = ("faulted",)
    _TOPOLOGY = "hypercube:dim=3"
    _BUF = 2 ** 20
    #: Disjoint hypercube edges failed in order by the count sweep — a
    #: partial perfect matching, so the survivor graph stays connected.
    _LINKS = ("0~1", "2~3", "4~5")
    _AT_US = 40                           # count-sweep failure time

    def buffers(self, fast: bool = False):
        return (self._BUF,)

    def counts(self, fast: bool = False) -> Tuple[int, ...]:
        """Failure counts swept (0 = healthy baseline, slowdown 1)."""
        return (0, 1, 2) if fast else (0, 1, 2, 3)

    def timings_us(self, fast: bool = False) -> Tuple[int, ...]:
        """Failure times (microseconds) swept for the single-link panel."""
        return (80,) if fast else (20, 80, 140)

    def _fault_spec(self, key: str) -> str:
        if key.startswith("count"):
            k = int(key[len("count"):])
            if k == 0:
                return "faults:up@0"      # trivial: byte-identical healthy run
            links = "|".join(self._LINKS[:k])
            return f"faults:down={links}@{self._AT_US}us"
        t = int(key[len("at"):-len("us")])
        return f"faults:down={self._LINKS[0]}@{t}us"

    def panels(self, fast: bool = False, scale: str = "small"):
        keys = [f"count{k}" for k in self.counts(fast)]
        keys += [f"at{t}us" for t in self.timings_us(fast)]
        return tuple(
            PanelSpec(key, self._fault_spec(key), self._TOPOLOGY,
                      (SeriesSpec("faulted", "mcf-extp"),))
            for key in keys)

    def scenario(self, panel: PanelSpec, series: SeriesSpec,
                 buffers: Sequence[float]) -> Scenario:
        """Panel scenarios carry the panel's fault spec."""
        return Scenario(
            topology=panel.topology,
            fabric=series.fabric or self.fabric,
            scheme=series.scheme,
            scheme_params=dict(series.scheme_params),
            host_bandwidth=panel.host_bandwidth,
            max_denominator=self.max_denominator,
            buffers=tuple(buffers),
            faults=self._fault_spec(panel.key),
            name=self.scenario_name(panel, series.label),
        )

    def aggregate_panel(self, panel, results_by_label):
        # Panels contribute rows to the cross-panel degradation table built
        # in aggregate(); no per-panel artifacts.
        return [], [], {}

    def aggregate(self, results, fast: bool = False) -> SpecResult:
        out = super().aggregate(results, fast)
        if out.errors:
            return out
        by_name = {r.scenario.name: r for r in results}
        rows = []

        def metrics_of(key: str) -> Mapping[str, object]:
            panel = self.panel(key)
            res = by_name[self.scenario_name(panel, "faulted")]
            metrics = res.metrics
            rows.append([
                key,
                self._fault_spec(key),
                f"{float(metrics['robustness_slowdown']):.4f}",
                int(metrics["reroute_count"]),
                int(metrics["fault_events"]),
                int(metrics["stranded_bytes"]),
            ])
            return metrics

        count_xs = [float(k) for k in self.counts(fast)]
        count_ys = [float(metrics_of(f"count{k}")["robustness_slowdown"])
                    for k in self.counts(fast)]
        time_xs = [float(t) for t in self.timings_us(fast)]
        time_ys = [float(metrics_of(f"at{t}us")["robustness_slowdown"])
                   for t in self.timings_us(fast)]
        out.tables.append(make_table(
            "robustness", f"Robustness ({self._TOPOLOGY}, MCF-extP, "
                          f"{self._BUF // 2 ** 10} KiB): slowdown under "
                          "timed link failures",
            ["panel", "faults", "slowdown", "reroutes", "fabric events",
             "stranded B"], rows))
        out.plots.append(Plot(
            name="fig_robustness_count",
            title="Slowdown vs failure count "
                  f"(disjoint links down at t={self._AT_US}us)",
            x_label="links failed", y_label="completion-time slowdown",
            x=count_xs, series={"faulted": count_ys},
            colors={"faulted": self.series_color("faulted")}))
        out.plots.append(Plot(
            name="fig_robustness_timing",
            title=f"Slowdown vs failure timing (link {self._LINKS[0]} down)",
            x_label="failure time (us)", y_label="completion-time slowdown",
            x=time_xs, series={"faulted": time_ys},
            colors={"faulted": self.series_color("faulted")}))
        return out


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
FIG3 = _Fig3Spec()
FIG4 = _Fig4Spec()
FIG7 = _Fig7Spec()
FIG10 = _Fig10Spec()
FIG_CLUSTER = _FigClusterSpec()
FIG_ROBUSTNESS = _FigRobustnessSpec()
TABLE1 = _Table1Spec()

#: Artifact id -> spec, in report order.
REGISTRY: Dict[str, ArtifactSpec] = {
    spec.spec_id: spec
    for spec in (FIG3, FIG4, FIG7, FIG10, FIG_CLUSTER, FIG_ROBUSTNESS, TABLE1)}


def available_specs() -> List[str]:
    """Registered artifact ids, in report order."""
    return list(REGISTRY)


def get_spec(spec_id: str) -> ArtifactSpec:
    """Look up a spec by id, with a helpful error."""
    try:
        return REGISTRY[spec_id]
    except KeyError:
        raise KeyError(f"unknown artifact {spec_id!r}; "
                       f"available: {', '.join(REGISTRY)}") from None


def describe_registry() -> str:
    """One-line-per-artifact listing (the ``repro report --list`` output)."""
    rows = [[spec.spec_id, spec.kind, spec.title] for spec in REGISTRY.values()]
    return format_table(["id", "kind", "title"], rows,
                        title="Registered paper artifacts")
