"""Reproduction-report subsystem: one command from scenario grids to artifacts.

This subpackage owns the paper's deliverables.  A registry of figure/table
specs (:mod:`~repro.report.specs`) declares each artifact of
conf_hpdc_BasuZFPKK24 as a scenario grid plus an aggregation plus a renderer;
:func:`generate_report` executes any subset through the existing
:func:`repro.experiments.run_sweep` pipeline (stage caching, ``--jobs``,
``--resume`` included), renders figures with a guaranteed CSV/Markdown
fallback (:mod:`~repro.report.render`), and stamps the result with git SHA,
versions, per-artifact wall-clock and cache counters
(:mod:`~repro.report.provenance`).

The Fig. 3 / Fig. 4 / Table 1 benchmarks wrap the same specs via
:func:`~repro.report.specs.run_panel`, so benchmark output, CI smoke runs and
``repro report`` can never drift apart.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..experiments import get_plan_cache, run_sweep
from .aggregate import Plot, Point, SpecResult, Table
from .provenance import collect_provenance, format_provenance
from .render import RenderedArtifact, render_index, render_spec
from .specs import (
    REGISTRY,
    ArtifactSpec,
    PanelData,
    available_specs,
    describe_registry,
    get_spec,
    run_panel,
)

__all__ = [
    "ArtifactSpec",
    "PanelData",
    "Plot",
    "Point",
    "REGISTRY",
    "RenderedArtifact",
    "ReportSummary",
    "SpecResult",
    "Table",
    "available_specs",
    "collect_provenance",
    "describe_registry",
    "format_provenance",
    "generate_report",
    "get_spec",
    "render_index",
    "render_spec",
    "run_panel",
]


@dataclass
class ReportSummary:
    """Outcome of one :func:`generate_report` run."""

    out_dir: str
    index_files: List[str] = field(default_factory=list)
    spec_results: List[SpecResult] = field(default_factory=list)
    rendered: List[RenderedArtifact] = field(default_factory=list)
    provenance: Dict[str, object] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    @property
    def index_path(self) -> str:
        """Path of the rendered ``index.md``."""
        return self.index_files[0] if self.index_files else ""


def generate_report(out_dir: str = "report",
                    only: Optional[Sequence[str]] = None,
                    fast: bool = False,
                    jobs: int = 1,
                    n_jobs: int = 1,
                    resume: bool = False,
                    workers: int = 1) -> ReportSummary:
    """Run artifact specs and render the provenance-stamped report.

    Parameters
    ----------
    out_dir:
        Report directory; created if missing.  Figures/CSVs land next to
        ``index.md``; each spec's sweep JSONL streams under ``data/``.
    only:
        Artifact ids to run, rendered in the order given; ``None`` runs the
        full registry in registry order.
    fast:
        Use the reduced CI grids.
    jobs / n_jobs:
        Scenarios executed concurrently / child-LP workers per scenario.
    resume:
        Reuse completed records from a previous run's ``data/*.jsonl``
        (per-scenario resume, same semantics as ``repro sweep --resume``).
        Without it each spec's JSONL is started fresh.
    workers:
        Work-stealing worker processes per artifact sweep (``repro sweep
        --workers`` semantics); 1 keeps the in-process path.
    """
    from ..engine import get_engine

    specs = [get_spec(spec_id) for spec_id in (only or available_specs())]
    data_dir = os.path.join(out_dir, "data")
    os.makedirs(data_dir, exist_ok=True)

    summary = ReportSummary(out_dir=out_dir)
    for spec in specs:
        jsonl = os.path.join(data_dir, f"{spec.spec_id}.jsonl")
        if not resume and os.path.exists(jsonl):
            os.remove(jsonl)
        start = time.perf_counter()
        results = run_sweep(spec.scenarios(fast), out_path=jsonl, jobs=jobs,
                            resume=resume, through=spec.through, n_jobs=n_jobs,
                            workers=workers)
        spec_result = spec.aggregate(results, fast=fast)
        spec_result.seconds = time.perf_counter() - start
        summary.spec_results.append(spec_result)
        summary.rendered.append(render_spec(spec_result, out_dir))
        summary.errors.extend(spec_result.errors)

    summary.provenance = collect_provenance(
        artifacts=[{
            "spec_id": sr.spec_id, "kind": sr.kind, "status": sr.status,
            "seconds": sr.seconds, "num_scenarios": sr.num_scenarios,
        } for sr in summary.spec_results],
        engine_stats=get_engine().stats(),
        stage_stats=get_plan_cache().stats(),
        fast=fast,
    )
    intro = ("Artifacts of *Efficient all-to-all Collective Communication "
             "Schedules for Direct-connect Topologies* (HPDC 2024), "
             "regenerated through the declarative scenario pipeline. "
             "Raw sweep records stream under [`data/`](data/).")
    summary.index_files = render_index(summary.rendered,
                                       format_provenance(summary.provenance),
                                       out_dir, intro=intro)
    return summary
