"""Aggregation shapes shared by the report driver and the benchmark wrappers.

A spec's aggregation step turns sweep records (the ``metrics``/``timings``
mappings of :class:`~repro.experiments.sweep.ScenarioResult`) into
:class:`Table` and :class:`Plot` artifacts.  Working from the *record* shape —
never from live schedule objects — is what lets one aggregation serve three
callers identically:

* ``repro report`` (records come from :func:`~repro.experiments.sweep.run_sweep`,
  possibly resumed from JSONL),
* the Fig. 3 / Fig. 4 / Table 1 benchmarks (records come from plans the
  benchmark timed itself),
* tests replaying stored JSONL files.

:attr:`Table.text` always holds the exact
:func:`~repro.analysis.report.format_table` /
:func:`~repro.analysis.report.format_throughput_sweep` rendering, so benchmark
output stays byte-identical to the pre-registry hand-rolled versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..analysis import format_table, format_throughput_sweep

__all__ = ["Point", "Table", "Plot", "SpecResult", "throughput_series",
           "make_table", "throughput_table"]


@dataclass(frozen=True)
class Point:
    """One simulated point of a buffer sweep (duck-types ``CollectiveResult``)."""

    buffer_bytes: float
    throughput: float


@dataclass
class Table:
    """One rendered table: structured rows plus the exact text rendering."""

    name: str                      # file-stem suffix, e.g. "bipartite"
    title: str
    headers: List[str]
    rows: List[List[object]]
    text: str                      # aligned text table (benchmark golden output)


@dataclass
class Plot:
    """One figure panel for the optional matplotlib backend.

    ``series`` maps a label to y-values over the shared ``x`` axis; ``colors``
    pins each label to a fixed categorical color (identity follows the entity,
    so a panel that drops a series never repaints the survivors).
    """

    name: str
    title: str
    x_label: str
    y_label: str
    x: List[float]
    series: Dict[str, List[float]]
    colors: Dict[str, str] = field(default_factory=dict)
    logx: bool = False
    logy: bool = False


@dataclass
class SpecResult:
    """Everything one artifact spec produced: tables, plots, raw records."""

    spec_id: str
    kind: str                      # "figure" | "table"
    title: str
    description: str
    tables: List[Table] = field(default_factory=list)
    plots: List[Plot] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    num_scenarios: int = 0
    num_resumed: int = 0
    stage_cache: Dict[str, int] = field(default_factory=dict)  # hit/miss counts
    seconds: float = 0.0           # stamped by the driver

    @property
    def status(self) -> str:
        """``ok`` when every underlying scenario succeeded."""
        return "error" if self.errors else "ok"


# --------------------------------------------------------------------------- #
# Record -> artifact helpers
# --------------------------------------------------------------------------- #
def throughput_series(metrics: Mapping[str, object]) -> List[Point]:
    """The simulated buffer sweep of one record as :class:`Point` objects.

    ``throughput_bytes_per_s`` keys are stringified buffer sizes in insertion
    (= sweep) order, which JSON round-trips preserve.
    """
    throughputs = metrics.get("throughput_bytes_per_s") or {}
    return [Point(float(buf), float(tp)) for buf, tp in throughputs.items()]


def make_table(name: str, title: str, headers: Sequence[str],
               rows: Sequence[Sequence[object]],
               text: Optional[str] = None) -> Table:
    """Build a :class:`Table`, rendering ``text`` via ``format_table`` unless given."""
    rows = [list(row) for row in rows]
    if text is None:
        text = format_table(list(headers), rows, title=title)
    return Table(name=name, title=title, headers=list(headers), rows=rows, text=text)


def throughput_table(name: str, title: str,
                     series_by_label: Mapping[str, Sequence[Point]]) -> Table:
    """A Fig. 3/4-style throughput-vs-buffer table (text via ``format_throughput_sweep``).

    The text rendering is the byte-identical benchmark output; the structured
    rows mirror it (buffer bytes as the first column, GB/s per series).
    """
    text = format_throughput_sweep(dict(series_by_label), title=title)
    labels = list(series_by_label)
    buffers = [p.buffer_bytes for p in series_by_label[labels[0]]] if labels else []
    rows = []
    for i, buf in enumerate(buffers):
        rows.append([int(buf)] + [series_by_label[label][i].throughput / 1e9
                                  for label in labels])
    return Table(name=name, title=title, headers=["buffer_bytes"] + labels,
                 rows=rows, text=text)
