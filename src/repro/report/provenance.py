"""Provenance stamping for reproduction reports.

A report without receipts is a screenshot.  :func:`collect_provenance`
gathers everything needed to say *what produced these numbers*: git SHA (and
dirty flag), package and dependency versions, the LP backend, per-artifact
wall-clock, and the engine/stage-cache counters — the last of which is how a
warm-cache re-run proves it solved **zero** new LPs.

Nothing here imports matplotlib or markdown; provenance must be collectable
in the most minimal environment the report can run in.
"""

from __future__ import annotations

import platform
import subprocess
import sys
from datetime import datetime, timezone
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["collect_provenance", "format_provenance", "git_revision"]

#: Bump when the provenance mapping layout changes.
PROVENANCE_SCHEMA = 1


def git_revision(cwd: Optional[str] = None) -> Dict[str, object]:
    """Current git SHA and dirty flag, degrading gracefully outside a repo."""
    def _run(*args: str) -> Optional[str]:
        try:
            proc = subprocess.run(["git", *args], cwd=cwd, capture_output=True,
                                  text=True, timeout=10)
        except (OSError, subprocess.SubprocessError):
            return None
        return proc.stdout.strip() if proc.returncode == 0 else None

    sha = _run("rev-parse", "HEAD")
    status = _run("status", "--porcelain") if sha else None
    return {"sha": sha or "unknown", "dirty": bool(status)}


def _dependency_versions() -> Dict[str, str]:
    versions: Dict[str, str] = {}
    for name in ("numpy", "scipy", "networkx"):
        try:
            module = __import__(name)
            versions[name] = str(getattr(module, "__version__", "unknown"))
        except ImportError:  # pragma: no cover - all three are core deps
            versions[name] = "absent"
    return versions


def collect_provenance(artifacts: Sequence[Mapping[str, object]],
                       engine_stats: Mapping[str, object],
                       stage_stats: Mapping[str, object],
                       fast: bool = False,
                       cwd: Optional[str] = None) -> Dict[str, object]:
    """Assemble the provenance mapping stamped into ``report/index.md``.

    ``artifacts`` is one mapping per rendered artifact with at least
    ``spec_id``, ``kind``, ``status``, ``seconds`` and ``num_scenarios``.
    ``engine_stats``/``stage_stats`` are the LP engine's and plan cache's
    counter snapshots; ``misses`` on the engine side *is* the number of LPs
    this process actually solved ("new LP solves").
    """
    return {
        "schema_version": PROVENANCE_SCHEMA,
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git": git_revision(cwd),
        "package_version": _package_version(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "dependencies": _dependency_versions(),
        "solver_backend": str(engine_stats.get("backend", "unknown")),
        "fast": bool(fast),
        "command": " ".join(sys.argv) if sys.argv else "",
        "artifacts": [dict(a) for a in artifacts],
        "lp_cache": {k: int(engine_stats.get(k, 0))
                     for k in ("hits", "misses", "disk_hits", "stores")},
        "stage_cache": {k: int(stage_stats.get(k, 0))
                        for k in ("hits", "misses", "disk_hits", "stores")},
        "new_lp_solves": int(engine_stats.get("misses", 0)),
    }


def format_provenance(prov: Mapping[str, object]) -> str:
    """Render a provenance mapping as the report's Markdown section.

    The ``new LP solves: N`` line is deliberately grep-stable: CI asserts a
    warm-cache re-run prints ``new LP solves: 0``.
    """
    git = prov.get("git", {})
    deps = prov.get("dependencies", {})
    lp = prov.get("lp_cache", {})
    stage = prov.get("stage_cache", {})
    lines: List[str] = ["## Provenance", ""]
    sha = git.get("sha", "unknown")
    lines.append(f"- git SHA: `{sha}`{' (dirty)' if git.get('dirty') else ''}")
    lines.append(f"- package: repro {prov.get('package_version', 'unknown')}"
                 f"{' (fast grids)' if prov.get('fast') else ''}")
    lines.append(f"- python {prov.get('python')} on {prov.get('platform')}")
    lines.append("- dependencies: "
                 + ", ".join(f"{name} {version}" for name, version in deps.items()))
    lines.append(f"- solver backend: {prov.get('solver_backend')} "
                 f"(scipy {deps.get('scipy', 'unknown')})")
    lines.append(f"- generated: {prov.get('generated_at')}")
    lines.append(f"- lp-cache: {lp.get('hits', 0)} hits / {lp.get('misses', 0)} "
                 f"misses ({lp.get('disk_hits', 0)} from disk)")
    lines.append(f"- stage-cache: {stage.get('hits', 0)} hits / "
                 f"{stage.get('misses', 0)} misses")
    lines.append(f"- new LP solves: {prov.get('new_lp_solves', 0)}")
    lines.append("")
    lines.append("| artifact | kind | status | wall-clock (s) | scenarios |")
    lines.append("| --- | --- | --- | ---: | ---: |")
    for art in prov.get("artifacts", []):
        lines.append(f"| {art.get('spec_id')} | {art.get('kind')} "
                     f"| {art.get('status')} | {float(art.get('seconds', 0.0)):.3f} "
                     f"| {art.get('num_scenarios', 0)} |")
    return "\n".join(lines)


def _package_version() -> str:
    from .. import __version__

    return __version__
