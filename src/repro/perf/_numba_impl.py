"""The CSR saturation-round kernel, JIT-compiled when numba is available.

The algorithm is written once, as the plain-python function
:func:`_fill_csr`, and wrapped with ``numba.njit(cache=True)`` at import
time when the optional dependency is present.  Both callables are exported:

* :data:`fill_csr` — the jitted kernel, or ``None`` when numba is absent
  (or disabled via ``REPRO_NO_NUMBA=1``);
* :data:`fill_csr_python` — the same function, interpreted.  The test
  suite runs it everywhere (including CI legs without numba) so the exact
  algorithm the JIT compiles is differentially verified even where the
  compiler is missing.

Semantics match the vectorized numpy fill in
:mod:`repro.perf.fillkernel` entry-for-entry: per-resource user counts
are over incidence *entries* (duplicates included), every resource tied
for the minimum fair share within ``sim_eps + 1e-12 * |best|`` freezes
its flows in the same round, and residual capacity is clamped at zero.
Max-min fair allocations are unique, so the two implementations agree to
float round-off (asserted at 1e-9 in ``tests/test_kernels.py``).
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["fill_csr", "fill_csr_python"]


def _fill_csr(res_cap, res_ptr, res_flows, flow_ptr, flow_res, active,
              rates, frozen, counts, residual, stack, sim_eps):
    """Run progressive filling over flat CSR incidence; returns the round count.

    Arguments are the preallocated arenas of a
    :class:`~repro.perf.fillkernel.FillWorkspace`: ``res_ptr``/``res_flows``
    list each resource's incidence entries (flow ids), ``flow_ptr``/
    ``flow_res`` the transpose.  ``rates``, ``frozen``, ``counts``,
    ``residual`` and ``stack`` are scratch outputs overwritten in place;
    the caller reads the fair-share result from ``rates``.
    """
    num_res = res_cap.shape[0]
    num_flows = active.shape[0]
    n_unfrozen = 0
    for f in range(num_flows):
        rates[f] = 0.0
        if active[f]:
            frozen[f] = False
            n_unfrozen += 1
        else:
            frozen[f] = True
    for r in range(num_res):
        residual[r] = res_cap[r]
        cnt = 0
        for k in range(res_ptr[r], res_ptr[r + 1]):
            if active[res_flows[k]]:
                cnt += 1
        counts[r] = cnt
    rounds = 0
    while n_unfrozen > 0:
        rounds += 1
        best = np.inf
        for r in range(num_res):
            if counts[r] > 0:
                s = residual[r] / counts[r]
                if s < best:
                    best = s
        if best == np.inf:
            # No constraining resource left (cannot happen for well-formed
            # paths — every flow crosses at least one link): unbounded rate.
            for f in range(num_flows):
                if not frozen[f]:
                    rates[f] = np.inf
            break
        thresh = best + sim_eps + 1e-12 * abs(best)
        top = 0
        for r in range(num_res):
            if counts[r] > 0 and residual[r] / counts[r] <= thresh:
                for k in range(res_ptr[r], res_ptr[r + 1]):
                    f = res_flows[k]
                    if not frozen[f]:
                        frozen[f] = True
                        rates[f] = best
                        stack[top] = f
                        top += 1
        for i in range(top):
            f = stack[i]
            for k in range(flow_ptr[f], flow_ptr[f + 1]):
                r = flow_res[k]
                residual[r] -= best
                if residual[r] < 0.0:
                    residual[r] = 0.0
                counts[r] -= 1
        n_unfrozen -= top
    return rounds


fill_csr_python = _fill_csr

fill_csr = None
if not os.environ.get("REPRO_NO_NUMBA"):
    try:  # pragma: no cover - exercised only where numba is installed
        import numba

        fill_csr = numba.njit(cache=True)(_fill_csr)
    except ImportError:
        fill_csr = None
