"""In-place delta mutation of compiled flow programs (``REPRO_DELTA``).

The fault runner (:mod:`repro.faults.runner`) used to rebuild its
:class:`~repro.simulator.engine.FlowProgram` with ``compile_flows`` and
allocate a fresh :class:`~repro.perf.fillkernel.FillWorkspace` at every
fabric epoch.  :class:`DeltaProgram` makes those epochs incremental: the
full flow set is compiled **once** per (schedule, fabric) into a slotted
incidence arena, and each epoch then

* patches the per-link capacities in place for ``down`` / ``up`` /
  ``scale`` events (:meth:`DeltaProgram.set_capacities` — injection and
  forwarding rows never change across epochs, the fault timeline only
  touches links);
* swaps the incidence slots of rerouted flows
  (:meth:`DeltaProgram.set_paths`) — untouched flows keep their entries,
  retired or stranded flows are simply masked out of the fill;
* refreshes the resource-major CSR view of the shared workspace without
  re-allocating any arena.

Every flow owns a fixed span of incidence slots; unused slots point at an
appended **slack resource** whose capacity (:data:`SLACK_CAP`) is so large
it can never be a bottleneck, so slot padding is invisible to the max-min
fill (the rates are bit-identical to a fresh ``compile_flows`` of the
survivors — asserted by the fuzz leg in ``tests/test_faults.py``).  A
reroute that overflows its span triggers one geometric regrow of the whole
arena (``rebuilds`` counts them; spans double, so regrows amortize out).

``REPRO_DELTA=off`` (or :func:`set_delta_enabled`) disables the layer and
restores the recompile-from-scratch path, which is retained as the
differential oracle exactly like ``REPRO_KERNEL=python-csr`` and
``simulator/reference.py``.
"""

from __future__ import annotations

import os
import threading
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .fillkernel import FillWorkspace

__all__ = ["DeltaProgram", "SLACK_CAP", "delta_enabled", "set_delta_enabled"]

Path = Tuple[int, ...]

#: Capacity of the slack resource backing unused incidence slots.  Large
#: enough that its fair share can never be the round minimum, finite so the
#: kernels never do ``inf`` arithmetic.
SLACK_CAP = 1e30

#: Free incidence slots appended to every flow's span at build time, so the
#: common BFS repair (same length or slightly longer than the planned path)
#: fits without a regrow.
_PAD_SLOTS = 2

_override_lock = threading.Lock()
_override: Optional[bool] = None

_ON_VALUES = ("on", "1", "true", "yes", "auto")
_OFF_VALUES = ("off", "0", "false", "no")


def set_delta_enabled(value: Optional[bool]) -> None:
    """Force the delta layer on/off programmatically (``None`` restores env)."""
    global _override
    with _override_lock:
        _override = value


def delta_enabled() -> bool:
    """Whether faulted runs use the in-place delta engine.

    Resolution order: :func:`set_delta_enabled` override, then the
    ``REPRO_DELTA`` environment variable (default on).  ``off`` selects the
    recompile-from-scratch differential oracle.
    """
    with _override_lock:
        value = _override
    if value is not None:
        return value
    raw = os.environ.get("REPRO_DELTA", "on").strip().lower()
    if raw in _ON_VALUES:
        return True
    if raw in _OFF_VALUES:
        return False
    raise ValueError(
        f"REPRO_DELTA must be one of {_ON_VALUES + _OFF_VALUES}, got {raw!r}")


class DeltaProgram:
    """A mutable compiled flow program: slotted incidence + warm workspace.

    Built once over the **full** flow set (original planned paths, against
    the base fabric with its down set stripped — a planned path may cross a
    base down link only if the caller reroutes it before the first fill).
    The runner masks inactive flows instead of compacting them, which is
    rate-identical to compiling the survivors: the fill kernels read only
    the incidence, capacities and active mask, never the sizes.

    ``program`` / ``workspace`` are live views over the mutable arrays —
    :meth:`apply` edits them in place between fills.  :meth:`clone` gives an
    independent copy sharing the immutable layout (used by concurrent
    adversarial evaluations).
    """

    def __init__(self, topology, fabric, paths: Sequence[Path],
                 sizes: Sequence[float]) -> None:
        from ..simulator.engine import FluidFlow, compile_flows

        self.topology = topology
        self.base_fabric = fabric
        template_fabric = replace(fabric, down_links=())
        flows = [FluidFlow(path=tuple(p), size_bytes=max(float(s), 0.0))
                 for p, s in zip(paths, sizes)]
        base = compile_flows(topology, flows, template_fabric,
                             include_latency=False)
        self.num_flows = int(base.num_flows)
        self.num_real_res = len(base.res_cap)
        self.slack = self.num_real_res
        self._edges = tuple(topology.edges)
        self._num_links = len(self._edges)
        self._edge_index = {e: i for i, e in enumerate(self._edges)}
        self._topo_cap = np.array(
            [topology.capacity(u, v) for u, v in self._edges], dtype=float)
        max_deg = topology.max_degree()
        self._inj_base = (self._num_links
                          if fabric.injection_limited(max_deg) else None)
        fwd_base = self._num_links + (
            topology.num_nodes if self._inj_base is not None else 0)
        self._fwd_base = (fwd_base if fabric.forwarding_bandwidth is not None
                          else None)
        self.res_cap = np.concatenate([base.res_cap, [SLACK_CAP]])
        self._cap_key: Optional[Tuple[object, object]] = None

        # One slot span per flow: the template entries (compile_flows emits
        # them flow-major) plus _PAD_SLOTS of slack headroom.
        counts = np.bincount(base.inc_flow,
                             minlength=self.num_flows).astype(np.int64)
        self._caps = counts + _PAD_SLOTS
        self._starts = np.zeros(self.num_flows + 1, dtype=np.int64)
        np.cumsum(self._caps, out=self._starts[1:])
        self._lens = counts.copy()
        nnz = int(self._starts[-1])
        self.ent_flow = np.repeat(
            np.arange(self.num_flows, dtype=np.int64), self._caps)
        self.ent_res = np.full(nnz, self.slack, dtype=np.int64)
        src = np.zeros(self.num_flows + 1, dtype=np.int64)
        np.cumsum(counts, out=src[1:])
        for i in range(self.num_flows):
            s = int(self._starts[i])
            self.ent_res[s:s + counts[i]] = base.inc_res[src[i]:src[i + 1]]
        self._encoded: List[Path] = [tuple(p) for p in paths]
        self._sizes = np.asarray(base.sizes, dtype=float)
        self.rebuilds = 0
        self._init_views()

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def _init_views(self) -> None:
        """(Re)build the FlowProgram/FillWorkspace views over the arenas."""
        from ..simulator.engine import FlowProgram

        self.program = FlowProgram(
            num_flows=self.num_flows,
            sizes=self._sizes,
            start_delays=np.zeros(self.num_flows),
            set_ids=np.zeros(self.num_flows, dtype=np.int64),
            set_names=("delta",) if self.num_flows else (),
            res_cap=self.res_cap,
            inc_res=self.ent_res,
            inc_flow=self.ent_flow,
            meta={"delta": True},
        )
        ws = FillWorkspace(self.program)
        # The flow-major view must alias the slot arena so in-place slot
        # writes propagate without re-sorting: ent_flow is sorted, so the
        # stable argsort inside FillWorkspace is the identity permutation.
        ws.flow_res = self.ent_res
        ws.res_cap = self.res_cap
        self.workspace = ws
        self._csr_dirty = False

    def _refresh_csr(self) -> None:
        """Recompute the resource-major CSR into the existing arenas."""
        ws = self.workspace
        order = np.argsort(self.ent_res, kind="stable")
        np.take(self.ent_flow, order, out=ws.res_flows)
        np.cumsum(np.bincount(self.ent_res, minlength=len(self.res_cap)),
                  out=ws.res_ptr[1:])
        self._csr_dirty = False

    # ------------------------------------------------------------------ #
    # Delta edits
    # ------------------------------------------------------------------ #
    def set_capacities(self, epoch_fabric) -> None:
        """Patch the per-link capacities for one epoch fabric, in place.

        Down links get capacity zero (their flows must have been rerouted
        or masked; a zero-rate stall is the canary for a missed reroute).
        Injection/forwarding rows are epoch-invariant and never touched.
        Idempotent per ``(down_links, link_scale)`` state, so flapping
        timelines that revisit a state skip the rebuild entirely.
        """
        key = (epoch_fabric.down_links, epoch_fabric.link_scale)
        if key == self._cap_key:
            return
        bw = epoch_fabric.link_bandwidths(self._edges)
        self.res_cap[:self._num_links] = self._topo_cap * np.array(
            [bw[e] for e in self._edges], dtype=float)
        self._cap_key = key

    def _entries_for(self, path: Path) -> List[int]:
        """Resource entries for one path, in ``compile_flows`` order."""
        index = self._edge_index
        try:
            ents = [index[e] for e in zip(path[:-1], path[1:])]
        except KeyError as exc:
            raise ValueError(
                f"path {path} uses non-existent link {exc.args[0]}") from exc
        if self._inj_base is not None:
            ents.append(self._inj_base + path[0])
        if self._fwd_base is not None:
            ents.extend(self._fwd_base + node for node in path[1:-1])
        return ents

    def set_paths(self, paths: Sequence[Optional[Path]]) -> int:
        """Point each flow's incidence slots at its route in force.

        Only flows whose route differs from the encoded one are touched;
        ``None`` (stranded) keeps the previous slots — the caller masks the
        flow out of the fill.  Returns the number of arena regrows (0 or 1):
        a route overflowing its span rebuilds the whole arena with doubled
        spans for the overflowing flows.
        """
        encoded = self._encoded
        pending: Dict[int, List[int]] = {}
        overflow = False
        for i, path in enumerate(paths):
            if path is None or path == encoded[i]:
                continue
            ents = self._entries_for(path)
            pending[i] = ents
            if len(ents) > self._caps[i]:
                overflow = True
        if not pending:
            return 0
        if overflow:
            self._rebuild(pending, paths)
            return 1
        slack = self.slack
        for i, ents in pending.items():
            s = int(self._starts[i])
            ln = len(ents)
            self.ent_res[s:s + ln] = ents
            self.ent_res[s + ln:s + int(self._caps[i])] = slack
            self._lens[i] = ln
            encoded[i] = paths[i]
        self._csr_dirty = True
        return 0

    def apply(self, epoch_fabric, paths: Sequence[Optional[Path]]) -> int:
        """One epoch's full delta: capacities + routes + CSR refresh.

        Returns the number of arena rebuilds (0 for a pure in-place epoch).
        """
        self.set_capacities(epoch_fabric)
        rebuilds = self.set_paths(paths)
        if self._csr_dirty:
            self._refresh_csr()
        return rebuilds

    def _rebuild(self, pending: Dict[int, List[int]],
                 paths: Sequence[Optional[Path]]) -> None:
        """Geometric regrow: double the span of every overflowing flow."""
        per_flow: List[np.ndarray] = [
            self.ent_res[self._starts[i]:self._starts[i] + self._lens[i]]
            for i in range(self.num_flows)]
        encoded = list(self._encoded)
        new_caps = self._caps.copy()
        for i, ents in pending.items():
            per_flow[i] = np.asarray(ents, dtype=np.int64)
            encoded[i] = paths[i]
            new_caps[i] = max(int(new_caps[i]), 2 * len(ents))
        new_lens = np.array([len(e) for e in per_flow], dtype=np.int64)
        starts = np.zeros(self.num_flows + 1, dtype=np.int64)
        np.cumsum(new_caps, out=starts[1:])
        nnz = int(starts[-1])
        ent_flow = np.repeat(
            np.arange(self.num_flows, dtype=np.int64), new_caps)
        ent_res = np.full(nnz, self.slack, dtype=np.int64)
        for i in range(self.num_flows):
            s = int(starts[i])
            ent_res[s:s + new_lens[i]] = per_flow[i]
        self._caps = new_caps
        self._starts = starts
        self._lens = new_lens
        self.ent_flow = ent_flow
        self.ent_res = ent_res
        self._encoded = encoded
        self.rebuilds += 1
        self._init_views()

    # ------------------------------------------------------------------ #
    # Cloning (concurrent adversarial evaluations)
    # ------------------------------------------------------------------ #
    def clone(self) -> "DeltaProgram":
        """An independent mutable copy sharing the immutable layout.

        The slot layout (``ent_flow``, spans) and topology metadata are
        shared — a regrow *replaces* those arrays rather than mutating
        them, so sharing is safe even if the clone later rebuilds.  The
        mutable state (``ent_res``, ``res_cap``, CSR view, scratch arenas)
        is copied, so clones evolve independently across threads.
        """
        from ..simulator.engine import FlowProgram

        new = object.__new__(DeltaProgram)
        new.__dict__.update(self.__dict__)
        new.ent_res = self.ent_res.copy()
        new.res_cap = self.res_cap.copy()
        new._lens = self._lens.copy()
        new._encoded = list(self._encoded)
        new.rebuilds = 0
        new.program = FlowProgram(
            num_flows=new.num_flows,
            sizes=new._sizes,
            start_delays=np.zeros(new.num_flows),
            set_ids=np.zeros(new.num_flows, dtype=np.int64),
            set_names=("delta",) if new.num_flows else (),
            res_cap=new.res_cap,
            inc_res=new.ent_res,
            inc_flow=new.ent_flow,
            meta={"delta": True},
        )
        src = self.workspace
        ws = object.__new__(FillWorkspace)
        ws.num_res = src.num_res
        ws.num_flows = src.num_flows
        ws.res_cap = new.res_cap
        ws.res_flows = src.res_flows.copy()
        ws.res_ptr = src.res_ptr.copy()
        ws.flow_res = new.ent_res
        ws.flow_ptr = src.flow_ptr
        ws.rates = np.zeros(new.num_flows)
        ws.frozen = np.empty(new.num_flows, dtype=np.bool_)
        ws.freeze = np.empty(new.num_flows, dtype=np.bool_)
        ws.stack = np.empty(new.num_flows, dtype=np.int64)
        ws.residual = np.empty(len(new.res_cap))
        ws.counts = np.empty(len(new.res_cap), dtype=np.int64)
        ws.share = np.empty(len(new.res_cap))
        new.workspace = ws
        new._csr_dirty = False
        return new
