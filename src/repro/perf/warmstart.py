"""Constraint-structure hashing and RHS-family detection for warm starts.

Two LPs *share structure* when they differ only in right-hand sides and
variable bounds: same column count, same objective vector, same constraint
matrices (sparsity pattern and coefficients).  Adjacent points of a
degraded-fabric or bandwidth sweep are exactly this shape — the MCF
constraint matrix encodes the topology and commodities, while link
bandwidth / degradation scale enter only through capacity right-hand
sides.

:func:`structure_hash` digests that invariant part of an assembled
:class:`~repro.core.solver.LPBuilder` so the warm-started backends can key
live solver models (:class:`~repro.engine.backends.HighsNativeBackend`)
and the batched family solver (:mod:`repro.perf.batch`) can recognize
family members.  :func:`uniform_rhs_scale` detects the even stronger case
— the whole RHS vector scaled by one positive factor — where LP
homogeneity gives the next optimum as a scalar multiple of the previous
one, with no solver call at all.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

__all__ = ["structure_hash", "rhs_vector", "uniform_rhs_scale",
           "scaling_safe_bounds"]


def _digest_matrix(digest, matrix) -> None:
    """Feed one CSR constraint matrix (or None) into ``digest``."""
    if matrix is None:
        digest.update(b"none")
        return
    digest.update(np.asarray(matrix.shape, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(matrix.indptr).tobytes())
    digest.update(np.ascontiguousarray(matrix.indices).tobytes())
    digest.update(np.ascontiguousarray(matrix.data).tobytes())


def structure_hash(builder) -> str:
    """Digest of an assembled LP minus its RHS and variable bounds.

    Covers the objective vector and both constraint matrices (shape,
    sparsity, coefficient values); excludes ``b_ub``/``b_eq``/``bounds``.
    Two builders with equal hashes therefore describe the same polytope
    family, and a live solver model built for one can be re-bounded — basis
    intact — to solve the other.  ``to_arrays`` canonicalizes the CSR
    deterministically, so equal LPs hash equal across builds.
    """
    c, a_ub, _, a_eq, _, _ = builder.to_arrays()
    digest = hashlib.sha256()
    digest.update(np.int64(len(c)).tobytes())
    digest.update(np.ascontiguousarray(c).tobytes())
    _digest_matrix(digest, a_ub)
    _digest_matrix(digest, a_eq)
    return digest.hexdigest()


def rhs_vector(builder) -> np.ndarray:
    """The concatenated ``b_ub``/``b_eq`` right-hand-side vector."""
    _, _, b_ub, _, b_eq, _ = builder.to_arrays()
    parts = [np.asarray(b, dtype=float)
             for b in (b_ub, b_eq) if b is not None]
    if not parts:
        return np.zeros(0)
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


def uniform_rhs_scale(base: np.ndarray, other: np.ndarray,
                      rtol: float = 1e-12) -> Optional[float]:
    """The positive scalar ``s`` with ``other == s * base``, or None.

    Zeros must map to zeros (conservation and demand rows keep rhs 0 at
    every scale); the nonzero entries must share one ratio to ``rtol``.
    Returns 1.0 for two all-zero vectors.
    """
    if base.shape != other.shape:
        return None
    nonzero = base != 0.0
    if not np.array_equal(nonzero, other != 0.0):
        return None
    if not nonzero.any():
        return 1.0
    ratios = other[nonzero] / base[nonzero]
    scale = float(ratios[0])
    if not np.isfinite(scale) or scale <= 0.0:
        return None
    if not np.allclose(ratios, scale, rtol=rtol, atol=0.0):
        return None
    return scale


def scaling_safe_bounds(builder) -> bool:
    """True when every variable is bounded ``[0, inf)``.

    LP homogeneity — ``x* -> s * x*`` under ``b -> s * b`` — needs the
    feasible cone itself to be scale-invariant, which finite nonzero
    variable bounds would break.  All MCF formulations in this repo use
    nonnegative unbounded flow variables, so the shortcut applies.
    """
    *_, bounds = builder.to_arrays()
    return bool(np.all(bounds[:, 0] == 0.0) & np.all(np.isinf(bounds[:, 1])))
