"""Native-speed progressive-filling kernels for the fluid simulator.

The max-min saturation fill is the simulator's hottest loop: it re-runs on
every completion event and every cluster injection, and the million-scenario
sweeps multiply each microsecond by the grid size.  This module provides the
interchangeable kernels behind
:func:`repro.simulator.engine.fill_rates`:

* :func:`fill_rates_numpy` — the vectorized fallback.  Same saturation-round
  algorithm the engine always ran, with the ``np.subtract.at`` residual
  update replaced by a single ``bincount`` and the per-fill ``share`` /
  ``freeze`` scratch allocations hoisted into a reusable
  :class:`FillWorkspace`.
* :func:`fill_rates_csr` — the flat-CSR kernel from
  :mod:`repro.perf._numba_impl`, JIT-compiled with
  ``numba.njit(cache=True)`` when numba is installed and interpreted
  otherwise.  It touches no temporary arrays at all: every arena lives in
  the workspace and is reused across fills.

Kernel selection is environment-driven (``REPRO_KERNEL=auto|numba|numpy``,
see :func:`fill_kernel_name`) with automatic numpy fallback when numba is
absent; :func:`run_fill` is the dispatch point the simulator engine calls.
All kernels agree with each other and with the scalar
:mod:`repro.simulator.reference` oracle to 1e-9 (``tests/test_kernels.py``).
"""

from __future__ import annotations

import os
import threading
from typing import Optional, Tuple

import numpy as np

from ..constants import SIM_EPS
from . import _numba_impl

__all__ = ["FillWorkspace", "fill_rates_numpy", "fill_rates_csr", "run_fill",
           "fill_kernel_name", "set_fill_kernel", "numba_available",
           "KERNEL_NAMES"]

#: Selectable kernel names.  ``auto`` resolves to ``numba`` when available
#: and ``numpy`` otherwise; ``python-csr`` runs the exact CSR algorithm the
#: JIT compiles, interpreted — kept selectable so the numba code path is
#: differentially tested even where the compiler is missing.
KERNEL_NAMES = ("auto", "numba", "numpy", "python-csr")

_override_lock = threading.Lock()
_override: Optional[str] = None


class FillWorkspace:
    """Preallocated scratch arenas + CSR incidence for one flow program.

    Built once per :class:`~repro.simulator.engine.FlowProgram` (the engine's
    ``execute`` owns one per run; the cluster injector rebuilds on flow-set
    changes) and reused across every fill, so the per-event cost is the
    saturation rounds themselves — no allocation, no incidence re-sorting.

    The COO incidence is flattened both ways: ``res_ptr``/``res_flows`` list
    each resource's entries (flow ids, duplicates preserved) and
    ``flow_ptr``/``flow_res`` each flow's entries (resource ids).  The rate
    vector ``rates`` is part of the workspace and is *reused across fills* —
    callers that keep rates beyond the next fill must copy them.
    """

    def __init__(self, program) -> None:
        """Flatten ``program``'s incidence to CSR and allocate the arenas."""
        inc_res = np.asarray(program.inc_res, dtype=np.int64)
        inc_flow = np.asarray(program.inc_flow, dtype=np.int64)
        num_res = len(program.res_cap)
        num_flows = int(program.num_flows)
        self.num_res = num_res
        self.num_flows = num_flows
        self.res_cap = np.asarray(program.res_cap, dtype=float)

        order = np.argsort(inc_res, kind="stable")
        self.res_flows = inc_flow[order]
        self.res_ptr = np.zeros(num_res + 1, dtype=np.int64)
        np.cumsum(np.bincount(inc_res, minlength=num_res), out=self.res_ptr[1:])

        order = np.argsort(inc_flow, kind="stable")
        self.flow_res = inc_res[order]
        self.flow_ptr = np.zeros(num_flows + 1, dtype=np.int64)
        np.cumsum(np.bincount(inc_flow, minlength=num_flows),
                  out=self.flow_ptr[1:])

        self.rates = np.zeros(num_flows)
        self.frozen = np.empty(num_flows, dtype=np.bool_)
        self.freeze = np.empty(num_flows, dtype=np.bool_)
        self.stack = np.empty(num_flows, dtype=np.int64)
        self.residual = np.empty(num_res)
        self.counts = np.empty(num_res, dtype=np.int64)
        self.share = np.empty(num_res)


def fill_rates_numpy(program, active: np.ndarray,
                     workspace: Optional[FillWorkspace] = None
                     ) -> Tuple[np.ndarray, int]:
    """Max-min fair rates as vectorized numpy saturation rounds.

    Each round: count unfrozen users per resource (one ``bincount``), take
    the smallest fair share, freeze every flow touching a bottleneck
    resource at that share, and retire their capacity with a second
    ``bincount`` (one vectorized multiply-subtract instead of the scattered
    ``np.subtract.at``).  With a ``workspace`` the ``share``/``freeze``
    scratch and the returned rate vector are reused across calls.
    """
    num_res = len(program.res_cap)
    num_flows = program.num_flows
    if workspace is None:
        rates = np.zeros(num_flows)
        share = np.empty(num_res)
        freeze = np.empty(num_flows, dtype=np.bool_)
        residual = program.res_cap.astype(float, copy=True)
    else:
        rates = workspace.rates
        rates.fill(0.0)
        share = workspace.share
        freeze = workspace.freeze
        residual = workspace.residual
        np.copyto(residual, program.res_cap)
    unfrozen = active.copy()
    # Compress the incidence to the surviving flows once per fill; rounds
    # then touch only these entries.
    sel = unfrozen[program.inc_flow]
    ent_res = program.inc_res[sel]
    ent_flow = program.inc_flow[sel]
    ent_alive = np.ones(ent_res.shape, dtype=bool)
    counts = np.bincount(ent_res, minlength=num_res)
    rounds = 0
    n_unfrozen = int(unfrozen.sum())
    while n_unfrozen:
        rounds += 1
        used = counts > 0
        if not used.any():
            # No constraining resource (cannot happen for well-formed paths,
            # every flow crosses at least one link): unbounded rate.
            rates[unfrozen] = np.inf
            break
        share.fill(np.inf)
        np.divide(residual, counts, out=share, where=used)
        best = float(share.min())
        # Freeze every resource tied for the minimum share.  Max-min fair
        # allocations are unique, so an exactly-tied resource would yield the
        # same share next round anyway; grouping within SIM_EPS only saves
        # the round.
        bottleneck = used & (share <= best + SIM_EPS + 1e-12 * abs(best))
        freeze.fill(False)
        freeze[ent_flow[ent_alive & bottleneck[ent_res]]] = True
        rates[freeze] = best
        ent_frozen = ent_alive & freeze[ent_flow]
        retired = np.bincount(ent_res[ent_frozen], minlength=num_res)
        residual -= best * retired
        np.maximum(residual, 0.0, out=residual)
        counts -= retired
        ent_alive &= ~ent_frozen
        unfrozen &= ~freeze
        n_unfrozen -= int(np.count_nonzero(freeze))
    return rates, rounds


def fill_rates_csr(program, active: np.ndarray,
                   workspace: Optional[FillWorkspace] = None,
                   impl=None) -> Tuple[np.ndarray, int]:
    """Run the flat-CSR saturation kernel (JIT-compiled when numba exists).

    ``impl`` overrides the kernel callable (the interpreted
    ``fill_csr_python`` for the differential test path); by default the
    jitted kernel is used, falling back to the interpreted one.
    """
    ws = workspace if workspace is not None else FillWorkspace(program)
    if impl is None:
        impl = _numba_impl.fill_csr or _numba_impl.fill_csr_python
    active_arr = np.ascontiguousarray(active, dtype=np.bool_)
    rounds = impl(ws.res_cap, ws.res_ptr, ws.res_flows, ws.flow_ptr,
                  ws.flow_res, active_arr, ws.rates, ws.frozen, ws.counts,
                  ws.residual, ws.stack, SIM_EPS)
    return ws.rates, int(rounds)


def numba_available() -> bool:
    """True when the jitted kernel exists and ``REPRO_NO_NUMBA`` is unset."""
    if os.environ.get("REPRO_NO_NUMBA"):
        return False
    return _numba_impl.fill_csr is not None


def set_fill_kernel(name: Optional[str]) -> None:
    """Force the fill kernel programmatically (``None`` restores env control).

    Accepts any of :data:`KERNEL_NAMES`; takes precedence over the
    ``REPRO_KERNEL`` environment variable until cleared.
    """
    global _override
    if name is not None and name not in KERNEL_NAMES:
        raise ValueError(
            f"unknown fill kernel {name!r}; choose from {KERNEL_NAMES}")
    with _override_lock:
        _override = name


def fill_kernel_name() -> str:
    """The kernel the next fill will dispatch to, after fallback resolution.

    Resolution order: :func:`set_fill_kernel` override, then the
    ``REPRO_KERNEL`` environment variable, then ``auto``.  ``auto`` and an
    unavailable ``numba`` request both degrade to ``numpy`` — requesting the
    JIT where the compiler is missing is never an error.
    """
    with _override_lock:
        name = _override
    if name is None:
        name = os.environ.get("REPRO_KERNEL", "auto").lower()
    if name not in KERNEL_NAMES:
        raise ValueError(
            f"REPRO_KERNEL must be one of {KERNEL_NAMES}, got {name!r}")
    if name == "auto":
        return "numba" if numba_available() else "numpy"
    if name == "numba" and not numba_available():
        return "numpy"
    return name


def run_fill(program, active: np.ndarray,
             workspace: Optional[FillWorkspace] = None
             ) -> Tuple[np.ndarray, int, str]:
    """Dispatch one fill to the selected kernel.

    Returns ``(rates, rounds, kernel_name)`` — the engine surfaces the
    kernel name and cumulative fill seconds in the ``[stats]`` footer.
    """
    name = fill_kernel_name()
    if name == "numba":
        rates, rounds = fill_rates_csr(program, active, workspace)
    elif name == "python-csr":
        rates, rounds = fill_rates_csr(program, active, workspace,
                                       impl=_numba_impl.fill_csr_python)
    else:
        rates, rounds = fill_rates_numpy(program, active, workspace)
    return rates, rounds, name
