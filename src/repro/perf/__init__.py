"""Native-speed hot paths: JIT fill kernels and warm-started LP solving.

The performance layer behind the simulator and the solve engine:

* :mod:`repro.perf.fillkernel` — interchangeable progressive-filling
  kernels (vectorized numpy fallback; flat-CSR kernel JIT-compiled with
  numba when installed), selected via ``REPRO_KERNEL`` and dispatched by
  :func:`run_fill`;
* :mod:`repro.perf.warmstart` — constraint-structure hashing and
  uniform-RHS-scaling detection for LP families;
* :mod:`repro.perf.batch` — :func:`solve_family`, the batched multi-RHS
  solver that degraded-fabric sweeps route through;
* :mod:`repro.perf.delta` — :class:`DeltaProgram`, the incremental
  mutation layer for compiled flow programs: fabric epochs patch
  capacities and rerouted incidence slots in place instead of recompiling
  (``REPRO_DELTA=off`` selects the recompile-from-scratch oracle).

Everything here degrades gracefully: without ``numba`` the fills run the
numpy kernel, without ``highspy`` the warm-started backend falls back to
scipy — behaviour is identical, only throughput differs.  Install both
with the ``perf`` extra (``pip install -e '.[perf]'``); see
``docs/performance.md`` for knobs and benchmark methodology.
"""

from .batch import solve_family
from .delta import DeltaProgram, delta_enabled, set_delta_enabled
from .fillkernel import (FillWorkspace, fill_kernel_name, fill_rates_csr,
                         fill_rates_numpy, numba_available, run_fill,
                         set_fill_kernel)
from .warmstart import (rhs_vector, scaling_safe_bounds, structure_hash,
                        uniform_rhs_scale)

__all__ = [
    "FillWorkspace",
    "fill_kernel_name",
    "fill_rates_csr",
    "fill_rates_numpy",
    "numba_available",
    "run_fill",
    "set_fill_kernel",
    "rhs_vector",
    "scaling_safe_bounds",
    "structure_hash",
    "uniform_rhs_scale",
    "solve_family",
    "DeltaProgram",
    "delta_enabled",
    "set_delta_enabled",
]
