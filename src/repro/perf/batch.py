"""Batched multi-RHS solving for structurally-related problem families.

A degraded-fabric sweep (``hpc:scale=...`` grids, bandwidth axes) produces
N :class:`~repro.engine.problem.MCFProblem` specs that assemble to the
*same* constraint matrix with different right-hand sides.  Solving them as
N independent cold LPs throws that structure away; :func:`solve_family`
solves them as one sequence instead:

1. each member first consults the engine's solution cache under its normal
   per-problem key — results land back there too, so sweep / report /
   cluster inherit the batching with no changes to those layers;
2. when a member shares a :func:`~repro.perf.warmstart.structure_hash`
   with the previously solved one and its RHS is a uniform positive
   scaling of it, LP homogeneity yields the optimum directly
   (``x* = s * x0*``, ``objective = s * obj0``) with no solver call;
3. otherwise the member solves through the configured backend — which,
   when it is the warm-started :class:`~repro.engine.backends.
   HighsNativeBackend`, reuses the live model and basis keyed by the same
   structure hash.

The derivation in step 2 is exact for the repo's MCF formulations (all
variables bounded ``[0, inf)``, verified per member via
:func:`~repro.perf.warmstart.scaling_safe_bounds`) and is asserted against
cold solves to ``FLOW_TOL`` in ``tests/test_kernels.py`` and
``benchmarks/bench_warmstart.py``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["solve_family"]


def solve_family(problems: Sequence, backend: Optional[str] = None,
                 engine=None, use_cache: bool = True
                 ) -> Tuple[List, Dict[str, int]]:
    """Solve a family of problems as one warm-started / scaled sequence.

    Parameters mirror :meth:`repro.engine.core.Engine.solve`; ``engine``
    defaults to the process-wide engine.  Returns ``(solutions, stats)``
    where ``stats`` counts ``cache_hits`` (answered from the solution
    cache), ``scaled`` (derived via RHS scaling, no solver call) and
    ``solves`` (sent to the backend).  Solutions are cached under the same
    keys :meth:`Engine.solve` would use, so later single-problem solves
    hit.
    """
    from ..engine.core import get_engine
    from ..engine.backends import get_backend
    from ..engine.problem import get_formulation
    from .warmstart import (rhs_vector, scaling_safe_bounds, structure_hash,
                            uniform_rhs_scale)

    engine = engine if engine is not None else get_engine()
    backend_name = backend or engine.backend_name
    solver = get_backend(backend_name)
    stats = {"solves": 0, "scaled": 0, "cache_hits": 0}
    template: Optional[dict] = None
    solutions: List = []
    for problem in problems:
        key = f"{problem.cache_key()}-{backend_name}"
        caching = use_cache and engine.cache.enabled
        if caching:
            cached = engine.cache.get(key)
            if cached is not None:
                stats["cache_hits"] += 1
                info = dict(cached.info)
                info["cache"] = "hit"
                info.pop("assemble_seconds", None)
                info.pop("solve_seconds", None)
                solutions.append(cached.clone(info=info))
                continue
        t0 = time.perf_counter()
        builder = get_formulation(problem.formulation)(problem)
        builder.to_arrays()
        shash = structure_hash(builder)
        rhs = rhs_vector(builder)
        t1 = time.perf_counter()
        scale = None
        if (template is not None and template["hash"] == shash
                and template["maximize"] == problem.maximize
                and template["x"] is not None
                and scaling_safe_bounds(builder)):
            scale = uniform_rhs_scale(template["rhs"], rhs)
        if scale is not None:
            solution = builder.make_solution(template["x"] * scale,
                                             template["objective"] * scale)
            solution.info = {"family": "scaled-rhs", "rhs_scale": scale}
            stats["scaled"] += 1
        else:
            solution = solver.solve(builder, maximize=problem.maximize)
            solution.info.setdefault("family", "solved")
            stats["solves"] += 1
            template = {"hash": shash, "rhs": rhs, "x": solution.x,
                        "objective": solution.objective,
                        "maximize": problem.maximize}
        t2 = time.perf_counter()
        solution.info.update({
            "cache": "miss" if caching else "bypass",
            "backend": backend_name,
            "key": key[:16],
            "num_variables": builder.num_variables,
            "num_constraints": builder.num_constraints,
            "assemble_seconds": t1 - t0,
            "solve_seconds": t2 - t1,
            "structure": shash[:16],
        })
        if caching:
            engine.cache.put(key, solution)
        solutions.append(solution)
    return solutions, stats
