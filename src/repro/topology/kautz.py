"""Generalized Kautz (Imase–Itoh) and generalized de Bruijn digraphs.

The paper identifies generalized Kautz graphs (§5.4, [21] Imase & Itoh 1983) as
a family of expander digraphs that (a) can be constructed for *any* number of
nodes ``N`` and degree ``d`` and (b) come within a small constant factor of the
all-to-all time lower bound of Theorem 1.

Constructions
-------------
Generalized Kautz ``GK(d, N)``:
    node ``u`` has arcs to ``(-d*u - j) mod N`` for ``j = 1..d``.
    Diameter is at most ``ceil(log_d N)``.

Generalized de Bruijn ``GB(d, N)`` (Reddy–Pradhan–Kuhl):
    node ``u`` has arcs to ``(d*u + j) mod N`` for ``j = 0..d-1``.

Both may produce self-loops or parallel arcs for particular ``(d, N)``
combinations; those arcs are dropped (as in practical deployments the
corresponding port simply remains unused), so a handful of nodes may have
out-degree slightly below ``d``.  ``strict=True`` raises instead.
"""

from __future__ import annotations

import networkx as nx

from .base import Topology

__all__ = ["generalized_kautz", "generalized_de_bruijn", "kautz"]


def generalized_kautz(degree: int, num_nodes: int, cap: float = 1.0,
                      strict: bool = False) -> Topology:
    """Build the generalized Kautz digraph ``GK(degree, num_nodes)``.

    Parameters
    ----------
    degree:
        Target out-degree ``d`` (number of ports per node).
    num_nodes:
        Number of nodes ``N``; any value >= 2 is accepted.
    strict:
        If True, raise when the Imase–Itoh rule produces a self-loop or a
        duplicate arc (instead of silently dropping it).
    """
    if degree < 1:
        raise ValueError("degree must be >= 1")
    if num_nodes < 2:
        raise ValueError("num_nodes must be >= 2")
    g = nx.DiGraph()
    g.add_nodes_from(range(num_nodes))
    for u in range(num_nodes):
        for j in range(1, degree + 1):
            v = (-degree * u - j) % num_nodes
            if v == u or g.has_edge(u, v):
                if strict:
                    raise ValueError(
                        f"GK({degree},{num_nodes}): degenerate arc {u}->{v} for j={j}"
                    )
                continue
            g.add_edge(u, v, cap=cap)
    topo = Topology(g, name=f"genkautz-d{degree}-n{num_nodes}", default_cap=cap,
                    metadata={"family": "generalized_kautz", "degree": degree})
    return topo


def generalized_de_bruijn(degree: int, num_nodes: int, cap: float = 1.0,
                          strict: bool = False) -> Topology:
    """Build the generalized de Bruijn digraph ``GB(degree, num_nodes)``."""
    if degree < 1:
        raise ValueError("degree must be >= 1")
    if num_nodes < 2:
        raise ValueError("num_nodes must be >= 2")
    g = nx.DiGraph()
    g.add_nodes_from(range(num_nodes))
    for u in range(num_nodes):
        for j in range(degree):
            v = (degree * u + j) % num_nodes
            if v == u or g.has_edge(u, v):
                if strict:
                    raise ValueError(
                        f"GB({degree},{num_nodes}): degenerate arc {u}->{v} for j={j}"
                    )
                continue
            g.add_edge(u, v, cap=cap)
    return Topology(g, name=f"gendebruijn-d{degree}-n{num_nodes}", default_cap=cap,
                    metadata={"family": "generalized_de_bruijn", "degree": degree})


def kautz(degree: int, diameter: int, cap: float = 1.0) -> Topology:
    """Classic Kautz digraph ``K(d, k)`` with ``(d+1) * d^(k-1)`` nodes.

    Nodes are strings ``a_1 a_2 ... a_k`` over an alphabet of ``d+1`` symbols
    with ``a_i != a_{i+1}``; arcs shift the string left by one symbol.  Exposed
    mostly for validating :func:`generalized_kautz` against the classic family
    at the node counts where both exist.
    """
    if degree < 1 or diameter < 1:
        raise ValueError("degree and diameter must be >= 1")
    alphabet = list(range(degree + 1))

    def words(k: int):
        if k == 1:
            for a in alphabet:
                yield (a,)
            return
        for w in words(k - 1):
            for a in alphabet:
                if a != w[-1]:
                    yield w + (a,)

    nodes = sorted(words(diameter))
    index = {w: i for i, w in enumerate(nodes)}
    g = nx.DiGraph()
    g.add_nodes_from(range(len(nodes)))
    for w in nodes:
        for a in alphabet:
            if a == w[-1]:
                continue
            nxt = w[1:] + (a,)
            if index[w] != index[nxt]:
                g.add_edge(index[w], index[nxt], cap=cap)
    return Topology(g, name=f"kautz-d{degree}-k{diameter}", default_cap=cap,
                    metadata={"family": "kautz", "degree": degree, "diameter": diameter})
