"""Expander topologies used as comparison points in §5.4 (Fig. 10 right).

* Xpander [Valadarsky et al. 2016]: built by "lifting" the complete graph
  K_{d+1}; every original node becomes a super-node of ``lift`` copies and each
  original edge becomes a random perfect matching between the two super-nodes.
* Random regular graph (the Jellyfish construction [Singla et al. 2012]).
"""

from __future__ import annotations

import random

import networkx as nx

from .base import Topology

__all__ = ["xpander", "random_regular", "jellyfish"]


def xpander(degree: int, lift: int, seed: int = 0, cap: float = 1.0) -> Topology:
    """Xpander with ``(degree + 1) * lift`` nodes and degree ``degree``.

    Parameters
    ----------
    degree:
        Node degree ``d``; the base graph is the complete graph on ``d+1`` nodes.
    lift:
        Lift factor (number of copies of each base node).  ``lift >= 2``.
    seed:
        Seed for the random matchings (deterministic construction).
    """
    if degree < 2:
        raise ValueError("degree must be >= 2")
    if lift < 2:
        raise ValueError("lift must be >= 2")
    rng = random.Random(seed)
    base_nodes = degree + 1
    n = base_nodes * lift

    def node_id(base: int, copy: int) -> int:
        return base * lift + copy

    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for a in range(base_nodes):
        for b in range(a + 1, base_nodes):
            perm = list(range(lift))
            rng.shuffle(perm)
            for copy_a, copy_b in enumerate(perm):
                u, v = node_id(a, copy_a), node_id(b, copy_b)
                g.add_edge(u, v, cap=cap)
                g.add_edge(v, u, cap=cap)
    return Topology(g, name=f"xpander-d{degree}-n{n}-s{seed}", default_cap=cap,
                    metadata={"family": "xpander", "degree": degree, "lift": lift,
                              "seed": seed})


def random_regular(degree: int, num_nodes: int, seed: int = 0, cap: float = 1.0,
                   max_tries: int = 50) -> Topology:
    """Connected random ``degree``-regular graph on ``num_nodes`` nodes.

    ``degree * num_nodes`` must be even (handshake condition).  Construction is
    retried until a connected sample is found.
    """
    if degree < 2:
        raise ValueError("degree must be >= 2")
    if degree >= num_nodes:
        raise ValueError("degree must be < num_nodes")
    if (degree * num_nodes) % 2 != 0:
        raise ValueError("degree * num_nodes must be even")
    for attempt in range(max_tries):
        g = nx.random_regular_graph(degree, num_nodes, seed=seed + attempt)
        if nx.is_connected(g):
            topo = Topology.from_undirected(
                g, name=f"randregular-d{degree}-n{num_nodes}-s{seed}", cap=cap,
                metadata={"family": "random_regular", "degree": degree, "seed": seed})
            return topo
    raise RuntimeError("failed to sample a connected random regular graph")


def jellyfish(degree: int, num_nodes: int, seed: int = 0, cap: float = 1.0) -> Topology:
    """Jellyfish topology: alias for a connected random regular graph."""
    topo = random_regular(degree, num_nodes, seed=seed, cap=cap)
    topo.metadata["family"] = "jellyfish"
    return topo
