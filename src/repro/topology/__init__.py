"""Direct-connect topology generators and graph properties."""

from .base import Topology, Edge
from .bipartite import complete_bipartite
from .expander import jellyfish, random_regular, xpander
from .hypercube import hypercube, twisted_hypercube
from .hyperx import flattened_butterfly, hyperx
from .kautz import generalized_de_bruijn, generalized_kautz, kautz
from .misc import bidirectional_ring, chain, complete, dragonfly, ring
from .spec import from_spec, parse_spec, spec_families
from .torus import (
    coordinate_of,
    edge_punctured_torus,
    mesh,
    node_of,
    node_punctured_torus,
    torus,
    torus_2d,
    torus_3d,
)
from . import properties

__all__ = [
    "Topology",
    "Edge",
    "complete_bipartite",
    "jellyfish",
    "random_regular",
    "xpander",
    "hypercube",
    "twisted_hypercube",
    "flattened_butterfly",
    "hyperx",
    "generalized_de_bruijn",
    "generalized_kautz",
    "kautz",
    "bidirectional_ring",
    "chain",
    "complete",
    "dragonfly",
    "ring",
    "from_spec",
    "parse_spec",
    "spec_families",
    "coordinate_of",
    "edge_punctured_torus",
    "mesh",
    "node_of",
    "node_punctured_torus",
    "torus",
    "torus_2d",
    "torus_3d",
    "properties",
]
