"""Hypercube and twisted-hypercube topologies.

The internal GPU testbed in the paper (§5.1) evaluates a 3D hypercube and a 3D
*twisted* hypercube, both with degree 3 (N = 8), alongside a complete bipartite
graph with degree 4.
"""

from __future__ import annotations

import networkx as nx

from .base import Topology

__all__ = ["hypercube", "twisted_hypercube"]


def hypercube(dimension: int, cap: float = 1.0) -> Topology:
    """Binary ``dimension``-cube with ``2**dimension`` nodes, degree ``dimension``.

    Nodes differing in exactly one bit are connected by a bidirectional link.
    """
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    n = 1 << dimension
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for u in range(n):
        for bit in range(dimension):
            v = u ^ (1 << bit)
            g.add_edge(u, v, cap=cap)
    return Topology(g, name=f"hypercube-{dimension}d", default_cap=cap,
                    metadata={"family": "hypercube", "dimension": dimension})


def twisted_hypercube(dimension: int = 3, cap: float = 1.0) -> Topology:
    """Twisted binary hypercube of the given dimension.

    Construction (standard "crossed / twisted cube" recursion, used here for
    the degree-3, 8-node instance evaluated in the paper): take two copies of
    the ``(dimension-1)``-cube and join copy-0 node ``u`` to copy-1 node
    ``sigma(u)``, where ``sigma`` swaps the two lowest address bits.  Compared
    with the plain hypercube this reduces the average distance (the highest-
    dimension links no longer connect identical addresses) while keeping the
    degree equal to ``dimension``.
    """
    if dimension < 2:
        raise ValueError("twisted hypercube needs dimension >= 2")
    half = 1 << (dimension - 1)
    n = half * 2
    g = nx.DiGraph()
    g.add_nodes_from(range(n))

    # Two disjoint (dimension-1)-cubes.
    for u in range(half):
        for bit in range(dimension - 1):
            v = u ^ (1 << bit)
            g.add_edge(u, v, cap=cap)
            g.add_edge(u + half, v + half, cap=cap)

    def sigma(u: int) -> int:
        if dimension - 1 < 2:
            return u
        low2 = u & 0b11
        swapped = ((low2 & 0b01) << 1) | ((low2 & 0b10) >> 1)
        return (u & ~0b11) | swapped

    # Twisted cross links between the two halves.
    for u in range(half):
        v = sigma(u) + half
        g.add_edge(u, v, cap=cap)
        g.add_edge(v, u, cap=cap)

    return Topology(g, name=f"twisted-hypercube-{dimension}d", default_cap=cap,
                    metadata={"family": "twisted_hypercube", "dimension": dimension})
