"""Topology spec strings: one parser shared by the CLI, benchmarks and scenarios.

A spec is a compact ``family:key=value,...`` string such as
``genkautz:d=4,n=24``, ``torus:dims=3x3x3``, ``hypercube:dim=3``,
``bipartite:left=4,right=4``, ``xpander:d=4,lift=5`` or
``rrg:d=4,n=20,seed=1``.  :func:`from_spec` turns it into a
:class:`~repro.topology.base.Topology`.

Historically :mod:`repro.cli` owned this parser and every benchmark rebuilt
topologies by hand; the declarative experiment layer
(:mod:`repro.experiments`) made a single shared implementation mandatory, so
it lives here and ``cli.build_topology`` is an alias.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .base import Topology
from .bipartite import complete_bipartite
from .expander import random_regular, xpander
from .hypercube import hypercube, twisted_hypercube
from .kautz import generalized_kautz
from .misc import complete, ring
from .torus import torus

__all__ = ["from_spec", "parse_spec", "spec_families"]


def parse_spec(spec: str) -> Tuple[str, Dict[str, str]]:
    """Split a ``family:key=value,...`` spec into ``(family, params)``."""
    if ":" in spec:
        family, rest = spec.split(":", 1)
    else:
        family, rest = spec, ""
    params: Dict[str, str] = {}
    for item in rest.split(","):
        if not item:
            continue
        if "=" not in item:
            raise ValueError(f"malformed topology parameter {item!r} (expected key=value)")
        key, value = item.split("=", 1)
        params[key.strip()] = value.strip()
    return family.strip().lower(), params


def from_spec(spec: str) -> Topology:
    """Build a topology from a ``family:key=value,...`` spec string."""
    family, params = parse_spec(spec)

    if family in ("genkautz", "kautz"):
        return generalized_kautz(int(params.get("d", 4)), int(params.get("n", 16)))
    if family == "hypercube":
        return hypercube(int(params.get("dim", 3)))
    if family in ("twisted", "twisted-hypercube"):
        return twisted_hypercube(int(params.get("dim", 3)))
    if family == "bipartite":
        left = int(params.get("left", 4))
        right = int(params.get("right", left))
        return complete_bipartite(left, right)
    if family in ("torus", "mesh"):
        dims = [int(x) for x in params.get("dims", "3x3").split("x")]
        return torus(dims, wrap=(family == "torus"))
    if family == "xpander":
        return xpander(int(params.get("d", 4)), int(params.get("lift", 4)),
                       seed=int(params.get("seed", 0)))
    if family in ("rrg", "random-regular", "jellyfish"):
        return random_regular(int(params.get("d", 4)), int(params.get("n", 16)),
                              seed=int(params.get("seed", 0)))
    if family == "ring":
        return ring(int(params.get("n", 5)))
    if family == "complete":
        return complete(int(params.get("n", 4)))
    raise ValueError(f"unknown topology family {family!r}; "
                     f"known families: {', '.join(spec_families())}")


def spec_families() -> Tuple[str, ...]:
    """Canonical family names :func:`from_spec` understands."""
    return ("genkautz", "hypercube", "twisted", "bipartite", "torus", "mesh",
            "xpander", "rrg", "ring", "complete")
