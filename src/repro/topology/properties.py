"""Graph-theoretic properties relevant to all-to-all throughput.

§2.3 of the paper recalls that the all-to-all throughput of a topology is
bounded above by ``4*chi / N^2`` where ``chi`` is the bisection bandwidth, and
that expansion / spectral gap are good proxies.  This module provides the
measurements used to compare topologies (Fig. 10) and to sanity-check the
topology generators.
"""

from __future__ import annotations

import random
from typing import Dict

import networkx as nx
import numpy as np

from .base import Topology

__all__ = [
    "diameter",
    "average_distance",
    "total_pairwise_distance",
    "spectral_gap",
    "algebraic_connectivity",
    "bisection_bandwidth_estimate",
    "edge_expansion_estimate",
    "all_to_all_upper_bound_from_distance",
    "summary",
]


def diameter(topo: Topology) -> int:
    """Directed diameter in hops."""
    return topo.diameter()


def _distance_matrix(topo: Topology) -> Dict[int, Dict[int, int]]:
    return dict(nx.all_pairs_shortest_path_length(topo.graph))


def total_pairwise_distance(topo: Topology) -> int:
    """Sum of shortest-path hop counts over all ordered node pairs."""
    dist = _distance_matrix(topo)
    return sum(d for row in dist.values() for d in row.values())


def average_distance(topo: Topology) -> float:
    """Average shortest-path distance over ordered pairs (s != d)."""
    n = topo.num_nodes
    if n < 2:
        return 0.0
    return total_pairwise_distance(topo) / (n * (n - 1))


def spectral_gap(topo: Topology) -> float:
    """Spectral gap ``d - lambda_2`` of the symmetrized adjacency matrix.

    For a d-regular graph, larger gap means better expansion.  The adjacency
    matrix is symmetrized as ``(A + A^T)/2`` so the quantity is defined for
    directed families (e.g. generalized Kautz) as well.
    """
    a = nx.to_numpy_array(topo.graph, nodelist=topo.nodes, weight=None)
    sym = (a + a.T) / 2.0
    eigs = np.sort(np.linalg.eigvalsh(sym))[::-1]
    if len(eigs) < 2:
        return 0.0
    return float(eigs[0] - eigs[1])


def algebraic_connectivity(topo: Topology) -> float:
    """Second-smallest Laplacian eigenvalue of the symmetrized graph."""
    a = nx.to_numpy_array(topo.graph, nodelist=topo.nodes, weight=None)
    sym = (a + a.T) / 2.0
    lap = np.diag(sym.sum(axis=1)) - sym
    eigs = np.sort(np.linalg.eigvalsh(lap))
    if len(eigs) < 2:
        return 0.0
    return float(eigs[1])


def bisection_bandwidth_estimate(topo: Topology, trials: int = 64, seed: int = 0) -> float:
    """Estimate of the bisection bandwidth (capacity across a balanced cut).

    Exact bisection is NP-hard; we take the minimum over (a) a spectral
    (Fiedler-vector) bisection and (b) ``trials`` random balanced bisections.
    The value is the total capacity of directed edges crossing the cut in
    either direction divided by 2 (per-direction bandwidth), matching the
    usual definition for bidirectional fabrics.
    """
    n = topo.num_nodes
    if n < 2:
        return 0.0
    rng = random.Random(seed)
    caps = topo.capacities()

    def cut_capacity(side: set) -> float:
        total = 0.0
        for (u, v), c in caps.items():
            if (u in side) != (v in side):
                total += c
        return total / 2.0

    best = float("inf")
    # Spectral bisection.
    a = nx.to_numpy_array(topo.graph, nodelist=topo.nodes, weight="cap")
    sym = (a + a.T) / 2.0
    lap = np.diag(sym.sum(axis=1)) - sym
    vals, vecs = np.linalg.eigh(lap)
    fiedler = vecs[:, 1] if vecs.shape[1] > 1 else vecs[:, 0]
    order = np.argsort(fiedler)
    side = set(int(x) for x in order[: n // 2])
    best = min(best, cut_capacity(side))
    # Random balanced bisections.
    nodes = topo.nodes
    for _ in range(trials):
        perm = nodes[:]
        rng.shuffle(perm)
        best = min(best, cut_capacity(set(perm[: n // 2])))
    return best


def edge_expansion_estimate(topo: Topology, trials: int = 200, seed: int = 0) -> float:
    """Lower-ish estimate of the edge expansion h(G) = min |boundary(S)|/|S|.

    Samples random subsets with |S| <= N/2 plus all singletons; exact expansion
    is NP-hard so this is an upper bound on the true minimum, adequate for
    relative topology comparisons.
    """
    n = topo.num_nodes
    rng = random.Random(seed)
    caps = topo.capacities()

    def boundary(side: set) -> float:
        return sum(c for (u, v), c in caps.items() if u in side and v not in side)

    best = float("inf")
    for u in topo.nodes:
        best = min(best, boundary({u}) / 1.0)
    for _ in range(trials):
        size = rng.randint(1, max(1, n // 2))
        side = set(rng.sample(topo.nodes, size))
        best = min(best, boundary(side) / len(side))
    return best


def all_to_all_upper_bound_from_distance(topo: Topology) -> float:
    """Distance-based upper bound on the concurrent flow value F.

    Every unit of commodity (s,d) must consume at least ``dist(s,d)`` units of
    link capacity, so ``F * sum_{s!=d} dist(s,d) <= total capacity`` and hence
    ``F <= sum(cap) / sum(dist)``.  The corresponding all-to-all time lower
    bound is the reciprocal.  This matches Theorem 1 when the graph realizes
    ideal arborescences.
    """
    total_cap = sum(topo.capacities().values())
    total_dist = total_pairwise_distance(topo)
    if total_dist == 0:
        return float("inf")
    return total_cap / total_dist


def summary(topo: Topology) -> Dict[str, float]:
    """Convenience bundle of the properties used in reports."""
    return {
        "num_nodes": float(topo.num_nodes),
        "num_edges": float(topo.num_edges),
        "max_out_degree": float(topo.max_degree()),
        "diameter": float(topo.diameter()),
        "average_distance": average_distance(topo),
        "spectral_gap": spectral_gap(topo),
        "algebraic_connectivity": algebraic_connectivity(topo),
        "bisection_estimate": bisection_bandwidth_estimate(topo),
        "flow_upper_bound": all_to_all_upper_bound_from_distance(topo),
    }
