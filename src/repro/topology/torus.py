"""Mesh, torus and punctured-torus topologies.

The paper's hardware evaluation (§5.1-§5.2) uses a 3x3x3 torus (27 nodes,
degree 6) and "punctured" variants with 3 random edges or 3 random nodes
removed (Fig. 5), emulating link/node failures.
"""

from __future__ import annotations

import itertools
import random
from typing import List, Optional, Sequence, Tuple

import networkx as nx

from .base import Edge, Topology

__all__ = [
    "torus",
    "mesh",
    "torus_3d",
    "torus_2d",
    "edge_punctured_torus",
    "node_punctured_torus",
    "coordinate_of",
    "node_of",
]


def _coords(dims: Sequence[int]) -> List[Tuple[int, ...]]:
    return list(itertools.product(*[range(d) for d in dims]))


def coordinate_of(node: int, dims: Sequence[int]) -> Tuple[int, ...]:
    """Map a linear node id to its torus coordinate (row-major order)."""
    coord = []
    for d in reversed(dims):
        coord.append(node % d)
        node //= d
    return tuple(reversed(coord))


def node_of(coord: Sequence[int], dims: Sequence[int]) -> int:
    """Map a torus coordinate to its linear node id (row-major order)."""
    node = 0
    for c, d in zip(coord, dims):
        if not (0 <= c < d):
            raise ValueError(f"coordinate {coord} out of bounds for dims {dims}")
        node = node * d + c
    return node


def torus(dims: Sequence[int], cap: float = 1.0, wrap: bool = True) -> Topology:
    """k-dimensional torus (``wrap=True``) or mesh (``wrap=False``).

    Each physical link is bidirectional (two opposing directed edges).  In a
    dimension of size 2 the wrap link coincides with the direct link, so the
    degree along that dimension is 1 in each direction rather than 2.
    """
    dims = list(dims)
    if not dims or any(d < 2 for d in dims):
        raise ValueError("every torus dimension must be >= 2")
    g = nx.DiGraph()
    n = 1
    for d in dims:
        n *= d
    g.add_nodes_from(range(n))
    for coord in _coords(dims):
        u = node_of(coord, dims)
        for axis, size in enumerate(dims):
            for delta in (+1, -1):
                c = list(coord)
                nxt = c[axis] + delta
                if wrap:
                    nxt %= size
                elif not (0 <= nxt < size):
                    continue
                c[axis] = nxt
                v = node_of(c, dims)
                if v != u:
                    g.add_edge(u, v, cap=cap)
    kind = "torus" if wrap else "mesh"
    name = f"{kind}-" + "x".join(str(d) for d in dims)
    return Topology(g, name=name, default_cap=cap,
                    metadata={"family": kind, "dims": tuple(dims), "wrap": wrap})


def mesh(dims: Sequence[int], cap: float = 1.0) -> Topology:
    """k-dimensional mesh (torus without wrap-around links)."""
    return torus(dims, cap=cap, wrap=False)


def torus_3d(size: int = 3, cap: float = 1.0) -> Topology:
    """Cubic 3D torus ``size x size x size`` (paper uses size=3, N=27)."""
    return torus([size, size, size], cap=cap)


def torus_2d(rows: int, cols: Optional[int] = None, cap: float = 1.0) -> Topology:
    """2D torus ``rows x cols`` (cols defaults to rows)."""
    return torus([rows, cols if cols is not None else rows], cap=cap)


def _bidirectional_pairs(topo: Topology) -> List[Edge]:
    """Undirected link list (u < v) of a bidirectional topology."""
    pairs = set()
    for u, v in topo.edges:
        pairs.add((min(u, v), max(u, v)))
    return sorted(pairs)


def edge_punctured_torus(dims: Sequence[int], num_removed: int = 3, seed: int = 0,
                         cap: float = 1.0, max_tries: int = 200) -> Topology:
    """Torus with ``num_removed`` random bidirectional links removed (Fig. 5 left).

    Removal is rejected and re-sampled if it would disconnect the topology.
    """
    base = torus(dims, cap=cap)
    rng = random.Random(seed)
    links = _bidirectional_pairs(base)
    if num_removed >= len(links):
        raise ValueError("cannot remove that many links")
    for _ in range(max_tries):
        chosen = rng.sample(links, num_removed)
        directed = [(u, v) for u, v in chosen] + [(v, u) for u, v in chosen]
        try:
            topo = base.remove_edges(directed, name=base.name + f"-edgepunct{num_removed}-s{seed}")
        except ValueError:
            continue
        topo.metadata.update({"family": "edge_punctured_torus", "dims": tuple(dims),
                              "removed_links": sorted(chosen), "seed": seed})
        return topo
    raise RuntimeError("failed to find a connected edge-punctured torus")


def node_punctured_torus(dims: Sequence[int], num_removed: int = 3, seed: int = 0,
                         cap: float = 1.0, max_tries: int = 200) -> Topology:
    """Torus with ``num_removed`` random nodes removed (Fig. 5 right)."""
    base = torus(dims, cap=cap)
    rng = random.Random(seed)
    if num_removed >= base.num_nodes - 1:
        raise ValueError("cannot remove that many nodes")
    for _ in range(max_tries):
        chosen = rng.sample(base.nodes, num_removed)
        try:
            topo = base.remove_nodes(chosen, name=base.name + f"-nodepunct{num_removed}-s{seed}")
        except ValueError:
            continue
        topo.metadata.update({"family": "node_punctured_torus", "dims": tuple(dims),
                              "seed": seed})
        return topo
    raise RuntimeError("failed to find a connected node-punctured torus")
