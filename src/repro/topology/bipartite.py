"""Complete bipartite direct-connect topology.

The paper's GPU testbed evaluates the complete bipartite graph K_{4,4}
(8 nodes, degree 4) as one of its reconfigurable patch-panel topologies.
"""

from __future__ import annotations

import networkx as nx

from .base import Topology

__all__ = ["complete_bipartite"]


def complete_bipartite(left: int, right: int | None = None, cap: float = 1.0) -> Topology:
    """Complete bipartite graph ``K_{left,right}`` with bidirectional links.

    Nodes ``0..left-1`` form one side, ``left..left+right-1`` the other; every
    cross pair is connected by a bidirectional link, so nodes on the left have
    degree ``right`` and vice versa.  ``right`` defaults to ``left``.
    """
    if right is None:
        right = left
    if left < 1 or right < 1:
        raise ValueError("both sides must have at least one node")
    g = nx.DiGraph()
    g.add_nodes_from(range(left + right))
    for u in range(left):
        for v in range(left, left + right):
            g.add_edge(u, v, cap=cap)
            g.add_edge(v, u, cap=cap)
    return Topology(g, name=f"bipartite-{left}x{right}", default_cap=cap,
                    metadata={"family": "complete_bipartite", "left": left, "right": right})
