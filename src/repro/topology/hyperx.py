"""HyperX / flattened-butterfly style direct-connect topologies.

§5.4 of the paper notes that many HPC topology families (SlimFly, SpectralFly,
flattened butterflies, ...) only exist for particular node counts, which is
one argument for generalized Kautz graphs.  These generators provide two such
families so the topology-comparison tooling (Fig. 10 style studies,
``examples/topology_design.py``) can include them where they do exist:

* **HyperX(L, S)** -- an L-dimensional lattice with S nodes per dimension where
  every pair of nodes differing in exactly one coordinate is directly
  connected (each dimension is a clique).  The flattened butterfly is the
  special case of a fully-subscribed HyperX.
* **flattened_butterfly(radix, dims)** -- convenience wrapper with the usual
  (k-ary n-flat) naming.

Degree is ``sum(S_i - 1)`` which grows with the dimension sizes, so these
families occupy the high-degree / low-diameter corner of the design space.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import networkx as nx

from .base import Topology
from .torus import node_of

__all__ = ["hyperx", "flattened_butterfly"]


def hyperx(dims: Sequence[int], cap: float = 1.0) -> Topology:
    """HyperX lattice: nodes differing in exactly one coordinate are connected.

    Parameters
    ----------
    dims:
        Nodes per dimension, e.g. ``[4, 4]`` gives 16 nodes of degree 6.
    """
    dims = list(dims)
    if not dims or any(d < 2 for d in dims):
        raise ValueError("every HyperX dimension must be >= 2")
    n = 1
    for d in dims:
        n *= d
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for coord in itertools.product(*[range(d) for d in dims]):
        u = node_of(coord, dims)
        for axis, size in enumerate(dims):
            for other in range(size):
                if other == coord[axis]:
                    continue
                c = list(coord)
                c[axis] = other
                v = node_of(c, dims)
                g.add_edge(u, v, cap=cap)
    name = "hyperx-" + "x".join(str(d) for d in dims)
    return Topology(g, name=name, default_cap=cap,
                    metadata={"family": "hyperx", "dims": tuple(dims)})


def flattened_butterfly(radix: int, dimensions: int, cap: float = 1.0) -> Topology:
    """k-ary n-flat flattened butterfly: a HyperX with ``dimensions`` equal sides.

    ``radix`` is the number of nodes per dimension (the router radix per
    dimension of the unflattened butterfly); total nodes ``radix**dimensions``.
    """
    if radix < 2 or dimensions < 1:
        raise ValueError("radix must be >= 2 and dimensions >= 1")
    topo = hyperx([radix] * dimensions, cap=cap)
    topo.metadata["family"] = "flattened_butterfly"
    topo.metadata["radix"] = radix
    topo.metadata["dimensions"] = dimensions
    return Topology(topo.graph, name=f"flatbutterfly-{radix}ary-{dimensions}flat",
                    default_cap=cap, metadata=topo.metadata)
