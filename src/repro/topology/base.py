"""Direct-connect topology abstraction.

A :class:`Topology` wraps a directed :class:`networkx.DiGraph` whose nodes are
contiguous integers ``0..N-1`` and whose edges carry a ``cap`` attribute (link
capacity, in normalized bandwidth units where 1.0 is one link of bandwidth
``b``).  All schedule-synthesis algorithms in :mod:`repro.core` operate on this
class.

The paper's setting (§2.2): every node has a bounded number of ports ``d``
(the degree), the link bandwidth is ``b`` and the node (injection) bandwidth is
``B = d*b``.  Bidirectional physical links are modelled as a pair of opposing
directed edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

Edge = Tuple[int, int]

__all__ = ["Topology", "Edge"]


@dataclass
class Topology:
    """A direct-connect interconnect topology.

    Parameters
    ----------
    graph:
        Directed graph with integer nodes ``0..N-1``.  Each edge may carry a
        ``cap`` attribute; missing capacities default to ``default_cap``.
    name:
        Human readable name, used in reports and benchmark output.
    default_cap:
        Capacity assigned to edges that do not define ``cap``.
    metadata:
        Free-form generator metadata (dimensions, seed, construction params).
    """

    graph: nx.DiGraph
    name: str = "topology"
    default_cap: float = 1.0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.graph, nx.DiGraph):
            raise TypeError("Topology requires a networkx.DiGraph")
        nodes = sorted(self.graph.nodes())
        if nodes != list(range(len(nodes))):
            raise ValueError(
                "Topology nodes must be contiguous integers 0..N-1; "
                f"got {nodes[:8]}{'...' if len(nodes) > 8 else ''}"
            )
        if any(u == v for u, v in self.graph.edges()):
            raise ValueError("Topology must not contain self loops")
        for u, v, data in self.graph.edges(data=True):
            cap = data.get("cap", self.default_cap)
            if cap <= 0:
                raise ValueError(f"edge ({u},{v}) has non-positive capacity {cap}")
            data["cap"] = float(cap)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``N``."""
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self.graph.number_of_edges()

    @property
    def nodes(self) -> List[int]:
        """Sorted node list ``[0, ..., N-1]``."""
        return list(range(self.num_nodes))

    @property
    def edges(self) -> List[Edge]:
        """Deterministically ordered list of directed edges."""
        return sorted(self.graph.edges())

    def capacity(self, u: int, v: int) -> float:
        """Capacity of directed edge ``(u, v)``."""
        return float(self.graph.edges[u, v]["cap"])

    def capacities(self) -> Dict[Edge, float]:
        """Mapping from every directed edge to its capacity."""
        return {(u, v): self.capacity(u, v) for u, v in self.edges}

    def out_edges(self, u: int) -> List[Edge]:
        """Outgoing edges of ``u`` in deterministic order."""
        return sorted(self.graph.out_edges(u))

    def in_edges(self, u: int) -> List[Edge]:
        """Incoming edges of ``u`` in deterministic order."""
        return sorted(self.graph.in_edges(u))

    def successors(self, u: int) -> List[int]:
        """Sorted successor nodes of ``u``."""
        return sorted(self.graph.successors(u))

    def predecessors(self, u: int) -> List[int]:
        """Sorted predecessor nodes of ``u``."""
        return sorted(self.graph.predecessors(u))

    def has_edge(self, u: int, v: int) -> bool:
        """Whether directed edge ``(u, v)`` exists."""
        return self.graph.has_edge(u, v)

    def out_degree(self, u: int) -> int:
        """Out-degree of node ``u``."""
        return int(self.graph.out_degree(u))

    def in_degree(self, u: int) -> int:
        """In-degree of node ``u``."""
        return int(self.graph.in_degree(u))

    def degree(self) -> int:
        """The common out-degree ``d`` if the graph is regular.

        Raises
        ------
        ValueError
            If out-degrees differ across nodes (e.g. punctured topologies).
        """
        degrees = {self.out_degree(u) for u in self.nodes}
        if len(degrees) != 1:
            raise ValueError(f"topology is not out-regular: degrees {sorted(degrees)}")
        return degrees.pop()

    def max_degree(self) -> int:
        """Maximum out-degree across nodes."""
        return max(self.out_degree(u) for u in self.nodes)

    def is_regular(self) -> bool:
        """True if every node has identical in- and out-degree."""
        out = {self.out_degree(u) for u in self.nodes}
        inn = {self.in_degree(u) for u in self.nodes}
        return len(out) == 1 and len(inn) == 1 and out == inn

    def is_bidirectional(self) -> bool:
        """True if for every edge (u,v) the reverse edge (v,u) exists."""
        return all(self.graph.has_edge(v, u) for u, v in self.graph.edges())

    def is_strongly_connected(self) -> bool:
        """True if there is a directed path between every ordered node pair."""
        return nx.is_strongly_connected(self.graph)

    def diameter(self) -> int:
        """Directed diameter (longest shortest path, in hops)."""
        if not self.is_strongly_connected():
            raise ValueError("diameter undefined: topology is not strongly connected")
        return int(nx.diameter(self.graph))

    def canonical_hash(self) -> str:
        """Content hash of the topology: node count, edges and capacities.

        The hash is independent of construction order, name and metadata —
        two topologies with the same node count and the same capacitated edge
        set hash identically no matter how they were built.  It is the
        topology component of the solve-engine cache key
        (:meth:`repro.engine.MCFProblem.cache_key`), so it must stay stable
        across processes and sessions.
        """
        import hashlib

        items = sorted((u, v, self.capacity(u, v)) for u, v in self.graph.edges())
        payload = repr((self.num_nodes, items))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def commodities(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all ``N(N-1)`` ordered (source, destination) pairs."""
        n = self.num_nodes
        for s in range(n):
            for d in range(n):
                if s != d:
                    yield (s, d)

    # ------------------------------------------------------------------ #
    # Derived topologies
    # ------------------------------------------------------------------ #
    def copy(self, name: Optional[str] = None) -> "Topology":
        """Deep copy, optionally renamed."""
        return Topology(
            graph=self.graph.copy(),
            name=name or self.name,
            default_cap=self.default_cap,
            metadata=dict(self.metadata),
        )

    def with_capacity(self, cap: float, name: Optional[str] = None) -> "Topology":
        """Return a copy with every edge capacity set to ``cap``."""
        g = self.graph.copy()
        for _, _, data in g.edges(data=True):
            data["cap"] = float(cap)
        return Topology(g, name=name or self.name, default_cap=cap, metadata=dict(self.metadata))

    def remove_edges(self, edges: Iterable[Edge], name: Optional[str] = None) -> "Topology":
        """Return a copy with the given directed edges removed.

        Raises ``ValueError`` if the result is not strongly connected, because
        all-to-all schedules are undefined on disconnected topologies.
        """
        g = self.graph.copy()
        for u, v in edges:
            if g.has_edge(u, v):
                g.remove_edge(u, v)
        topo = Topology(g, name=name or f"{self.name}-punctured", default_cap=self.default_cap,
                        metadata=dict(self.metadata))
        if not topo.is_strongly_connected():
            raise ValueError("edge removal disconnected the topology")
        return topo

    def remove_nodes(self, nodes: Iterable[int], name: Optional[str] = None) -> "Topology":
        """Return a copy with the given nodes removed and nodes relabelled 0..N'-1."""
        removed = set(nodes)
        g = self.graph.copy()
        g.remove_nodes_from(removed)
        mapping = {old: new for new, old in enumerate(sorted(g.nodes()))}
        g = nx.relabel_nodes(g, mapping)
        topo = Topology(g, name=name or f"{self.name}-node-punctured",
                        default_cap=self.default_cap,
                        metadata={**self.metadata, "removed_nodes": sorted(removed)})
        if topo.num_nodes < 2:
            raise ValueError("node removal left fewer than 2 nodes")
        if not topo.is_strongly_connected():
            raise ValueError("node removal disconnected the topology")
        return topo

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_edges(
        num_nodes: int,
        edges: Sequence[Edge],
        name: str = "topology",
        cap: float = 1.0,
        bidirectional: bool = False,
        metadata: Optional[Mapping[str, object]] = None,
    ) -> "Topology":
        """Build a topology from an explicit edge list.

        Parameters
        ----------
        bidirectional:
            If True, each listed edge ``(u, v)`` also adds ``(v, u)``.
        """
        g = nx.DiGraph()
        g.add_nodes_from(range(num_nodes))
        for u, v in edges:
            if u == v:
                continue
            g.add_edge(u, v, cap=cap)
            if bidirectional:
                g.add_edge(v, u, cap=cap)
        return Topology(g, name=name, default_cap=cap, metadata=dict(metadata or {}))

    @staticmethod
    def from_undirected(graph: nx.Graph, name: str = "topology", cap: float = 1.0,
                        metadata: Optional[Mapping[str, object]] = None) -> "Topology":
        """Convert an undirected graph to a bidirectional direct-connect topology."""
        mapping = {old: new for new, old in enumerate(sorted(graph.nodes()))}
        g = nx.DiGraph()
        g.add_nodes_from(range(graph.number_of_nodes()))
        for u, v in graph.edges():
            a, b = mapping[u], mapping[v]
            if a == b:
                continue
            g.add_edge(a, b, cap=cap)
            g.add_edge(b, a, cap=cap)
        return Topology(g, name=name, default_cap=cap, metadata=dict(metadata or {}))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology(name={self.name!r}, N={self.num_nodes}, E={self.num_edges})"
