"""Miscellaneous reference topologies: ring, chain, complete graph, dragonfly.

These are not headline topologies in the paper's evaluation but serve as
analytically tractable fixtures for tests (the optimal all-to-all MCF value on
a ring and on a complete graph is known in closed form) and as additional
coverage for the topology-agnostic claims of the MCF algorithms.
"""

from __future__ import annotations

import networkx as nx

from .base import Topology

__all__ = ["ring", "bidirectional_ring", "chain", "complete", "dragonfly"]


def ring(num_nodes: int, cap: float = 1.0) -> Topology:
    """Unidirectional ring: node ``u`` connects to ``(u+1) mod N`` (degree 1)."""
    if num_nodes < 2:
        raise ValueError("ring needs at least 2 nodes")
    g = nx.DiGraph()
    g.add_nodes_from(range(num_nodes))
    for u in range(num_nodes):
        g.add_edge(u, (u + 1) % num_nodes, cap=cap)
    return Topology(g, name=f"ring-{num_nodes}", default_cap=cap,
                    metadata={"family": "ring"})


def bidirectional_ring(num_nodes: int, cap: float = 1.0) -> Topology:
    """Bidirectional ring (degree 2)."""
    if num_nodes < 3:
        raise ValueError("bidirectional ring needs at least 3 nodes")
    g = nx.DiGraph()
    g.add_nodes_from(range(num_nodes))
    for u in range(num_nodes):
        v = (u + 1) % num_nodes
        g.add_edge(u, v, cap=cap)
        g.add_edge(v, u, cap=cap)
    return Topology(g, name=f"biring-{num_nodes}", default_cap=cap,
                    metadata={"family": "bidirectional_ring"})


def chain(num_nodes: int, cap: float = 1.0) -> Topology:
    """Bidirectional line/chain topology."""
    if num_nodes < 2:
        raise ValueError("chain needs at least 2 nodes")
    g = nx.DiGraph()
    g.add_nodes_from(range(num_nodes))
    for u in range(num_nodes - 1):
        g.add_edge(u, u + 1, cap=cap)
        g.add_edge(u + 1, u, cap=cap)
    return Topology(g, name=f"chain-{num_nodes}", default_cap=cap,
                    metadata={"family": "chain"})


def complete(num_nodes: int, cap: float = 1.0) -> Topology:
    """Complete directed graph (every ordered pair connected)."""
    if num_nodes < 2:
        raise ValueError("complete graph needs at least 2 nodes")
    g = nx.DiGraph()
    g.add_nodes_from(range(num_nodes))
    for u in range(num_nodes):
        for v in range(num_nodes):
            if u != v:
                g.add_edge(u, v, cap=cap)
    return Topology(g, name=f"complete-{num_nodes}", default_cap=cap,
                    metadata={"family": "complete"})


def dragonfly(groups: int, routers_per_group: int, cap: float = 1.0) -> Topology:
    """Simplified canonical dragonfly with one global link per router.

    Routers inside a group form a complete graph (local links).  Global links
    connect group ``g`` router ``r`` to group ``(g + r + 1) mod groups``
    (a standard palm-tree style global wiring), one global port per router.
    Requires ``routers_per_group >= groups - 1`` for full global connectivity.
    """
    if groups < 2 or routers_per_group < 1:
        raise ValueError("need at least 2 groups and 1 router per group")
    n = groups * routers_per_group
    g = nx.DiGraph()
    g.add_nodes_from(range(n))

    def nid(grp: int, r: int) -> int:
        return grp * routers_per_group + r

    for grp in range(groups):
        for a in range(routers_per_group):
            for b in range(a + 1, routers_per_group):
                g.add_edge(nid(grp, a), nid(grp, b), cap=cap)
                g.add_edge(nid(grp, b), nid(grp, a), cap=cap)
    for grp in range(groups):
        for r in range(routers_per_group):
            target_group = (grp + r + 1) % groups
            if target_group == grp:
                continue
            # Peer router chosen so that the link is symmetric.
            peer = (groups - 2 - r) % routers_per_group
            u, v = nid(grp, r), nid(target_group, peer)
            if u != v:
                g.add_edge(u, v, cap=cap)
                g.add_edge(v, u, cap=cap)
    topo = Topology(g, name=f"dragonfly-g{groups}-r{routers_per_group}", default_cap=cap,
                    metadata={"family": "dragonfly", "groups": groups,
                              "routers_per_group": routers_per_group})
    if not topo.is_strongly_connected():
        raise ValueError("dragonfly parameters produce a disconnected topology")
    return topo
