"""Decomposed time-stepped MCF (§3.1.3, final remark).

The paper notes that the time-stepped LP of §3.1.3 "can be decomposed into a
source-based LP + child LPs as described in §3.1.2".  This module implements
that decomposition, which matters because the monolithic tsMCF has
``O(N^2 * E * l_max)`` variables and becomes the bottleneck well before the
steady-state decomposed MCF does.

Master LP (source-grouped, time-stepped):
    variables ``g[s, (u, v), t]`` (total flow of source ``s``'s shards on link
    (u, v) at step t) and per-step utilizations ``U_t``;
    minimize ``sum_t U_t`` subject to

    * per-link, per-step utilization:  ``sum_s g[s, e, t] <= cap(e) * U_t``;
    * store-and-forward causality at every node ``u != s``: the amount of
      group-s data forwarded by ``u`` up to step t cannot exceed the amount
      received before step t;
    * every destination ``u != s`` nets exactly one shard of group s by the
      end (received minus re-forwarded equals 1), and the source injects
      exactly ``N - 1`` shards and never re-absorbs its own group.

Child LPs (one per source): split the grouped flow into per-destination
shard flows on the time-expanded graph, with the master's ``g[s, e, t]``
acting as per-link, per-step capacities -- the same structure as the
steady-state child LP of §3.1.2, plus the causality constraints.

The decomposition preserves the optimal ``sum_t U_t`` (the grouped flow is an
aggregation of any per-commodity solution, and any grouped solution splits by
per-source flow decomposition on the time-expanded DAG).

Master and children are registered engine formulations (``"tsmcf-master"`` /
``"tsmcf-child"``) solved through :func:`repro.engine.solve`; the independent
child LPs run through the shared :class:`~repro.engine.runner.ParallelRunner`
(``n_jobs``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..constants import FLOW_TOL
from ..engine import MCFProblem, ParallelRunner, register_formulation
from ..engine import solve as engine_solve
from ..topology.base import Edge, Topology
from .flow import Commodity
from .mcf_link import terminal_commodities
from .mcf_timestepped import TimeSteppedFlow
from .solver import LPBuilder

__all__ = ["solve_timestepped_mcf_decomposed"]


def _g_key(s, e, t):
    """Master-LP key: grouped flow of source ``s`` on edge ``e`` at step ``t``."""
    return ("g", s, e, t)


def _u_key(t):
    """Master-LP key: max link utilization of step ``t``."""
    return ("U", t)


def _f_key(d, k):
    """Child-LP key: flow to destination ``d`` on (edge, step) triple ``k``."""
    return ("f", d, k)


@register_formulation("tsmcf-master")
def build_ts_master(problem: MCFProblem) -> LPBuilder:
    """Assemble the source-grouped time-stepped master LP."""
    topology = problem.topology
    steps = list(problem.params["steps"])
    sources = list(problem.params["sources"])
    terminal_set = set(problem.params["terminal_set"])

    edges = topology.edges
    caps = topology.capacities()
    nodes = topology.nodes
    out_edges = {u: topology.out_edges(u) for u in nodes}
    in_edges = {u: topology.in_edges(u) for u in nodes}

    lp = LPBuilder()
    for t in steps:
        lp.add_variable(_u_key(t), lb=0.0, objective=1.0)
    for s in sources:
        for e in edges:
            for t in steps:
                lp.add_variable(_g_key(s, e, t), lb=0.0)

    # Per-step utilization bound.
    for e in edges:
        for t in steps:
            terms = [(_g_key(s, e, t), 1.0) for s in sources]
            terms.append((_u_key(t), -caps[e]))
            lp.add_le(terms, 0.0)

    for s in sources:
        group_sinks = [u for u in nodes if u != s and u in terminal_set]
        for u in nodes:
            if u == s:
                continue
            # Causality: cumulative forwarded <= cumulative received (strictly
            # earlier steps).  Data kept for sinking simply stays in the buffer.
            for t in steps:
                terms = [(_g_key(s, e, tp), 1.0) for e in out_edges[u] for tp in steps if tp <= t]
                terms += [(_g_key(s, e, tpp), -1.0) for e in in_edges[u] for tpp in steps if tpp < t]
                lp.add_le(terms, 0.0)
            # Net retention at the end: 1 shard for terminals, 0 for relays.
            retained = 1.0 if u in terminal_set else 0.0
            eq_terms = [(_g_key(s, e, t), 1.0) for e in in_edges[u] for t in steps]
            eq_terms += [(_g_key(s, e, t), -1.0) for e in out_edges[u] for t in steps]
            lp.add_eq(eq_terms, retained)
        # Source injects exactly one shard per destination and never re-absorbs.
        lp.add_eq([(_g_key(s, e, t), 1.0) for e in out_edges[s] for t in steps],
                  float(len(group_sinks)))
        for e in in_edges[s]:
            for t in steps:
                lp.add_le([(_g_key(s, e, t), 1.0)], 0.0)
    return lp


def _solve_ts_master(topology: Topology, steps: List[int], sources: List[int],
                     terminal_set: set) -> Tuple[float, Dict[int, Dict[Tuple[int, int, int], float]], List[float], float]:
    """Source-grouped time-stepped master LP.

    Returns (total utilization, grouped flows per source, per-step utilizations,
    solve seconds).
    """
    start = time.perf_counter()
    problem = MCFProblem(
        "tsmcf-master", topology,
        params={"steps": list(steps), "sources": sorted(sources),
                "terminal_set": sorted(terminal_set)},
        maximize=False)
    solution = engine_solve(problem)
    elapsed = time.perf_counter() - start

    edges = topology.edges
    grouped: Dict[int, Dict[Tuple[int, int, int], float]] = {}
    for s in sources:
        per: Dict[Tuple[int, int, int], float] = {}
        for e in edges:
            for t in steps:
                val = solution.value(_g_key(s, e, t))
                if val > FLOW_TOL:
                    per[(e[0], e[1], t)] = val
        grouped[s] = per
    utilizations = [max(solution.value(_u_key(t)), 0.0) for t in steps]
    return float(sum(utilizations)), grouped, utilizations, elapsed


@register_formulation("tsmcf-child")
def build_ts_child(problem: MCFProblem) -> LPBuilder:
    """Assemble the per-source time-stepped child LP."""
    topology = problem.topology
    source = problem.params["source"]
    destinations = list(problem.params["destinations"])
    grouped = dict(problem.params["grouped"])
    steps = list(problem.params["steps"])

    nodes = topology.nodes
    used = sorted(grouped.keys())            # (u, v, t) triples with positive flow
    out_used = {u: [k for k in used if k[0] == u] for u in nodes}
    in_used = {u: [k for k in used if k[1] == u] for u in nodes}

    lp = LPBuilder()
    for d in destinations:
        for k in used:
            lp.add_variable(_f_key(d, k), lb=0.0, objective=1.0)

    # Grouped flow acts as per-(link, step) capacity.
    for k in used:
        lp.add_le([(_f_key(d, k), 1.0) for d in destinations], grouped[k])

    for d in destinations:
        for u in nodes:
            if u == source or u == d:
                continue
            # Causality per destination.
            for t in steps:
                terms = [(_f_key(d, k), 1.0) for k in out_used[u] if k[2] <= t]
                terms += [(_f_key(d, k), -1.0) for k in in_used[u] if k[2] < t]
                lp.add_le(terms, 0.0)
            # Relays retain nothing of this shard.
            eq = [(_f_key(d, k), 1.0) for k in out_used[u]]
            eq += [(_f_key(d, k), -1.0) for k in in_used[u]]
            lp.add_eq(eq, 0.0)
        # The destination receives exactly one shard and never re-emits it.
        lp.add_ge([(_f_key(d, k), 1.0) for k in in_used[d]], 1.0 - 1e-7)
        for k in out_used[d]:
            lp.add_le([(_f_key(d, k), 1.0)], 0.0)
    return lp


def _solve_ts_child(topology: Topology, source: int, destinations: List[int],
                    grouped: Dict[Tuple[int, int, int], float],
                    steps: List[int]) -> Tuple[Dict[Commodity, Dict[Tuple[int, int, int], float]], float]:
    """Split one source's grouped time-stepped flow into per-destination flows."""
    start = time.perf_counter()
    used = sorted(grouped.keys())
    problem = MCFProblem(
        "tsmcf-child", topology,
        params={"source": int(source), "destinations": sorted(destinations),
                "grouped": {k: float(v) for k, v in sorted(grouped.items())},
                "steps": list(steps)},
        maximize=False)
    solution = engine_solve(problem)
    elapsed = time.perf_counter() - start

    flows: Dict[Commodity, Dict[Tuple[int, int, int], float]] = {}
    for d in destinations:
        per: Dict[Tuple[int, int, int], float] = {}
        for k in used:
            val = solution.value(_f_key(d, k))
            if val > FLOW_TOL:
                per[k] = val
        flows[(source, d)] = per
    return flows, elapsed


def _ts_child_worker(args) -> Tuple[int, Dict[Commodity, Dict[Tuple[int, int, int], float]], float]:
    topology, source, destinations, grouped, steps = args
    flows, elapsed = _solve_ts_child(topology, source, destinations, grouped, steps)
    return source, flows, elapsed


def solve_timestepped_mcf_decomposed(topology: Topology, num_steps: Optional[int] = None,
                                     extra_steps: int = 1,
                                     terminals: Optional[List[int]] = None,
                                     n_jobs: int = 1) -> TimeSteppedFlow:
    """Decomposed tsMCF: source-grouped master LP + per-source child LPs.

    Same interface and semantics as
    :func:`repro.core.mcf_timestepped.solve_timestepped_mcf`; the meta dict
    records the master/child timing breakdown (keys ``master_seconds`` and
    ``child_seconds_each``).  ``n_jobs > 1`` runs the independent child LPs
    on a process pool.
    """
    if not topology.is_strongly_connected():
        raise ValueError("tsMCF requires a strongly connected topology")
    diam = topology.diameter()
    if num_steps is None:
        num_steps = diam + extra_steps
    if num_steps < diam:
        raise ValueError(f"num_steps={num_steps} below topology diameter {diam}")
    steps = list(range(1, num_steps + 1))

    commodities = terminal_commodities(topology, terminals)
    sources = sorted({s for s, _ in commodities})
    terminal_set = {s for s, _ in commodities} | {d for _, d in commodities}

    total_start = time.perf_counter()
    total_util, grouped, utilizations, master_seconds = _solve_ts_master(
        topology, steps, sources, terminal_set)

    args = [(topology, s, sorted({d for src, d in commodities if src == s}),
             grouped[s], steps) for s in sources]
    runner = ParallelRunner(jobs=n_jobs, mode="process")
    flows: Dict[Commodity, Dict[Tuple[int, int, int], float]] = {}
    child_seconds: List[float] = []
    for s, child_flows, elapsed in runner.map(_ts_child_worker, args):
        flows.update(child_flows)
        child_seconds.append(elapsed)

    return TimeSteppedFlow(
        num_steps=num_steps,
        flows=flows,
        step_utilizations=utilizations,
        topology=topology,
        solve_seconds=time.perf_counter() - total_start,
        meta={"method": "tsmcf-decomposed", "diameter": diam,
              "master_seconds": master_seconds,
              "child_seconds_each": child_seconds,
              "terminals": None if terminals is None else sorted(set(terminals))},
    )
