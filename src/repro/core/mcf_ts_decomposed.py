"""Decomposed time-stepped MCF (§3.1.3, final remark).

The paper notes that the time-stepped LP of §3.1.3 "can be decomposed into a
source-based LP + child LPs as described in §3.1.2".  This module implements
that decomposition, which matters because the monolithic tsMCF has
``O(N^2 * E * l_max)`` variables and becomes the bottleneck well before the
steady-state decomposed MCF does.

Master LP (source-grouped, time-stepped):
    variables ``g[s, (u, v), t]`` (total flow of source ``s``'s shards on link
    (u, v) at step t) and per-step utilizations ``U_t``;
    minimize ``sum_t U_t`` subject to

    * per-link, per-step utilization:  ``sum_s g[s, e, t] <= cap(e) * U_t``;
    * store-and-forward causality at every node ``u != s``: the amount of
      group-s data forwarded by ``u`` up to step t cannot exceed the amount
      received before step t;
    * every destination ``u != s`` nets exactly one shard of group s by the
      end (received minus re-forwarded equals 1), and the source injects
      exactly ``N - 1`` shards and never re-absorbs its own group.

Child LPs (one per source): split the grouped flow into per-destination
shard flows on the time-expanded graph, with the master's ``g[s, e, t]``
acting as per-link, per-step capacities -- the same structure as the
steady-state child LP of §3.1.2, plus the causality constraints.

The decomposition preserves the optimal ``sum_t U_t`` (the grouped flow is an
aggregation of any per-commodity solution, and any grouped solution splits by
per-source flow decomposition on the time-expanded DAG).

Master and children are registered engine formulations (``"tsmcf-master"`` /
``"tsmcf-child"``) solved through :func:`repro.engine.solve`; the independent
child LPs run through the shared :class:`~repro.engine.runner.ParallelRunner`
(``n_jobs``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..constants import FLOW_TOL
from ..engine import MCFProblem, ParallelRunner, register_formulation
from ..engine import solve as engine_solve
from ..topology.base import Topology
from .flow import Commodity
from .mcf_link import terminal_commodities, topology_arrays
from .mcf_timestepped import TimeSteppedFlow
from .solver import LPBuilder

__all__ = ["solve_timestepped_mcf_decomposed"]


@register_formulation("tsmcf-master")
def build_ts_master(problem: MCFProblem) -> LPBuilder:
    """Assemble the source-grouped time-stepped master LP (block/COO ops)."""
    topology = problem.topology
    steps = list(problem.params["steps"])
    sources = list(problem.params["sources"])
    terminal_set = set(problem.params["terminal_set"])

    edges, tails, heads, cap_arr = topology_arrays(topology)
    num_nodes = topology.num_nodes
    S, E, T = len(sources), len(edges), len(steps)
    src_arr = np.asarray(sources, dtype=np.int64)
    term_arr = np.asarray(sorted(terminal_set), dtype=np.int64)
    is_terminal = np.zeros(num_nodes, dtype=bool)
    is_terminal[term_arr] = True

    lp = LPBuilder()
    u_vars = lp.add_variable_block("U", (T,), lb=0.0, objective=1.0)
    g = lp.add_variable_block("g", (S, E, T), lb=0.0)

    s_ids = np.repeat(np.arange(S), E * T)
    e_ids = np.tile(np.repeat(np.arange(E), T), S)
    t_ids = np.tile(np.arange(T), S * E)          # 0-based step index
    var = g.ravel()
    tail, head = tails[e_ids], heads[e_ids]
    s_of = src_arr[s_ids]

    # Per-step utilization bound: one row per (edge, step).
    lp.add_le_block(
        rows=np.concatenate([e_ids * T + t_ids, np.arange(E * T)]),
        cols=np.concatenate([var, np.tile(u_vars, E)]),
        vals=np.concatenate([np.ones(S * E * T), -np.repeat(cap_arr, T)]),
        rhs=np.zeros(E * T))

    # Causality at every node u != s: cumulative forwarded <= cumulative
    # received (strictly earlier steps).  Data kept for sinking simply stays
    # in the buffer.
    plus_valid = tail != s_of
    minus_valid = head != s_of
    key_parts, col_parts, val_parts = [], [], []
    for t in range(T):
        plus = plus_valid & (t_ids <= t)
        minus = minus_valid & (t_ids < t)
        key_parts.append((s_ids[plus] * num_nodes + tail[plus]) * T + t)
        col_parts.append(var[plus])
        val_parts.append(np.ones(int(plus.sum())))
        key_parts.append((s_ids[minus] * num_nodes + head[minus]) * T + t)
        col_parts.append(var[minus])
        val_parts.append(-np.ones(int(minus.sum())))
    lp.add_compressed_block(key_parts, col_parts, val_parts)

    # Net retention at the end: 1 shard for terminals, 0 for relays
    # (in minus out, at every node u != s).
    lp.add_compressed_block(
        [s_ids[minus_valid] * num_nodes + head[minus_valid],
         s_ids[plus_valid] * num_nodes + tail[plus_valid]],
        [var[minus_valid], var[plus_valid]],
        [np.ones(int(minus_valid.sum())), -np.ones(int(plus_valid.sum()))],
        equality=True,
        rhs=lambda uniq: is_terminal[uniq % num_nodes].astype(float))

    # Source injects exactly one shard per destination and never re-absorbs.
    emit = tail == s_of
    sinks_per_source = np.fromiter(
        (sum(1 for u in term_arr if u != s) for s in sources),
        dtype=float, count=S)
    lp.add_eq_block(s_ids[emit], var[emit], np.ones(int(emit.sum())),
                    sinks_per_source)
    reabsorb = head == s_of
    k = int(reabsorb.sum())
    lp.add_le_block(np.arange(k), var[reabsorb], np.ones(k), np.zeros(k))
    return lp


def _solve_ts_master(topology: Topology, steps: List[int], sources: List[int],
                     terminal_set: set) -> Tuple[float, Dict[int, Dict[Tuple[int, int, int], float]], List[float], float]:
    """Source-grouped time-stepped master LP.

    Returns (total utilization, grouped flows per source, per-step utilizations,
    solve seconds).
    """
    start = time.perf_counter()
    problem = MCFProblem(
        "tsmcf-master", topology,
        params={"steps": list(steps), "sources": sorted(sources),
                "terminal_set": sorted(terminal_set)},
        maximize=False)
    solution = engine_solve(problem)
    elapsed = time.perf_counter() - start

    edges = topology.edges
    arr = np.asarray(solution.block("g"))
    grouped: Dict[int, Dict[Tuple[int, int, int], float]] = {s: {} for s in sources}
    for si, ei, ti in zip(*np.nonzero(arr > FLOW_TOL)):
        e = edges[ei]
        grouped[sources[si]][(e[0], e[1], steps[ti])] = float(arr[si, ei, ti])
    utilizations = [max(float(u), 0.0) for u in solution.block("U")]
    return float(sum(utilizations)), grouped, utilizations, elapsed


@register_formulation("tsmcf-child")
def build_ts_child(problem: MCFProblem) -> LPBuilder:
    """Assemble the per-source time-stepped child LP (block/COO ops)."""
    topology = problem.topology
    source = problem.params["source"]
    destinations = list(problem.params["destinations"])
    grouped = dict(problem.params["grouped"])
    steps = list(problem.params["steps"])

    num_nodes = topology.num_nodes
    used = sorted(grouped.keys())            # (u, v, t) triples with positive flow
    D, K, T = len(destinations), len(used), len(steps)
    k_tail = np.fromiter((k[0] for k in used), dtype=np.int64, count=K)
    k_head = np.fromiter((k[1] for k in used), dtype=np.int64, count=K)
    k_step = np.fromiter((k[2] for k in used), dtype=np.int64, count=K)
    group_arr = np.fromiter((grouped[k] for k in used), dtype=float, count=K)
    dest_arr = np.asarray(destinations, dtype=np.int64)

    lp = LPBuilder()
    f = lp.add_variable_block("f", (D, K), lb=0.0, objective=1.0)

    # Grouped flow acts as per-(link, step) capacity.
    lp.add_le_block(rows=np.repeat(np.arange(K), D), cols=f.T.ravel(),
                    vals=np.ones(D * K), rhs=group_arr)

    d_ids = np.repeat(np.arange(D), K)
    k_ids = np.tile(np.arange(K), D)
    var = f.ravel()
    tail, head = k_tail[k_ids], k_head[k_ids]
    step = k_step[k_ids]
    d_of = dest_arr[d_ids]

    # Causality per destination at intermediate nodes (u != source, u != d).
    plus_valid = (tail != source) & (tail != d_of)
    minus_valid = (head != source) & (head != d_of)
    key_parts, col_parts, val_parts = [], [], []
    for t in steps:
        plus = plus_valid & (step <= t)
        minus = minus_valid & (step < t)
        key_parts.append((d_ids[plus] * num_nodes + tail[plus]) * (T + 1) + t)
        col_parts.append(var[plus])
        val_parts.append(np.ones(int(plus.sum())))
        key_parts.append((d_ids[minus] * num_nodes + head[minus]) * (T + 1) + t)
        col_parts.append(var[minus])
        val_parts.append(-np.ones(int(minus.sum())))
    lp.add_compressed_block(key_parts, col_parts, val_parts)

    # Relays retain nothing of this shard.
    lp.add_compressed_block(
        [d_ids[plus_valid] * num_nodes + tail[plus_valid],
         d_ids[minus_valid] * num_nodes + head[minus_valid]],
        [var[plus_valid], var[minus_valid]],
        [np.ones(int(plus_valid.sum())), -np.ones(int(minus_valid.sum()))],
        equality=True)

    # The destination receives exactly one shard and never re-emits it.
    recv = head == d_of
    lp.add_ge_block(d_ids[recv], var[recv], np.ones(int(recv.sum())),
                    np.full(D, 1.0 - 1e-7))
    reemit = tail == d_of
    k = int(reemit.sum())
    lp.add_le_block(np.arange(k), var[reemit], np.ones(k), np.zeros(k))
    return lp


def _solve_ts_child(topology: Topology, source: int, destinations: List[int],
                    grouped: Dict[Tuple[int, int, int], float],
                    steps: List[int]) -> Tuple[Dict[Commodity, Dict[Tuple[int, int, int], float]], float]:
    """Split one source's grouped time-stepped flow into per-destination flows."""
    start = time.perf_counter()
    used = sorted(grouped.keys())
    problem = MCFProblem(
        "tsmcf-child", topology,
        params={"source": int(source), "destinations": sorted(destinations),
                "grouped": {k: float(v) for k, v in sorted(grouped.items())},
                "steps": list(steps)},
        maximize=False)
    solution = engine_solve(problem)
    elapsed = time.perf_counter() - start

    arr = np.asarray(solution.block("f"))
    flows: Dict[Commodity, Dict[Tuple[int, int, int], float]] = {
        (source, d): {} for d in destinations}
    for di, ki in zip(*np.nonzero(arr > FLOW_TOL)):
        flows[(source, destinations[di])][used[ki]] = float(arr[di, ki])
    return flows, elapsed


def _ts_child_worker(args) -> Tuple[int, Dict[Commodity, Dict[Tuple[int, int, int], float]], float]:
    topology, source, destinations, grouped, steps = args
    flows, elapsed = _solve_ts_child(topology, source, destinations, grouped, steps)
    return source, flows, elapsed


def solve_timestepped_mcf_decomposed(topology: Topology, num_steps: Optional[int] = None,
                                     extra_steps: int = 1,
                                     terminals: Optional[List[int]] = None,
                                     n_jobs: int = 1) -> TimeSteppedFlow:
    """Decomposed tsMCF: source-grouped master LP + per-source child LPs.

    Same interface and semantics as
    :func:`repro.core.mcf_timestepped.solve_timestepped_mcf`; the meta dict
    records the master/child timing breakdown (keys ``master_seconds`` and
    ``child_seconds_each``).  ``n_jobs > 1`` runs the independent child LPs
    on a process pool.
    """
    if not topology.is_strongly_connected():
        raise ValueError("tsMCF requires a strongly connected topology")
    diam = topology.diameter()
    if num_steps is None:
        num_steps = diam + extra_steps
    if num_steps < diam:
        raise ValueError(f"num_steps={num_steps} below topology diameter {diam}")
    steps = list(range(1, num_steps + 1))

    commodities = terminal_commodities(topology, terminals)
    sources = sorted({s for s, _ in commodities})
    terminal_set = {s for s, _ in commodities} | {d for _, d in commodities}

    total_start = time.perf_counter()
    total_util, grouped, utilizations, master_seconds = _solve_ts_master(
        topology, steps, sources, terminal_set)

    args = [(topology, s, sorted({d for src, d in commodities if src == s}),
             grouped[s], steps) for s in sources]
    runner = ParallelRunner(jobs=n_jobs, mode="process")
    flows: Dict[Commodity, Dict[Tuple[int, int, int], float]] = {}
    child_seconds: List[float] = []
    for s, child_flows, elapsed in runner.map(_ts_child_worker, args):
        flows.update(child_flows)
        child_seconds.append(elapsed)

    return TimeSteppedFlow(
        num_steps=num_steps,
        flows=flows,
        step_utilizations=utilizations,
        topology=topology,
        solve_seconds=time.perf_counter() - total_start,
        meta={"method": "tsmcf-decomposed", "diameter": diam,
              "master_seconds": master_seconds,
              "child_seconds_each": child_seconds,
              "terminals": None if terminals is None else sorted(set(terminals))},
    )
