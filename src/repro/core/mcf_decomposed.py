"""Decomposed link-based MCF: master LP + N parallelizable child LPs (§3.1.2).

The master LP (eqs. 6-9) groups the ``N(N-1)`` commodities into ``N``
source-rooted grouped flows, reducing the variable count from ``O(k N^3)`` to
``O(k N^2)``.  Its source-based conservation constraint (eq. 8) states that at
every node ``u != s`` the grouped flow of source ``s`` entering ``u`` must
cover both the flow forwarded onwards and the share ``F`` sunk at ``u``.

Each child LP (eqs. 10-14), one per source ``s``, then splits the grouped flow
``f'_s`` into per-destination commodity flows on a graph whose link capacities
are set to the master solution, minimizing total flow (which discourages
gratuitous detours).  Child LPs are independent; the shared
:class:`~repro.engine.runner.ParallelRunner` executes them serially or on a
process pool (``n_jobs``).

The decomposition returns the same optimal concurrent flow value ``F`` as the
original MCF (the grouped flow is a relaxation whose value is achievable, and
any per-commodity solution aggregates to a feasible grouped flow), although
the individual link flows may differ.

Both the master and child LPs are registered engine formulations
(``"mcf-master"`` / ``"mcf-child"``) solved through
:func:`repro.engine.solve`, so repeated solves of the same topology hit the
solution cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..constants import FLOW_TOL
from ..engine import MCFProblem, ParallelRunner, register_formulation
from ..engine import solve as engine_solve
from ..topology.base import Edge, Topology
from .flow import Commodity, FlowSolution, flows_from_array, repair_conservation
from .mcf_link import topology_arrays
from .solver import LPBuilder

__all__ = ["solve_decomposed_mcf", "solve_master_lp", "solve_child_lp",
           "DecomposedTimings", "MasterSolution"]


@dataclass
class MasterSolution:
    """Master LP output: concurrent flow value and grouped per-source flows."""

    concurrent_flow: float
    grouped_flows: Dict[int, Dict[Edge, float]]
    solve_seconds: float
    info: Dict[str, object] = field(default_factory=dict)


@dataclass
class DecomposedTimings:
    """Wall-clock breakdown reported in Fig. 7 (master / child / total)."""

    master_seconds: float = 0.0
    child_seconds_each: List[float] = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def max_child_seconds(self) -> float:
        """Per-child max — the critical path when children run fully in parallel."""
        return max(self.child_seconds_each, default=0.0)

    @property
    def parallel_seconds(self) -> float:
        """Estimated runtime when all child LPs run in parallel on N cores."""
        return self.master_seconds + self.max_child_seconds


@register_formulation("mcf-master")
def build_master_lp(problem: MCFProblem) -> LPBuilder:
    """Assemble the source-grouped master LP (eqs. 6-9) with block/COO ops."""
    topology = problem.topology
    terminals = problem.params.get("terminals")
    edges, tails, heads, cap_arr = topology_arrays(topology)
    num_nodes = topology.num_nodes
    if terminals is None:
        sources = list(topology.nodes)
    else:
        sources = sorted(set(int(t) for t in terminals))
    S, E = len(sources), len(edges)
    src_arr = np.asarray(sources, dtype=np.int64)

    lp = LPBuilder()
    f_col = lp.add_variable("F", lb=0.0, objective=1.0)
    g = lp.add_variable_block("g", (S, E), lb=0.0)

    # (7) capacity per link over all source groups.
    lp.add_le_block(rows=np.repeat(np.arange(E), S), cols=g.T.ravel(),
                    vals=np.ones(S * E), rhs=cap_arr)

    # (8) source-based conservation: F + outflow <= inflow at every terminal
    # u != s; non-terminal relays only forward (outflow <= inflow).  Rows are
    # keyed (source index, node) and compressed to consecutive ids; the F
    # column enters the rows of terminal nodes.
    s_ids = np.repeat(np.arange(S), E)
    e_ids = np.tile(np.arange(E), S)
    var = g.ravel()
    tail, head = tails[e_ids], heads[e_ids]
    s_of = src_arr[s_ids]
    plus = tail != s_of
    minus = head != s_of
    term_arr = src_arr  # the terminal set is exactly the source set
    si_grid = np.repeat(np.arange(S), len(term_arr))
    u_grid = np.tile(term_arr, S)
    f_rows = u_grid != src_arr[si_grid]
    lp.add_compressed_block(
        [s_ids[plus] * num_nodes + tail[plus],
         s_ids[minus] * num_nodes + head[minus],
         si_grid[f_rows] * num_nodes + u_grid[f_rows]],
        [var[plus], var[minus], np.full(int(f_rows.sum()), f_col)],
        [np.ones(int(plus.sum())), -np.ones(int(minus.sum())),
         np.ones(int(f_rows.sum()))])
    return lp


def solve_master_lp(topology: Topology,
                    terminals: Optional[List[int]] = None) -> MasterSolution:
    """Solve the source-grouped master LP (eqs. 6-9).

    ``terminals`` optionally restricts the set of nodes that source and sink
    traffic (all-to-all among terminals, e.g. the host vertices of an
    augmented topology); non-terminal nodes are pure relays with plain flow
    conservation.
    """
    if not topology.is_strongly_connected():
        raise ValueError("MCF requires a strongly connected topology")
    start = time.perf_counter()
    if terminals is None:
        sources = list(topology.nodes)
        params: Dict[str, object] = {}
    else:
        sources = sorted(set(int(t) for t in terminals))
        if len(sources) < 2:
            raise ValueError("need at least two terminals")
        params = {"terminals": sources}

    problem = MCFProblem("mcf-master", topology, params=params, maximize=True)
    solution = engine_solve(problem)
    elapsed = time.perf_counter() - start

    g = np.asarray(solution.block("g"))
    edges = topology.edges
    grouped: Dict[int, Dict[Edge, float]] = {s: {} for s in sources}
    for si, ei in zip(*np.nonzero(g > FLOW_TOL)):
        grouped[sources[si]][edges[ei]] = float(g[si, ei])
    return MasterSolution(concurrent_flow=float(solution.value("F")),
                          grouped_flows=grouped, solve_seconds=elapsed,
                          info=dict(solution.info))


@register_formulation("mcf-child")
def build_child_lp(problem: MCFProblem) -> LPBuilder:
    """Assemble the per-source child LP (eqs. 10-14) with block/COO ops."""
    topology = problem.topology
    source = problem.params["source"]
    grouped_flow = dict(problem.params["grouped_flow"])
    concurrent_flow = problem.params["concurrent_flow"]
    slack = problem.params.get("slack", 1e-7)
    destinations = problem.params.get("destinations")

    num_nodes = topology.num_nodes
    if destinations is None:
        destinations = [d for d in topology.nodes if d != source]
    else:
        destinations = [d for d in destinations if d != source]
    # Only edges that carry grouped flow can carry per-commodity flow.
    edges = [e for e in topology.edges if grouped_flow.get(e, 0.0) > FLOW_TOL]
    D, E = len(destinations), len(edges)
    tails = np.fromiter((e[0] for e in edges), dtype=np.int64, count=E)
    heads = np.fromiter((e[1] for e in edges), dtype=np.int64, count=E)
    group_arr = np.fromiter((grouped_flow[e] for e in edges), dtype=float, count=E)
    dest_arr = np.asarray(destinations, dtype=np.int64)

    lp = LPBuilder()
    f = lp.add_variable_block("f", (D, E), lb=0.0, objective=1.0)

    # (11) per-link cap = grouped flow.
    lp.add_le_block(rows=np.repeat(np.arange(E), D), cols=f.T.ravel(),
                    vals=np.ones(D * E), rhs=group_arr)

    d_ids = np.repeat(np.arange(D), E)
    e_ids = np.tile(np.arange(E), D)
    var = f.ravel()
    tail, head = tails[e_ids], heads[e_ids]
    d_of = dest_arr[d_ids]
    demand = max(concurrent_flow - slack, 0.0)

    # (12) conservation at intermediate nodes (u != source, u != d).
    plus = (tail != source) & (tail != d_of)
    minus = (head != source) & (head != d_of)
    lp.add_compressed_block(
        [d_ids[plus] * num_nodes + tail[plus],
         d_ids[minus] * num_nodes + head[minus]],
        [var[plus], var[minus]],
        [np.ones(int(plus.sum())), -np.ones(int(minus.sum()))])

    # (13) demand at the sink; the sink never re-emits its own commodity
    # (prevents circulation through d from faking delivered demand).
    sink = head == d_of
    lp.add_ge_block(d_ids[sink], var[sink], np.ones(int(sink.sum())),
                    np.full(D, demand))
    reemit = tail == d_of
    k = int(reemit.sum())
    lp.add_le_block(np.arange(k), var[reemit], np.ones(k), np.zeros(k))
    return lp


def solve_child_lp(topology: Topology, source: int, grouped_flow: Dict[Edge, float],
                   concurrent_flow: float, slack: float = 1e-7,
                   destinations: Optional[List[int]] = None
                   ) -> Tuple[Dict[Commodity, Dict[Edge, float]], float]:
    """Solve the child LP for one source (eqs. 10-14).

    The grouped flow of ``source`` acts as per-link capacity; the LP finds
    per-destination flows each delivering ``F`` (minus a tiny numerical slack)
    while minimizing total flow.  ``destinations`` defaults to every other
    node; pass the terminal set when only some nodes sink traffic.

    Returns the per-commodity flows for all (source, d) pairs and the solve time.
    """
    start = time.perf_counter()
    nodes = topology.nodes
    if destinations is None:
        dest_list = [d for d in nodes if d != source]
        dest_param = None
    else:
        dest_list = [d for d in destinations if d != source]
        dest_param = sorted(dest_list)
    edges = [e for e in topology.edges if grouped_flow.get(e, 0.0) > FLOW_TOL]

    params: Dict[str, object] = {
        "source": int(source),
        "grouped_flow": {e: float(v) for e, v in sorted(grouped_flow.items())},
        "concurrent_flow": float(concurrent_flow),
        "slack": float(slack),
    }
    if dest_param is not None:
        params["destinations"] = dest_param
    problem = MCFProblem("mcf-child", topology, params=params, maximize=False)
    solution = engine_solve(problem)
    elapsed = time.perf_counter() - start

    flows: Dict[Commodity, Dict[Edge, float]] = flows_from_array(
        solution.block("f"), [(source, d) for d in dest_list], edges)
    return flows, elapsed


def _child_worker(args) -> Tuple[int, Dict[Commodity, Dict[Edge, float]], float]:
    topology, source, grouped_flow, concurrent_flow, destinations = args
    flows, elapsed = solve_child_lp(topology, source, grouped_flow, concurrent_flow,
                                    destinations=destinations)
    return source, flows, elapsed


def solve_decomposed_mcf(topology: Topology, repair: bool = True,
                         n_jobs: int = 1,
                         terminals: Optional[List[int]] = None) -> FlowSolution:
    """Solve the decomposed MCF (master + N child LPs).

    Parameters
    ----------
    n_jobs:
        Number of worker processes for the child LPs.  ``1`` (default) solves
        them serially in-process, which is deterministic and shares the
        engine's in-memory solution cache; larger values use a process pool
        via :class:`~repro.engine.runner.ParallelRunner` (the paper runs the
        N child LPs on N cores).
    terminals:
        Optional subset of nodes that exchange data; other nodes only relay
        (host-NIC augmented topologies).

    Returns
    -------
    FlowSolution
        Same optimal ``F`` as :func:`repro.core.mcf_link.solve_link_mcf`; the
        meta dict carries a :class:`DecomposedTimings` breakdown under
        ``"timings"``.
    """
    total_start = time.perf_counter()
    master = solve_master_lp(topology, terminals=terminals)
    timings = DecomposedTimings(master_seconds=master.solve_seconds)

    flows: Dict[Commodity, Dict[Edge, float]] = {}
    sources = topology.nodes if terminals is None else sorted(set(terminals))
    destinations = None if terminals is None else sorted(set(terminals))
    args = [(topology, s, master.grouped_flows[s], master.concurrent_flow, destinations)
            for s in sources]
    runner = ParallelRunner(jobs=n_jobs, mode="process")
    for source, child_flows, elapsed in runner.map(_child_worker, args):
        flows.update(child_flows)
        timings.child_seconds_each.append(elapsed)

    timings.total_seconds = time.perf_counter() - total_start
    result = FlowSolution(
        concurrent_flow=master.concurrent_flow,
        flows=flows,
        topology=topology,
        solve_seconds=timings.total_seconds,
        meta={"method": "mcf-decomposed", "timings": timings,
              "master_seconds": timings.master_seconds,
              "parallel_seconds": timings.parallel_seconds,
              "master_engine": master.info},
    )
    if repair:
        result = repair_conservation(result)
        result.solve_seconds = timings.total_seconds
        result.meta["timings"] = timings
    return result
