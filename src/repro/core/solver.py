"""Sparse LP construction helpers.

All MCF variants in :mod:`repro.core` are assembled as sparse constraint
matrices.  Solving is delegated to a :mod:`repro.engine.backends` backend
(HiGHS via :func:`scipy.optimize.linprog` by default).  The paper uses MOSEK;
the LP optima are solver independent, so HiGHS preserves every result that
depends on optimal values (only absolute solve times differ, and Fig. 7 is
about *scaling*, which is preserved).

The :class:`LPBuilder` supports two construction styles that share one column
space and may be mixed freely in a single build:

* the **legacy keyed API** (:meth:`~LPBuilder.add_variable`,
  :meth:`~LPBuilder.add_le`, :meth:`~LPBuilder.add_eq`) registers one variable
  per hashable key and one constraint per call — convenient for small LPs,
  tests and baselines;
* the **block API** (:meth:`~LPBuilder.add_variable_block`,
  :meth:`~LPBuilder.add_le_block`, :meth:`~LPBuilder.add_eq_block`) reserves a
  whole ndarray of variables at once and ingests constraints as COO triplet
  arrays, so the large MCF formulations are assembled with a handful of numpy
  operations instead of millions of per-key Python calls.

Either way the LP is accumulated in COO form, which keeps construction
vectorizable and avoids densifying what are extremely sparse matrices (a
link-based MCF on N nodes and E edges has ~N^2*E variables but only a handful
of nonzeros per row).  :meth:`~LPBuilder.to_arrays` canonicalizes the COO
triplets deterministically (sorted by (row, col), duplicates summed) so two
builds of the same LP produce bit-identical CSR matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

__all__ = ["VariableIndex", "LPBuilder", "LPSolution", "SolverError"]

_EMPTY_EQ_TOL = 1e-12


class SolverError(RuntimeError):
    """Raised when the LP solver fails to find an optimal solution."""


class VariableIndex:
    """Bidirectional mapping between hashable variable keys and column indices."""

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self._keys: List[Hashable] = []

    def add(self, key: Hashable, index: Optional[int] = None) -> int:
        """Register ``key`` (idempotent) and return its column index.

        ``index`` pins the column explicitly — used by :class:`LPBuilder`,
        whose keyed variables share one column space with variable blocks, so
        columns are allocated by the builder rather than by insertion count.
        """
        idx = self._index.get(key)
        if idx is None:
            idx = len(self._keys) if index is None else index
            self._index[key] = idx
            self._keys.append(key)
        return idx

    def __getitem__(self, key: Hashable) -> int:
        return self._index[key]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._keys)

    def keys(self) -> List[Hashable]:
        """All registered keys in registration (= ascending column) order."""
        return list(self._keys)

    def get(self, key: Hashable, default: Optional[int] = None) -> Optional[int]:
        return self._index.get(key, default)

    def index_map(self) -> Dict[Hashable, int]:
        """The live key -> column dict (treat as read-only)."""
        return self._index


@dataclass(frozen=True)
class _Block:
    """A contiguous range of columns registered as one named variable block."""

    name: str
    start: int
    shape: Tuple[int, ...]
    lb: object            # float scalar or flat ndarray of length size
    ub: object            # float scalar (inf for unbounded) or flat ndarray
    objective: object     # float scalar or flat ndarray

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1


class LPSolution:
    """Result of an LP solve, backed by the flat solution vector.

    The solution holds the solver's raw ``x`` vector (or, for cache-restored
    copies, per-block sparse arrays) and materializes per-key / per-block
    views lazily:

    * :meth:`value` / :attr:`values` cover variables registered through the
      keyed API (``add_variable``);
    * :meth:`block` returns the value ndarray of a variable block, shaped like
      the block — the path the vectorized MCF extractors use.

    Attributes
    ----------
    objective:
        Optimal objective value in the *builder's* sense (i.e. negated back if
        the builder was maximizing).
    raw:
        The raw :class:`scipy.optimize.OptimizeResult` (None for solutions
        served from the cache, which strips it on store).
    info:
        Engine bookkeeping attached by :meth:`repro.engine.Engine.solve`:
        cache status (``hit`` / ``miss`` / ``bypass``), backend name, LP
        dimensions and assembly/solve timings.  Empty when the builder is
        solved directly.
    """

    def __init__(self, objective: float, values: Optional[Dict[Hashable, float]] = None,
                 raw: object = None, info: Optional[Dict[str, object]] = None,
                 x: Optional[np.ndarray] = None,
                 key_index: Optional[Dict[Hashable, int]] = None,
                 blocks: Optional[Dict[str, object]] = None) -> None:
        self.objective = objective
        self.raw = raw
        self.info: Dict[str, object] = {} if info is None else info
        self._x = x
        self._key_index = key_index
        # Block storage: name -> ("slice", start, shape) view into x,
        # ("sparse", shape, idx, vals) compacted form, or a dense ndarray
        # (memoized reconstruction).
        self._blocks: Dict[str, object] = {} if blocks is None else blocks
        self._values = values

    # ------------------------------------------------------------------ #
    @property
    def x(self) -> Optional[np.ndarray]:
        """The solver's flat solution vector (None for cache-restored copies).

        The batched family solver (:mod:`repro.perf.batch`) scales this
        vector directly when a family member's RHS is a uniform scaling of
        a solved one; treat it as read-only.
        """
        return self._x

    @property
    def values(self) -> Dict[Hashable, float]:
        """Keyed-variable values as a dict (materialized lazily, then cached)."""
        if self._values is None:
            if self._x is not None and self._key_index:
                x = self._x
                self._values = {k: float(x[i]) for k, i in self._key_index.items()}
            else:
                self._values = {}
        return self._values

    def value(self, key: Hashable, default: float = 0.0) -> float:
        """Optimal value of a keyed variable (``default`` for unknown keys)."""
        if self._values is not None:
            return self._values.get(key, default)
        if self._key_index is not None and self._x is not None:
            idx = self._key_index.get(key)
            if idx is not None:
                return float(self._x[idx])
        return default

    # ------------------------------------------------------------------ #
    def block_names(self) -> List[str]:
        """Names of the variable blocks this solution carries."""
        return sorted(self._blocks)

    def has_block(self, name: str) -> bool:
        return name in self._blocks

    def block(self, name: str) -> np.ndarray:
        """Value ndarray of variable block ``name``, shaped like the block."""
        entry = self._blocks.get(name)
        if entry is None:
            raise KeyError(f"solution has no variable block {name!r}; "
                           f"available: {self.block_names()}")
        if isinstance(entry, np.ndarray):
            return entry
        kind = entry[0]
        if kind == "slice":
            _, start, shape = entry
            size = int(np.prod(shape)) if shape else 1
            dense = np.asarray(self._x[start:start + size]).reshape(shape)
        else:  # "sparse"
            _, shape, idx, vals = entry
            size = int(np.prod(shape)) if shape else 1
            flat = np.zeros(size)
            flat[idx] = vals
            dense = flat.reshape(shape)
        self._blocks[name] = dense
        return dense

    # ------------------------------------------------------------------ #
    def clone(self, info: Optional[Dict[str, object]] = None) -> "LPSolution":
        """Shallow copy, optionally swapping ``info`` (cache-hit bookkeeping)."""
        return LPSolution(objective=self.objective, values=self._values,
                          raw=self.raw, info=dict(self.info) if info is None else info,
                          x=self._x, key_index=self._key_index,
                          blocks=dict(self._blocks))

    def portable(self, tol: float = 0.0) -> "LPSolution":
        """Compact, picklable copy for the solution cache.

        The raw solver result is stripped, keyed values are sparsified
        (``value()`` defaults missing keys to 0.0 and every consumer
        thresholds at ``FLOW_TOL`` anyway) and each variable block is stored
        as flat (index, value) ndarrays of its above-``tol`` entries — MCF
        solutions are overwhelmingly zeros, so this cuts the cache footprint
        by orders of magnitude at paper scale.
        """
        blocks: Dict[str, object] = {}
        for name in self._blocks:
            arr = self.block(name)
            flat = np.asarray(arr, dtype=float).ravel()
            idx = np.flatnonzero(np.abs(flat) > tol)
            blocks[name] = ("sparse", tuple(arr.shape),
                            idx.astype(np.int64), flat[idx].copy())
        sparse_values = {k: v for k, v in self.values.items() if abs(v) > tol}
        return LPSolution(objective=self.objective, values=sparse_values,
                          raw=None, info=dict(self.info), blocks=blocks)

    # Pickle support (the instance has no __dict__-only state worth trimming,
    # but the raw OptimizeResult must never travel; portable() handles that
    # for the cache and this keeps ad-hoc pickles safe too).
    def __getstate__(self):
        return (self.objective, self._values, None, self.info, self._x,
                self._key_index, self._blocks)

    def __setstate__(self, state):
        (self.objective, self._values, self.raw, self.info, self._x,
         self._key_index, self._blocks) = state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"LPSolution(objective={self.objective!r}, "
                f"blocks={self.block_names()}, info={self.info!r})")


def _as_bound_array(value: object, shape: Tuple[int, ...], default: float,
                    what: str) -> object:
    """Normalize a scalar-or-array block bound/objective spec."""
    if value is None:
        return default
    if np.isscalar(value):
        return float(value)
    arr = np.broadcast_to(np.asarray(value, dtype=float), shape).ravel()
    if not np.all(np.isfinite(arr) | np.isinf(arr)):
        raise ValueError(f"non-finite {what} entries in block spec")
    return np.array(arr)  # own the memory (broadcast_to returns a view)


class LPBuilder:
    """Incremental sparse LP builder (keyed + block construction styles).

    Keyed variables are referenced by arbitrary hashable keys; block variables
    are referenced by the integer column indices returned from
    :meth:`add_variable_block`.  Constraints are ``sum(coeff * var) <= rhs``
    (:meth:`add_le` / :meth:`add_le_block`) or ``== rhs`` (:meth:`add_eq` /
    :meth:`add_eq_block`).  The objective is a linear form; set
    ``maximize=True`` on :meth:`solve` to maximize it.
    """

    def __init__(self) -> None:
        self.variables = VariableIndex()
        self._blocks: Dict[str, _Block] = {}
        self._ncols = 0
        self._objective: Dict[int, float] = {}
        self._lb: Dict[int, float] = {}
        self._ub: Dict[int, float] = {}
        # Legacy per-call COO triplets (rows are absolute row numbers).
        self._ub_rows: List[int] = []
        self._ub_cols: List[int] = []
        self._ub_vals: List[float] = []
        self._ub_rhs: List[float] = []
        self._eq_rows: List[int] = []
        self._eq_cols: List[int] = []
        self._eq_vals: List[float] = []
        self._eq_rhs: List[float] = []
        # Block COO chunks: (rows, cols, vals) ndarray triplets with absolute
        # row numbers, concatenated lazily in to_arrays().
        self._ub_chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._eq_chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._arrays_cache = None

    # ------------------------------------------------------------------ #
    # Variables
    # ------------------------------------------------------------------ #
    def add_variable(self, key: Hashable, lb: float = 0.0, ub: Optional[float] = None,
                     objective: float = 0.0) -> int:
        """Register a keyed variable with bounds and an objective coefficient."""
        idx = self.variables.get(key)
        if idx is None:
            idx = self.variables.add(key, index=self._ncols)
            self._ncols += 1
        if objective:
            self._objective[idx] = self._objective.get(idx, 0.0) + objective
        self._lb[idx] = lb
        self._ub[idx] = np.inf if ub is None else ub
        self._arrays_cache = None
        return idx

    def add_variable_block(self, name: str, shape: Union[int, Sequence[int]],
                           lb: object = 0.0, ub: object = None,
                           objective: object = 0.0) -> np.ndarray:
        """Reserve a contiguous block of variables and return its index array.

        Parameters
        ----------
        name:
            Block name, unique per builder; the solved values are retrieved
            with ``solution.block(name)`` shaped like the block.
        shape:
            Int or tuple of ints — the logical shape of the block.
        lb / ub / objective:
            Scalars or arrays broadcastable to ``shape``.  ``ub=None`` means
            unbounded above.

        Returns
        -------
        numpy.ndarray
            Column indices of the block's variables, shaped ``shape`` — use
            fancy indexing / ``ravel()`` on it to produce the ``cols`` arrays
            of :meth:`add_le_block` / :meth:`add_eq_block`.
        """
        if name in self._blocks:
            raise ValueError(f"variable block {name!r} already registered")
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        else:
            shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in shape):
            raise ValueError(f"negative dimension in block shape {shape}")
        block = _Block(name=name, start=self._ncols, shape=shape,
                       lb=_as_bound_array(lb, shape, 0.0, "lower bound"),
                       ub=_as_bound_array(ub, shape, np.inf, "upper bound"),
                       objective=_as_bound_array(objective, shape, 0.0, "objective"))
        self._blocks[name] = block
        self._ncols += block.size
        self._arrays_cache = None
        return np.arange(block.start, block.start + block.size,
                         dtype=np.int64).reshape(shape)

    def set_objective(self, key: Hashable, coeff: float) -> None:
        """Set (overwrite) the objective coefficient of a keyed variable."""
        idx = self.variables[key]
        self._objective[idx] = coeff
        self._arrays_cache = None

    # ------------------------------------------------------------------ #
    # Constraints — keyed API
    # ------------------------------------------------------------------ #
    def add_le(self, terms: Iterable[Tuple[Hashable, float]], rhs: float) -> None:
        """Add constraint ``sum(coeff * var) <= rhs``."""
        row = len(self._ub_rhs)
        wrote = False
        for key, coeff in terms:
            if coeff == 0.0:
                continue
            self._ub_rows.append(row)
            self._ub_cols.append(self.variables[key])
            self._ub_vals.append(float(coeff))
            wrote = True
        if not wrote:
            # A vacuous constraint 0 <= rhs; keep rhs row only if violated.
            if rhs < 0:
                raise ValueError("infeasible empty constraint 0 <= negative rhs")
            return
        self._ub_rhs.append(float(rhs))
        self._arrays_cache = None

    def add_ge(self, terms: Iterable[Tuple[Hashable, float]], rhs: float) -> None:
        """Add constraint ``sum(coeff * var) >= rhs`` (stored as <=)."""
        self.add_le([(k, -c) for k, c in terms], -rhs)

    def add_eq(self, terms: Iterable[Tuple[Hashable, float]], rhs: float) -> None:
        """Add constraint ``sum(coeff * var) == rhs``."""
        row = len(self._eq_rhs)
        wrote = False
        for key, coeff in terms:
            if coeff == 0.0:
                continue
            self._eq_rows.append(row)
            self._eq_cols.append(self.variables[key])
            self._eq_vals.append(float(coeff))
            wrote = True
        if not wrote:
            if abs(rhs) > _EMPTY_EQ_TOL:
                raise ValueError("infeasible empty equality constraint")
            return
        self._eq_rhs.append(float(rhs))
        self._arrays_cache = None

    # ------------------------------------------------------------------ #
    # Constraints — block API
    # ------------------------------------------------------------------ #
    def _coerce_triplets(self, rows, cols, vals, rhs):
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        vals = np.asarray(vals, dtype=float).ravel()
        rhs = np.atleast_1d(np.asarray(rhs, dtype=float)).ravel()
        if not (len(rows) == len(cols) == len(vals)):
            raise ValueError(
                f"COO triplet length mismatch: {len(rows)} rows, "
                f"{len(cols)} cols, {len(vals)} vals")
        if len(rows):
            if rows.min() < 0 or rows.max() >= len(rhs):
                raise ValueError("block constraint row index outside rhs range")
            if cols.min() < 0 or cols.max() >= self._ncols:
                raise ValueError("block constraint column index outside "
                                 "registered variables")
        return rows, cols, vals, rhs

    def _add_block(self, rows, cols, vals, rhs, equality: bool) -> None:
        rows, cols, vals, rhs = self._coerce_triplets(rows, cols, vals, rhs)
        nz = vals != 0.0
        if not nz.all():
            rows, cols, vals = rows[nz], cols[nz], vals[nz]
        # Vacuous rows (no nonzero entries) are dropped — matching the keyed
        # API — unless the empty constraint is itself infeasible.
        occupied = np.bincount(rows, minlength=len(rhs)) > 0
        if not occupied.all():
            empty_rhs = rhs[~occupied]
            if equality:
                if np.any(np.abs(empty_rhs) > _EMPTY_EQ_TOL):
                    raise ValueError("infeasible empty equality constraint")
            elif np.any(empty_rhs < 0):
                raise ValueError("infeasible empty constraint 0 <= negative rhs")
            renumber = np.cumsum(occupied) - 1
            rows = renumber[rows]
            rhs = rhs[occupied]
        if not len(rhs):
            return
        rhs_list = self._eq_rhs if equality else self._ub_rhs
        chunks = self._eq_chunks if equality else self._ub_chunks
        chunks.append((rows + len(rhs_list), cols, vals))
        rhs_list.extend(rhs.tolist())
        self._arrays_cache = None

    def add_le_block(self, rows, cols, vals, rhs) -> None:
        """Add a batch of ``<=`` constraints from COO triplet arrays.

        ``rows`` indexes into ``rhs`` (one constraint per rhs entry, local to
        this call), ``cols`` are global column indices (from the index arrays
        returned by :meth:`add_variable_block`, or keyed-variable indices),
        ``vals`` the coefficients.  Zero coefficients are dropped; rows left
        with no entries are dropped like vacuous keyed constraints (raising if
        the empty constraint ``0 <= rhs`` is infeasible).  Repeated
        ``(row, col)`` entries are summed deterministically in
        :meth:`to_arrays`.
        """
        self._add_block(rows, cols, vals, rhs, equality=False)

    def add_ge_block(self, rows, cols, vals, rhs) -> None:
        """Add a batch of ``>=`` constraints (stored negated as ``<=``)."""
        rows, cols, vals, rhs = self._coerce_triplets(rows, cols, vals, rhs)
        self._add_block(rows, cols, -vals, -rhs, equality=False)

    def add_eq_block(self, rows, cols, vals, rhs) -> None:
        """Add a batch of ``==`` constraints from COO triplet arrays."""
        self._add_block(rows, cols, vals, rhs, equality=True)

    def add_compressed_block(self, key_parts, col_parts, val_parts,
                             equality: bool = False, rhs=None) -> np.ndarray:
        """Add constraints whose rows are identified by arbitrary integer keys.

        The workhorse of the vectorized MCF assemblers: each constraint
        family arrives as parallel lists of (row-key, column, value) array
        parts — e.g. the +1 outflow and -1 inflow halves of a flow-balance
        family keyed by ``commodity * N + node``.  The parts are
        concatenated, the used keys compressed to consecutive row ids (in
        ascending key order), and the batch added as one ``<=`` (default) or
        ``==`` call.

        ``rhs`` may be None (zeros), a callable mapping the unique key array
        to an rhs array (for key-dependent right-hand sides), or an array
        aligned with the compressed rows.  Returns the unique key array.
        """
        keys = np.concatenate([np.asarray(k, dtype=np.int64) for k in key_parts])
        cols = np.concatenate([np.asarray(c, dtype=np.int64) for c in col_parts])
        vals = np.concatenate([np.asarray(v, dtype=float) for v in val_parts])
        uniq, rows = np.unique(keys, return_inverse=True)
        if rhs is None:
            rhs_arr = np.zeros(len(uniq))
        elif callable(rhs):
            rhs_arr = rhs(uniq)
        else:
            rhs_arr = rhs
        add = self.add_eq_block if equality else self.add_le_block
        add(rows, cols, vals, rhs_arr)
        return uniq

    # ------------------------------------------------------------------ #
    @property
    def num_variables(self) -> int:
        return self._ncols

    @property
    def num_constraints(self) -> int:
        return len(self._ub_rhs) + len(self._eq_rhs)

    def block_index(self, name: str) -> np.ndarray:
        """Column index array of a registered block (same as the one returned
        by :meth:`add_variable_block`)."""
        block = self._blocks[name]
        return np.arange(block.start, block.start + block.size,
                         dtype=np.int64).reshape(block.shape)

    def block_names(self) -> List[str]:
        return sorted(self._blocks)

    # ------------------------------------------------------------------ #
    def _gather_coo(self, legacy_rows, legacy_cols, legacy_vals, chunks):
        parts = [(np.asarray(legacy_rows, dtype=np.int64),
                  np.asarray(legacy_cols, dtype=np.int64),
                  np.asarray(legacy_vals, dtype=float))] if legacy_rows else []
        parts.extend(chunks)
        if not parts:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                    np.empty(0))
        rows = np.concatenate([p[0] for p in parts])
        cols = np.concatenate([p[1] for p in parts])
        vals = np.concatenate([p[2] for p in parts])
        return rows, cols, vals

    @staticmethod
    def _dedupe_coo(rows, cols, vals):
        """Canonicalize COO triplets: sort by (row, col), sum duplicates.

        scipy's ``tocsr`` also sums duplicates, but its summation order
        depends on the input ordering; sorting first makes the assembled
        matrix (data array included) bit-identical across equivalent builds.
        """
        if not len(rows):
            return rows, cols, vals
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        boundary = np.empty(len(rows), dtype=bool)
        boundary[0] = True
        np.logical_or(rows[1:] != rows[:-1], cols[1:] != cols[:-1],
                      out=boundary[1:])
        starts = np.flatnonzero(boundary)
        if len(starts) != len(rows):
            vals = np.add.reduceat(vals, starts)
            rows, cols = rows[starts], cols[starts]
        return rows, cols, vals

    def to_arrays(self):
        """Assemble the LP into scipy-ready arrays (memoized until mutated).

        Returns ``(c, A_ub, b_ub, A_eq, b_eq, bounds)`` with the objective in
        *minimization* sense (backends negate for maximization), the
        constraint matrices in canonical CSR form (None when a block is
        empty), and ``bounds`` as an ``(n, 2)`` float array using ``inf`` for
        unbounded entries.
        """
        if self._arrays_cache is not None:
            return self._arrays_cache
        n = self.num_variables
        c = np.zeros(n)
        lb = np.zeros(n)
        ub = np.full(n, np.inf)
        if self._objective:
            idx = np.fromiter(self._objective, dtype=np.int64,
                              count=len(self._objective))
            c[idx] = np.fromiter(self._objective.values(), dtype=float,
                                 count=len(self._objective))
        if self._lb:
            idx = np.fromiter(self._lb, dtype=np.int64, count=len(self._lb))
            lb[idx] = np.fromiter(self._lb.values(), dtype=float,
                                  count=len(self._lb))
        if self._ub:
            idx = np.fromiter(self._ub, dtype=np.int64, count=len(self._ub))
            ub[idx] = np.fromiter(self._ub.values(), dtype=float,
                                  count=len(self._ub))
        for block in self._blocks.values():
            stop = block.start + block.size
            lb[block.start:stop] = block.lb
            ub[block.start:stop] = block.ub
            c[block.start:stop] = block.objective

        a_ub = b_ub = a_eq = b_eq = None
        if self._ub_rhs:
            rows, cols, vals = self._dedupe_coo(*self._gather_coo(
                self._ub_rows, self._ub_cols, self._ub_vals, self._ub_chunks))
            a_ub = sp.csr_matrix((vals, (rows, cols)),
                                 shape=(len(self._ub_rhs), n))
            b_ub = np.asarray(self._ub_rhs)
        if self._eq_rhs:
            rows, cols, vals = self._dedupe_coo(*self._gather_coo(
                self._eq_rows, self._eq_cols, self._eq_vals, self._eq_chunks))
            a_eq = sp.csr_matrix((vals, (rows, cols)),
                                 shape=(len(self._eq_rhs), n))
            b_eq = np.asarray(self._eq_rhs)

        bounds = np.column_stack([lb, ub])
        self._arrays_cache = (c, a_ub, b_ub, a_eq, b_eq, bounds)
        return self._arrays_cache

    def make_solution(self, x, objective: float, raw: object = None) -> LPSolution:
        """Wrap a solver's ``x`` vector as an array-backed :class:`LPSolution`.

        Keyed variables stay addressable through :meth:`LPSolution.value`;
        variable blocks through :meth:`LPSolution.block`.  Nothing is copied
        or materialized eagerly.
        """
        blocks = {name: ("slice", b.start, b.shape)
                  for name, b in self._blocks.items()}
        return LPSolution(objective=objective, raw=raw,
                          x=np.asarray(x, dtype=float),
                          key_index=self.variables.index_map(), blocks=blocks)

    def solve(self, maximize: bool = False, method: str = "highs") -> LPSolution:
        """Solve the accumulated LP through a registered engine backend.

        Kept for direct LP construction (tests, baselines); the MCF
        formulations go through :func:`repro.engine.solve` instead, which
        adds caching on top of the same backends.

        Raises
        ------
        SolverError
            If the solver reports anything other than success.
        """
        from ..engine.backends import ScipyHighsBackend, backend_names, get_backend

        name = f"scipy-{method}"
        if name in backend_names():
            backend = get_backend(name)
        else:
            backend = ScipyHighsBackend(name, method=method)
        return backend.solve(self, maximize=maximize)
