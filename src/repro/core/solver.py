"""Sparse LP construction helpers.

All MCF variants in :mod:`repro.core` are assembled as sparse constraint
matrices.  Solving is delegated to a :mod:`repro.engine.backends` backend
(HiGHS via :func:`scipy.optimize.linprog` by default).  The paper uses MOSEK;
the LP optima are solver independent, so HiGHS preserves every result that
depends on optimal values (only absolute solve times differ, and Fig. 7 is
about *scaling*, which is preserved).

The :class:`LPBuilder` accumulates constraints row by row in COO form, which
keeps construction vectorizable and avoids densifying what are extremely
sparse matrices (a link-based MCF on N nodes and E edges has ~N^2*E variables
but only a handful of nonzeros per row).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["VariableIndex", "LPBuilder", "LPSolution", "SolverError"]


class SolverError(RuntimeError):
    """Raised when the LP solver fails to find an optimal solution."""


class VariableIndex:
    """Bidirectional mapping between hashable variable keys and column indices."""

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self._keys: List[Hashable] = []

    def add(self, key: Hashable) -> int:
        """Register ``key`` (idempotent) and return its column index."""
        idx = self._index.get(key)
        if idx is None:
            idx = len(self._keys)
            self._index[key] = idx
            self._keys.append(key)
        return idx

    def __getitem__(self, key: Hashable) -> int:
        return self._index[key]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._keys)

    def keys(self) -> List[Hashable]:
        """All registered keys in column order."""
        return list(self._keys)

    def get(self, key: Hashable, default: Optional[int] = None) -> Optional[int]:
        return self._index.get(key, default)


@dataclass
class LPSolution:
    """Result of an LP solve.

    Attributes
    ----------
    objective:
        Optimal objective value in the *builder's* sense (i.e. negated back if
        the builder was maximizing).
    values:
        Mapping from variable key to optimal value.
    raw:
        The raw :class:`scipy.optimize.OptimizeResult` (None for solutions
        served from the cache, which strips it on store).
    info:
        Engine bookkeeping attached by :meth:`repro.engine.Engine.solve`:
        cache status (``hit`` / ``miss`` / ``bypass``), backend name and LP
        dimensions.  Empty when the builder is solved directly.
    """

    objective: float
    values: Dict[Hashable, float]
    raw: object = None
    info: Dict[str, object] = field(default_factory=dict)

    def value(self, key: Hashable, default: float = 0.0) -> float:
        """Optimal value of a variable (0.0 for unregistered keys)."""
        return self.values.get(key, default)


class LPBuilder:
    """Incremental sparse LP builder.

    Variables are referenced by arbitrary hashable keys.  Constraints are
    expressed as ``sum(coeff * var) <= rhs`` (:meth:`add_le`) or ``== rhs``
    (:meth:`add_eq`).  The objective is a linear form; set ``maximize=True`` on
    :meth:`solve` to maximize it.
    """

    def __init__(self) -> None:
        self.variables = VariableIndex()
        self._objective: Dict[int, float] = {}
        self._lb: Dict[int, float] = {}
        self._ub: Dict[int, float] = {}
        # COO triplets for inequality / equality constraints.
        self._ub_rows: List[int] = []
        self._ub_cols: List[int] = []
        self._ub_vals: List[float] = []
        self._ub_rhs: List[float] = []
        self._eq_rows: List[int] = []
        self._eq_cols: List[int] = []
        self._eq_vals: List[float] = []
        self._eq_rhs: List[float] = []

    # ------------------------------------------------------------------ #
    def add_variable(self, key: Hashable, lb: float = 0.0, ub: Optional[float] = None,
                     objective: float = 0.0) -> int:
        """Register a variable with bounds and an objective coefficient."""
        idx = self.variables.add(key)
        if objective:
            self._objective[idx] = self._objective.get(idx, 0.0) + objective
        self._lb[idx] = lb
        self._ub[idx] = np.inf if ub is None else ub
        return idx

    def set_objective(self, key: Hashable, coeff: float) -> None:
        """Set (overwrite) the objective coefficient of an existing variable."""
        idx = self.variables[key]
        self._objective[idx] = coeff

    def add_le(self, terms: Iterable[Tuple[Hashable, float]], rhs: float) -> None:
        """Add constraint ``sum(coeff * var) <= rhs``."""
        row = len(self._ub_rhs)
        wrote = False
        for key, coeff in terms:
            if coeff == 0.0:
                continue
            self._ub_rows.append(row)
            self._ub_cols.append(self.variables[key])
            self._ub_vals.append(float(coeff))
            wrote = True
        if not wrote:
            # A vacuous constraint 0 <= rhs; keep rhs row only if violated.
            if rhs < 0:
                raise ValueError("infeasible empty constraint 0 <= negative rhs")
            return
        self._ub_rhs.append(float(rhs))

    def add_ge(self, terms: Iterable[Tuple[Hashable, float]], rhs: float) -> None:
        """Add constraint ``sum(coeff * var) >= rhs`` (stored as <=)."""
        self.add_le([(k, -c) for k, c in terms], -rhs)

    def add_eq(self, terms: Iterable[Tuple[Hashable, float]], rhs: float) -> None:
        """Add constraint ``sum(coeff * var) == rhs``."""
        row = len(self._eq_rhs)
        wrote = False
        for key, coeff in terms:
            if coeff == 0.0:
                continue
            self._eq_rows.append(row)
            self._eq_cols.append(self.variables[key])
            self._eq_vals.append(float(coeff))
            wrote = True
        if not wrote:
            if abs(rhs) > 1e-12:
                raise ValueError("infeasible empty equality constraint")
            return
        self._eq_rhs.append(float(rhs))

    # ------------------------------------------------------------------ #
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self._ub_rhs) + len(self._eq_rhs)

    def to_arrays(self):
        """Assemble the LP into scipy-ready arrays.

        Returns ``(c, A_ub, b_ub, A_eq, b_eq, bounds)`` with the objective in
        *minimization* sense (backends negate for maximization) and the
        constraint matrices in CSR form (None when a block is empty).
        """
        n = self.num_variables
        c = np.zeros(n)
        for idx, coeff in self._objective.items():
            c[idx] = coeff

        a_ub = b_ub = a_eq = b_eq = None
        if self._ub_rhs:
            a_ub = sp.coo_matrix(
                (self._ub_vals, (self._ub_rows, self._ub_cols)),
                shape=(len(self._ub_rhs), n),
            ).tocsr()
            b_ub = np.asarray(self._ub_rhs)
        if self._eq_rhs:
            a_eq = sp.coo_matrix(
                (self._eq_vals, (self._eq_rows, self._eq_cols)),
                shape=(len(self._eq_rhs), n),
            ).tocsr()
            b_eq = np.asarray(self._eq_rhs)

        bounds = [(self._lb.get(i, 0.0), None if np.isinf(self._ub.get(i, np.inf))
                   else self._ub.get(i)) for i in range(n)]
        return c, a_ub, b_ub, a_eq, b_eq, bounds

    def solve(self, maximize: bool = False, method: str = "highs") -> LPSolution:
        """Solve the accumulated LP through a registered engine backend.

        Kept for direct LP construction (tests, baselines); the MCF
        formulations go through :func:`repro.engine.solve` instead, which
        adds caching on top of the same backends.

        Raises
        ------
        SolverError
            If the solver reports anything other than success.
        """
        from ..engine.backends import ScipyHighsBackend, backend_names, get_backend

        name = f"scipy-{method}"
        if name in backend_names():
            backend = get_backend(name)
        else:
            backend = ScipyHighsBackend(name, method=method)
        return backend.solve(self, maximize=maximize)
