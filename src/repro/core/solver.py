"""Sparse LP construction helpers and the HiGHS solver wrapper.

All MCF variants in :mod:`repro.core` are assembled as sparse constraint
matrices and solved by the HiGHS solver exposed through
:func:`scipy.optimize.linprog`.  The paper uses MOSEK; the LP optima are solver
independent, so HiGHS preserves every result that depends on optimal values
(only absolute solve times differ, and Fig. 7 is about *scaling*, which is
preserved).

The :class:`LPBuilder` accumulates constraints row by row in COO form, which
keeps construction vectorizable and avoids densifying what are extremely
sparse matrices (a link-based MCF on N nodes and E edges has ~N^2*E variables
but only a handful of nonzeros per row).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

__all__ = ["VariableIndex", "LPBuilder", "LPSolution", "SolverError"]


class SolverError(RuntimeError):
    """Raised when the LP solver fails to find an optimal solution."""


class VariableIndex:
    """Bidirectional mapping between hashable variable keys and column indices."""

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self._keys: List[Hashable] = []

    def add(self, key: Hashable) -> int:
        """Register ``key`` (idempotent) and return its column index."""
        idx = self._index.get(key)
        if idx is None:
            idx = len(self._keys)
            self._index[key] = idx
            self._keys.append(key)
        return idx

    def __getitem__(self, key: Hashable) -> int:
        return self._index[key]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._keys)

    def keys(self) -> List[Hashable]:
        """All registered keys in column order."""
        return list(self._keys)

    def get(self, key: Hashable, default: Optional[int] = None) -> Optional[int]:
        return self._index.get(key, default)


@dataclass
class LPSolution:
    """Result of an LP solve.

    Attributes
    ----------
    objective:
        Optimal objective value in the *builder's* sense (i.e. negated back if
        the builder was maximizing).
    values:
        Mapping from variable key to optimal value.
    raw:
        The raw :class:`scipy.optimize.OptimizeResult`.
    """

    objective: float
    values: Dict[Hashable, float]
    raw: object = None

    def value(self, key: Hashable, default: float = 0.0) -> float:
        """Optimal value of a variable (0.0 for unregistered keys)."""
        return self.values.get(key, default)


class LPBuilder:
    """Incremental sparse LP builder.

    Variables are referenced by arbitrary hashable keys.  Constraints are
    expressed as ``sum(coeff * var) <= rhs`` (:meth:`add_le`) or ``== rhs``
    (:meth:`add_eq`).  The objective is a linear form; set ``maximize=True`` on
    :meth:`solve` to maximize it.
    """

    def __init__(self) -> None:
        self.variables = VariableIndex()
        self._objective: Dict[int, float] = {}
        self._lb: Dict[int, float] = {}
        self._ub: Dict[int, float] = {}
        # COO triplets for inequality / equality constraints.
        self._ub_rows: List[int] = []
        self._ub_cols: List[int] = []
        self._ub_vals: List[float] = []
        self._ub_rhs: List[float] = []
        self._eq_rows: List[int] = []
        self._eq_cols: List[int] = []
        self._eq_vals: List[float] = []
        self._eq_rhs: List[float] = []

    # ------------------------------------------------------------------ #
    def add_variable(self, key: Hashable, lb: float = 0.0, ub: Optional[float] = None,
                     objective: float = 0.0) -> int:
        """Register a variable with bounds and an objective coefficient."""
        idx = self.variables.add(key)
        if objective:
            self._objective[idx] = self._objective.get(idx, 0.0) + objective
        self._lb[idx] = lb
        self._ub[idx] = np.inf if ub is None else ub
        return idx

    def set_objective(self, key: Hashable, coeff: float) -> None:
        """Set (overwrite) the objective coefficient of an existing variable."""
        idx = self.variables[key]
        self._objective[idx] = coeff

    def add_le(self, terms: Iterable[Tuple[Hashable, float]], rhs: float) -> None:
        """Add constraint ``sum(coeff * var) <= rhs``."""
        row = len(self._ub_rhs)
        wrote = False
        for key, coeff in terms:
            if coeff == 0.0:
                continue
            self._ub_rows.append(row)
            self._ub_cols.append(self.variables[key])
            self._ub_vals.append(float(coeff))
            wrote = True
        if not wrote:
            # A vacuous constraint 0 <= rhs; keep rhs row only if violated.
            if rhs < 0:
                raise ValueError("infeasible empty constraint 0 <= negative rhs")
            return
        self._ub_rhs.append(float(rhs))

    def add_ge(self, terms: Iterable[Tuple[Hashable, float]], rhs: float) -> None:
        """Add constraint ``sum(coeff * var) >= rhs`` (stored as <=)."""
        self.add_le([(k, -c) for k, c in terms], -rhs)

    def add_eq(self, terms: Iterable[Tuple[Hashable, float]], rhs: float) -> None:
        """Add constraint ``sum(coeff * var) == rhs``."""
        row = len(self._eq_rhs)
        wrote = False
        for key, coeff in terms:
            if coeff == 0.0:
                continue
            self._eq_rows.append(row)
            self._eq_cols.append(self.variables[key])
            self._eq_vals.append(float(coeff))
            wrote = True
        if not wrote:
            if abs(rhs) > 1e-12:
                raise ValueError("infeasible empty equality constraint")
            return
        self._eq_rhs.append(float(rhs))

    # ------------------------------------------------------------------ #
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self._ub_rhs) + len(self._eq_rhs)

    def solve(self, maximize: bool = False, method: str = "highs") -> LPSolution:
        """Solve the accumulated LP and return an :class:`LPSolution`.

        Raises
        ------
        SolverError
            If the solver reports anything other than success.
        """
        n = self.num_variables
        if n == 0:
            return LPSolution(objective=0.0, values={}, raw=None)
        c = np.zeros(n)
        for idx, coeff in self._objective.items():
            c[idx] = coeff
        if maximize:
            c = -c

        a_ub = b_ub = a_eq = b_eq = None
        if self._ub_rhs:
            a_ub = sp.coo_matrix(
                (self._ub_vals, (self._ub_rows, self._ub_cols)),
                shape=(len(self._ub_rhs), n),
            ).tocsr()
            b_ub = np.asarray(self._ub_rhs)
        if self._eq_rhs:
            a_eq = sp.coo_matrix(
                (self._eq_vals, (self._eq_rows, self._eq_cols)),
                shape=(len(self._eq_rhs), n),
            ).tocsr()
            b_eq = np.asarray(self._eq_rhs)

        bounds = [(self._lb.get(i, 0.0), None if np.isinf(self._ub.get(i, np.inf))
                   else self._ub.get(i)) for i in range(n)]
        result = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                         bounds=bounds, method=method)
        if not result.success:
            raise SolverError(f"LP solve failed: {result.message}")
        objective = float(result.fun)
        if maximize:
            objective = -objective
        values = {key: float(result.x[self.variables[key]]) for key in self.variables.keys()}
        return LPSolution(objective=objective, values=values, raw=result)
