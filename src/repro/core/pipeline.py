"""High-level schedule generation pipeline (the Fig. 1 flowchart).

Given a topology and a fabric description, pick the appropriate MCF variant:

* no NIC forwarding (ML-style, host/GPU forwarding, store-and-forward)
  -> link-based **tsMCF**, optionally on the host-NIC-bottleneck augmented
  graph, producing a time-stepped link schedule;
* NIC forwarding available (HPC-style, cut-through source routing):
  - if the per-pair path diversity is small (expanders) -> **pMCF** on
    link-disjoint (or bounded) candidate paths;
  - otherwise (tori and other path-rich topologies) -> decomposed link MCF +
    widest-path extraction (**MCF-extP**).

The returned object is either a :class:`~repro.core.mcf_timestepped.TimeSteppedFlow`
(link-based) or a :class:`~repro.core.mcf_path.PathSchedule` (path-based); both
can be lowered by :mod:`repro.schedule` and executed by :mod:`repro.simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Union

from ..topology.base import Topology
from .bottleneck import augment_host_nic_bottleneck
from .mcf_path import PathSchedule, solve_path_mcf
from .mcf_timestepped import TimeSteppedFlow, solve_timestepped_mcf
from .mcf_ts_decomposed import solve_timestepped_mcf_decomposed
from .path_extraction import solve_mcf_extract_paths

__all__ = ["ForwardingModel", "SchedulingRequest", "generate_schedule",
           "estimate_path_diversity"]


class ForwardingModel(str, Enum):
    """Who forwards traffic for other nodes (Table 1)."""

    HOST = "host"   # ML accelerator style: store-and-forward at the host/GPU.
    NIC = "nic"     # HPC style: NIC/hardware routing with cut-through.


@dataclass
class SchedulingRequest:
    """Parameters steering the Fig. 1 decision flow.

    Attributes
    ----------
    forwarding:
        HOST (link-based schedules) or NIC (path-based schedules).
    host_bandwidth:
        Host injection bandwidth in the same units as link capacity.  If it is
        smaller than a node's aggregate link capacity and forwarding is HOST,
        the host-NIC bottleneck augmentation of §3.2.2 is applied.
    link_bandwidth:
        NIC-NIC link bandwidth (scales capacities in the augmented graph).
    num_steps:
        Override for the tsMCF step count (defaults to diameter + 1).
    path_diversity_threshold:
        Average number of shortest paths per commodity above which the
        topology is considered "path rich" and MCF-extP is used instead of
        direct pMCF.
    max_disjoint_paths:
        Cap on the number of link-disjoint candidate paths per commodity.
    n_jobs:
        Worker processes for the decomposed MCF (and decomposed tsMCF)
        child LPs, executed through the engine's ParallelRunner.
    decompose_ts:
        If True, HOST-forwarding schedules use the decomposed time-stepped
        MCF (master + per-source child LPs, parallelizable with ``n_jobs``)
        instead of the monolithic tsMCF.  Same optimum; scales to larger N.
    """

    forwarding: ForwardingModel = ForwardingModel.NIC
    host_bandwidth: Optional[float] = None
    link_bandwidth: float = 1.0
    num_steps: Optional[int] = None
    path_diversity_threshold: float = 4.0
    max_disjoint_paths: Optional[int] = None
    n_jobs: int = 1
    decompose_ts: bool = False


def estimate_path_diversity(topology: Topology, sample: int = 64, seed: int = 0) -> float:
    """Average number of shortest paths per commodity (sampled for large N).

    Used to decide between direct pMCF (low diversity, e.g. expanders) and
    MCF-extP (high diversity, e.g. tori) in the Fig. 1 flow.
    """
    import random

    import networkx as nx

    commodities = list(topology.commodities())
    rng = random.Random(seed)
    if len(commodities) > sample:
        commodities = rng.sample(commodities, sample)
    total = 0
    for s, d in commodities:
        count = 0
        for _ in nx.all_shortest_paths(topology.graph, s, d):
            count += 1
            if count >= 64:
                break
        total += count
    return total / len(commodities)


def generate_schedule(topology: Topology,
                      request: Optional[SchedulingRequest] = None
                      ) -> Union[TimeSteppedFlow, PathSchedule]:
    """Generate an all-to-all schedule following the paper's Fig. 1 flowchart."""
    request = request or SchedulingRequest()

    if request.forwarding == ForwardingModel.HOST:
        if request.decompose_ts:
            def ts_solve(topo, **kw):
                return solve_timestepped_mcf_decomposed(
                    topo, n_jobs=request.n_jobs, **kw)
        else:
            ts_solve = solve_timestepped_mcf
        work_topology = topology
        aggregate = max(
            sum(topology.capacity(*e) for e in topology.out_edges(u)) for u in topology.nodes
        ) * request.link_bandwidth
        if request.host_bandwidth is not None and request.host_bandwidth < aggregate:
            aug = augment_host_nic_bottleneck(topology, request.host_bandwidth,
                                              request.link_bandwidth)
            work_topology = aug.topology
            flow = ts_solve(work_topology, num_steps=request.num_steps,
                            terminals=list(aug.host_nodes()))
            flow.meta["augmented"] = True
            flow.meta["num_hosts"] = aug.num_hosts
            return flow
        return ts_solve(work_topology, num_steps=request.num_steps)

    # NIC forwarding: path-based schedules.
    diversity = estimate_path_diversity(topology)
    if diversity <= request.path_diversity_threshold:
        from ..paths.disjoint import edge_disjoint_path_sets

        path_sets = edge_disjoint_path_sets(topology, max_paths=request.max_disjoint_paths)
        schedule = solve_path_mcf(topology, path_sets)
        schedule.meta["pipeline"] = "pmcf-disjoint"
        schedule.meta["path_diversity"] = diversity
        return schedule
    schedule = solve_mcf_extract_paths(topology, n_jobs=request.n_jobs)
    schedule.meta["pipeline"] = "mcf-extp"
    schedule.meta["path_diversity"] = diversity
    return schedule
