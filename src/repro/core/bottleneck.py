"""Host-to-NIC bottleneck modelling by topology augmentation (§3.2.2, Fig. 2).

When the host-to-NIC (injection) bandwidth ``B_host`` is smaller than the NIC's
aggregate link bandwidth ``d * b``, the host becomes the bottleneck and, on
fabrics without NIC forwarding, every byte a node relays must cross the
host-NIC boundary twice.  The paper models this by augmenting the topology:

* each physical node ``i`` is split into three vertices -- ``NIC_in(i)``,
  ``NIC_out(i)`` and ``Host(i)``;
* every original link ``(i, j)`` becomes ``NIC_out(i) -> NIC_in(j)`` with the
  NIC-NIC capacity ``b``;
* ``NIC_in(i) -> Host(i)`` and ``Host(i) -> NIC_out(i)`` edges carry the
  host bandwidth ``B_host``, forcing all traffic through the host.

The MCF computed between the host vertices of the augmented graph yields the
optimal throughput under the bottleneck.  On the 3x3x3 torus of §5.2 (degree 6,
b such that d*b = 150 Gbps but B_host = 100 Gbps), the augmented MCF value is
2/27 versus 1/9 without the bottleneck -- the 57% gap discussed with Fig. 3/4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import networkx as nx

from ..topology.base import Edge, Topology
from .flow import Commodity, FlowSolution

__all__ = ["AugmentedTopology", "augment_host_nic_bottleneck", "project_flow_to_hosts"]


@dataclass
class AugmentedTopology:
    """An augmented graph plus the mapping back to physical nodes.

    Attributes
    ----------
    topology:
        The augmented :class:`Topology`; hosts occupy ids ``[0, N)`` so that
        commodities between hosts keep their original ids.
    host_of:
        Maps augmented vertex id -> physical node id.
    nic_in / nic_out:
        Maps physical node id -> augmented NIC vertex ids.
    """

    topology: Topology
    num_hosts: int
    nic_in: Dict[int, int]
    nic_out: Dict[int, int]

    def host_nodes(self) -> range:
        """Vertex ids of the host vertices (the MCF endpoints)."""
        return range(self.num_hosts)


def augment_host_nic_bottleneck(topology: Topology, host_bandwidth: float,
                                link_bandwidth: float = 1.0) -> AugmentedTopology:
    """Build the Fig. 2 augmented graph for a host-injection bottleneck.

    Parameters
    ----------
    topology:
        The physical NIC-level topology (edges carry relative capacities; they
        are rescaled to ``link_bandwidth``).
    host_bandwidth:
        Host-to-NIC (and NIC-to-host) bandwidth ``B_host`` in the same units
        as ``link_bandwidth``.
    link_bandwidth:
        NIC-NIC link bandwidth ``b``; original edge capacities are multiplied
        by this value.

    Returns
    -------
    AugmentedTopology
        Hosts keep ids ``0..N-1``; NIC-in vertices are ``N..2N-1`` and NIC-out
        vertices ``2N..3N-1``.
    """
    if host_bandwidth <= 0 or link_bandwidth <= 0:
        raise ValueError("bandwidths must be positive")
    n = topology.num_nodes
    g = nx.DiGraph()
    g.add_nodes_from(range(3 * n))
    nic_in = {i: n + i for i in range(n)}
    nic_out = {i: 2 * n + i for i in range(n)}

    # Host <-> NIC edges with the bottleneck bandwidth.
    for i in range(n):
        g.add_edge(nic_in[i], i, cap=host_bandwidth)       # NIC(in)  -> Host
        g.add_edge(i, nic_out[i], cap=host_bandwidth)      # Host     -> NIC(out)

    # NIC-NIC edges follow the physical topology.
    for (u, v) in topology.edges:
        g.add_edge(nic_out[u], nic_in[v], cap=topology.capacity(u, v) * link_bandwidth)

    aug = Topology(g, name=topology.name + "-hostnic", default_cap=link_bandwidth,
                   metadata={**topology.metadata, "augmented": "host_nic_bottleneck",
                             "host_bandwidth": host_bandwidth,
                             "link_bandwidth": link_bandwidth,
                             "num_hosts": n})
    return AugmentedTopology(topology=aug, num_hosts=n, nic_in=nic_in, nic_out=nic_out)


def host_commodities(aug: AugmentedTopology):
    """Ordered (source, destination) pairs between host vertices only."""
    for s in aug.host_nodes():
        for d in aug.host_nodes():
            if s != d:
                yield (s, d)


def project_flow_to_hosts(aug: AugmentedTopology, solution: FlowSolution) -> FlowSolution:
    """Project an augmented-graph flow onto the physical NIC-level links.

    The NIC(out, u) -> NIC(in, v) edges map back to physical edges (u, v);
    host<->NIC edges are dropped (they represent injection, not fabric load).
    Only host-to-host commodities are kept.
    """
    n = aug.num_hosts
    rev_out = {v: k for k, v in aug.nic_out.items()}
    rev_in = {v: k for k, v in aug.nic_in.items()}
    physical_flows: Dict[Commodity, Dict[Edge, float]] = {}
    for (s, d), per_edge in solution.flows.items():
        if s >= n or d >= n:
            continue
        projected: Dict[Edge, float] = {}
        for (u, v), val in per_edge.items():
            if u in rev_out and v in rev_in:
                projected[(rev_out[u], rev_in[v])] = projected.get((rev_out[u], rev_in[v]), 0.0) + val
        physical_flows[(s, d)] = projected
    return FlowSolution(
        concurrent_flow=solution.concurrent_flow,
        flows=physical_flows,
        topology=_physical_view(aug),
        solve_seconds=solution.solve_seconds,
        meta={**solution.meta, "projected_from_augmented": True},
    )


def _physical_view(aug: AugmentedTopology) -> Topology:
    """Reconstruct the physical topology from the augmented representation."""
    n = aug.num_hosts
    rev_out = {v: k for k, v in aug.nic_out.items()}
    rev_in = {v: k for k, v in aug.nic_in.items()}
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for (u, v) in aug.topology.edges:
        if u in rev_out and v in rev_in:
            g.add_edge(rev_out[u], rev_in[v], cap=aug.topology.capacity(u, v))
    return Topology(g, name=aug.topology.name.replace("-hostnic", ""),
                    default_cap=aug.topology.default_cap)
