"""Core contribution: MCF-based all-to-all schedule synthesis."""

from .bottleneck import AugmentedTopology, augment_host_nic_bottleneck, project_flow_to_hosts
from .flow import (
    Commodity,
    FlowSolution,
    WeightedPath,
    conservation_violation,
    flow_to_paths,
    max_link_utilization,
    repair_conservation,
)
from .lower_bound import (
    ideal_arborescence_distance_sum,
    lower_bound_time_graph,
    lower_bound_time_regular,
    throughput_upper_bound,
    upper_bound_concurrent_flow,
)
from .mcf_decomposed import (
    DecomposedTimings,
    MasterSolution,
    solve_child_lp,
    solve_decomposed_mcf,
    solve_master_lp,
)
from .mcf_link import solve_link_mcf
from .mcf_path import PathSchedule, path_schedule_from_single_paths, solve_path_mcf
from .mcf_timestepped import TimeSteppedFlow, solve_timestepped_mcf
from .mcf_ts_decomposed import solve_timestepped_mcf_decomposed
from .path_extraction import extract_paths, solve_mcf_extract_paths
from .pipeline import ForwardingModel, SchedulingRequest, estimate_path_diversity, generate_schedule
from .solver import LPBuilder, LPSolution, SolverError, VariableIndex

__all__ = [
    "AugmentedTopology",
    "augment_host_nic_bottleneck",
    "project_flow_to_hosts",
    "Commodity",
    "FlowSolution",
    "WeightedPath",
    "conservation_violation",
    "flow_to_paths",
    "max_link_utilization",
    "repair_conservation",
    "ideal_arborescence_distance_sum",
    "lower_bound_time_graph",
    "lower_bound_time_regular",
    "throughput_upper_bound",
    "upper_bound_concurrent_flow",
    "DecomposedTimings",
    "MasterSolution",
    "solve_child_lp",
    "solve_decomposed_mcf",
    "solve_master_lp",
    "solve_link_mcf",
    "PathSchedule",
    "path_schedule_from_single_paths",
    "solve_path_mcf",
    "TimeSteppedFlow",
    "solve_timestepped_mcf",
    "solve_timestepped_mcf_decomposed",
    "extract_paths",
    "solve_mcf_extract_paths",
    "ForwardingModel",
    "SchedulingRequest",
    "estimate_path_diversity",
    "generate_schedule",
    "LPBuilder",
    "LPSolution",
    "SolverError",
    "VariableIndex",
]
