"""Link-variable based max-concurrent MCF formulation (§3.1.1, eqs. 1-5).

Maximizes the common concurrent rate ``F`` at which every one of the
``N(N-1)`` commodities (ordered node pairs) can flow, subject to link
capacities.  Variables ``f[(s,d),(u,v)]`` give the amount of commodity (s,d)
routed on each directed link.  Flow conservation is written as an inequality
(outflow <= inflow at every intermediate node) and the demand constraint is
only enforced at the sink, exactly as in the paper; the optional
post-processing step (:func:`repro.core.flow.repair_conservation`) restores
exact conservation for schedule generation.

This formulation has ``O(N^2 * E) = O(k N^3)`` variables for a k-regular graph
and is the scalability bottleneck the decomposition of §3.1.2 addresses.

The LP is assembled by the registered ``"mcf-link"`` formulation and solved
through :func:`repro.engine.solve`, which adds content-addressed caching and
backend selection on top.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..constants import FLOW_TOL
from ..engine import MCFProblem, register_formulation
from ..engine import solve as engine_solve
from ..topology.base import Edge, Topology
from .flow import Commodity, FlowSolution, repair_conservation
from .solver import LPBuilder

__all__ = ["solve_link_mcf", "terminal_commodities"]


def _f_key(c, e):
    """LP variable key of commodity ``c`` on edge ``e`` (shared by the
    assembler and the result extractor so they can never drift apart)."""
    return ("f", c, e)


def terminal_commodities(topology: Topology,
                         terminals: Optional[Sequence[int]] = None) -> List[Commodity]:
    """Ordered (source, destination) pairs restricted to a terminal set.

    ``terminals`` defaults to all nodes (the plain all-to-all commodity set).
    On host-NIC augmented topologies (§3.2.2) only the host vertices exchange
    data, so the commodity set is restricted to them while NIC vertices act as
    pure relays.
    """
    if terminals is None:
        return list(topology.commodities())
    terminals = sorted(set(int(t) for t in terminals))
    for t in terminals:
        if not (0 <= t < topology.num_nodes):
            raise ValueError(f"terminal {t} outside node range")
    if len(terminals) < 2:
        raise ValueError("need at least two terminals")
    return [(s, d) for s in terminals for d in terminals if s != d]


@register_formulation("mcf-link")
def build_link_mcf(problem: MCFProblem) -> LPBuilder:
    """Assemble the link-based MCF LP (eqs. 1-5) from a problem spec."""
    topology = problem.topology
    terminals = problem.params.get("terminals")
    demand = problem.params.get("demand")
    commodities = terminal_commodities(topology, terminals)
    edges = topology.edges
    caps = topology.capacities()
    if demand is None:
        demand = {c: 1.0 for c in commodities}

    lp = LPBuilder()
    lp.add_variable("F", lb=0.0, objective=1.0)
    for c in commodities:
        for e in edges:
            lp.add_variable(_f_key(c, e), lb=0.0)

    # (2) capacity per link.
    for e in edges:
        lp.add_le([(_f_key(c, e), 1.0) for c in commodities], caps[e])

    # (3) conservation (inequality form) at intermediate nodes,
    # (4) demand at the sink.  The sink never re-emits its own commodity,
    # otherwise circulation through the sink could satisfy (4) without
    # delivering anything (the gross-inflow exploit the paper's
    # post-processing step also guards against).
    out_edges = {u: topology.out_edges(u) for u in topology.nodes}
    in_edges = {u: topology.in_edges(u) for u in topology.nodes}
    for s, d in commodities:
        for u in topology.nodes:
            if u == s or u == d:
                continue
            terms = [(_f_key((s, d), e), 1.0) for e in out_edges[u]]
            terms += [(_f_key((s, d), e), -1.0) for e in in_edges[u]]
            lp.add_le(terms, 0.0)
        sink_terms = [(_f_key((s, d), e), -1.0) for e in in_edges[d]]
        sink_terms.append(("F", demand[(s, d)]))
        lp.add_le(sink_terms, 0.0)
        for e in out_edges[d]:
            lp.add_le([(_f_key((s, d), e), 1.0)], 0.0)
    return lp


def solve_link_mcf(topology: Topology, repair: bool = True,
                   demand: Optional[Dict[Commodity, float]] = None,
                   terminals: Optional[Sequence[int]] = None) -> FlowSolution:
    """Solve the link-based max-concurrent MCF for all-to-all traffic.

    Parameters
    ----------
    topology:
        Direct-connect topology with link capacities.
    repair:
        If True (default), post-process the returned flows so that every
        commodity satisfies exact conservation and delivers exactly ``F``.
    demand:
        Optional per-commodity relative demand (defaults to 1 for every
        ordered pair, i.e. the all-to-all personalized exchange).  A commodity
        with demand ``w`` must receive ``w * F`` flow at its destination.
    terminals:
        Optional subset of nodes that exchange data (all-to-all among the
        terminals); other nodes only relay.  Used for host-NIC augmented
        topologies where only host vertices are endpoints.

    Returns
    -------
    FlowSolution
        The concurrent flow value ``F`` and per-commodity link flows.
    """
    if not topology.is_strongly_connected():
        raise ValueError("MCF requires a strongly connected topology")

    start = time.perf_counter()
    commodities = terminal_commodities(topology, terminals)
    params: Dict[str, object] = {}
    if demand is not None:
        params["demand"] = demand
    if terminals is not None:
        params["terminals"] = sorted(set(int(t) for t in terminals))
    problem = MCFProblem("mcf-link", topology, params=params, maximize=True)
    solution = engine_solve(problem)
    elapsed = time.perf_counter() - start

    edges = topology.edges
    flows: Dict[Commodity, Dict[Edge, float]] = {}
    for c in commodities:
        per_edge = {}
        for e in edges:
            val = solution.value(_f_key(c, e))
            if val > FLOW_TOL:
                per_edge[e] = val
        flows[c] = per_edge

    result = FlowSolution(
        concurrent_flow=float(solution.value("F")),
        flows=flows,
        topology=topology,
        solve_seconds=elapsed,
        meta={"method": "mcf-link",
              "num_variables": solution.info.get("num_variables"),
              "num_constraints": solution.info.get("num_constraints"),
              "engine": dict(solution.info)},
    )
    if repair:
        result = repair_conservation(result)
        result.solve_seconds = elapsed
    return result
