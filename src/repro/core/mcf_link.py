"""Link-variable based max-concurrent MCF formulation (§3.1.1, eqs. 1-5).

Maximizes the common concurrent rate ``F`` at which every one of the
``N(N-1)`` commodities (ordered node pairs) can flow, subject to link
capacities.  Variables ``f[(s,d),(u,v)]`` give the amount of commodity (s,d)
routed on each directed link.  Flow conservation is written as an inequality
(outflow <= inflow at every intermediate node) and the demand constraint is
only enforced at the sink, exactly as in the paper; the optional
post-processing step (:func:`repro.core.flow.repair_conservation`) restores
exact conservation for schedule generation.

This formulation has ``O(N^2 * E) = O(k N^3)`` variables for a k-regular graph
and is the scalability bottleneck the decomposition of §3.1.2 addresses.

The LP is assembled by the registered ``"mcf-link"`` formulation and solved
through :func:`repro.engine.solve`, which adds content-addressed caching and
backend selection on top.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..engine import MCFProblem, register_formulation
from ..engine import solve as engine_solve
from ..topology.base import Topology
from .flow import Commodity, FlowSolution, flows_from_array, repair_conservation
from .solver import LPBuilder

__all__ = ["solve_link_mcf", "terminal_commodities", "topology_arrays"]


def topology_arrays(topology: Topology):
    """Edge tail / head / capacity ndarrays in the deterministic edge order.

    Shared by all vectorized MCF assemblers: the link structure enters the
    COO constraint triplets through these arrays instead of per-edge Python
    loops.
    """
    edges = topology.edges
    caps = topology.capacities()
    tails = np.fromiter((e[0] for e in edges), dtype=np.int64, count=len(edges))
    heads = np.fromiter((e[1] for e in edges), dtype=np.int64, count=len(edges))
    cap_arr = np.fromiter((caps[e] for e in edges), dtype=float, count=len(edges))
    return edges, tails, heads, cap_arr


def terminal_commodities(topology: Topology,
                         terminals: Optional[Sequence[int]] = None) -> List[Commodity]:
    """Ordered (source, destination) pairs restricted to a terminal set.

    ``terminals`` defaults to all nodes (the plain all-to-all commodity set).
    On host-NIC augmented topologies (§3.2.2) only the host vertices exchange
    data, so the commodity set is restricted to them while NIC vertices act as
    pure relays.
    """
    if terminals is None:
        return list(topology.commodities())
    terminals = sorted(set(int(t) for t in terminals))
    for t in terminals:
        if not (0 <= t < topology.num_nodes):
            raise ValueError(f"terminal {t} outside node range")
    if len(terminals) < 2:
        raise ValueError("need at least two terminals")
    return [(s, d) for s in terminals for d in terminals if s != d]


@register_formulation("mcf-link")
def build_link_mcf(problem: MCFProblem) -> LPBuilder:
    """Assemble the link-based MCF LP (eqs. 1-5) with block/COO numpy ops.

    The O(N^2 * E) flow variables live in one ``"f"`` block of shape
    (commodities, edges); every constraint family (capacity, conservation,
    sink demand, sink no-re-emit) is built as one COO triplet batch over the
    full (commodity, edge) grid instead of per-row Python loops.
    """
    topology = problem.topology
    terminals = problem.params.get("terminals")
    demand = problem.params.get("demand")
    commodities = terminal_commodities(topology, terminals)
    edges, tails, heads, cap_arr = topology_arrays(topology)
    num_nodes = topology.num_nodes
    C, E = len(commodities), len(edges)
    if demand is None:
        demand_arr = np.ones(C)
    else:
        demand_arr = np.fromiter((demand[c] for c in commodities),
                                 dtype=float, count=C)

    lp = LPBuilder()
    f_col = lp.add_variable("F", lb=0.0, objective=1.0)
    f = lp.add_variable_block("f", (C, E), lb=0.0)

    # (2) capacity per link: sum over commodities.
    lp.add_le_block(rows=np.repeat(np.arange(E), C), cols=f.T.ravel(),
                    vals=np.ones(C * E), rhs=cap_arr)

    # The remaining families are masks over the full (commodity, edge) grid:
    # an edge contributes +1 at its tail's row and -1 at its head's row.
    c_ids = np.repeat(np.arange(C), E)
    e_ids = np.tile(np.arange(E), C)
    var = f.ravel()
    tail, head = tails[e_ids], heads[e_ids]
    s_of = np.fromiter((c[0] for c in commodities), dtype=np.int64,
                       count=C)[c_ids]
    d_of = np.fromiter((c[1] for c in commodities), dtype=np.int64,
                       count=C)[c_ids]

    # (3) conservation (inequality form) at intermediate nodes: rows are the
    # used (commodity, node) pairs, compressed to consecutive ids.
    plus = (tail != s_of) & (tail != d_of)
    minus = (head != s_of) & (head != d_of)
    lp.add_compressed_block(
        [c_ids[plus] * num_nodes + tail[plus],
         c_ids[minus] * num_nodes + head[minus]],
        [var[plus], var[minus]],
        [np.ones(int(plus.sum())), -np.ones(int(minus.sum()))])

    # (4) demand at the sink: inflow at d covers demand * F.
    sink = head == d_of
    lp.add_le_block(np.concatenate([c_ids[sink], np.arange(C)]),
                    np.concatenate([var[sink], np.full(C, f_col)]),
                    np.concatenate([-np.ones(int(sink.sum())), demand_arr]),
                    np.zeros(C))

    # The sink never re-emits its own commodity, otherwise circulation
    # through the sink could satisfy (4) without delivering anything (the
    # gross-inflow exploit the paper's post-processing step also guards
    # against).
    reemit = tail == d_of
    k = int(reemit.sum())
    lp.add_le_block(np.arange(k), var[reemit], np.ones(k), np.zeros(k))
    return lp


def solve_link_mcf(topology: Topology, repair: bool = True,
                   demand: Optional[Dict[Commodity, float]] = None,
                   terminals: Optional[Sequence[int]] = None) -> FlowSolution:
    """Solve the link-based max-concurrent MCF for all-to-all traffic.

    Parameters
    ----------
    topology:
        Direct-connect topology with link capacities.
    repair:
        If True (default), post-process the returned flows so that every
        commodity satisfies exact conservation and delivers exactly ``F``.
    demand:
        Optional per-commodity relative demand (defaults to 1 for every
        ordered pair, i.e. the all-to-all personalized exchange).  A commodity
        with demand ``w`` must receive ``w * F`` flow at its destination.
    terminals:
        Optional subset of nodes that exchange data (all-to-all among the
        terminals); other nodes only relay.  Used for host-NIC augmented
        topologies where only host vertices are endpoints.

    Returns
    -------
    FlowSolution
        The concurrent flow value ``F`` and per-commodity link flows.
    """
    if not topology.is_strongly_connected():
        raise ValueError("MCF requires a strongly connected topology")

    start = time.perf_counter()
    commodities = terminal_commodities(topology, terminals)
    params: Dict[str, object] = {}
    if demand is not None:
        params["demand"] = demand
    if terminals is not None:
        params["terminals"] = sorted(set(int(t) for t in terminals))
    problem = MCFProblem("mcf-link", topology, params=params, maximize=True)
    solution = engine_solve(problem)
    elapsed = time.perf_counter() - start

    flows = flows_from_array(solution.block("f"), commodities, topology.edges)

    result = FlowSolution(
        concurrent_flow=float(solution.value("F")),
        flows=flows,
        topology=topology,
        solve_seconds=elapsed,
        meta={"method": "mcf-link",
              "num_variables": solution.info.get("num_variables"),
              "num_constraints": solution.info.get("num_constraints"),
              "engine": dict(solution.info)},
    )
    if repair:
        result = repair_conservation(result)
        result.solve_seconds = elapsed
    return result
