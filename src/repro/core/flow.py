"""Flow solution data structures and flow hygiene utilities.

The LP formulations in §3.1 use an *inequality* form of flow conservation
(eq. 3) for solver speed, which means the returned flow for a commodity may
carry extra flow near the source or contain circulation that never reaches the
destination.  The paper applies a post-processing step to restore exact
conservation; :func:`repair_conservation` implements it by decomposing each
commodity's flow into source->destination paths (dropping excess flow and
cycles) and re-accumulating link flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..constants import FLOW_TOL
from ..topology.base import Edge, Topology

Commodity = Tuple[int, int]

__all__ = ["Commodity", "FlowSolution", "WeightedPath", "flow_to_paths",
           "flows_from_array", "repair_conservation", "max_link_utilization",
           "conservation_violation"]


def flows_from_array(values, commodities: Sequence[Commodity],
                     edges: Sequence[Edge],
                     tol: float = FLOW_TOL) -> Dict[Commodity, Dict[Edge, float]]:
    """Convert a ``(num_commodities, num_edges)`` value array into sparse
    per-commodity link-flow dicts.

    This is the extraction path for block-assembled MCF solutions: the solver
    hands back one flat ndarray per variable block, the above-``tol`` entries
    are located with a single vectorized comparison, and Python dicts are
    built for those entries only (MCF solutions are overwhelmingly zeros).
    """
    arr = np.asarray(values, dtype=float)
    if arr.shape != (len(commodities), len(edges)):
        raise ValueError(f"flow array shape {arr.shape} does not match "
                         f"{len(commodities)} commodities x {len(edges)} edges")
    flows: Dict[Commodity, Dict[Edge, float]] = {c: {} for c in commodities}
    ci, ei = np.nonzero(arr > tol)
    vals = arr[ci, ei]
    for k in range(len(ci)):
        flows[commodities[ci[k]]][edges[ei[k]]] = float(vals[k])
    return flows


@dataclass(frozen=True)
class WeightedPath:
    """A source->destination path carrying a fractional flow ``weight``."""

    nodes: Tuple[int, ...]
    weight: float

    @property
    def source(self) -> int:
        return self.nodes[0]

    @property
    def destination(self) -> int:
        return self.nodes[-1]

    @property
    def edges(self) -> Tuple[Edge, ...]:
        return tuple(zip(self.nodes[:-1], self.nodes[1:]))

    def __len__(self) -> int:
        return len(self.nodes) - 1


@dataclass
class FlowSolution:
    """Per-commodity link flows plus the concurrent flow value ``F``.

    ``flows[(s, d)][(u, v)]`` is the amount of commodity ``(s, d)`` routed over
    directed link ``(u, v)`` per unit of concurrent demand.
    """

    concurrent_flow: float
    flows: Dict[Commodity, Dict[Edge, float]]
    topology: Topology
    solve_seconds: float = 0.0
    meta: Dict[str, object] = field(default_factory=dict)

    def commodity_flow(self, s: int, d: int) -> Dict[Edge, float]:
        """Link flows of commodity ``(s, d)`` (empty dict if absent)."""
        return self.flows.get((s, d), {})

    def link_loads(self) -> Dict[Edge, float]:
        """Total flow per link, summed over commodities."""
        loads: Dict[Edge, float] = {e: 0.0 for e in self.topology.edges}
        for per_edge in self.flows.values():
            for e, val in per_edge.items():
                loads[e] = loads.get(e, 0.0) + val
        return loads

    def delivered(self, s: int, d: int) -> float:
        """Flow of commodity (s, d) arriving at d (net of flow leaving d)."""
        arriving = sum(v for (u, w), v in self.commodity_flow(s, d).items() if w == d)
        leaving = sum(v for (u, w), v in self.commodity_flow(s, d).items() if u == d)
        return arriving - leaving

    def all_to_all_time(self) -> float:
        """Normalized all-to-all time = 1 / F (equals the maximum link load
        for an optimal solution with unit capacities)."""
        if self.concurrent_flow <= 0:
            return float("inf")
        return 1.0 / self.concurrent_flow

    def min_delivered(self) -> float:
        """Minimum delivered flow over all commodities (should be >= F)."""
        return min(self.delivered(s, d) for s, d in self.topology.commodities())


def conservation_violation(flow: Mapping[Edge, float], source: int, destination: int) -> float:
    """Maximum absolute conservation violation at intermediate nodes.

    For exact conservation the net flow (in minus out) must be zero at every
    node other than the source and destination.
    """
    net: Dict[int, float] = {}
    for (u, v), val in flow.items():
        net[u] = net.get(u, 0.0) - val
        net[v] = net.get(v, 0.0) + val
    worst = 0.0
    for node, imbalance in net.items():
        if node in (source, destination):
            continue
        worst = max(worst, abs(imbalance))
    return worst


def flow_to_paths(flow: Mapping[Edge, float], source: int, destination: int,
                  tol: float = FLOW_TOL) -> List[WeightedPath]:
    """Decompose a single-commodity link flow into weighted s->d paths.

    Uses iterative widest-path extraction on the flow-induced subgraph: find
    the s->d path whose bottleneck flow is largest, subtract it, and repeat.
    Excess flow (circulations, over-injection near the source allowed by the
    inequality-form conservation constraint) is simply never extracted, so the
    output is a clean path decomposition of the *delivered* flow.
    """
    residual: Dict[Edge, float] = {e: v for e, v in flow.items() if v > tol}
    paths: List[WeightedPath] = []
    # Guard: each iteration removes at least one edge from the residual,
    # so the loop terminates after at most |E| iterations.
    for _ in range(len(residual) + 1):
        path = _widest_path(residual, source, destination, tol)
        if path is None:
            break
        bottleneck = min(residual[e] for e in zip(path[:-1], path[1:]))
        for e in zip(path[:-1], path[1:]):
            residual[e] -= bottleneck
            if residual[e] <= tol:
                del residual[e]
        paths.append(WeightedPath(nodes=tuple(path), weight=bottleneck))
    return paths


def _widest_path(capacity: Mapping[Edge, float], source: int, destination: int,
                 tol: float) -> Optional[List[int]]:
    """Max-bottleneck (widest) path via a Dijkstra variant; None if no path."""
    import heapq

    adj: Dict[int, List[Tuple[int, float]]] = {}
    for (u, v), c in capacity.items():
        if c > tol:
            adj.setdefault(u, []).append((v, c))
    best: Dict[int, float] = {source: float("inf")}
    parent: Dict[int, int] = {}
    heap = [(-float("inf"), source)]
    visited = set()
    while heap:
        neg_width, u = heapq.heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        if u == destination:
            break
        for v, c in adj.get(u, []):
            width = min(-neg_width, c)
            if width > best.get(v, 0.0) + tol:
                best[v] = width
                parent[v] = u
                heapq.heappush(heap, (-width, v))
    if destination not in visited and destination not in parent:
        return None
    if destination not in best:
        return None
    # Reconstruct.
    path = [destination]
    while path[-1] != source:
        if path[-1] not in parent:
            return None
        path.append(parent[path[-1]])
    path.reverse()
    return path


def repair_conservation(solution: FlowSolution, tol: float = 1e-7) -> FlowSolution:
    """Return a flow solution with exact conservation per commodity.

    Each commodity's flow is decomposed into s->d paths whose total weight is
    clipped to the concurrent flow value ``F`` (extra delivered flow beyond F
    is harmless but unnecessary and is removed for clean schedules), and the
    link flows are rebuilt from the path decomposition.  The concurrent flow
    value is unchanged.
    """
    new_flows: Dict[Commodity, Dict[Edge, float]] = {}
    target = solution.concurrent_flow
    for (s, d), per_edge in solution.flows.items():
        paths = flow_to_paths(per_edge, s, d)
        rebuilt: Dict[Edge, float] = {}
        remaining = target
        for p in sorted(paths, key=lambda p: -p.weight):
            if remaining <= tol:
                break
            take = min(p.weight, remaining)
            for e in p.edges:
                rebuilt[e] = rebuilt.get(e, 0.0) + take
            remaining -= take
        new_flows[(s, d)] = rebuilt
    return FlowSolution(
        concurrent_flow=solution.concurrent_flow,
        flows=new_flows,
        topology=solution.topology,
        solve_seconds=solution.solve_seconds,
        meta={**solution.meta, "conservation_repaired": True},
    )


def max_link_utilization(solution: FlowSolution) -> float:
    """Maximum of (link load / link capacity) over all links."""
    caps = solution.topology.capacities()
    loads = solution.link_loads()
    worst = 0.0
    for e, load in loads.items():
        cap = caps.get(e, 0.0)
        if cap > 0:
            worst = max(worst, load / cap)
    return worst
