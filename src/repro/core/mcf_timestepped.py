"""Time-stepped MCF (tsMCF) formulation for store-and-forward fabrics (§3.1.3).

ML-accelerator fabrics move finite chunks in synchronized, fixed-length time
steps (store-and-forward, no NIC routing).  tsMCF extends the MCF to the
temporal domain: flows are computed on a time-expanded graph with ``l_max``
communication steps.  The LP (eqs. 15-20) minimizes the per-step maximum link
utilization summed over steps, subject to:

* (16) the per-step utilization ``U_t`` upper-bounds every link's load;
* (17) a node can only forward data it has already received (cumulative
  inequality) -- this is the store-and-forward causality constraint;
* (18) intermediate nodes retain nothing at the end;
* (19) each commodity injects and delivers exactly one shard (normalized to 1).

The total ``sum_t U_t`` of an optimal solution equals the optimal all-to-all
time ``1/F`` of the steady-state MCF whenever ``l_max`` is large enough, so the
time-stepped schedule loses nothing asymptotically while being executable in
synchronized steps.

The LP is assembled by the registered ``"tsmcf"`` formulation and solved
through :func:`repro.engine.solve` (cached, pluggable backends).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..constants import FLOW_TOL
from ..engine import MCFProblem, register_formulation
from ..engine import solve as engine_solve
from ..topology.base import Edge, Topology
from .flow import Commodity
from .solver import LPBuilder

__all__ = ["TimeSteppedFlow", "solve_timestepped_mcf"]


def _f_key(c, e, t):
    """LP variable key: flow of commodity ``c`` on edge ``e`` at step ``t``."""
    return ("f", c, e, t)


def _u_key(t):
    """LP variable key: max link utilization of step ``t``."""
    return ("U", t)


@dataclass
class TimeSteppedFlow:
    """Solution of the time-stepped MCF.

    ``flows[(s, d)][(u, v, t)]`` is the fraction of shard (s, d) that node u
    sends to node v during communication step ``t`` (1-based).
    """

    num_steps: int
    flows: Dict[Commodity, Dict[Tuple[int, int, int], float]]
    step_utilizations: List[float]
    topology: Topology
    solve_seconds: float = 0.0
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def total_utilization(self) -> float:
        """Sum over steps of the per-step max link utilization (LP objective).

        This equals the normalized all-to-all completion time in units of
        (shard bytes / link bandwidth); its reciprocal upper-bounds the
        achievable concurrent flow value.
        """
        return float(sum(self.step_utilizations))

    def equivalent_concurrent_flow(self) -> float:
        """Concurrent-flow value implied by the schedule (1 / total utilization)."""
        tot = self.total_utilization
        return float("inf") if tot <= 0 else 1.0 / tot

    def step_flows(self, t: int) -> Dict[Commodity, Dict[Edge, float]]:
        """Per-commodity link flows during step ``t`` (1-based)."""
        out: Dict[Commodity, Dict[Edge, float]] = {}
        for c, per in self.flows.items():
            step: Dict[Edge, float] = {}
            for (u, v, tt), val in per.items():
                if tt == t and val > FLOW_TOL:
                    step[(u, v)] = step.get((u, v), 0.0) + val
            if step:
                out[c] = step
        return out

    def delivered_fraction(self, s: int, d: int) -> float:
        """Total fraction of shard (s, d) delivered to d over all steps."""
        per = self.flows.get((s, d), {})
        arrive = sum(v for (u, w, t), v in per.items() if w == d)
        leave = sum(v for (u, w, t), v in per.items() if u == d)
        return arrive - leave

    def link_load(self, t: int) -> Dict[Edge, float]:
        """Aggregate load per link during step ``t``."""
        loads: Dict[Edge, float] = {}
        for c, per in self.flows.items():
            for (u, v, tt), val in per.items():
                if tt == t:
                    loads[(u, v)] = loads.get((u, v), 0.0) + val
        return loads


@register_formulation("tsmcf")
def build_timestepped_mcf(problem: MCFProblem) -> LPBuilder:
    """Assemble the time-stepped MCF LP (eqs. 15-20) from a problem spec."""
    from .mcf_link import terminal_commodities

    topology = problem.topology
    num_steps = problem.params["num_steps"]
    terminals = problem.params.get("terminals")
    commodities = terminal_commodities(topology, terminals)
    edges = topology.edges
    caps = topology.capacities()
    nodes = topology.nodes
    steps = list(range(1, num_steps + 1))

    lp = LPBuilder()
    for t in steps:
        lp.add_variable(_u_key(t), lb=0.0, objective=1.0)
    for c in commodities:
        for e in edges:
            for t in steps:
                lp.add_variable(_f_key(c, e, t), lb=0.0, ub=1.0)

    # (16): per-step utilization bound, scaled by capacity so that a link of
    # capacity cap can carry cap * U_t per step.
    for e in edges:
        for t in steps:
            terms = [(_f_key(c, e, t), 1.0) for c in commodities]
            terms.append((_u_key(t), -caps[e]))
            lp.add_le(terms, 0.0)

    out_edges = {u: topology.out_edges(u) for u in nodes}
    in_edges = {u: topology.in_edges(u) for u in nodes}

    for s, d in commodities:
        c = (s, d)
        for u in nodes:
            if u == s or u == d:
                continue
            # (17): cumulative store-and-forward causality for t > 1, plus the
            # t = 1 special case (nothing received before step 1, so nothing
            # can be forwarded in step 1).
            for t in steps:
                terms = [(_f_key(c, e, tp), 1.0) for e in out_edges[u] for tp in steps if tp <= t]
                terms += [(_f_key(c, e, tpp), -1.0) for e in in_edges[u] for tpp in steps if tpp < t]
                lp.add_le(terms, 0.0)
            # (18): nothing retained at intermediate nodes at the end.
            eq_terms = [(_f_key(c, e, t), 1.0) for e in out_edges[u] for t in steps]
            eq_terms += [(_f_key(c, e, t), -1.0) for e in in_edges[u] for t in steps]
            lp.add_eq(eq_terms, 0.0)
        # (19): source sends exactly 1; destination receives exactly 1.
        lp.add_eq([(_f_key(c, e, t), 1.0) for e in out_edges[s] for t in steps], 1.0)
        lp.add_eq([(_f_key(c, e, t), 1.0) for e in in_edges[d] for t in steps], 1.0)
        # Destination never re-emits and source never re-absorbs its own shard.
        for t in steps:
            for e in out_edges[d]:
                lp.add_le([(_f_key(c, e, t), 1.0)], 0.0)
            for e in in_edges[s]:
                lp.add_le([(_f_key(c, e, t), 1.0)], 0.0)
    return lp


def solve_timestepped_mcf(topology: Topology, num_steps: Optional[int] = None,
                          extra_steps: int = 1,
                          terminals: Optional[List[int]] = None) -> TimeSteppedFlow:
    """Solve the time-stepped MCF LP (eqs. 15-20).

    Parameters
    ----------
    topology:
        Direct-connect topology.  Link capacities scale the per-step
        utilization contribution of each link (a link with capacity 2 can move
        twice as much per unit of step time).
    num_steps:
        Number of communication steps ``l_max``.  Must be at least the
        diameter; defaults to ``diameter + extra_steps``.
    extra_steps:
        Slack steps added to the diameter when ``num_steps`` is None.  One or
        two extra steps are usually enough for the LP to reach the
        steady-state optimum ``1/F``.
    terminals:
        Optional subset of nodes that exchange data (all-to-all among the
        terminals); other nodes relay only.  Used on host-NIC augmented
        topologies where only host vertices are endpoints.
    """
    from .mcf_link import terminal_commodities

    if not topology.is_strongly_connected():
        raise ValueError("tsMCF requires a strongly connected topology")
    diam = topology.diameter()
    if num_steps is None:
        num_steps = diam + extra_steps
    if num_steps < diam:
        raise ValueError(f"num_steps={num_steps} below topology diameter {diam}")

    start = time.perf_counter()
    commodities = terminal_commodities(topology, terminals)
    edges = topology.edges
    steps = list(range(1, num_steps + 1))

    params: Dict[str, object] = {"num_steps": int(num_steps)}
    if terminals is not None:
        params["terminals"] = sorted(set(int(t) for t in terminals))
    problem = MCFProblem("tsmcf", topology, params=params, maximize=False)
    solution = engine_solve(problem)
    elapsed = time.perf_counter() - start

    flows: Dict[Commodity, Dict[Tuple[int, int, int], float]] = {}
    for c in commodities:
        per: Dict[Tuple[int, int, int], float] = {}
        for e in edges:
            for t in steps:
                val = solution.value(_f_key(c, e, t))
                if val > FLOW_TOL:
                    per[(e[0], e[1], t)] = val
        flows[c] = per
    utilizations = [max(solution.value(_u_key(t)), 0.0) for t in steps]

    return TimeSteppedFlow(
        num_steps=num_steps,
        flows=flows,
        step_utilizations=utilizations,
        topology=topology,
        solve_seconds=elapsed,
        meta={"method": "tsmcf",
              "num_variables": solution.info.get("num_variables"),
              "num_constraints": solution.info.get("num_constraints"),
              "diameter": diam,
              "terminals": None if terminals is None else sorted(set(terminals)),
              "engine": dict(solution.info)},
    )
