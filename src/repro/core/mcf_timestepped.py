"""Time-stepped MCF (tsMCF) formulation for store-and-forward fabrics (§3.1.3).

ML-accelerator fabrics move finite chunks in synchronized, fixed-length time
steps (store-and-forward, no NIC routing).  tsMCF extends the MCF to the
temporal domain: flows are computed on a time-expanded graph with ``l_max``
communication steps.  The LP (eqs. 15-20) minimizes the per-step maximum link
utilization summed over steps, subject to:

* (16) the per-step utilization ``U_t`` upper-bounds every link's load;
* (17) a node can only forward data it has already received (cumulative
  inequality) -- this is the store-and-forward causality constraint;
* (18) intermediate nodes retain nothing at the end;
* (19) each commodity injects and delivers exactly one shard (normalized to 1).

The total ``sum_t U_t`` of an optimal solution equals the optimal all-to-all
time ``1/F`` of the steady-state MCF whenever ``l_max`` is large enough, so the
time-stepped schedule loses nothing asymptotically while being executable in
synchronized steps.

The LP is assembled by the registered ``"tsmcf"`` formulation and solved
through :func:`repro.engine.solve` (cached, pluggable backends).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..constants import FLOW_TOL
from ..engine import MCFProblem, register_formulation
from ..engine import solve as engine_solve
from ..topology.base import Edge, Topology
from .flow import Commodity
from .solver import LPBuilder

__all__ = ["TimeSteppedFlow", "solve_timestepped_mcf"]


@dataclass
class TimeSteppedFlow:
    """Solution of the time-stepped MCF.

    ``flows[(s, d)][(u, v, t)]`` is the fraction of shard (s, d) that node u
    sends to node v during communication step ``t`` (1-based).
    """

    num_steps: int
    flows: Dict[Commodity, Dict[Tuple[int, int, int], float]]
    step_utilizations: List[float]
    topology: Topology
    solve_seconds: float = 0.0
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def total_utilization(self) -> float:
        """Sum over steps of the per-step max link utilization (LP objective).

        This equals the normalized all-to-all completion time in units of
        (shard bytes / link bandwidth); its reciprocal upper-bounds the
        achievable concurrent flow value.
        """
        return float(sum(self.step_utilizations))

    def equivalent_concurrent_flow(self) -> float:
        """Concurrent-flow value implied by the schedule (1 / total utilization)."""
        tot = self.total_utilization
        return float("inf") if tot <= 0 else 1.0 / tot

    def step_flows(self, t: int) -> Dict[Commodity, Dict[Edge, float]]:
        """Per-commodity link flows during step ``t`` (1-based)."""
        out: Dict[Commodity, Dict[Edge, float]] = {}
        for c, per in self.flows.items():
            step: Dict[Edge, float] = {}
            for (u, v, tt), val in per.items():
                if tt == t and val > FLOW_TOL:
                    step[(u, v)] = step.get((u, v), 0.0) + val
            if step:
                out[c] = step
        return out

    def delivered_fraction(self, s: int, d: int) -> float:
        """Total fraction of shard (s, d) delivered to d over all steps."""
        per = self.flows.get((s, d), {})
        arrive = sum(v for (u, w, t), v in per.items() if w == d)
        leave = sum(v for (u, w, t), v in per.items() if u == d)
        return arrive - leave

    def link_load(self, t: int) -> Dict[Edge, float]:
        """Aggregate load per link during step ``t``."""
        loads: Dict[Edge, float] = {}
        for c, per in self.flows.items():
            for (u, v, tt), val in per.items():
                if tt == t:
                    loads[(u, v)] = loads.get((u, v), 0.0) + val
        return loads


@register_formulation("tsmcf")
def build_timestepped_mcf(problem: MCFProblem) -> LPBuilder:
    """Assemble the time-stepped MCF LP (eqs. 15-20) with block/COO ops.

    Variables live in two blocks — ``"U"`` (per-step utilizations) and
    ``"f"`` of shape (commodities, edges, steps) — and every constraint
    family is built as COO triplet batches over the (c, e, t) grid.  Only the
    causality family (17) loops in Python, over the small step count.
    """
    from .mcf_link import terminal_commodities, topology_arrays

    topology = problem.topology
    num_steps = problem.params["num_steps"]
    terminals = problem.params.get("terminals")
    commodities = terminal_commodities(topology, terminals)
    edges, tails, heads, cap_arr = topology_arrays(topology)
    num_nodes = topology.num_nodes
    C, E, T = len(commodities), len(edges), int(num_steps)

    lp = LPBuilder()
    u_vars = lp.add_variable_block("U", (T,), lb=0.0, objective=1.0)
    f = lp.add_variable_block("f", (C, E, T), lb=0.0, ub=1.0)

    # Index grids over the (commodity, edge, step) variable space.
    c_ids = np.repeat(np.arange(C), E * T)
    e_ids = np.tile(np.repeat(np.arange(E), T), C)
    t_ids = np.tile(np.arange(T), C * E)          # 0-based step index
    var = f.ravel()
    tail, head = tails[e_ids], heads[e_ids]
    s_of = np.fromiter((c[0] for c in commodities), dtype=np.int64,
                       count=C)[c_ids]
    d_of = np.fromiter((c[1] for c in commodities), dtype=np.int64,
                       count=C)[c_ids]

    # (16): per-step utilization bound, scaled by capacity so that a link of
    # capacity cap can carry cap * U_t per step.  One row per (edge, step).
    lp.add_le_block(
        rows=np.concatenate([e_ids * T + t_ids, np.arange(E * T)]),
        cols=np.concatenate([var, np.tile(u_vars, E)]),
        vals=np.concatenate([np.ones(C * E * T), -np.repeat(cap_arr, T)]),
        rhs=np.zeros(E * T))

    # (17): cumulative store-and-forward causality at intermediate nodes for
    # every step t (the t = 1 case degenerates to "nothing can be forwarded
    # in step 1").  Variable (c, e, tp) with tail u enters row (c, u, t) for
    # every t >= tp; inflow (head u) enters rows with t > tp.
    plus_valid = (tail != s_of) & (tail != d_of)
    minus_valid = (head != s_of) & (head != d_of)
    key_parts, col_parts, val_parts = [], [], []
    for t in range(T):
        plus = plus_valid & (t_ids <= t)
        minus = minus_valid & (t_ids < t)
        key_parts.append((c_ids[plus] * num_nodes + tail[plus]) * T + t)
        col_parts.append(var[plus])
        val_parts.append(np.ones(int(plus.sum())))
        key_parts.append((c_ids[minus] * num_nodes + head[minus]) * T + t)
        col_parts.append(var[minus])
        val_parts.append(-np.ones(int(minus.sum())))
    lp.add_compressed_block(key_parts, col_parts, val_parts)

    # (18): nothing retained at intermediate nodes at the end.
    lp.add_compressed_block(
        [c_ids[plus_valid] * num_nodes + tail[plus_valid],
         c_ids[minus_valid] * num_nodes + head[minus_valid]],
        [var[plus_valid], var[minus_valid]],
        [np.ones(int(plus_valid.sum())), -np.ones(int(minus_valid.sum()))],
        equality=True)

    # (19): source sends exactly 1; destination receives exactly 1.
    emit = tail == s_of
    lp.add_eq_block(c_ids[emit], var[emit], np.ones(int(emit.sum())),
                    np.ones(C))
    recv = head == d_of
    lp.add_eq_block(c_ids[recv], var[recv], np.ones(int(recv.sum())),
                    np.ones(C))

    # Destination never re-emits and source never re-absorbs its own shard.
    gag = (tail == d_of) | (head == s_of)
    k = int(gag.sum())
    lp.add_le_block(np.arange(k), var[gag], np.ones(k), np.zeros(k))
    return lp


def solve_timestepped_mcf(topology: Topology, num_steps: Optional[int] = None,
                          extra_steps: int = 1,
                          terminals: Optional[List[int]] = None) -> TimeSteppedFlow:
    """Solve the time-stepped MCF LP (eqs. 15-20).

    Parameters
    ----------
    topology:
        Direct-connect topology.  Link capacities scale the per-step
        utilization contribution of each link (a link with capacity 2 can move
        twice as much per unit of step time).
    num_steps:
        Number of communication steps ``l_max``.  Must be at least the
        diameter; defaults to ``diameter + extra_steps``.
    extra_steps:
        Slack steps added to the diameter when ``num_steps`` is None.  One or
        two extra steps are usually enough for the LP to reach the
        steady-state optimum ``1/F``.
    terminals:
        Optional subset of nodes that exchange data (all-to-all among the
        terminals); other nodes relay only.  Used on host-NIC augmented
        topologies where only host vertices are endpoints.
    """
    from .mcf_link import terminal_commodities

    if not topology.is_strongly_connected():
        raise ValueError("tsMCF requires a strongly connected topology")
    diam = topology.diameter()
    if num_steps is None:
        num_steps = diam + extra_steps
    if num_steps < diam:
        raise ValueError(f"num_steps={num_steps} below topology diameter {diam}")

    start = time.perf_counter()
    commodities = terminal_commodities(topology, terminals)
    edges = topology.edges

    params: Dict[str, object] = {"num_steps": int(num_steps)}
    if terminals is not None:
        params["terminals"] = sorted(set(int(t) for t in terminals))
    problem = MCFProblem("tsmcf", topology, params=params, maximize=False)
    solution = engine_solve(problem)
    elapsed = time.perf_counter() - start

    arr = np.asarray(solution.block("f"))
    flows: Dict[Commodity, Dict[Tuple[int, int, int], float]] = {
        c: {} for c in commodities}
    for ci, ei, ti in zip(*np.nonzero(arr > FLOW_TOL)):
        e = edges[ei]
        flows[commodities[ci]][(e[0], e[1], int(ti) + 1)] = float(arr[ci, ei, ti])
    utilizations = [max(float(u), 0.0) for u in solution.block("U")]

    return TimeSteppedFlow(
        num_steps=num_steps,
        flows=flows,
        step_utilizations=utilizations,
        topology=topology,
        solve_seconds=elapsed,
        meta={"method": "tsmcf",
              "num_variables": solution.info.get("num_variables"),
              "num_constraints": solution.info.get("num_constraints"),
              "diameter": diam,
              "terminals": None if terminals is None else sorted(set(terminals)),
              "engine": dict(solution.info)},
    )
