"""Lower bounds on all-to-all time (Theorem 1 and the per-graph distance bound).

Theorem 1 (§5.4): in any d-regular graph on N nodes, the all-to-all completion
time (per unit shard, unit link capacity) is at least

    T >= sum_{u in T_{d,N}} D(r, u) / d

where ``T_{d,N}`` is an ideal out-arborescence with N nodes and out-degree d
(levels are fully packed with d^k nodes).  This scales as Theta(N log_d N).

For a *specific* graph G the analogous (tighter) bound replaces the ideal
arborescence distances by G's actual shortest-path distances:

    T >= sum_{s != d} dist_G(s, d) / (total link capacity)

because every unit of commodity (s, d) must cross at least dist(s, d) links.
The reciprocal of this bound upper-bounds the concurrent flow value F.
"""

from __future__ import annotations


from ..topology.base import Topology
from ..topology import properties

__all__ = [
    "ideal_arborescence_distance_sum",
    "lower_bound_time_regular",
    "lower_bound_time_graph",
    "upper_bound_concurrent_flow",
    "throughput_upper_bound",
]


def ideal_arborescence_distance_sum(degree: int, num_nodes: int) -> float:
    """Sum of root-to-node distances in an ideal d-ary arborescence on N nodes.

    Levels ``k = 0, 1, 2, ...`` hold ``d^k`` nodes each until the node budget is
    exhausted; the final (possibly partial) level holds the remainder.  This is
    the minimum possible total distance from one root to N-1 other nodes in any
    graph with out-degree d, which is what Theorem 1's proof uses.
    """
    if degree < 1 or num_nodes < 1:
        raise ValueError("degree and num_nodes must be positive")
    remaining = num_nodes - 1  # exclude the root itself
    total = 0.0
    level = 1
    width = degree
    while remaining > 0:
        take = min(width, remaining)
        total += level * take
        remaining -= take
        level += 1
        if degree > 1:
            width *= degree
    return total


def lower_bound_time_regular(degree: int, num_nodes: int) -> float:
    """Theorem 1 lower bound on all-to-all time for any d-regular, N-node graph.

    Time is normalized to (shard bytes / link bandwidth) units, i.e. the value
    is directly comparable to ``1/F`` of an MCF solution on unit-capacity links.
    """
    return ideal_arborescence_distance_sum(degree, num_nodes) / degree


def lower_bound_time_graph(topology: Topology) -> float:
    """Distance-based lower bound on all-to-all time for a specific graph.

    Equals ``sum of pairwise distances / total capacity``; always at least the
    Theorem 1 bound evaluated at the graph's maximum degree.
    """
    total_dist = properties.total_pairwise_distance(topology)
    total_cap = sum(topology.capacities().values())
    if total_cap <= 0:
        return float("inf")
    return total_dist / total_cap


def upper_bound_concurrent_flow(topology: Topology) -> float:
    """Upper bound on the concurrent flow value F (reciprocal of the time bound)."""
    bound = lower_bound_time_graph(topology)
    return 0.0 if bound == float("inf") else 1.0 / bound


def throughput_upper_bound(num_nodes: int, concurrent_flow: float,
                           link_bandwidth_bytes: float) -> float:
    """Paper's throughput upper bound ``(N - 1) * f * b`` in bytes/second.

    ``f`` is the optimal concurrent flow value with unit link capacities and
    ``b`` the link bandwidth in bytes/second (§5.2: on the bottlenecked 3D
    torus, (26)(2/27)(3.125 GB/s) = 6.01 GB/s).
    """
    return (num_nodes - 1) * concurrent_flow * link_bandwidth_bytes
