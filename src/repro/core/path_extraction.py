"""MCF-extP: widest-path extraction of routes from a link-MCF solution (§3.2.1).

For source-routed fabrics on topologies with high path diversity (e.g. tori),
defining pMCF variables on all candidate paths is intractable.  The paper's
alternative first solves the (decomposed) link-based MCF and then, per
commodity, greedily extracts source->destination paths from the optimal link
flows with a widest-path (max-bottleneck) variant of Dijkstra:

1. build the flow-induced sub-DAG of the commodity,
2. find the s->d path with the maximum bottleneck flow,
3. subtract that flow from the path's links,
4. repeat until no positive-flow path remains.

The result is a set of weighted paths with decreasing rates, ready to lower to
the fabric.  The extraction is exact (conserves the delivered flow) whenever
the per-commodity flow satisfies conservation, which the repair step in
:mod:`repro.core.flow` guarantees.
"""

from __future__ import annotations

import time
from typing import Dict, List

from ..topology.base import Topology
from .flow import Commodity, FlowSolution, WeightedPath, flow_to_paths
from .mcf_decomposed import solve_decomposed_mcf
from .mcf_path import PathSchedule

__all__ = ["extract_paths", "solve_mcf_extract_paths"]


def extract_paths(solution: FlowSolution, min_weight: float = 1e-9) -> PathSchedule:
    """Extract weighted per-commodity paths from a link-MCF solution.

    Parameters
    ----------
    solution:
        A (conservation-repaired) link-flow solution.
    min_weight:
        Paths with weight below this threshold are dropped (numerical noise).
    """
    start = time.perf_counter()
    paths: Dict[Commodity, List[WeightedPath]] = {}
    for (s, d) in solution.topology.commodities():
        per_edge = solution.commodity_flow(s, d)
        decomposed = flow_to_paths(per_edge, s, d)
        kept = [p for p in decomposed if p.weight >= min_weight]
        if not kept:
            # Fall back to a shortest path so that every commodity is routable
            # even if the LP assigned it negligible flow (should not happen on
            # strongly connected graphs).
            import networkx as nx

            sp = nx.shortest_path(solution.topology.graph, s, d)
            kept = [WeightedPath(nodes=tuple(sp), weight=solution.concurrent_flow)]
        paths[(s, d)] = sorted(kept, key=lambda p: -p.weight)
    elapsed = time.perf_counter() - start
    return PathSchedule(
        concurrent_flow=solution.concurrent_flow,
        paths=paths,
        topology=solution.topology,
        solve_seconds=solution.solve_seconds + elapsed,
        meta={**solution.meta, "method": "mcf-extp", "extraction_seconds": elapsed},
    )


def solve_mcf_extract_paths(topology: Topology, n_jobs: int = 1) -> PathSchedule:
    """End-to-end MCF-extP: decomposed link MCF followed by widest-path extraction."""
    link_solution = solve_decomposed_mcf(topology, repair=True, n_jobs=n_jobs)
    return extract_paths(link_solution)
