"""Path-variable based MCF (pMCF) for fabrics with NIC forwarding (§3.1.4).

Given a candidate path set ``P[(s, d)]`` per commodity, pMCF maximizes the
concurrent flow ``F`` with one variable per (commodity, path) pair
(eqs. 21-24).  Flow conservation is automatic because flow moves along simple
end-to-end paths.  With an unrestricted path set this is the LP dual of the
link formulation and yields the same optimum; in practice the path set is
restricted (link-disjoint paths, shortest paths, or length-bounded paths) to
keep the variable count polynomial, which is exactly the trade-off the paper
evaluates in Fig. 8.

The LP is assembled by the registered ``"mcf-path"`` formulation and solved
through :func:`repro.engine.solve` (cached, pluggable backends).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from ..constants import FLOW_TOL
from ..engine import MCFProblem, register_formulation
from ..engine import solve as engine_solve
from ..topology.base import Edge, Topology
from .flow import Commodity, FlowSolution, WeightedPath

__all__ = ["PathSchedule", "solve_path_mcf", "path_schedule_from_single_paths"]


@dataclass
class PathSchedule:
    """Weighted multi-path routes for every commodity.

    ``paths[(s, d)]`` is a list of :class:`WeightedPath`; the weights are the
    fraction of the (s, d) shard to be sent along each path per unit of
    concurrent demand.  This is the object lowered to source-routed fabrics.
    """

    concurrent_flow: float
    paths: Dict[Commodity, List[WeightedPath]]
    topology: Topology
    solve_seconds: float = 0.0
    meta: Dict[str, object] = field(default_factory=dict)

    def link_loads(self) -> Dict[Edge, float]:
        """Aggregate flow on each link implied by the weighted paths."""
        loads: Dict[Edge, float] = {e: 0.0 for e in self.topology.edges}
        for plist in self.paths.values():
            for p in plist:
                for e in p.edges:
                    loads[e] = loads.get(e, 0.0) + p.weight
        return loads

    def max_link_utilization(self) -> float:
        """Maximum link load divided by capacity."""
        caps = self.topology.capacities()
        worst = 0.0
        for e, load in self.link_loads().items():
            cap = caps.get(e)
            if cap:
                worst = max(worst, load / cap)
        return worst

    def all_to_all_time(self) -> float:
        """Normalized all-to-all completion time.

        Defined (as in Fig. 8/9) as the time to ship one unit of every
        commodity along its weighted paths, which for fluid cut-through flows
        equals the maximum link utilization after scaling every commodity to
        unit demand.
        """
        delivered = self.min_delivered()
        if delivered <= 0:
            return float("inf")
        return self.max_link_utilization() / delivered

    def delivered(self, s: int, d: int) -> float:
        """Total path weight delivered for commodity (s, d)."""
        return sum(p.weight for p in self.paths.get((s, d), []))

    def min_delivered(self) -> float:
        """Minimum delivered weight across commodities (>= F for valid schedules)."""
        return min(self.delivered(s, d) for s, d in self.topology.commodities())

    def normalized(self) -> "PathSchedule":
        """Rescale all path weights so every commodity delivers exactly 1 unit.

        This is the form used for lowering: each shard is split across its
        paths in proportion to the weights.
        """
        new_paths: Dict[Commodity, List[WeightedPath]] = {}
        for c, plist in self.paths.items():
            total = sum(p.weight for p in plist)
            if total <= 0:
                new_paths[c] = []
                continue
            new_paths[c] = [WeightedPath(p.nodes, p.weight / total) for p in plist]
        return PathSchedule(concurrent_flow=self.concurrent_flow, paths=new_paths,
                            topology=self.topology, solve_seconds=self.solve_seconds,
                            meta={**self.meta, "normalized": True})

    def to_flow_solution(self) -> FlowSolution:
        """Convert to per-commodity link flows (for analysis and validation)."""
        flows: Dict[Commodity, Dict[Edge, float]] = {}
        for c, plist in self.paths.items():
            per: Dict[Edge, float] = {}
            for p in plist:
                for e in p.edges:
                    per[e] = per.get(e, 0.0) + p.weight
            flows[c] = per
        return FlowSolution(concurrent_flow=self.concurrent_flow, flows=flows,
                            topology=self.topology, solve_seconds=self.solve_seconds,
                            meta=dict(self.meta))


@register_formulation("mcf-path")
def build_path_mcf(problem: MCFProblem):
    """Assemble the pMCF LP (eqs. 21-24) with block/COO numpy ops.

    The ragged per-commodity path sets are flattened into one ``"p"`` block;
    a single pass over the paths collects the (edge, variable) incidence
    pairs, from which both constraint families are built as COO batches.
    """
    import numpy as np

    from .solver import LPBuilder

    topology = problem.topology
    path_sets = problem.params["path_sets"]
    commodities = list(topology.commodities())
    edges = topology.edges
    caps = topology.capacities()
    edge_index = {e: i for i, e in enumerate(edges)}
    counts = np.fromiter((len(path_sets[c]) for c in commodities),
                         dtype=np.int64, count=len(commodities))
    total_paths = int(counts.sum())

    lp = LPBuilder()
    f_col = lp.add_variable("F", lb=0.0, objective=1.0)
    p_vars = lp.add_variable_block("p", (total_paths,), lb=0.0)

    # One pass over the paths: (edge index, path variable) incidence pairs.
    ei: List[int] = []
    vi: List[int] = []
    v = 0
    for c in commodities:
        for p in path_sets[c]:
            for e in zip(p[:-1], p[1:]):
                idx = edge_index.get(e)
                if idx is None:
                    raise ValueError(f"path {p} uses non-existent edge {e}")
                ei.append(idx)
                vi.append(v)
            v += 1

    # (22) link capacity, one row per edge actually used by some path.
    ei_arr = np.asarray(ei, dtype=np.int64)
    vi_arr = np.asarray(vi, dtype=np.int64)
    lp.add_compressed_block(
        [ei_arr], [p_vars[vi_arr]], [np.ones(len(vi_arr))],
        rhs=lambda used: np.fromiter((caps[edges[i]] for i in used),
                                     dtype=float, count=len(used)))

    # (23) concurrent demand: F <= delivered weight, per commodity.
    C = len(commodities)
    lp.add_le_block(
        rows=np.concatenate([np.repeat(np.arange(C), counts), np.arange(C)]),
        cols=np.concatenate([p_vars, np.full(C, f_col)]),
        vals=np.concatenate([-np.ones(total_paths), np.ones(C)]),
        rhs=np.zeros(C))
    return lp


def solve_path_mcf(topology: Topology,
                   path_sets: Mapping[Commodity, Sequence[Sequence[int]]]) -> PathSchedule:
    """Solve pMCF over the given candidate path sets (eqs. 21-24).

    Parameters
    ----------
    path_sets:
        For every commodity ``(s, d)`` a non-empty sequence of candidate paths
        (each a node sequence from ``s`` to ``d``).

    Returns
    -------
    PathSchedule
        Optimal concurrent flow ``F`` restricted to the candidate paths, and
        the per-path weights.
    """
    start = time.perf_counter()
    commodities = list(topology.commodities())
    for c in commodities:
        if c not in path_sets or not path_sets[c]:
            raise ValueError(f"no candidate paths supplied for commodity {c}")
        for p in path_sets[c]:
            if p[0] != c[0] or p[-1] != c[1]:
                raise ValueError(f"path {p} does not connect commodity {c}")

    # Freeze the path sets so the problem params are canonically hashable and
    # the assembler sees an immutable snapshot.
    frozen = {c: tuple(tuple(int(n) for n in p) for p in path_sets[c])
              for c in commodities}
    problem = MCFProblem("mcf-path", topology, params={"path_sets": frozen},
                         maximize=True)
    solution = engine_solve(problem)
    elapsed = time.perf_counter() - start

    weights = solution.block("p")
    paths: Dict[Commodity, List[WeightedPath]] = {}
    pos = 0
    for c in commodities:
        plist = []
        for p in frozen[c]:
            w = float(weights[pos])
            pos += 1
            if w > FLOW_TOL:
                plist.append(WeightedPath(nodes=p, weight=w))
        # Keep at least the best candidate even if the LP left the commodity
        # exactly at zero weight (degenerate F=0 cases cannot happen on
        # strongly connected graphs, but guard anyway).
        if not plist:
            plist = [WeightedPath(nodes=frozen[c][0], weight=0.0)]
        paths[c] = plist

    return PathSchedule(
        concurrent_flow=float(solution.value("F")),
        paths=paths,
        topology=topology,
        solve_seconds=elapsed,
        meta={"method": "pmcf",
              "num_variables": solution.info.get("num_variables"),
              "num_constraints": solution.info.get("num_constraints"),
              "engine": dict(solution.info)},
    )


def path_schedule_from_single_paths(topology: Topology,
                                    single_paths: Mapping[Commodity, Sequence[int]],
                                    method: str = "single-path") -> PathSchedule:
    """Wrap one path per commodity (SSSP/DOR/ILP/native baselines) as a PathSchedule.

    The concurrent flow value is derived from the induced maximum link load:
    with unit demand per commodity and max load L, all commodities can flow
    concurrently at rate ``1/L``.
    """
    paths: Dict[Commodity, List[WeightedPath]] = {}
    loads: Dict[Edge, float] = {e: 0.0 for e in topology.edges}
    caps = topology.capacities()
    for c in topology.commodities():
        p = single_paths.get(c)
        if p is None:
            raise ValueError(f"missing path for commodity {c}")
        wp = WeightedPath(nodes=tuple(p), weight=1.0)
        paths[c] = [wp]
        for e in wp.edges:
            loads[e] = loads.get(e, 0.0) + 1.0
    max_util = max((loads[e] / caps[e]) for e in loads if caps.get(e, 0.0) > 0)
    flow = 0.0 if max_util == 0 else 1.0 / max_util
    return PathSchedule(concurrent_flow=flow, paths=paths, topology=topology,
                        meta={"method": method})
