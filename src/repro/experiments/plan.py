"""Staged execution plans: synthesize -> lower -> validate -> simulate.

A :class:`Plan` executes one :class:`~repro.experiments.scenario.Scenario`
through the paper's Fig. 1 pipeline as explicit stages:

1. **synthesize** — build the topology and run the scheme, producing a
   :class:`TimeSteppedFlow` or :class:`PathSchedule` (LP solves inside route
   through :func:`repro.engine.solve` and share its solution cache);
2. **lower** — chunk to the schedule IR (:class:`LinkSchedule` /
   :class:`RoutedSchedule`); schemes that already emit IR pass through;
3. **validate** — run the IR validators once (simulation then skips them);
4. **simulate** — execute the schedule on the scenario's fabric across its
   buffer sweep.

Each stage's artifact is cached under the scenario's
:meth:`~repro.experiments.scenario.Scenario.stage_key` in a process-wide
:class:`~repro.engine.cache.SolutionCache` instance (memory tier always on,
disk tier under ``$REPRO_CACHE_DIR/stages`` when configured), so re-running a
scenario — or a scenario that shares a prefix of the pipeline, e.g. the same
schedule simulated at different buffer sizes — recomputes nothing.  A `Plan`
instance additionally keeps its own artifacts, so ``run("synthesize")``
followed by ``run("simulate")`` never redoes stage work even with the shared
cache disabled (benchmarks disable it to keep timings honest).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.mcf_path import PathSchedule
from ..core.mcf_timestepped import TimeSteppedFlow
from ..engine.cache import SolutionCache
from ..schedule import (
    LinkSchedule,
    RoutedSchedule,
    chunk_path_schedule,
    chunk_timestepped_flow,
    validate_link_schedule,
    validate_routed_schedule,
)
from ..simulator import CollectiveResult, throughput_sweep
from .scenario import STAGES, Scenario, resolve_scheme

__all__ = ["Plan", "PlanResult", "get_plan_cache", "configure_plan_cache",
           "reset_plan_cache"]


# --------------------------------------------------------------------------- #
# Process-wide stage-artifact cache (mirrors engine.core's default engine)
# --------------------------------------------------------------------------- #
_plan_cache: Optional[SolutionCache] = None
_plan_cache_lock = threading.Lock()


def _stage_cache_dir() -> Optional[str]:
    root = os.environ.get("REPRO_CACHE_DIR")
    return os.path.join(root, "stages") if root else None


def get_plan_cache() -> SolutionCache:
    """The process-wide stage-artifact cache (created lazily)."""
    global _plan_cache
    if _plan_cache is None:
        with _plan_cache_lock:
            if _plan_cache is None:
                _plan_cache = SolutionCache(cache_dir=_stage_cache_dir(),
                                            suffix=".stage.pkl",
                                            payload_type=object)
    return _plan_cache


def configure_plan_cache(cache_dir: Optional[str] = None,
                         enabled: Optional[bool] = None) -> SolutionCache:
    """Reconfigure the default stage cache in place and return it."""
    cache = get_plan_cache()
    if cache_dir is not None:
        global _plan_cache
        with _plan_cache_lock:
            _plan_cache = SolutionCache(cache_dir=cache_dir, suffix=".stage.pkl",
                                        payload_type=object, enabled=cache.enabled)
            cache = _plan_cache
    if enabled is not None:
        cache.enabled = enabled
    return cache


def reset_plan_cache() -> None:
    """Drop the default stage cache (next access builds a fresh one)."""
    global _plan_cache
    with _plan_cache_lock:
        _plan_cache = None


#: Per-stage-key locks backing the single-flight guarantee in
#: :meth:`Plan._ensure_stage`.  Entries are tiny and bounded by the number of
#: distinct stage keys seen by the process, so they are never evicted.
_inflight: Dict[str, threading.Lock] = {}
_inflight_guard = threading.Lock()


def _inflight_lock(key: str) -> threading.Lock:
    with _inflight_guard:
        lock = _inflight.get(key)
        if lock is None:
            lock = _inflight[key] = threading.Lock()
        return lock


# --------------------------------------------------------------------------- #
# Plan
# --------------------------------------------------------------------------- #
@dataclass
class PlanResult:
    """Artifacts and accounting of one plan execution."""

    scenario: Scenario
    schedule: object = None                   # synthesize artifact
    lowered: object = None                    # lower artifact (schedule IR)
    validated: bool = False
    sim_results: Optional[List[CollectiveResult]] = None
    cluster_result: object = None             # ClusterResult for cluster traces
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    stage_cache: Dict[str, str] = field(default_factory=dict)  # stage -> hit/miss/off

    @property
    def concurrent_flow(self) -> Optional[float]:
        """Concurrent-flow value of the synthesized schedule, if it has one."""
        if isinstance(self.schedule, TimeSteppedFlow):
            return self.schedule.equivalent_concurrent_flow()
        if isinstance(self.schedule, PathSchedule):
            return float(self.schedule.concurrent_flow)
        return None

    @property
    def all_to_all_time(self) -> Optional[float]:
        """Normalized all-to-all time of the synthesized schedule."""
        if isinstance(self.schedule, TimeSteppedFlow):
            return self.schedule.total_utilization
        if isinstance(self.schedule, PathSchedule):
            return self.schedule.all_to_all_time()
        return None

    @property
    def num_terminals(self) -> Optional[int]:
        """Number of communicating endpoints (hosts if augmented)."""
        meta = getattr(self.schedule, "meta", None) or {}
        if meta.get("augmented"):
            return int(meta["num_hosts"])
        topo = getattr(self.schedule, "topology", None)
        return None if topo is None else topo.num_nodes

    def engine_info(self) -> Dict[str, object]:
        """Engine accounting carried on the schedule's metadata, if any."""
        meta = getattr(self.schedule, "meta", None) or {}
        info = meta.get("engine") or meta.get("master_engine") or {}
        return dict(info) if isinstance(info, dict) else {}


class Plan:
    """Staged, cached execution of one scenario.

    Parameters
    ----------
    scenario:
        The declarative scenario to execute.
    cache:
        Stage-artifact cache; defaults to the process-wide one
        (:func:`get_plan_cache`).  Pass ``None``-like disabled caches to
        force recomputation (a plan still reuses its *own* artifacts).
    n_jobs:
        Worker count forwarded to scheme synthesis (decomposed child LPs).
    """

    def __init__(self, scenario: Scenario, cache: Optional[SolutionCache] = None,
                 n_jobs: int = 1) -> None:
        self.scenario = scenario
        self.cache = cache if cache is not None else get_plan_cache()
        self.n_jobs = n_jobs
        self.result = PlanResult(scenario=scenario)

    # ------------------------------------------------------------------ #
    def run(self, through: str = "simulate") -> PlanResult:
        """Execute stages up to and including ``through``; idempotent.

        Stages already executed by this plan instance are kept; remaining
        stages consult the shared artifact cache before computing.
        """
        if through not in STAGES:
            raise KeyError(f"unknown stage {through!r}; stages: {STAGES}")
        for stage in STAGES[:STAGES.index(through) + 1]:
            self._ensure_stage(stage)
        return self.result

    # ------------------------------------------------------------------ #
    def _ensure_stage(self, stage: str) -> None:
        if stage in self.result.stage_seconds:
            return
        key = self.scenario.stage_key(stage)
        start = time.perf_counter()
        if not self.cache.enabled:
            self._install(stage, self._compute(stage))
            self.result.stage_cache[stage] = "off"
        else:
            # Single-flight per stage key: concurrent scenarios that share an
            # artifact (e.g. same schedule, different buffers) wait for the
            # first computation instead of duplicating the LP solve.
            with _inflight_lock(key):
                cached = self.cache.get(key)
                if cached is not None:
                    self._install(stage, cached)
                    self.result.stage_cache[stage] = "hit"
                else:
                    artifact = self._compute(stage)
                    self._install(stage, artifact)
                    self.result.stage_cache[stage] = "miss"
                    self.cache.put(key, artifact)
        self.result.stage_seconds[stage] = time.perf_counter() - start

    def _compute(self, stage: str) -> object:
        scenario = self.scenario
        if stage == "synthesize":
            topology = scenario.resolved_topology()
            return resolve_scheme(scenario, topology, n_jobs=self.n_jobs)
        if stage == "lower":
            schedule = self.result.schedule
            if isinstance(schedule, TimeSteppedFlow):
                return chunk_timestepped_flow(schedule)
            if isinstance(schedule, PathSchedule):
                return chunk_path_schedule(schedule,
                                           max_denominator=scenario.max_denominator)
            if isinstance(schedule, (LinkSchedule, RoutedSchedule)):
                return schedule
            raise TypeError(f"cannot lower schedule of type {type(schedule)!r}")
        if stage == "validate":
            lowered = self.result.lowered
            if isinstance(lowered, LinkSchedule):
                validate_link_schedule(lowered)
            else:
                validate_routed_schedule(lowered)
            return True
        # simulate
        if scenario.cluster is not None:
            from ..cluster import run_cluster  # lazy: cluster imports simulator

            default_buffer = scenario.buffers[0] if scenario.buffers else None
            return run_cluster(self.result.lowered, scenario.cluster,
                               fabric=scenario.resolved_fabric(),
                               default_buffer=default_buffer,
                               validate=False)
        if not scenario.buffers:
            return []
        if scenario.faults is not None:
            from ..faults import run_faulted_sweep  # lazy: faults imports simulator

            return run_faulted_sweep(self.result.lowered,
                                     list(scenario.buffers),
                                     scenario.faults,
                                     fabric=scenario.resolved_fabric(),
                                     validate_first=False)
        return throughput_sweep(self.result.lowered, list(scenario.buffers),
                                fabric=scenario.resolved_fabric(),
                                validate_first=False,
                                overlap=scenario.overlap)

    def _install(self, stage: str, artifact: object) -> None:
        from ..cluster import ClusterResult  # lazy: cluster imports simulator

        if stage == "synthesize":
            self.result.schedule = artifact
        elif stage == "lower":
            self.result.lowered = artifact
        elif stage == "validate":
            self.result.validated = bool(artifact)
        elif isinstance(artifact, ClusterResult):
            self.result.cluster_result = artifact
            self.result.sim_results = []
        else:
            self.result.sim_results = list(artifact)
