"""Declarative experiment scenarios with canonical, per-stage hashing.

A :class:`Scenario` is a pure-data description of one experiment: which
topology (a ``family:key=value`` spec string or a concrete
:class:`~repro.topology.base.Topology`), which workload, which fabric, which
schedule-generation scheme, and the chunking/simulation knobs.  It answers
two questions:

* *what to run* — :meth:`Scenario.resolved_topology`,
  :meth:`Scenario.resolved_fabric` and :func:`resolve_scheme` turn the data
  into the concrete objects the :class:`~repro.experiments.plan.Plan`
  pipeline executes;
* *what it is* — :meth:`Scenario.key` is a content-addressed digest (the
  topology contributes its :meth:`~repro.topology.base.Topology.canonical_hash`,
  so a spec string and an equivalent hand-built topology hash identically).
  Per-stage keys (:meth:`Scenario.stage_key`) only cover the fields that
  stage depends on, so scenarios differing only in buffer sizes share their
  synthesized schedule artifacts.

The scheme registry here is the experiment-facing superset of
``analysis.sweep.PATH_SCHEMES``: it adds the link-based schemes (``tsmcf``,
``taccl``) and the ``auto`` scheme that follows the paper's Fig. 1 decision
flow, and every entry accepts keyword parameters (``scheme_params``) instead
of baking them in.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field, fields as dataclass_fields
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..baselines import (
    ilp_disjoint_schedule,
    ilp_shortest_schedule,
    native_alltoall_schedule,
    sccl_like_schedule,
    taccl_like_schedule,
)
from ..core import (
    ForwardingModel,
    SchedulingRequest,
    generate_schedule,
    solve_mcf_extract_paths,
    solve_path_mcf,
)
from ..engine.problem import canonical_value
from ..paths import (
    all_shortest_path_sets,
    dor_schedule,
    edge_disjoint_path_sets,
    ewsp_schedule,
    sssp_schedule,
)
from ..simulator import FabricModel, fabric_from_spec
from ..topology import Topology, from_spec

__all__ = ["Scenario", "STAGES", "SCHEMES", "available_scenario_schemes",
           "resolve_scheme", "scenario_schema_version"]

#: Pipeline stages, in execution order.
STAGES: Tuple[str, ...] = ("synthesize", "lower", "validate", "simulate")

#: Bump when the Scenario hashing payload or artifact schema changes, so a
#: persistent ``REPRO_CACHE_DIR`` stage tier from an older layout reads as a
#: miss instead of serving incompatible artifacts.
#: 2: simulate stage gained ``overlap``; fabric hashed by content minus the
#:    cosmetic name, including the degraded-link fields.
#: 3: simulate stage gained ``cluster`` (multi-job trace specs, hashed by
#:    their parsed canonical form so equivalent spellings share keys).
#: 4: simulate stage gained ``faults`` (timed fabric-event specs, hashed by
#:    their parsed canonical form — key-order invariant like cluster).
_SCENARIO_SCHEMA = 4


def scenario_schema_version() -> int:
    """Schema version stamped into scenario keys and sweep JSONL records."""
    return _SCENARIO_SCHEMA


# --------------------------------------------------------------------------- #
# Scheme registry
# --------------------------------------------------------------------------- #
def _auto_scheme(topology: Topology, *, scenario: "Scenario", n_jobs: int = 1):
    """The paper's Fig. 1 decision flow, driven by scenario knobs."""
    request = SchedulingRequest(
        forwarding=scenario.resolved_forwarding(),
        host_bandwidth=scenario.host_bandwidth,
        link_bandwidth=scenario.link_bandwidth,
        num_steps=scenario.num_steps,
        path_diversity_threshold=scenario.path_diversity_threshold,
        max_disjoint_paths=scenario.max_disjoint_paths,
        decompose_ts=scenario.decompose_ts,
        n_jobs=n_jobs,
    )
    return generate_schedule(topology, request)


def _tsmcf_scheme(topology: Topology, *, scenario: "Scenario", n_jobs: int = 1):
    """Link-based tsMCF, honoring host-bottleneck augmentation and num_steps."""
    request = SchedulingRequest(
        forwarding=ForwardingModel.HOST,
        host_bandwidth=scenario.host_bandwidth,
        link_bandwidth=scenario.link_bandwidth,
        num_steps=scenario.num_steps,
        decompose_ts=scenario.decompose_ts,
        n_jobs=n_jobs,
    )
    return generate_schedule(topology, request)


def _pmcf_shortest(topology: Topology, limit_per_pair: int = 16):
    return solve_path_mcf(topology, all_shortest_path_sets(
        topology, limit_per_pair=limit_per_pair))


def _pmcf_disjoint(topology: Topology, max_paths: Optional[int] = None):
    return solve_path_mcf(topology, edge_disjoint_path_sets(topology, max_paths=max_paths))


#: Scheme name -> callable.  Entries marked scenario-aware receive the full
#: scenario (and the plan's ``n_jobs``); plain entries receive the topology
#: plus ``scheme_params`` as keyword arguments.
SCHEMES: Dict[str, Callable] = {
    "auto": _auto_scheme,
    "tsmcf": _tsmcf_scheme,
    "mcf-extp": solve_mcf_extract_paths,
    "pmcf-disjoint": _pmcf_disjoint,
    "pmcf-shortest": _pmcf_shortest,
    "ewsp": ewsp_schedule,
    "sssp": sssp_schedule,
    "dor": dor_schedule,
    "native": native_alltoall_schedule,
    "ilp-disjoint": ilp_disjoint_schedule,
    "ilp-shortest": ilp_shortest_schedule,
    "taccl": taccl_like_schedule,
    "sccl": sccl_like_schedule,
}

#: Schemes that take the whole scenario (not just topology + params).
_SCENARIO_AWARE = ("auto", "tsmcf")


def available_scenario_schemes() -> List[str]:
    """Names of all schemes a :class:`Scenario` can declare."""
    return sorted(SCHEMES)


def resolve_scheme(scenario: "Scenario", topology: Topology, n_jobs: int = 1):
    """Run the scenario's scheme, returning a schedule object.

    Falls back to ``analysis.sweep.PATH_SCHEMES`` for names registered there
    but not here (user-registered schemes keep working through the new layer).
    """
    name = scenario.scheme
    params = dict(scenario.scheme_params)
    if name in _SCENARIO_AWARE:
        return SCHEMES[name](topology, scenario=scenario, n_jobs=n_jobs, **params)
    if name in SCHEMES:
        return SCHEMES[name](topology, **params)
    from ..analysis.sweep import PATH_SCHEMES  # lazy: analysis imports us

    if name in PATH_SCHEMES:
        if params:
            # PATH_SCHEMES callables take only the topology; silently dropping
            # params would leave the scenario hash (and JSONL record) claiming
            # parameters that never applied.
            raise ValueError(
                f"scheme {name!r} (from analysis.sweep.PATH_SCHEMES) does not "
                f"accept scheme_params; got {sorted(params)}")
        return PATH_SCHEMES[name](topology)
    raise KeyError(f"unknown scheme {name!r}; available: {available_scenario_schemes()}")


# --------------------------------------------------------------------------- #
# Scenario
# --------------------------------------------------------------------------- #
#: Content fields each stage's artifact depends on.  ``lower``/``validate``
#: extend ``synthesize``; ``simulate`` extends ``lower``.  Execution knobs
#: (worker counts) are deliberately absent: they change how fast an artifact
#: is produced, never what it is.
_STAGE_FIELDS: Dict[str, Tuple[str, ...]] = {
    "synthesize": ("topology", "workload", "forwarding", "scheme", "scheme_params",
                   "host_bandwidth", "link_bandwidth", "num_steps",
                   "path_diversity_threshold", "max_disjoint_paths", "decompose_ts"),
}
_STAGE_FIELDS["lower"] = _STAGE_FIELDS["synthesize"] + ("max_denominator",)
_STAGE_FIELDS["validate"] = _STAGE_FIELDS["lower"]
_STAGE_FIELDS["simulate"] = _STAGE_FIELDS["lower"] + ("fabric", "buffers", "overlap",
                                                     "cluster", "faults")

_SUPPORTED_WORKLOADS = ("alltoall",)


@dataclass
class Scenario:
    """One declarative experiment: topology x workload x fabric x scheme.

    Attributes
    ----------
    topology:
        A spec string (see :func:`repro.topology.from_spec`) or a concrete
        :class:`Topology`.  Both hash by topology *content*.
    workload:
        Traffic pattern; currently only ``"alltoall"`` (the paper's headline
        collective) flows through the full pipeline.
    fabric:
        Fabric spec string (see :func:`repro.simulator.fabric_from_spec`) or
        a concrete :class:`FabricModel`; drives the simulate stage and the
        default forwarding model.
    forwarding:
        ``"auto"`` (derive from the fabric's ``nic_forwarding``), ``"host"``
        or ``"nic"``.  Only consulted by the ``auto`` scheme.
    scheme:
        Scheme name from :data:`SCHEMES` (or ``analysis.sweep.PATH_SCHEMES``).
    scheme_params:
        Keyword arguments for the scheme callable (e.g. ILP gap/time limits).
    host_bandwidth / link_bandwidth / num_steps / path_diversity_threshold /
    max_disjoint_paths / decompose_ts:
        The :class:`~repro.core.pipeline.SchedulingRequest` knobs.
    max_denominator:
        Chunking granularity for path schedules (lower stage).
    buffers:
        Per-node buffer sizes (bytes) swept by the simulate stage.
    overlap:
        Concurrent copies of the collective sharing the fabric during the
        simulate stage (the overlapping-collectives axis); results carry
        per-collective completion times.  Part of the simulate stage key
        only, so overlap variants share their synthesized schedule.
    cluster:
        Optional multi-job trace spec (``"cluster:jobs=8:arrival=poisson~200:
        placement=packed"``, see :mod:`repro.cluster.trace`).  When set, the
        simulate stage runs the cluster co-simulation instead of the
        throughput sweep.  Part of the simulate stage key only — hashed by
        the parsed canonical form, so traces share synthesized schedules
        and equivalent spellings share keys.  Mutually exclusive with
        ``overlap > 1`` (a cluster trace already multiplexes the fabric).
    faults:
        Optional timed fabric-event spec
        (``"faults:down=0~1@0.5ms:up@1.2ms:seed=7"``, see
        :mod:`repro.faults.spec`).  When set, the simulate stage runs the
        fault-injection runner: links drop/recover/flap mid-collective and
        in-flight flows are rerouted online.  Part of the simulate stage
        key only — hashed by the parsed canonical form, so fault variants
        share synthesized schedules and equivalent spellings share keys.
        Mutually exclusive with ``cluster`` and with ``overlap > 1``.
    name:
        Cosmetic label for reports; excluded from hashing.

    The *static* degraded-fabric axis has no field of its own: it lives on
    the fabric spec (``"hpc:down=0~1"``, ``"hpc:scale=0~1:0.5"``), and since
    the fabric is hashed by *content*, degradation flows into the
    simulate-stage cache key automatically.  The ``faults`` field is its
    dynamic counterpart: the same degradation arriving *mid-run*.
    """

    topology: Union[str, Topology]
    workload: str = "alltoall"
    fabric: Union[str, FabricModel] = "hpc"
    forwarding: str = "auto"
    scheme: str = "auto"
    scheme_params: Mapping[str, object] = field(default_factory=dict)
    host_bandwidth: Optional[float] = None
    link_bandwidth: float = 1.0
    num_steps: Optional[int] = None
    path_diversity_threshold: float = 4.0
    max_disjoint_paths: Optional[int] = None
    decompose_ts: bool = False
    max_denominator: int = 64
    buffers: Tuple[float, ...] = ()
    overlap: int = 1
    cluster: Optional[str] = None
    faults: Optional[str] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workload not in _SUPPORTED_WORKLOADS:
            raise ValueError(f"unsupported workload {self.workload!r}; "
                             f"supported: {_SUPPORTED_WORKLOADS}")
        if self.forwarding not in ("auto", "host", "nic"):
            raise ValueError(f"forwarding must be auto/host/nic, got {self.forwarding!r}")
        if self.overlap < 1:
            raise ValueError(f"overlap must be >= 1, got {self.overlap}")
        if self.cluster is not None:
            from ..cluster.trace import parse_cluster_spec  # lazy: avoid cycle

            if self.overlap > 1:
                raise ValueError(
                    "cluster traces and overlap > 1 are mutually exclusive: "
                    "a cluster trace already multiplexes the fabric")
            parse_cluster_spec(self.cluster)  # eager validation
        if self.faults is not None:
            from ..faults.spec import parse_fault_spec  # lazy: avoid cycle

            if self.cluster is not None:
                raise ValueError(
                    "faults and cluster traces are mutually exclusive: the "
                    "fault runner executes one collective per buffer point")
            if self.overlap > 1:
                raise ValueError(
                    "faults and overlap > 1 are mutually exclusive: the "
                    "fault runner reroutes a single collective's flows")
            parse_fault_spec(self.faults)  # eager validation
        self.buffers = tuple(float(b) for b in self.buffers)
        self.scheme_params = dict(self.scheme_params)
        self._topology_obj: Optional[Topology] = (
            self.topology if isinstance(self.topology, Topology) else None)

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def resolved_topology(self) -> Topology:
        """The concrete topology (spec strings are parsed once and memoized)."""
        if self._topology_obj is None:
            self._topology_obj = from_spec(self.topology)
        return self._topology_obj

    def resolved_fabric(self) -> FabricModel:
        """The concrete fabric model."""
        return fabric_from_spec(self.fabric)

    def resolved_forwarding(self) -> ForwardingModel:
        """The forwarding model, deriving ``auto`` from the fabric."""
        if self.forwarding == "host":
            return ForwardingModel.HOST
        if self.forwarding == "nic":
            return ForwardingModel.NIC
        return (ForwardingModel.NIC if self.resolved_fabric().nic_forwarding
                else ForwardingModel.HOST)

    def label(self) -> str:
        """Display label: the explicit name, or ``topology/scheme``."""
        if self.name:
            return self.name
        topo = self.topology if isinstance(self.topology, str) else self.topology.name
        return f"{topo}/{self.scheme}"

    # ------------------------------------------------------------------ #
    # Hashing
    # ------------------------------------------------------------------ #
    def _canonical_field(self, fname: str) -> object:
        value = getattr(self, fname)
        if fname == "topology":
            return ("topology", self.resolved_topology().canonical_hash())
        if fname == "fabric":
            # Hash the fabric by content, minus the cosmetic name — so
            # "hpc:scale=0~1:0.5" and an equivalently degrade()d FabricModel
            # share keys, like spec-string vs. hand-built topologies do.
            fabric = self.resolved_fabric()
            payload = {k: v for k, v in asdict(fabric).items() if k != "name"}
            return ("fabric", tuple(sorted(payload.items())))
        if fname == "forwarding":
            # Only the "auto" scheme branches on the forwarding model, and
            # "auto" forwarding resolves through the fabric — hash the
            # *resolved* model so scenarios differing only in fabric never
            # share a synthesize artifact when the fabric picked the branch.
            # Every other scheme ignores forwarding ("tsmcf" forces HOST),
            # so a constant keeps their artifacts shared across fabrics.
            if self.scheme == "auto":
                return ("forwarding", self.resolved_forwarding().value)
            return ("forwarding", "ignored")
        if fname == "cluster":
            # Hash the parsed canonical form so key order / whitespace /
            # default spelling differences in the trace spec share keys.
            if value is None:
                return ("cluster", None)
            from ..cluster.trace import parse_cluster_spec  # lazy: avoid cycle

            return ("cluster", parse_cluster_spec(value).canonical())
        if fname == "faults":
            # Same treatment as cluster: hash the parsed canonical form so
            # event order / spelling differences share keys.
            if value is None:
                return ("faults", None)
            from ..faults.spec import parse_fault_spec  # lazy: avoid cycle

            return ("faults", parse_fault_spec(value).canonical())
        return (fname, canonical_value(value))

    def stage_key(self, stage: str) -> str:
        """Content digest of the fields the given stage depends on.

        Stable across processes and construction styles: the topology enters
        via its canonical hash, mappings are order-canonicalized, and the
        scenario schema version guards against layout changes.
        """
        if stage not in _STAGE_FIELDS:
            raise KeyError(f"unknown stage {stage!r}; stages: {STAGES}")
        payload = repr((_SCENARIO_SCHEMA, stage,
                        tuple(self._canonical_field(f) for f in _STAGE_FIELDS[stage])))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def key(self) -> str:
        """Full content digest over every stage-relevant field.

        This is the scenario's identity in sweep JSONL records: resume
        matches completed records on it, so it must not include cosmetic or
        execution-only fields.
        """
        return self.stage_key("simulate")

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form for sweep records.

        Topology/fabric objects (as opposed to spec strings) are recorded as
        ``name#content-hash`` descriptors: enough to identify them, not to
        rebuild them — resume matches on :meth:`key`, never by re-parsing.
        """
        out: Dict[str, object] = {}
        for f in dataclass_fields(self):
            value = getattr(self, f.name)
            if f.name == "topology" and isinstance(value, Topology):
                value = f"{value.name}#{value.canonical_hash()[:16]}"
            elif f.name == "fabric" and isinstance(value, FabricModel):
                value = f"{value.name}#object"
            elif f.name == "scheme_params":
                value = dict(value)
            elif f.name == "buffers":
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Scenario":
        """Build a scenario from a (possibly all-string, CLI-supplied) mapping."""
        known = {f.name for f in dataclass_fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown scenario field(s) {unknown}; known: {sorted(known)}")
        kwargs: Dict[str, object] = {}
        for key, value in data.items():
            kwargs[key] = _coerce_field(key, value)
        return cls(**kwargs)


_FLOAT_FIELDS = ("host_bandwidth", "link_bandwidth", "path_diversity_threshold")
_INT_FIELDS = ("num_steps", "max_disjoint_paths", "max_denominator", "overlap")


def _coerce_field(name: str, value: object) -> object:
    """Coerce string values (from CLI flags / JSON grids) to field types."""
    if not isinstance(value, str):
        return value
    if name in _FLOAT_FIELDS:
        return None if value.lower() in ("", "none") else float(value)
    if name in _INT_FIELDS:
        return None if value.lower() in ("", "none") else int(value)
    if name == "decompose_ts":
        return value.lower() in ("1", "true", "yes", "on")
    if name == "buffers":
        # ';'-separated because ',' separates axis values in the CLI.
        return tuple(float(x) for x in value.replace(";", " ").split() if x)
    if name in ("cluster", "faults"):
        return None if value.lower() in ("", "none") else value
    return value
