"""Grid sweeps with streaming JSONL results and hash-based resume.

:class:`SweepGrid` expands a base scenario plus axes (cartesian product) into
an ordered scenario list; :func:`run_sweep` executes them through the
engine's :class:`~repro.engine.runner.ParallelRunner`, appending one JSONL
record per *completed* scenario as it finishes — a killed sweep leaves a
usable partial file, and re-running with ``resume=True`` skips every
scenario whose :meth:`~repro.experiments.scenario.Scenario.key` already has
an ``ok`` record.

Record schema (one JSON object per line)::

    {
      "schema_version": 4,
      "key": "<scenario content digest>",
      "label": "hypercube:dim=3/mcf-extp",
      "status": "ok" | "error",
      "through": "simulate",                 # last stage the plan executed
      "scenario": { ...Scenario.to_dict()... },
      "metrics": {
        "concurrent_flow": 0.25, "all_to_all_time": 4.0,
        "num_nodes": 8, "num_assignments": 112,
        "throughput_bytes_per_s": {"1048576": 1.2e9},
        "completion_seconds": {"1048576": 0.002}
      },
      "timings": {"synthesize_seconds": ..., "lower_seconds": ...,
                  "assemble_seconds": ..., "solve_seconds": ...},
      "engine": {"cache": "miss", "backend": "scipy-highs", ...},
      "stage_cache": {"synthesize": "miss", ...},
      "error": null | "<message>"
    }

``metrics`` keys are omitted when a scheme does not define them (e.g. the
TACCL surrogate emits schedule IR directly, so it has no LP flow value).
Cluster-trace scenarios (``Scenario.cluster``) replace the throughput
series with cluster metrics: ``cluster_jobs``, ``makespan_seconds``,
``fabric_utilization``, ``job_slowdown_p50``/``job_slowdown_p99``, plus the
per-job ``job_slowdowns``/``job_completion_seconds`` mappings keyed by job
id.  Fault-injection scenarios (``Scenario.faults``) keep the throughput
series and add ``robustness_slowdown`` (worst buffer point),
``reroute_count``, ``stranded_bytes``, ``fault_events`` and the per-buffer
``robustness_slowdowns`` mapping.
"""

from __future__ import annotations

import csv
import itertools
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..engine import ParallelRunner
from ..engine.cache import SolutionCache
from .plan import Plan, PlanResult
from .scenario import Scenario, scenario_schema_version

__all__ = ["SweepGrid", "ScenarioResult", "run_scenarios", "run_sweep",
           "load_results", "completed_keys", "completed_records", "write_csv",
           "sweep_stats", "metrics_from_plan", "result_from_plan"]


# --------------------------------------------------------------------------- #
# Grid
# --------------------------------------------------------------------------- #
@dataclass
class SweepGrid:
    """A base scenario plus swept axes, expanded as a cartesian product.

    ``base`` holds fixed scenario fields; ``axes`` maps field names to value
    lists.  Expansion order is deterministic: axes vary in declaration order
    with the last axis fastest, so resuming a sweep sees the same sequence.
    """

    base: Dict[str, object] = field(default_factory=dict)
    axes: Dict[str, Sequence[object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        overlap = sorted(set(self.base) & set(self.axes))
        if overlap:
            raise ValueError(f"field(s) {overlap} appear in both base and axes")
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def scenarios(self) -> List[Scenario]:
        """Expand into concrete scenarios (deterministic order)."""
        names = list(self.axes)
        out: List[Scenario] = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            data = dict(self.base)
            data.update(zip(names, combo))
            out.append(Scenario.from_dict(data))
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepGrid":
        """Build from ``{"base": {...}, "axes": {...}}`` (both optional)."""
        extra = sorted(set(data) - {"base", "axes"})
        if extra:
            raise ValueError(f"unknown grid key(s) {extra}; expected 'base'/'axes'")
        return cls(base=dict(data.get("base", {})),
                   axes={k: list(v) for k, v in dict(data.get("axes", {})).items()})

    @classmethod
    def from_file(cls, path: str) -> "SweepGrid":
        """Load a JSON grid spec file."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


# --------------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------------- #
@dataclass
class ScenarioResult:
    """Outcome of one scenario, serializable as one JSONL record."""

    scenario: Scenario
    key: str
    status: str                               # "ok" | "error"
    metrics: Dict[str, object] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    engine: Dict[str, object] = field(default_factory=dict)
    stage_cache: Dict[str, str] = field(default_factory=dict)
    through: str = "simulate"                 # last stage the plan executed
    error: Optional[str] = None
    resumed: bool = False
    # In-process only (never serialized): the artifacts and original exception.
    plan: Optional[PlanResult] = None
    exception: Optional[BaseException] = None

    def to_record(self) -> Dict[str, object]:
        return {
            "schema_version": scenario_schema_version(),
            "key": self.key,
            "label": self.scenario.label(),
            "status": self.status,
            "through": self.through,
            "scenario": self.scenario.to_dict(),
            "metrics": self.metrics,
            "timings": self.timings,
            "engine": self.engine,
            "stage_cache": self.stage_cache,
            "error": self.error,
        }


def metrics_from_plan(result: PlanResult) -> Dict[str, object]:
    """Flatten a :class:`PlanResult` into the JSONL ``metrics`` mapping.

    Public because the report layer (:mod:`repro.report`) aggregates paper
    artifacts from exactly this shape, whether the scenario ran through
    :func:`run_sweep` or through a benchmark-driven
    :class:`~repro.experiments.plan.Plan`.
    """
    metrics: Dict[str, object] = {}
    if result.concurrent_flow is not None:
        metrics["concurrent_flow"] = result.concurrent_flow
    if result.all_to_all_time is not None:
        metrics["all_to_all_time"] = result.all_to_all_time
    if result.num_terminals is not None:
        metrics["num_nodes"] = result.num_terminals
    topo = getattr(result.schedule, "topology", None)
    if topo is not None:
        # The graph the schedule actually runs on (the augmented graph when a
        # host bottleneck applies) — what throughput upper bounds scale with.
        metrics["num_graph_nodes"] = int(topo.num_nodes)
    lowered = result.lowered
    if lowered is not None:
        if hasattr(lowered, "num_steps"):
            metrics["num_steps"] = int(lowered.num_steps)
        if hasattr(lowered, "assignments"):
            metrics["num_assignments"] = len(lowered.assignments)
    if result.sim_results:
        metrics["throughput_bytes_per_s"] = {
            str(int(r.buffer_bytes)): r.throughput for r in result.sim_results}
        metrics["completion_seconds"] = {
            str(int(r.buffer_bytes)): r.completion_time for r in result.sim_results}
        # Simulator cost counters (vectorized-engine accounting): how many
        # progressive-filling rounds and completion events the sweep's
        # simulate stage burned, mirroring the LP assemble/solve timings.
        metrics["sim_fill_rounds"] = int(sum(
            int(r.meta.get("fill_rounds", 0)) for r in result.sim_results))
        metrics["sim_events"] = int(sum(
            int(r.meta.get("events", 0)) for r in result.sim_results))
        if any("per_collective_seconds" in r.meta for r in result.sim_results):
            metrics["overlap_completion_seconds"] = {
                str(int(r.buffer_bytes)): list(r.per_collective_seconds)
                for r in result.sim_results}
        if any("robustness_slowdown" in r.meta for r in result.sim_results):
            # Fault-injection accounting (Scenario.faults): the headline
            # slowdown is the worst buffer point's; reroutes/stranded bytes
            # and fabric-epoch counts sum across the sweep, with per-buffer
            # slowdowns kept as a mapping for the robustness curves.
            metrics["robustness_slowdown"] = float(max(
                float(r.meta.get("robustness_slowdown", 1.0))
                for r in result.sim_results))
            metrics["reroute_count"] = int(sum(
                int(r.meta.get("reroute_count", 0))
                for r in result.sim_results))
            metrics["stranded_bytes"] = float(sum(
                float(r.meta.get("stranded_bytes", 0.0))
                for r in result.sim_results))
            metrics["fault_events"] = int(sum(
                int(r.meta.get("fault_events", 0))
                for r in result.sim_results))
            metrics["robustness_slowdowns"] = {
                str(int(r.buffer_bytes)):
                    float(r.meta.get("robustness_slowdown", 1.0))
                for r in result.sim_results}
    cluster = result.cluster_result
    if cluster is not None:
        import numpy as np

        slowdowns = [job.slowdown for job in cluster.jobs]
        metrics["cluster_jobs"] = len(cluster.jobs)
        metrics["makespan_seconds"] = float(cluster.makespan_seconds)
        metrics["fabric_utilization"] = float(cluster.fabric_utilization)
        metrics["job_slowdown_p50"] = float(np.percentile(slowdowns, 50))
        metrics["job_slowdown_p99"] = float(np.percentile(slowdowns, 99))
        # Per-job mappings keyed by job id (dicts, not lists: the record
        # validator requires scalar-or-mapping metric values).
        metrics["job_slowdowns"] = {
            str(job.job_id): float(job.slowdown) for job in cluster.jobs}
        metrics["job_completion_seconds"] = {
            str(job.job_id): float(job.completion_seconds)
            for job in cluster.jobs}
        metrics["sim_fill_rounds"] = int(cluster.fill_rounds)
        metrics["sim_events"] = int(cluster.events)
    return metrics


def _timings_from_plan(result: PlanResult) -> Dict[str, float]:
    timings = {f"{stage}_seconds": seconds
               for stage, seconds in result.stage_seconds.items()}
    # Assembly/solve phases describe work done *now*; a schedule served from
    # the stage cache carries the original miss's numbers in its metadata, so
    # only surface them when this run actually synthesized (mirrors the
    # engine dropping stale timings on LP-cache hits).
    if result.stage_cache.get("synthesize") != "hit":
        info = result.engine_info()
        for phase in ("assemble_seconds", "solve_seconds"):
            if isinstance(info.get(phase), (int, float)):
                timings[phase] = float(info[phase])
    timings["total_seconds"] = sum(result.stage_seconds.values())
    return timings


def result_from_plan(scenario: Scenario, result: PlanResult,
                     through: str = "simulate",
                     key: Optional[str] = None) -> ScenarioResult:
    """Wrap an executed :class:`PlanResult` as an ``ok`` :class:`ScenarioResult`.

    Shared by the sweep executor and callers that drive plans directly (the
    benchmark wrappers in :mod:`repro.report.specs`), so both produce records
    with identical metric/timing semantics.
    """
    return ScenarioResult(
        scenario=scenario, key=scenario.key() if key is None else key,
        status="ok",
        metrics=metrics_from_plan(result),
        timings=_timings_from_plan(result),
        engine=result.engine_info(),
        stage_cache=dict(result.stage_cache),
        through=through,
        plan=result,
    )


def _execute(scenario: Scenario, through: str, cache: Optional[SolutionCache],
             n_jobs: int) -> ScenarioResult:
    key = ""
    try:
        # Key computation resolves the topology, so a bad spec surfaces here
        # as an error record (with an empty key) instead of killing the sweep.
        key = scenario.key()
        plan = Plan(scenario, cache=cache, n_jobs=n_jobs)
        result = plan.run(through=through)
    except Exception as exc:  # noqa: BLE001 - captured per scenario
        return ScenarioResult(scenario=scenario, key=key, status="error",
                              error=f"{type(exc).__name__}: {exc}", exception=exc)
    return result_from_plan(scenario, result, through=through, key=key)


# --------------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------------- #
def run_scenarios(scenarios: Sequence[Scenario], jobs: int = 1,
                  through: str = "simulate",
                  cache: Optional[SolutionCache] = None,
                  n_jobs: int = 1) -> List[ScenarioResult]:
    """Run scenarios (optionally concurrently), capturing per-scenario errors.

    Results keep input order; parallel output is identical to serial because
    every scenario is independent and the LP/stage caches are shared.
    """
    runner = ParallelRunner(jobs=jobs)
    return runner.map(lambda s: _execute(s, through, cache, n_jobs), list(scenarios))


def run_sweep(scenarios: Sequence[Scenario], out_path: Optional[str] = None,
              jobs: int = 1, resume: bool = False, through: str = "simulate",
              cache: Optional[SolutionCache] = None,
              n_jobs: int = 1, workers: int = 1) -> List[ScenarioResult]:
    """Execute a sweep with streaming JSONL output and optional resume.

    Parameters
    ----------
    out_path:
        JSONL file to append one record per completed scenario to (created
        if missing).  ``None`` runs the sweep without persistence.
    resume:
        If True and ``out_path`` has records, scenarios whose key already has
        an ``ok`` record are *not* re-executed; their stored record is
        returned (``resumed=True``) in place.  Errored records are retried.
    jobs:
        Scenarios executed concurrently (threads share the caches).
    workers:
        Worker *processes*.  ``workers > 1`` hands the whole sweep to the
        work-stealing multiprocess executor
        (:func:`~repro.experiments.executor.run_sweep_workers`): records
        stream to per-worker shards under ``<out_path>.shards/`` and
        ``out_path`` becomes their deterministic hash-sorted merge; ``jobs``
        and ``cache`` are then ignored (each worker is its own process with
        its own caches, bridged by the shared artifact plane).  The default
        of 1 keeps the historical in-process thread path untouched.
    """
    if workers > 1:
        from .executor import run_sweep_workers

        results, _stats = run_sweep_workers(
            scenarios, out_path=out_path, workers=workers, resume=resume,
            through=through, n_jobs=n_jobs)
        return results
    scenarios = list(scenarios)
    done: Dict[str, Dict[str, object]] = {}
    if resume and out_path and os.path.exists(out_path):
        done = completed_records([out_path], through=through)

    lock = threading.Lock()
    out_fh = open(out_path, "a") if out_path else None
    if out_fh is not None and out_fh.tell() > 0:
        # A killed sweep can leave a torn final line with no newline; start a
        # fresh line so the first appended record isn't glued onto it.
        with open(out_path, "rb") as check:
            check.seek(-1, os.SEEK_END)
            if check.read(1) != b"\n":
                out_fh.write("\n")
    try:
        def run_one(scenario: Scenario) -> ScenarioResult:
            try:
                key = scenario.key()
            except Exception:  # noqa: BLE001 - bad spec: let _execute record it
                key = ""
            record = done.get(key) if key else None
            if record is not None:
                return ScenarioResult(
                    scenario=scenario, key=key, status="ok",
                    metrics=dict(record.get("metrics", {})),
                    timings=dict(record.get("timings", {})),
                    engine=dict(record.get("engine", {})),
                    stage_cache=dict(record.get("stage_cache", {})),
                    through=str(record.get("through", "simulate")),
                    resumed=True,
                )
            result = _execute(scenario, through, cache, n_jobs)
            if out_fh is not None:
                line = json.dumps(result.to_record(), sort_keys=True)
                with lock:
                    out_fh.write(line + "\n")
                    out_fh.flush()
            return result

        return ParallelRunner(jobs=jobs).map(run_one, scenarios)
    finally:
        if out_fh is not None:
            out_fh.close()


# --------------------------------------------------------------------------- #
# JSONL / CSV I/O
# --------------------------------------------------------------------------- #
#: Parsed-file cache for the shared reader: absolute path -> ((mtime_ns,
#: size), records).  ``load_results``/``completed_keys``/``completed_records``
#: used to each re-read and re-parse the full JSONL on every call — with
#: multi-shard resume consulting several files repeatedly, each file is now
#: parsed once per on-disk state.  Bounded: oldest entry evicted beyond
#: ``_READ_CACHE_MAX`` (sweep outputs plus a handful of shards in practice).
_read_cache: Dict[str, Tuple[Tuple[int, int], List[Dict[str, object]]]] = {}
_read_cache_lock = threading.Lock()
_READ_CACHE_MAX = 32


def load_results(path: str) -> List[Dict[str, object]]:
    """Parse a sweep JSONL file, skipping torn trailing lines.

    A sweep killed mid-write can leave a partial last line; treating it as
    absent (rather than failing) is what makes resume-after-kill work.
    Results are served from a parse cache keyed by the file's (mtime, size)
    signature, so repeated resume/merge passes over the same files parse
    each file once; appending to the file invalidates its entry.
    """
    abspath = os.path.abspath(path)
    stat = os.stat(abspath)
    signature = (stat.st_mtime_ns, stat.st_size)
    with _read_cache_lock:
        cached = _read_cache.get(abspath)
        if cached is not None and cached[0] == signature:
            return list(cached[1])
    records: List[Dict[str, object]] = []
    with open(abspath) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(rec, dict) and "key" in rec:
                records.append(rec)
    with _read_cache_lock:
        if abspath not in _read_cache and len(_read_cache) >= _READ_CACHE_MAX:
            _read_cache.pop(next(iter(_read_cache)))
        _read_cache[abspath] = (signature, records)
    return list(records)


def completed_keys(path: str) -> List[str]:
    """Keys of scenarios with an ``ok`` record in a sweep JSONL file.

    Deduplicated (first occurrence wins): a scenario whose record appears in
    several merged shards counts once.
    """
    seen: Dict[str, None] = {}
    for rec in load_results(path):
        if rec.get("status") == "ok":
            seen.setdefault(str(rec["key"]), None)
    return list(seen)


def completed_records(paths: Sequence[str], through: str = "simulate",
                      ok_only: bool = True) -> Dict[str, Dict[str, object]]:
    """Resumable records across one or more JSONL files, deduped by key.

    The single source of resume truth for both the thread path and the
    multiprocess executor: a scenario whose record appears in two shards (or
    in a shard *and* the merged output) resolves to one entry, so resume
    never re-runs it and a merge never duplicates it.

    Only records that ran at least as far as ``through`` count as complete
    (a synthesize-only record must not satisfy a simulate sweep), and only
    records from the current scenario schema layout resume at all (older
    keys are incomparable).  Dedupe is first-wins in ``paths`` order, except
    that an ``ok`` record always displaces an ``error`` one; with
    ``ok_only`` (the default) error records are dropped entirely —
    ``ok_only=False`` keeps them for callers rebuilding full result sets.
    """
    from .scenario import STAGES

    needed = STAGES.index(through)
    out: Dict[str, Dict[str, object]] = {}
    for path in paths:
        if not os.path.exists(path):
            continue
        for rec in load_results(path):
            if rec.get("schema_version") != scenario_schema_version():
                continue
            key = str(rec.get("key") or "")
            if not key:
                continue
            if rec.get("status") == "ok":
                if rec.get("through") not in STAGES \
                        or STAGES.index(rec["through"]) < needed:
                    continue
                existing = out.get(key)
                if existing is None or existing.get("status") != "ok":
                    out[key] = rec
            elif not ok_only:
                out.setdefault(key, rec)
    return out


def write_csv(results: Iterable[ScenarioResult], path: str) -> None:
    """Flatten results to CSV (one row per scenario x buffer size).

    Scenarios without simulation points emit a single row with empty buffer
    columns, so synthesis-only sweeps still round-trip.
    """
    rows: List[Dict[str, object]] = []
    for res in results:
        base = {
            "key": res.key,
            "label": res.scenario.label(),
            "status": res.status,
            "scheme": res.scenario.scheme,
            "topology": (res.scenario.topology if isinstance(res.scenario.topology, str)
                         else res.scenario.topology.name),
            "concurrent_flow": res.metrics.get("concurrent_flow", ""),
            "all_to_all_time": res.metrics.get("all_to_all_time", ""),
            "error": res.error or "",
        }
        throughputs = res.metrics.get("throughput_bytes_per_s") or {}
        if throughputs:
            for buf, tp in throughputs.items():
                rows.append({**base, "buffer_bytes": buf, "throughput_bytes_per_s": tp})
        else:
            rows.append({**base, "buffer_bytes": "", "throughput_bytes_per_s": ""})
    fieldnames = ["key", "label", "status", "scheme", "topology", "concurrent_flow",
                  "all_to_all_time", "buffer_bytes", "throughput_bytes_per_s", "error"]
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


def sweep_stats(results: Sequence[ScenarioResult],
                executor: Optional[object] = None) -> Dict[str, object]:
    """Aggregate accounting across a sweep (for the CLI stats footer).

    ``executor`` takes the :class:`~repro.experiments.executor.ExecutorStats`
    of a multiprocess run (e.g. from
    :func:`~repro.experiments.executor.last_executor_stats`); its counters —
    scenarios/sec, per-worker completed counts, steal count, shared-artifact
    hits/misses — are folded into the returned mapping.
    """
    totals = {"scenarios": len(results),
              "ok": sum(1 for r in results if r.status == "ok"),
              "errors": sum(1 for r in results if r.status == "error"),
              "resumed": sum(1 for r in results if r.resumed),
              "assemble_seconds": 0.0, "solve_seconds": 0.0,
              "stage_hits": 0, "stage_misses": 0}
    if executor is not None:
        totals["workers"] = executor.workers
        totals["per_worker_completed"] = list(executor.completed)
        totals["steals"] = executor.steals
        totals["shared_hits"] = executor.shared_hits
        totals["shared_misses"] = executor.shared_misses
        totals["scenarios_per_sec"] = executor.scenarios_per_sec
    for res in results:
        if not res.resumed:
            # Resumed records carry the *original* run's timings; summing them
            # here would report solver work this run never did.
            totals["assemble_seconds"] += float(res.timings.get("assemble_seconds", 0.0))
            totals["solve_seconds"] += float(res.timings.get("solve_seconds", 0.0))
        for status in res.stage_cache.values():
            if status == "hit":
                totals["stage_hits"] += 1
            elif status == "miss":
                totals["stage_misses"] += 1
    return totals
