"""Declarative experiment layer: scenarios, staged plans, grid sweeps.

The paper's Fig. 1 flow (topology -> MCF variant -> schedule IR ->
simulator) expressed as data instead of glue code:

* :class:`Scenario` — one experiment (topology x workload x fabric x scheme
  plus chunking/simulation knobs) with canonical, per-stage content hashing;
* :class:`Plan` — executes a scenario as explicit synthesize -> lower ->
  validate -> simulate stages with per-stage artifact caching (memory +
  optional ``$REPRO_CACHE_DIR/stages`` disk tier, reusing the engine's
  :class:`~repro.engine.cache.SolutionCache`);
* :class:`SweepGrid` + :func:`run_sweep` — cartesian scenario grids executed
  through :class:`~repro.engine.runner.ParallelRunner` with streaming JSONL
  records, resumable by scenario hash;
* :func:`run_sweep_workers` (or ``run_sweep(workers=N)``) — the same sweep
  across work-stealing worker *processes* with per-worker resumable JSONL
  shards, a deterministic hash-sorted merge, and a shared artifact plane
  (:class:`SharedArtifactPlane`) so workers skip re-synthesizing hot
  ``(topology, scheme)`` artifacts.

``analysis.sweep.compare_schemes``, the ``repro sweep`` CLI subcommand and
the Fig. 3 / Fig. 4 / Table 1 benchmarks are all thin layers over this
module, so adding a topology x workload x fabric combination is a data
change, not a code change.
"""

from .executor import (
    ExecutorStats,
    SharedArtifactPlane,
    last_executor_stats,
    merge_shards,
    run_sweep_workers,
)
from .plan import Plan, PlanResult, configure_plan_cache, get_plan_cache, reset_plan_cache
from .scenario import (
    SCHEMES,
    STAGES,
    Scenario,
    available_scenario_schemes,
    resolve_scheme,
    scenario_schema_version,
)
from .sweep import (
    ScenarioResult,
    SweepGrid,
    completed_keys,
    completed_records,
    load_results,
    metrics_from_plan,
    result_from_plan,
    run_scenarios,
    run_sweep,
    sweep_stats,
    write_csv,
)

__all__ = [
    "Plan",
    "PlanResult",
    "configure_plan_cache",
    "get_plan_cache",
    "reset_plan_cache",
    "SCHEMES",
    "STAGES",
    "Scenario",
    "available_scenario_schemes",
    "resolve_scheme",
    "scenario_schema_version",
    "ExecutorStats",
    "SharedArtifactPlane",
    "last_executor_stats",
    "merge_shards",
    "run_sweep_workers",
    "ScenarioResult",
    "SweepGrid",
    "completed_keys",
    "completed_records",
    "load_results",
    "metrics_from_plan",
    "result_from_plan",
    "run_scenarios",
    "run_sweep",
    "sweep_stats",
    "write_csv",
]
