"""Work-stealing multiprocess sweep executor with shared-memory artifacts.

:func:`run_sweep_workers` scales :func:`~repro.experiments.sweep.run_sweep`
past the GIL: the scenario grid becomes a work queue keyed by scenario hash,
N worker *processes* pull scenarios from their own contiguous slice and steal
from the tail of the busiest sibling when idle, and each worker streams one
JSONL record per completed scenario to its own resumable shard under
``<out>.shards/``.  When every worker has drained, the parent merges the
shards (plus any pre-existing output) into the same single JSONL file the
thread-based sweep emits: records sorted by scenario hash, duplicate keys
deduped (``ok`` beats ``error``, first occurrence wins), torn trailing lines
healed by being skipped.

Workers skip re-synthesis through a :class:`SharedArtifactPlane`: a
read-mostly artifact tier for hot stage keys (stage keys shared by two or
more pending scenarios — the topology/``FlowProgram``/schedule payloads of
hot ``(topology, scheme)`` pairs).  The plane attaches to the per-process
stage cache (:meth:`repro.engine.cache.SolutionCache.attach_shared`), so the
first worker to synthesize a schedule publishes it and every other worker's
lookup is a cross-process hit instead of an LP solve.  Two backends:

* ``shm``  — ``multiprocessing.shared_memory`` segments with deterministic
  names derived from the run id and stage key (POSIX; the default);
* ``mmap`` — memory-mapped pickle files under a run-scoped directory
  (``$REPRO_CACHE_DIR`` when set, else the system temp dir).

Either way the parent owns cleanup: segments/files are removed when the
executor returns, whether workers exited cleanly or crashed.

Execution accounting (per-worker completed counts, steal count, shared
hits/misses, scenarios/sec) is returned as :class:`ExecutorStats` and kept
retrievable via :func:`last_executor_stats` for callers that reach the
executor through ``run_sweep(workers=N)`` and only want the footer numbers.
"""

from __future__ import annotations

import json
import mmap
import os
import pickle
import shutil
import signal
import struct
import tempfile
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .scenario import STAGES, Scenario

__all__ = ["ExecutorStats", "SharedArtifactPlane", "merge_shards",
           "run_sweep_workers", "last_executor_stats", "shard_paths"]

#: Record sections that describe *how* a run executed (wall-clock, cache
#: luck) rather than *what* it computed.  Dropped by canonical comparisons —
#: everything else in a record is deterministic for a deterministic scenario.
VOLATILE_RECORD_FIELDS = ("timings", "engine", "stage_cache")


# --------------------------------------------------------------------------- #
# Stats
# --------------------------------------------------------------------------- #
@dataclass
class ExecutorStats:
    """Accounting for one multiprocess sweep execution."""

    workers: int = 0
    completed: List[int] = field(default_factory=list)  # per-worker fresh records
    steals: int = 0
    shared_hits: int = 0
    shared_misses: int = 0
    elapsed_seconds: float = 0.0
    failed_workers: List[int] = field(default_factory=list)

    @property
    def scenarios_per_sec(self) -> float:
        """Fresh scenarios completed per wall-clock second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return sum(self.completed) / self.elapsed_seconds

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (the ``--workers`` stats footer)."""
        return {"workers": self.workers, "completed": list(self.completed),
                "steals": self.steals, "shared_hits": self.shared_hits,
                "shared_misses": self.shared_misses,
                "elapsed_seconds": self.elapsed_seconds,
                "scenarios_per_sec": self.scenarios_per_sec,
                "failed_workers": list(self.failed_workers)}


_last_stats: Optional[ExecutorStats] = None


def last_executor_stats() -> Optional[ExecutorStats]:
    """Stats of the most recent :func:`run_sweep_workers` call in this process.

    ``run_sweep(workers=N)`` keeps its historical return type (the result
    list); callers that want the executor footer (the CLI, examples) read the
    stats from here afterwards.
    """
    return _last_stats


# --------------------------------------------------------------------------- #
# Shared artifact plane
# --------------------------------------------------------------------------- #
_LEN_HEADER = struct.Struct("<Q")


def _shm_unregister(name: str) -> None:
    """Detach a segment from this process's resource tracker.

    Each worker's tracker would otherwise unlink segments when that worker
    exits (killing the plane for its siblings) and warn about "leaked"
    objects; the parent owns the real cleanup in :meth:`SharedArtifactPlane.cleanup`.
    """
    try:  # pragma: no cover - tracker layout is interpreter-internal
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # noqa: BLE001 - best effort on every platform
        pass


class SharedArtifactPlane:
    """Cross-process, read-mostly store for hot stage artifacts.

    Only keys in ``publishable`` (the hot set computed by the parent) are
    accepted; everything else is silently ignored so cold artifacts never
    bloat shared memory.  Payloads are opaque bytes (pickled stage
    artifacts); the plane never unpickles on behalf of a caller.

    The object is picklable/fork-inheritable: it carries only the run id,
    backend choice, root directory and the publishable key set.  Hit/miss
    counters are therefore *per process*; workers report theirs back to the
    parent, which aggregates them into :class:`ExecutorStats`.
    """

    def __init__(self, run_id: Optional[str] = None, backend: str = "auto",
                 root: Optional[str] = None,
                 publishable: Optional[Set[str]] = None) -> None:
        if backend not in ("auto", "shm", "mmap"):
            raise ValueError(f"backend must be auto/shm/mmap, got {backend!r}")
        self.run_id = run_id or uuid.uuid4().hex[:12]
        if backend == "auto":
            backend = "shm" if _shm_available() else "mmap"
        self.backend = backend
        self.publishable = set(publishable or ())
        if backend == "mmap":
            if root is None:
                base = os.environ.get("REPRO_CACHE_DIR") or tempfile.gettempdir()
                root = os.path.join(base, f"repro-shared-{self.run_id}")
            os.makedirs(root, exist_ok=True)
        self.root = root
        self.hits = 0
        self.misses = 0
        self.publishes = 0

    # -- naming ---------------------------------------------------------- #
    def segment_name(self, key: str) -> str:
        """Deterministic segment/file name for a stage key.

        Deterministic on purpose: workers discover each other's artifacts by
        name alone (no registry process), and the parent can clean up after a
        crashed worker by recomputing the candidate names from the grid.
        """
        return f"repro-{self.run_id}-{key[:16]}"

    def _file_path(self, key: str) -> str:
        return os.path.join(self.root, self.segment_name(key) + ".artifact")

    # -- publish / get --------------------------------------------------- #
    def publish(self, key: str, payload: bytes) -> bool:
        """Publish a payload for a hot key; returns True if stored.

        First writer wins; a concurrent publish of the same key is a no-op
        (the payloads are content-addressed, so they are identical anyway).
        """
        if key not in self.publishable:
            return False
        if self.backend == "shm":
            from multiprocessing import shared_memory

            try:
                seg = shared_memory.SharedMemory(
                    name=self.segment_name(key), create=True,
                    size=_LEN_HEADER.size + len(payload))
            except FileExistsError:
                return False
            except OSError:  # pragma: no cover - ENOSPC etc.: plane is best effort
                return False
            try:
                seg.buf[:_LEN_HEADER.size] = _LEN_HEADER.pack(len(payload))
                seg.buf[_LEN_HEADER.size:_LEN_HEADER.size + len(payload)] = payload
            finally:
                _shm_unregister(seg.name)
                seg.close()
        else:
            path = self._file_path(key)
            if os.path.exists(path):
                return False
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
                os.replace(tmp, path)
            except OSError:  # pragma: no cover - best effort
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                return False
        self.publishes += 1
        return True

    def get(self, key: str) -> Optional[bytes]:
        """Fetch a payload published by any process, or None."""
        if key not in self.publishable:
            return None
        payload = self._read(key)
        if payload is None:
            self.misses += 1
        else:
            self.hits += 1
        return payload

    def _read(self, key: str) -> Optional[bytes]:
        if self.backend == "shm":
            from multiprocessing import shared_memory

            try:
                seg = shared_memory.SharedMemory(name=self.segment_name(key))
            except (FileNotFoundError, OSError):
                return None
            try:
                _shm_unregister(seg.name)
                (length,) = _LEN_HEADER.unpack_from(seg.buf, 0)
                return bytes(seg.buf[_LEN_HEADER.size:_LEN_HEADER.size + length])
            finally:
                seg.close()
        try:
            with open(self._file_path(key), "rb") as fh:
                with mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ) as view:
                    return bytes(view)
        except (OSError, ValueError):
            return None

    # -- counters / cleanup --------------------------------------------- #
    def counters(self) -> Dict[str, int]:
        """Per-process hit/miss/publish counts."""
        return {"hits": self.hits, "misses": self.misses,
                "publishes": self.publishes}

    def cleanup(self) -> None:
        """Remove every segment/file this plane could have created.

        Parent-side; safe to call multiple times and after worker crashes —
        candidate names are recomputed from the publishable key set, so a
        segment published by a since-killed worker is still found.
        """
        if self.backend == "shm":
            from multiprocessing import shared_memory

            for key in self.publishable:
                try:
                    seg = shared_memory.SharedMemory(name=self.segment_name(key))
                except (FileNotFoundError, OSError):
                    continue
                # No explicit tracker unregister here: attaching registered
                # the name, and unlink() below unregisters it itself — the
                # pair stays balanced, with no tracker KeyError noise.
                seg.close()
                try:
                    seg.unlink()
                except (FileNotFoundError, OSError):  # pragma: no cover
                    pass
        elif self.root and os.path.isdir(self.root):
            shutil.rmtree(self.root, ignore_errors=True)


def _shm_available() -> bool:
    try:
        from multiprocessing import shared_memory  # noqa: F401

        return os.name == "posix"
    except ImportError:  # pragma: no cover - always present on >=3.8
        return False


def hot_stage_keys(scenarios: Sequence[Scenario]) -> Set[str]:
    """Stage keys shared by >= 2 scenarios (the plane's publishable set).

    These are exactly the artifacts worth sharing across workers: e.g. the
    synthesized schedule of a hot ``(topology, scheme)`` pair that a grid
    sweeps over many fabrics/overlaps/buffer sets.  Scenario hashing failures
    (bad specs) are skipped — those scenarios produce error records instead.
    """
    counts: Dict[str, int] = {}
    for scenario in scenarios:
        for stage in STAGES:
            try:
                key = scenario.stage_key(stage)
            except Exception:  # noqa: BLE001 - bad spec errors at execution
                break
            counts[key] = counts.get(key, 0) + 1
    return {key for key, n in counts.items() if n >= 2}


# --------------------------------------------------------------------------- #
# Work-stealing queue
# --------------------------------------------------------------------------- #
def partition_ranges(num_items: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``range(num_items)`` into ``workers`` contiguous [lo, hi) slices."""
    base, extra = divmod(num_items, workers)
    ranges = []
    lo = 0
    for i in range(workers):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def claim_index(worker: int, ranges, lock, steals) -> Optional[Tuple[int, bool]]:
    """Claim the next work index for ``worker``; steal when its slice is dry.

    ``ranges`` is a flat shared array ``[head0, tail0, head1, tail1, ...]``.
    Owners pop from their *head*; a dry worker steals one index from the
    *tail* of the victim with the most remaining work (tail-stealing keeps
    the victim's cache-warm head region with its owner).  Returns
    ``(index, stolen)`` or ``None`` when the whole queue is drained.
    """
    workers = len(ranges) // 2
    with lock:
        head, tail = ranges[2 * worker], ranges[2 * worker + 1]
        if head < tail:
            ranges[2 * worker] = head + 1
            return head, False
        victim, best = -1, 0
        for j in range(workers):
            remaining = ranges[2 * j + 1] - ranges[2 * j]
            if remaining > best:
                victim, best = j, remaining
        if victim < 0:
            return None
        ranges[2 * victim + 1] -= 1
        steals.value += 1
        return ranges[2 * victim + 1], True


# --------------------------------------------------------------------------- #
# Shards and merge
# --------------------------------------------------------------------------- #
def shard_dir_for(out_path: str) -> str:
    """Directory holding the per-worker shards for an output file."""
    return out_path + ".shards"


def shard_paths(shard_dir: str) -> List[str]:
    """Existing worker shards in a shard directory, in deterministic order."""
    if not os.path.isdir(shard_dir):
        return []
    return sorted(os.path.join(shard_dir, name)
                  for name in os.listdir(shard_dir)
                  if name.startswith("worker-") and name.endswith(".jsonl"))


def _open_shard(path: str):
    """Open a shard for appending, healing a torn trailing line first."""
    fh = open(path, "a")
    if fh.tell() > 0:
        with open(path, "rb") as check:
            check.seek(-1, os.SEEK_END)
            if check.read(1) != b"\n":
                fh.write("\n")
    return fh


def merge_shards(out_path: str, shard_dir: str) -> int:
    """Merge worker shards (and any existing output) into one JSONL file.

    Deterministic by construction: records are parsed with torn trailing
    lines skipped (:func:`~repro.experiments.sweep.load_results`), deduped by
    scenario hash (``ok`` beats ``error``; among equals the first occurrence
    in ``out_path``-then-sorted-shards order wins), sorted by hash, and
    written atomically.  Records with an empty key (scenarios whose spec
    failed to hash) cannot be deduped by identity and are all kept, ordered
    by their serialized form.  Returns the number of records written.
    """
    from .sweep import load_results

    def rank(rec: Dict[str, object]) -> Tuple[int, int]:
        """Dedup preference: ok beats error, deeper pipeline beats shallower.

        A simulate re-run must displace a stale synthesize-only record.
        """
        ok = 1 if rec.get("status") == "ok" else 0
        through = rec.get("through")
        return ok, STAGES.index(through) if through in STAGES else -1

    paths = ([out_path] if os.path.exists(out_path) else []) + shard_paths(shard_dir)
    by_key: Dict[str, Dict[str, object]] = {}
    unkeyed: List[Dict[str, object]] = []
    for path in paths:
        for rec in load_results(path):
            key = str(rec.get("key") or "")
            if not key:
                unkeyed.append(rec)
                continue
            existing = by_key.get(key)
            if existing is None or rank(rec) > rank(existing):
                by_key[key] = rec
    lines = [json.dumps(rec, sort_keys=True)
             for rec in (by_key[k] for k in sorted(by_key))]
    unkeyed_lines = sorted(json.dumps(rec, sort_keys=True) for rec in unkeyed)
    lines = unkeyed_lines + lines

    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(os.path.abspath(out_path)),
                               suffix=".jsonl.tmp")
    with os.fdopen(fd, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    os.replace(tmp, out_path)
    return len(lines)


# --------------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------------- #
def _worker_main(worker: int, scenarios: Sequence[Scenario],
                 pending: Sequence[int], ranges, lock, steals,
                 shard_path: str, through: str, n_jobs: int,
                 plane: Optional[SharedArtifactPlane], result_q,
                 fault: Optional[Mapping[str, int]]) -> None:
    """Worker loop: claim -> execute -> append record -> repeat.

    Runs in a child process.  Scenario failures become error records exactly
    like the thread path (:func:`~repro.experiments.sweep._execute` is
    shared); only a crash of the worker itself loses in-flight work, and the
    flushed shard bounds that loss to one scenario.
    """
    from .plan import get_plan_cache
    from .sweep import _execute

    if plane is not None:
        get_plan_cache().attach_shared(plane)
    completed = 0
    fh = _open_shard(shard_path)
    try:
        while True:
            claim = claim_index(worker, ranges, lock, steals)
            if claim is None:
                break
            index, _stolen = claim
            result = _execute(scenarios[pending[index]], through, None, n_jobs)
            fh.write(json.dumps(result.to_record(), sort_keys=True) + "\n")
            fh.flush()
            completed += 1
            if fault and fault.get("worker") == worker \
                    and completed >= int(fault.get("after", 0)):
                # Test seam: simulate a hard crash mid-write.  The torn line
                # exercises exactly the healing path a real SIGKILL leaves.
                fh.write('{"key": "torn-')
                fh.flush()
                os.kill(os.getpid(), signal.SIGKILL)
    finally:
        fh.close()
    stage_stats = get_plan_cache().stats()
    result_q.put({"worker": worker, "completed": completed,
                  "shared": plane.counters() if plane is not None else {},
                  "stage_shared_hits": int(stage_stats.get("shared_hits", 0))})


# --------------------------------------------------------------------------- #
# Parent orchestration
# --------------------------------------------------------------------------- #
def run_sweep_workers(scenarios: Sequence[Scenario],
                      out_path: Optional[str] = None,
                      workers: int = 2, resume: bool = False,
                      through: str = "simulate", n_jobs: int = 1,
                      shared_artifacts: bool = True,
                      shared_backend: str = "auto",
                      fault_injection: Optional[Mapping[str, int]] = None):
    """Execute a sweep across worker processes; returns (results, stats).

    Semantics match :func:`~repro.experiments.sweep.run_sweep`: one record
    per scenario, resume by scenario hash, per-scenario error capture.  The
    differences are mechanical — workers are processes, records stream to
    per-worker shards, and the final ``out_path`` is the deterministic merge
    of those shards (sorted by scenario hash; a serial run's output sorted
    the same way matches it record for record, modulo the
    :data:`VOLATILE_RECORD_FIELDS` execution-accounting sections).

    A worker dying (OOM kill, crash) does not lose the sweep: surviving
    workers drain the queue including the dead worker's unclaimed slice
    (work stealing doubles as crash redistribution for unstarted scenarios),
    completed records persist in its shard, and the parent merges what exists
    before raising ``RuntimeError`` — a re-run with ``resume=True`` finishes
    only what is missing, with zero duplicate records after the merge.

    ``fault_injection`` (tests only) kills ``{"worker": i}`` after it has
    written ``{"after": n}`` records, leaving a torn trailing line.
    """
    import multiprocessing as mp

    from .sweep import ScenarioResult, _execute, completed_records, load_results

    global _last_stats
    scenarios = list(scenarios)
    workers = max(1, int(workers))
    start = time.perf_counter()

    keys: List[str] = []
    for scenario in scenarios:
        try:
            keys.append(scenario.key())
        except Exception:  # noqa: BLE001 - recorded as an error record later
            keys.append("")

    own_tmp: Optional[str] = None
    if out_path is not None:
        shard_dir = shard_dir_for(out_path)
    else:
        own_tmp = tempfile.mkdtemp(prefix="repro-sweep-")
        out_path = os.path.join(own_tmp, "sweep.jsonl")
        shard_dir = shard_dir_for(out_path)
    os.makedirs(shard_dir, exist_ok=True)

    done: Dict[str, Dict[str, object]] = {}
    if resume:
        sources = ([out_path] if os.path.exists(out_path) else []) \
            + shard_paths(shard_dir)
        done = completed_records(sources, through=through)

    pending = [i for i, key in enumerate(keys) if not key or key not in done]
    stats = ExecutorStats(workers=workers, completed=[0] * workers)

    plane: Optional[SharedArtifactPlane] = None
    if shared_artifacts and workers > 1 and pending:
        hot = hot_stage_keys([scenarios[i] for i in pending])
        if hot:
            plane = SharedArtifactPlane(backend=shared_backend, publishable=hot)

    procs: List = []
    try:
        if pending:
            ctx = mp.get_context()
            ranges = ctx.Array("q", 2 * workers, lock=False)
            for i, (lo, hi) in enumerate(partition_ranges(len(pending), workers)):
                ranges[2 * i], ranges[2 * i + 1] = lo, hi
            lock = ctx.Lock()
            steals = ctx.Value("q", 0, lock=False)
            result_q = ctx.Queue()
            shard_files = [os.path.join(shard_dir, f"worker-{i}.jsonl")
                           for i in range(workers)]
            before = [len(load_results(p)) if os.path.exists(p) else 0
                      for p in shard_files]
            for i in range(workers):
                proc = ctx.Process(
                    target=_worker_main,
                    args=(i, scenarios, pending, ranges, lock, steals,
                          shard_files[i], through, n_jobs, plane, result_q,
                          fault_injection),
                    name=f"sweep-worker-{i}")
                proc.start()
                procs.append(proc)
            for proc in procs:
                proc.join()
            while True:
                try:
                    report = result_q.get_nowait()
                except Exception:  # noqa: BLE001 - queue.Empty or closed
                    break
                shared = report.get("shared", {})
                stats.shared_hits += int(shared.get("hits", 0))
                stats.shared_misses += int(shared.get("misses", 0))
            result_q.close()
            # Completed counts from shard growth: correct even for a worker
            # that died before reporting its stats.
            for i, path in enumerate(shard_files):
                after = len(load_results(path)) if os.path.exists(path) else 0
                stats.completed[i] = max(0, after - before[i])
            stats.steals = int(steals.value)
            stats.failed_workers = [i for i, proc in enumerate(procs)
                                    if proc.exitcode != 0]
        merged = merge_shards(out_path, shard_dir)
        if not stats.failed_workers:
            shutil.rmtree(shard_dir, ignore_errors=True)
        stats.elapsed_seconds = time.perf_counter() - start
        _last_stats = stats

        if stats.failed_workers:
            raise RuntimeError(
                f"sweep worker(s) {stats.failed_workers} died; {merged} "
                f"record(s) merged to {out_path} — re-run with resume=True "
                f"to complete the sweep")

        final = completed_records([out_path], through=through, ok_only=False)
        results: List[ScenarioResult] = []
        for scenario, key in zip(scenarios, keys):
            rec = final.get(key) if key else None
            if rec is None:
                # Hash failure: the worker recorded an empty-key error record;
                # reconstruct the same error result shape locally.
                results.append(_execute(scenario, through, None, n_jobs)
                               if not key else ScenarioResult(
                                   scenario=scenario, key=key, status="error",
                                   error="record missing after merge"))
                continue
            results.append(ScenarioResult(
                scenario=scenario, key=key,
                status=str(rec.get("status", "error")),
                metrics=dict(rec.get("metrics") or {}),
                timings=dict(rec.get("timings") or {}),
                engine=dict(rec.get("engine") or {}),
                stage_cache=dict(rec.get("stage_cache") or {}),
                through=str(rec.get("through", through)),
                error=rec.get("error"),
                resumed=key in done,
            ))
        return results, stats
    finally:
        if plane is not None:
            plane.cleanup()
        if own_tmp is not None:
            shutil.rmtree(own_tmp, ignore_errors=True)
