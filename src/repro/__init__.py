"""repro: all-to-all collective communication schedules for direct-connect topologies.

A reproduction of "Efficient all-to-all Collective Communication Schedules for
Direct-connect Topologies" (HPDC 2024): MCF-based schedule synthesis
(link-based, decomposed, time-stepped, path-based), baselines, topology
generators (generalized Kautz, tori, hypercubes, expanders), schedule
compilation to MSCCL/oneCCL/OMPI-style XML, a direct-connect fabric simulator,
and application workloads (3D FFT, DLRM, MoE).
"""

from . import (
    analysis,
    baselines,
    constants,
    core,
    engine,
    experiments,
    paths,
    perf,
    report,
    routing,
    schedule,
    simulator,
    topology,
    workloads,
)

__version__ = "1.10.0"

__all__ = [
    "analysis",
    "baselines",
    "constants",
    "core",
    "engine",
    "experiments",
    "paths",
    "perf",
    "report",
    "routing",
    "schedule",
    "simulator",
    "topology",
    "workloads",
    "__version__",
]
