"""DF-SSSP style deadlock removal (§5.5).

DF-SSSP (Domke, Hoefler, Nagel [19]) computes deadlock-free single-source
shortest-path routing for arbitrary topologies by assigning routes to virtual
layers *after* the routes have been computed, moving routes that close a cycle
in the channel dependency graph to a higher layer.  The variant here applies
the same post-hoc escape-layer idea to any route set:

* all routes start in layer 0;
* while some layer's CDG has a cycle, pick the route in that layer that
  contributes the most arcs to the cycle and bump it to the next layer;
* repeat (a route can be bumped multiple times).

Compared with LASH-sequential this tends to need slightly more layers (which
is what the paper found too; it reports LASH-sequential as the best variant),
but it preserves the original route-to-layer affinity for the majority of
routes, which matters on hardware where changing a route's virtual channel is
cheap but re-balancing whole layers is not.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import networkx as nx

from .deadlock import channel_dependency_graph, route_edges
from .lash import LayerAssignment

__all__ = ["dfsssp_assign"]

Route = Tuple[int, ...]


def dfsssp_assign(routes: Sequence[Sequence[int]], max_layers: int = 64) -> LayerAssignment:
    """Assign routes to layers by iteratively escaping cycle-causing routes upward."""
    unique: List[Route] = []
    seen = set()
    for r in routes:
        t = tuple(r)
        if t not in seen:
            seen.add(t)
            unique.append(t)

    layer_of: Dict[Route, int] = {r: 0 for r in unique}
    num_layers = 1

    def layer_routes(layer: int) -> List[Route]:
        return [r for r, l in layer_of.items() if l == layer]

    progress_guard = 0
    max_iterations = max(1000, 20 * len(unique))
    layer = 0
    while layer < num_layers:
        routes_here = layer_routes(layer)
        cdg = channel_dependency_graph(routes_here)
        try:
            cycle = nx.find_cycle(cdg)
        except nx.NetworkXNoCycle:
            layer += 1
            continue
        progress_guard += 1
        if progress_guard > max_iterations:
            raise RuntimeError("DF-SSSP layer assignment did not converge")
        cycle_arcs = {(a, b) for (a, b) in ((arc[0], arc[1]) for arc in cycle)}
        # Choose the route contributing the most arcs to this cycle.
        def contribution(route: Route) -> int:
            edges = route_edges(route)
            arcs = set(zip(edges[:-1], edges[1:]))
            return len(arcs & cycle_arcs)

        candidates = [r for r in routes_here if contribution(r) > 0]
        victim = max(candidates, key=lambda r: (contribution(r), len(r), r))
        layer_of[victim] = layer + 1
        if layer + 1 >= num_layers:
            num_layers += 1
            if num_layers > max_layers:
                raise RuntimeError(f"DF-SSSP exceeded {max_layers} layers")

    assignment = LayerAssignment()
    for _ in range(num_layers):
        assignment._new_layer()
    for r, l in layer_of.items():
        if not assignment._try_add(r, l):
            raise RuntimeError("internal error: final DF-SSSP layers not acyclic")
    # Drop empty trailing layers (possible when escapes cascaded upward).
    while assignment.num_layers > 1 and not assignment.routes_in_layer(assignment.num_layers - 1):
        assignment._layer_cdgs.pop()
    return assignment
