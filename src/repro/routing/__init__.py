"""Deadlock-free virtual-channel (layer) assignment for routed schedules."""

from .deadlock import (
    channel_dependency_graph,
    find_dependency_cycle,
    is_deadlock_free,
    route_edges,
)
from .dfsssp import dfsssp_assign
from .lash import LayerAssignment, lash_assign, lash_sequential_assign, verify_layers

__all__ = [
    "channel_dependency_graph",
    "find_dependency_cycle",
    "is_deadlock_free",
    "route_edges",
    "dfsssp_assign",
    "LayerAssignment",
    "lash_assign",
    "lash_sequential_assign",
    "verify_layers",
]
