"""Channel dependency graphs and deadlock detection (§5.5).

On wormhole/cut-through fabrics (e.g. the Cerio NICs), a set of routes is
deadlock-free iff the *channel dependency graph* (CDG) is acyclic: the CDG has
one vertex per directed link (channel) and an arc from channel ``(a, b)`` to
channel ``(b, c)`` whenever some route uses link ``(a, b)`` immediately
followed by ``(b, c)``.  A cycle means packets can mutually block while
holding channels.  Virtual channels (layers) break cycles by giving each layer
its own copy of every physical channel: routes in different layers cannot
block each other, so it suffices for each layer's CDG to be acyclic -- that is
what the LASH-style assignment in :mod:`repro.routing.lash` ensures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import networkx as nx

from ..topology.base import Edge

__all__ = ["channel_dependency_graph", "is_deadlock_free", "find_dependency_cycle",
           "route_edges"]


def route_edges(route: Sequence[int]) -> List[Edge]:
    """The directed links traversed by a route (node sequence)."""
    return list(zip(route[:-1], route[1:]))


def channel_dependency_graph(routes: Iterable[Sequence[int]]) -> nx.DiGraph:
    """Build the CDG of a set of routes.

    Nodes are directed links; an arc (e1 -> e2) is added for every consecutive
    link pair on any route.
    """
    cdg = nx.DiGraph()
    for route in routes:
        edges = route_edges(route)
        for e in edges:
            cdg.add_node(e)
        for e1, e2 in zip(edges[:-1], edges[1:]):
            cdg.add_edge(e1, e2)
    return cdg


def is_deadlock_free(routes: Iterable[Sequence[int]]) -> bool:
    """True iff the channel dependency graph of the routes is acyclic."""
    cdg = channel_dependency_graph(routes)
    return nx.is_directed_acyclic_graph(cdg)


def find_dependency_cycle(routes: Iterable[Sequence[int]]) -> List[Edge]:
    """Return one CDG cycle (list of channels) or an empty list if none exists."""
    cdg = channel_dependency_graph(routes)
    try:
        cycle = nx.find_cycle(cdg)
    except nx.NetworkXNoCycle:
        return []
    return [edge_pair[0] for edge_pair in cycle]
