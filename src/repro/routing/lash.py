"""LASH and LASH-sequential virtual-channel (layer) assignment (§5.5).

LASH (LAyered SHortest path routing, Skeie et al.) makes an arbitrary set of
routes deadlock-free by partitioning them into layers (virtual channels) such
that the channel dependency graph restricted to each layer is acyclic.
Minimizing the number of layers is NP-hard; LASH assigns routes greedily.

The paper implements several variants and reports that a variant it calls
**LASH-sequential** needs the fewest layers -- no more than 4 across every
algorithm (MCF, ILP, EwSP, ...) and topology evaluated.  The difference
captured here:

* :func:`lash_assign` -- classic LASH: routes are processed in the given
  order and placed in the *first* existing layer that stays acyclic.
* :func:`lash_sequential_assign` -- processes routes sorted by length
  (longest first, ties by endpoints) and fills one layer at a time: a new
  layer is opened only after every remaining route has been tried against the
  current one.  The deterministic ordering plus layer-at-a-time filling tends
  to pack layers better on the route sets produced by MCF-style algorithms.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import networkx as nx

from .deadlock import channel_dependency_graph, route_edges

__all__ = ["LayerAssignment", "lash_assign", "lash_sequential_assign", "verify_layers"]

Route = Tuple[int, ...]


class LayerAssignment:
    """Result of a layer assignment: route -> layer plus per-layer CDGs."""

    def __init__(self) -> None:
        self.layer_of: Dict[Route, int] = {}
        self._layer_cdgs: List[nx.DiGraph] = []

    @property
    def num_layers(self) -> int:
        return len(self._layer_cdgs)

    def routes_in_layer(self, layer: int) -> List[Route]:
        return [r for r, l in self.layer_of.items() if l == layer]

    def _try_add(self, route: Route, layer: int) -> bool:
        """Tentatively add a route to a layer; keep it only if the CDG stays acyclic."""
        cdg = self._layer_cdgs[layer]
        edges = route_edges(route)
        added_nodes = [e for e in edges if e not in cdg]
        added_arcs = []
        for e1, e2 in zip(edges[:-1], edges[1:]):
            if not cdg.has_edge(e1, e2):
                added_arcs.append((e1, e2))
        cdg.add_nodes_from(added_nodes)
        cdg.add_edges_from(added_arcs)
        if nx.is_directed_acyclic_graph(cdg):
            self.layer_of[route] = layer
            return True
        cdg.remove_edges_from(added_arcs)
        cdg.remove_nodes_from(added_nodes)
        return False

    def _new_layer(self) -> int:
        self._layer_cdgs.append(nx.DiGraph())
        return len(self._layer_cdgs) - 1


def lash_assign(routes: Sequence[Sequence[int]]) -> LayerAssignment:
    """Classic LASH: first-fit layer assignment in the given route order."""
    assignment = LayerAssignment()
    for route in routes:
        route = tuple(route)
        if route in assignment.layer_of:
            continue
        placed = False
        for layer in range(assignment.num_layers):
            if assignment._try_add(route, layer):
                placed = True
                break
        if not placed:
            layer = assignment._new_layer()
            if not assignment._try_add(route, layer):
                raise RuntimeError(f"route {route} cannot be made deadlock free alone "
                                   "(it repeats a channel)")
    return assignment


def lash_sequential_assign(routes: Sequence[Sequence[int]]) -> LayerAssignment:
    """LASH-sequential: longest-routes-first, one layer filled at a time."""
    unique_routes = []
    seen = set()
    for route in routes:
        t = tuple(route)
        if t not in seen:
            seen.add(t)
            unique_routes.append(t)
    remaining = sorted(unique_routes, key=lambda r: (-(len(r) - 1), r))

    assignment = LayerAssignment()
    while remaining:
        layer = assignment._new_layer()
        still_remaining: List[Route] = []
        for route in remaining:
            if not assignment._try_add(route, layer):
                still_remaining.append(route)
        if len(still_remaining) == len(remaining):
            raise RuntimeError("LASH-sequential made no progress; degenerate route present")
        remaining = still_remaining
    return assignment


def verify_layers(assignment: LayerAssignment) -> bool:
    """Check that every layer's channel dependency graph is acyclic."""
    for layer in range(assignment.num_layers):
        routes = assignment.routes_in_layer(layer)
        if not nx.is_directed_acyclic_graph(channel_dependency_graph(routes)):
            return False
    return True
