"""The solve engine: formulation assembly + backend dispatch + caching.

``engine.solve(problem)`` is the single entry point every MCF formulation
routes through.  The engine

1. computes the problem's content-addressed cache key,
2. returns the cached :class:`LPSolution` on a hit,
3. otherwise assembles the LP via the registered formulation, solves it with
   the selected backend, and stores the result.

Each returned solution carries an ``info`` dict (cache status, backend name,
LP dimensions, cache key prefix) that formulations surface in
``FlowSolution.meta["engine"]``.

A process-wide default engine is created lazily; :func:`configure` swaps its
backend, toggles caching, or attaches an on-disk cache directory.  The
``REPRO_CACHE_DIR`` environment variable seeds the disk tier and
``REPRO_SOLVE_BACKEND`` the default backend.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional, TYPE_CHECKING

from .backends import get_backend
from .cache import SolutionCache
from .problem import MCFProblem, get_formulation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.solver import LPSolution

__all__ = ["Engine", "get_engine", "configure", "solve", "reset_engine"]


class Engine:
    """Solves :class:`MCFProblem` specs through pluggable backends + cache."""

    def __init__(self, backend: str = "scipy-highs",
                 cache: Optional[SolutionCache] = None) -> None:
        get_backend(backend)  # fail fast on unknown names
        self.backend_name = backend
        self.cache = cache if cache is not None else SolutionCache()

    def solve(self, problem: MCFProblem, backend: Optional[str] = None,
              use_cache: bool = True) -> "LPSolution":
        """Solve ``problem``, consulting the cache unless ``use_cache=False``.

        The cache key includes the backend: different backends may return
        different (equally optimal) vertex/interior solutions, so a solution
        cached under one backend must never answer for another.
        """
        backend_name = backend or self.backend_name
        key = f"{problem.cache_key()}-{backend_name}"
        caching = use_cache and self.cache.enabled
        if caching:
            cached = self.cache.get(key)
            if cached is not None:
                info = dict(cached.info)
                info["cache"] = "hit"
                # The stored timings describe the original miss, not this
                # call; drop them so hit-path phase accounting can't read
                # stale assembly/solve seconds as if they were spent now.
                info.pop("assemble_seconds", None)
                info.pop("solve_seconds", None)
                return cached.clone(info=info)
        assembler = get_formulation(problem.formulation)
        t0 = time.perf_counter()
        builder = assembler(problem)
        builder.to_arrays()  # memoized; charges matrix assembly to assembly time
        t1 = time.perf_counter()
        solution = get_backend(backend_name).solve(builder, maximize=problem.maximize)
        t2 = time.perf_counter()
        backend_info = solution.info
        solution.info = {
            "cache": "miss" if caching else "bypass",
            "backend": backend_name,
            "key": key[:16],
            "num_variables": builder.num_variables,
            "num_constraints": builder.num_constraints,
            "assemble_seconds": t1 - t0,
            "solve_seconds": t2 - t1,
        }
        # Backends may annotate their solutions (e.g. highs-native's
        # warm_start status); keep those keys without letting them shadow
        # the engine's own bookkeeping.
        for extra_key, extra_value in backend_info.items():
            solution.info.setdefault(extra_key, extra_value)
        if caching:
            self.cache.put(key, solution)
        return solution

    def solve_family(self, problems, backend: Optional[str] = None,
                     use_cache: bool = True):
        """Batched multi-RHS solve of structurally related problems.

        Delegates to :func:`repro.perf.batch.solve_family`: family members
        whose RHS is a uniform scaling of the previous member's are derived
        by LP homogeneity without a solver call, and backend solves warm
        start when the backend supports it.  Returns ``(solutions, stats)``;
        results are cached under the same keys :meth:`solve` uses.
        """
        from ..perf.batch import solve_family
        return solve_family(problems, backend=backend, engine=self,
                            use_cache=use_cache)

    def stats(self) -> dict:
        """Engine-level counter snapshot (cache counters + backend name).

        When the configured backend exposes ``warm_stats()`` (the
        warm-started ``highs-native`` backend), its basis-reuse counters are
        merged in so the ``[stats]`` footer can report them.
        """
        stats = {"backend": self.backend_name, **self.cache.stats()}
        backend = get_backend(self.backend_name)
        warm_stats = getattr(backend, "warm_stats", None)
        if callable(warm_stats):
            stats.update(warm_stats())
        return stats


_engine: Optional[Engine] = None
_engine_lock = threading.Lock()


def get_engine() -> Engine:
    """The process-wide default engine (created lazily)."""
    global _engine
    if _engine is None:
        with _engine_lock:
            if _engine is None:
                _engine = Engine(
                    backend=os.environ.get("REPRO_SOLVE_BACKEND", "scipy-highs"),
                    cache=SolutionCache(cache_dir=os.environ.get("REPRO_CACHE_DIR")),
                )
    return _engine


def configure(backend: Optional[str] = None, cache_dir: Optional[str] = None,
              cache_enabled: Optional[bool] = None) -> Engine:
    """Reconfigure the default engine in place and return it."""
    engine = get_engine()
    if backend is not None:
        get_backend(backend)
        engine.backend_name = backend
    if cache_dir is not None:
        engine.cache = SolutionCache(cache_dir=cache_dir,
                                     enabled=engine.cache.enabled)
    if cache_enabled is not None:
        engine.cache.enabled = cache_enabled
    return engine


def reset_engine() -> None:
    """Drop the default engine (next :func:`get_engine` builds a fresh one)."""
    global _engine
    with _engine_lock:
        _engine = None


def solve(problem: MCFProblem, backend: Optional[str] = None,
          use_cache: bool = True) -> "LPSolution":
    """Solve through the default engine (the formulation-facing entry point)."""
    return get_engine().solve(problem, backend=backend, use_cache=use_cache)
