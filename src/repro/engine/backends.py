"""Pluggable LP solve backends.

A backend turns an assembled :class:`~repro.core.solver.LPBuilder` into an
:class:`~repro.core.solver.LPSolution`.  Formulations never pick a backend —
the engine does — so swapping HiGHS simplex for the interior-point method (or
a future warm-started solver for the per-source child-LP batches of the
decomposed formulations) never touches formulation code.

The default backend wraps HiGHS via :func:`scipy.optimize.linprog`, exactly
the solver the seed code called directly.  Variants registered out of the box:

* ``scipy-highs``      — HiGHS with automatic simplex/IPM choice (default);
* ``scipy-highs-ds``   — HiGHS dual simplex, deterministic vertex solutions,
  the better choice for batches of structurally similar child LPs;
* ``scipy-highs-ipm``  — HiGHS interior point, faster on the largest
  monolithic time-stepped LPs;
* ``highs-native``     — the warm-started solver that docstring promised:
  drives HiGHS directly through the optional ``highspy`` bindings, keeps the
  model alive between solves keyed by a constraint-structure hash, and
  re-bounds it (basis intact) when only RHS/bounds changed — adjacent sweep
  points re-solve from the previous optimal basis instead of from scratch.
  Falls back to ``scipy-highs`` transparently when ``highspy`` is missing
  (or ``REPRO_NO_HIGHSPY=1``).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Protocol, TYPE_CHECKING, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.solver import LPBuilder, LPSolution

__all__ = ["SolveBackend", "ScipyHighsBackend", "HighsNativeBackend",
           "register_backend", "get_backend", "backend_names"]


@runtime_checkable
class SolveBackend(Protocol):
    """Protocol every solve backend implements."""

    name: str

    def solve(self, builder: "LPBuilder", maximize: bool = False) -> "LPSolution":
        """Solve the accumulated LP; raise ``SolverError`` on failure."""
        ...  # pragma: no cover - protocol


class ScipyHighsBackend:
    """HiGHS via :func:`scipy.optimize.linprog` (the seed solver path)."""

    def __init__(self, name: str = "scipy-highs", method: str = "highs") -> None:
        self.name = name
        self.method = method

    def solve(self, builder: "LPBuilder", maximize: bool = False) -> "LPSolution":
        import numpy as np
        from scipy.optimize import linprog

        from ..core.solver import SolverError

        n = builder.num_variables
        if n == 0:
            # Trivial LP: keep the (empty) block views resolvable so
            # degenerate formulations can still extract by block name.
            return builder.make_solution(np.zeros(0), 0.0)
        c, a_ub, b_ub, a_eq, b_eq, bounds = builder.to_arrays()
        if maximize:
            c = -c
        result = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                         bounds=bounds, method=self.method)
        if not result.success:
            raise SolverError(f"LP solve failed ({self.name}): {result.message}")
        objective = float(result.fun)
        if maximize:
            objective = -objective
        # Array-backed solution: per-key / per-block views materialize lazily.
        return builder.make_solution(result.x, objective, raw=result)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScipyHighsBackend(name={self.name!r}, method={self.method!r})"


class HighsNativeBackend:
    """Warm-started HiGHS via the optional ``highspy`` bindings.

    Live ``Highs`` models are kept in a bounded LRU registry keyed by the
    :func:`repro.perf.warmstart.structure_hash` of the assembled LP (plus
    the optimization sense).  A registry hit means the new LP differs from
    the last solve only in right-hand sides and variable bounds, so the
    kept model is re-bounded in place and re-solved from its previous
    optimal basis — the dominant cost of a cold simplex solve (finding a
    good starting basis) is skipped.  That is exactly the shape of adjacent
    ``SweepGrid`` points: bandwidth, degradation scale and buffer knobs all
    land in RHS/bounds while the constraint matrix encodes topology and
    commodities.

    Counters (``basis_hits`` / ``basis_misses`` / ``fallback_solves``) are
    surfaced through :meth:`warm_stats` into ``Engine.stats()`` and the
    ``[stats]`` footer.  Without ``highspy`` (or with ``REPRO_NO_HIGHSPY=1``)
    every solve silently delegates to ``scipy-highs`` — identical results,
    no warm starts.
    """

    def __init__(self, name: str = "highs-native", max_models: int = 8,
                 highs_module: Optional[object] = None) -> None:
        """``highs_module`` injects a (fake) ``highspy`` for tests."""
        self.name = name
        self.max_models = max_models
        self.basis_hits = 0
        self.basis_misses = 0
        self.fallback_solves = 0
        self._highs_module = highs_module
        self._probed = highs_module is not None
        self._models: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _module(self) -> Optional[object]:
        """The ``highspy`` module (real or injected), or None when absent.

        An explicitly injected module (the test seam) always wins;
        ``REPRO_NO_HIGHSPY`` only suppresses the real import probe, so the
        kill switch disables the registered backend without breaking
        fake-module tests.
        """
        if self._highs_module is not None:
            return self._highs_module
        if self._probed or os.environ.get("REPRO_NO_HIGHSPY"):
            return None
        self._probed = True
        try:  # pragma: no cover - exercised only where highspy exists
            import highspy
            self._highs_module = highspy
        except ImportError:
            self._highs_module = None
        return self._highs_module

    def warm_stats(self) -> Dict[str, int]:
        """Warm-start counter snapshot (merged into ``Engine.stats()``)."""
        with self._lock:
            return {"basis_hits": self.basis_hits,
                    "basis_misses": self.basis_misses,
                    "fallback_solves": self.fallback_solves,
                    "live_models": len(self._models)}

    def reset_stats(self) -> None:
        """Zero the warm-start counters (tests and benchmarks)."""
        with self._lock:
            self.basis_hits = 0
            self.basis_misses = 0
            self.fallback_solves = 0

    # ------------------------------------------------------------------ #
    def solve(self, builder: "LPBuilder", maximize: bool = False) -> "LPSolution":
        """Solve via a kept (warm) or freshly built HiGHS model.

        Any failure of the native path — missing bindings, API drift,
        non-optimal model status — falls back to the scipy backend so the
        result is always as correct as the default path.
        """
        import numpy as np

        highs = self._module()
        if highs is None:
            with self._lock:
                self.fallback_solves += 1
            return get_backend("scipy-highs").solve(builder, maximize=maximize)

        n = builder.num_variables
        if n == 0:
            return builder.make_solution(np.zeros(0), 0.0)
        try:
            return self._solve_native(highs, builder, maximize)
        except Exception:
            with self._lock:
                self.fallback_solves += 1
            return get_backend("scipy-highs").solve(builder, maximize=maximize)

    def _solve_native(self, highs: object, builder: "LPBuilder",
                      maximize: bool) -> "LPSolution":
        """Run one solve on a warm or cold native model."""
        import numpy as np

        from ..core.solver import SolverError
        from ..perf.warmstart import structure_hash

        c, a_ub, b_ub, a_eq, b_eq, bounds = builder.to_arrays()
        n = builder.num_variables
        cost = -c if maximize else c
        key = structure_hash(builder) + (":max" if maximize else ":min")
        m_ub = 0 if b_ub is None else len(b_ub)
        m_eq = 0 if b_eq is None else len(b_eq)
        num_rows = m_ub + m_eq
        row_lower = np.concatenate([
            np.full(m_ub, -np.inf),
            np.asarray(b_eq, dtype=float) if m_eq else np.zeros(0)])
        row_upper = np.concatenate([
            np.asarray(b_ub, dtype=float) if m_ub else np.zeros(0),
            np.asarray(b_eq, dtype=float) if m_eq else np.zeros(0)])
        col_lower = np.ascontiguousarray(bounds[:, 0])
        col_upper = np.ascontiguousarray(bounds[:, 1])

        with self._lock:
            model = self._models.pop(key, None)
        warm = model is not None
        if warm:
            # Only RHS/bounds can differ on a structure-hash match; the
            # kept model's basis stays valid as a warm start.
            model.changeColsBoundsByRange(0, n - 1, col_lower, col_upper)
            if num_rows:
                model.changeRowsBoundsByRange(0, num_rows - 1,
                                              row_lower, row_upper)
        else:
            model = highs.Highs()
            try:
                model.setOptionValue("output_flag", False)
            except Exception:  # pragma: no cover - cosmetic option only
                pass
            lp = highs.HighsLp()
            lp.num_col_ = n
            lp.num_row_ = num_rows
            lp.col_cost_ = np.ascontiguousarray(cost, dtype=float)
            lp.col_lower_ = col_lower
            lp.col_upper_ = col_upper
            lp.row_lower_ = row_lower
            lp.row_upper_ = row_upper
            matrix = _stack_csc(a_ub, a_eq, n)
            lp.a_matrix_.format_ = highs.MatrixFormat.kColwise
            lp.a_matrix_.num_col_ = n
            lp.a_matrix_.num_row_ = num_rows
            lp.a_matrix_.start_ = matrix.indptr.astype(np.int64)
            lp.a_matrix_.index_ = matrix.indices.astype(np.int64)
            lp.a_matrix_.value_ = matrix.data.astype(float)
            model.passModel(lp)
        model.run()
        status = model.getModelStatus()
        if status != highs.HighsModelStatus.kOptimal:
            raise SolverError(
                f"LP solve failed ({self.name}): model status {status}")
        x = np.asarray(model.getSolution().col_value, dtype=float)
        objective = float(np.dot(cost, x))
        if maximize:
            objective = -objective
        with self._lock:
            if warm:
                self.basis_hits += 1
            else:
                self.basis_misses += 1
            self._models[key] = model
            while len(self._models) > self.max_models:
                self._models.popitem(last=False)
        solution = builder.make_solution(x, objective)
        solution.info["warm_start"] = "basis" if warm else "cold"
        return solution

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HighsNativeBackend(name={self.name!r}, "
                f"max_models={self.max_models})")


def _stack_csc(a_ub, a_eq, num_cols: int):
    """Stack the <=/== constraint matrices into one CSC matrix."""
    import scipy.sparse as sp

    parts = [m for m in (a_ub, a_eq) if m is not None]
    if not parts:
        return sp.csc_matrix((0, num_cols))
    stacked = parts[0] if len(parts) == 1 else sp.vstack(parts)
    return stacked.tocsc()


_BACKENDS: Dict[str, SolveBackend] = {}


def register_backend(backend: SolveBackend) -> SolveBackend:
    """Register a backend under ``backend.name`` (later wins)."""
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> SolveBackend:
    """Look up a registered backend by name."""
    if name not in _BACKENDS:
        raise KeyError(f"unknown solve backend {name!r}; "
                       f"registered: {backend_names()}")
    return _BACKENDS[name]


def backend_names() -> List[str]:
    """Names of all registered backends."""
    return sorted(_BACKENDS)


register_backend(ScipyHighsBackend("scipy-highs", method="highs"))
register_backend(ScipyHighsBackend("scipy-highs-ds", method="highs-ds"))
register_backend(ScipyHighsBackend("scipy-highs-ipm", method="highs-ipm"))
register_backend(HighsNativeBackend("highs-native"))
