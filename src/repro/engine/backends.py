"""Pluggable LP solve backends.

A backend turns an assembled :class:`~repro.core.solver.LPBuilder` into an
:class:`~repro.core.solver.LPSolution`.  Formulations never pick a backend —
the engine does — so swapping HiGHS simplex for the interior-point method (or
a future warm-started solver for the per-source child-LP batches of the
decomposed formulations) never touches formulation code.

The default backend wraps HiGHS via :func:`scipy.optimize.linprog`, exactly
the solver the seed code called directly.  Variants registered out of the box:

* ``scipy-highs``      — HiGHS with automatic simplex/IPM choice (default);
* ``scipy-highs-ds``   — HiGHS dual simplex, deterministic vertex solutions,
  the better choice for batches of structurally similar child LPs;
* ``scipy-highs-ipm``  — HiGHS interior point, faster on the largest
  monolithic time-stepped LPs.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, TYPE_CHECKING, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.solver import LPBuilder, LPSolution

__all__ = ["SolveBackend", "ScipyHighsBackend", "register_backend",
           "get_backend", "backend_names"]


@runtime_checkable
class SolveBackend(Protocol):
    """Protocol every solve backend implements."""

    name: str

    def solve(self, builder: "LPBuilder", maximize: bool = False) -> "LPSolution":
        """Solve the accumulated LP; raise ``SolverError`` on failure."""
        ...  # pragma: no cover - protocol


class ScipyHighsBackend:
    """HiGHS via :func:`scipy.optimize.linprog` (the seed solver path)."""

    def __init__(self, name: str = "scipy-highs", method: str = "highs") -> None:
        self.name = name
        self.method = method

    def solve(self, builder: "LPBuilder", maximize: bool = False) -> "LPSolution":
        import numpy as np
        from scipy.optimize import linprog

        from ..core.solver import SolverError

        n = builder.num_variables
        if n == 0:
            # Trivial LP: keep the (empty) block views resolvable so
            # degenerate formulations can still extract by block name.
            return builder.make_solution(np.zeros(0), 0.0)
        c, a_ub, b_ub, a_eq, b_eq, bounds = builder.to_arrays()
        if maximize:
            c = -c
        result = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                         bounds=bounds, method=self.method)
        if not result.success:
            raise SolverError(f"LP solve failed ({self.name}): {result.message}")
        objective = float(result.fun)
        if maximize:
            objective = -objective
        # Array-backed solution: per-key / per-block views materialize lazily.
        return builder.make_solution(result.x, objective, raw=result)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScipyHighsBackend(name={self.name!r}, method={self.method!r})"


_BACKENDS: Dict[str, SolveBackend] = {}


def register_backend(backend: SolveBackend) -> SolveBackend:
    """Register a backend under ``backend.name`` (later wins)."""
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> SolveBackend:
    """Look up a registered backend by name."""
    if name not in _BACKENDS:
        raise KeyError(f"unknown solve backend {name!r}; "
                       f"registered: {backend_names()}")
    return _BACKENDS[name]


def backend_names() -> List[str]:
    """Names of all registered backends."""
    return sorted(_BACKENDS)


register_backend(ScipyHighsBackend("scipy-highs", method="highs"))
register_backend(ScipyHighsBackend("scipy-highs-ds", method="highs-ds"))
register_backend(ScipyHighsBackend("scipy-highs-ipm", method="highs-ipm"))
