"""Content-addressed artifact cache (in-memory + optional on-disk).

The primary tenant is the engine's LP solution store: keys are the
:meth:`~repro.engine.problem.MCFProblem.cache_key` digests, so two callers
that pose the same problem — same topology content, formulation and
parameters — share one solve no matter how the topology object was
constructed.  The in-memory tier is always on (when the cache is enabled);
the on-disk tier activates when a directory is configured and persists
payloads across processes via pickle files written atomically.

The cache is payload-agnostic: :mod:`repro.experiments` reuses it (with a
different ``suffix``/``payload_type``) as the per-stage artifact tier of the
declarative :class:`~repro.experiments.Plan` pipeline.  Payloads exposing a
``portable(tol=...)`` method (the :class:`LPSolution` compaction protocol)
are compacted before storage; anything else is stored as-is.

Thread safe: the sweep layer solves schemes concurrently through
:class:`~repro.engine.runner.ParallelRunner` threads that share this cache.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.solver import LPSolution

__all__ = ["SolutionCache"]


class SolutionCache:
    """Two-tier (memory, disk) cache of content-addressed payloads.

    Defaults to :class:`LPSolution` payloads (the engine's solution store);
    pass ``payload_type``/``suffix`` to cache other pickle-able artifacts.

    Attributes
    ----------
    hits / misses:
        Lookup counters (a disk hit counts as a hit and is additionally
        tallied in ``disk_hits``).  Surfaced through ``FlowSolution.meta``
        and asserted on by the cache tests.
    """

    def __init__(self, cache_dir: Optional[str] = None, enabled: bool = True,
                 max_entries: int = 4096, suffix: str = ".lps.pkl",
                 payload_type: Optional[type] = None) -> None:
        self.enabled = enabled
        self.cache_dir = cache_dir
        self.max_entries = max_entries
        self.suffix = suffix
        self._payload_type = payload_type  # None -> LPSolution (lazy import)
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.shared_hits = 0
        self.stores = 0
        self._memory: Dict[str, "LPSolution"] = {}
        self._shared = None  # optional SharedArtifactPlane tier
        self._lock = threading.Lock()
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------ #
    def attach_shared(self, plane) -> None:
        """Attach a cross-process shared-artifact tier.

        ``plane`` is a :class:`~repro.experiments.executor.SharedArtifactPlane`
        (anything with byte-oriented ``get(key)``/``publish(key, payload)``).
        Lookup order becomes memory -> shared -> disk; stores additionally
        publish to the plane so sibling worker processes skip recomputation.
        The plane only accepts its *hot* keys, so cold artifacts stay local.
        """
        self._shared = plane

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional["LPSolution"]:
        """Look up ``key``; updates hit/miss counters."""
        if not self.enabled:
            return None
        with self._lock:
            solution = self._memory.get(key)
            if solution is not None:
                self.hits += 1
                return solution
        solution = self._shared_get(key)
        from_shared = solution is not None
        if solution is None:
            solution = self._disk_get(key)
        with self._lock:
            if solution is not None:
                self.hits += 1
                if from_shared:
                    self.shared_hits += 1
                else:
                    self.disk_hits += 1
                self._insert(key, solution)
            else:
                self.misses += 1
        return solution

    def put(self, key: str, solution: "LPSolution") -> None:
        """Store a solution under ``key`` in both tiers.

        The stored copy is :meth:`LPSolution.portable`: the raw
        OptimizeResult is stripped (it is large, solver-internal, and never
        read back from the cache), keyed values are sparsified, and each
        variable block is stored as flat (index, value) ndarrays of its
        above-``FLOW_TOL`` entries instead of a full per-key dict —
        ``LPSolution.value()`` defaults missing keys to 0.0 and every
        consumer thresholds at ``FLOW_TOL`` anyway, while MCF solutions are
        overwhelmingly zeros, so this cuts the footprint by orders of
        magnitude at paper scale.
        """
        if not self.enabled:
            return
        if hasattr(solution, "portable"):
            from ..constants import FLOW_TOL

            portable = solution.portable(tol=FLOW_TOL)
        else:
            portable = solution
        with self._lock:
            self._insert(key, portable)
            self.stores += 1
        self._shared_put(key, portable)
        self._disk_put(key, portable)

    def _insert(self, key: str, solution: "LPSolution") -> None:
        """Insert into the memory tier, evicting the oldest entry when full.

        Caller must hold the lock.  Both fresh stores and disk-hit promotions
        go through here so ``max_entries`` bounds the tier either way.
        """
        if key not in self._memory and len(self._memory) >= self.max_entries:
            # Drop the oldest entry (dict preserves insertion order).
            # Overwrites don't grow the dict, so they never evict.
            self._memory.pop(next(iter(self._memory)))
        self._memory[key] = solution

    def clear(self) -> None:
        """Drop the in-memory tier and reset counters (disk files remain)."""
        with self._lock:
            self._memory.clear()
            self.hits = self.misses = self.disk_hits = self.stores = 0
            self.shared_hits = 0

    @property
    def size(self) -> int:
        """Number of in-memory entries."""
        return len(self._memory)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for reports and assertions."""
        return {"hits": self.hits, "misses": self.misses,
                "disk_hits": self.disk_hits, "shared_hits": self.shared_hits,
                "stores": self.stores, "size": self.size}

    # ------------------------------------------------------------------ #
    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}{self.suffix}")

    def _expected_type(self) -> type:
        if self._payload_type is None:
            from ..core.solver import LPSolution

            return LPSolution
        return self._payload_type

    def _shared_get(self, key: str) -> Optional["LPSolution"]:
        if self._shared is None:
            return None
        try:
            payload = self._shared.get(key)
            if payload is None:
                return None
            artifact = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - a torn/foreign segment reads as a miss
            return None
        if not isinstance(artifact, self._expected_type()):
            return None
        return artifact

    def _shared_put(self, key: str, solution: "LPSolution") -> None:
        """Publish to the shared plane; best effort (plane filters cold keys)."""
        if self._shared is None:
            return
        try:
            self._shared.publish(key, pickle.dumps(solution))
        except Exception:  # noqa: BLE001 - sharing is an optimization, never fatal
            pass

    def _disk_get(self, key: str) -> Optional["LPSolution"]:
        if not self.cache_dir:
            return None
        try:
            with open(self._path(key), "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:  # noqa: BLE001 - a corrupt entry must read as a miss,
            # and pickle surfaces corruption as almost any exception type.
            return None
        if not isinstance(payload, self._expected_type()):
            return None
        return payload

    def _disk_put(self, key: str, solution: "LPSolution") -> None:
        """Persist an (already raw-stripped) solution; atomic rename so
        concurrent readers never see a torn file."""
        if not self.cache_dir:
            return
        tmp = None
        try:
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(solution, fh)
            os.replace(tmp, self._path(key))
        except OSError:  # pragma: no cover - disk tier is best effort
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
