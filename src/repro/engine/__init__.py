"""Unified solve engine: problems, backends, solution cache, execution.

Layering (each layer only knows the one below it):

* **Problem** (:mod:`.problem`) — declarative :class:`MCFProblem` specs plus
  the formulation registry the MCF modules register their LP assemblers in;
* **Backend** (:mod:`.backends`) — pluggable :class:`SolveBackend`
  implementations (scipy/HiGHS variants ship by default);
* **Cache** (:mod:`.cache`) — content-addressed :class:`SolutionCache`
  keyed by ``(topology.canonical_hash(), formulation, params)``;
* **Execution** (:mod:`.runner`) — :class:`ParallelRunner`, the shared
  serial/thread/process map used by sweeps, child LPs and benchmarks.

``engine.solve(problem)`` on the process-wide default engine is the one
entry point every formulation routes through.
"""

from .backends import (
    HighsNativeBackend,
    ScipyHighsBackend,
    SolveBackend,
    backend_names,
    get_backend,
    register_backend,
)
from .cache import SolutionCache
from .core import Engine, configure, get_engine, reset_engine, solve
from .problem import (
    MCFProblem,
    formulation_names,
    get_formulation,
    register_formulation,
)
from .runner import ParallelRunner, run_parallel

__all__ = [
    "HighsNativeBackend",
    "ScipyHighsBackend",
    "SolveBackend",
    "backend_names",
    "get_backend",
    "register_backend",
    "SolutionCache",
    "Engine",
    "configure",
    "get_engine",
    "reset_engine",
    "solve",
    "MCFProblem",
    "formulation_names",
    "get_formulation",
    "register_formulation",
    "ParallelRunner",
    "run_parallel",
]
