"""Shared parallel execution for sweeps, child LPs and benchmarks.

The seed code buried a ``ProcessPoolExecutor`` inside
:mod:`repro.core.mcf_decomposed`; every other multi-run site (scheme
comparisons, throughput sweeps, benchmark loops) ran serially.
:class:`ParallelRunner` lifts that logic into one order-preserving map with
three execution modes:

* ``serial``  — plain loop, deterministic and debugger friendly;
* ``thread``  — ``ThreadPoolExecutor``; right for LP solves (HiGHS releases
  the GIL) and for closures, and the workers share the engine's in-memory
  solution cache;
* ``process`` — ``ProcessPoolExecutor``; right for picklable module-level
  workers such as the decomposed-MCF child solver.

``mode="auto"`` picks ``serial`` for ``jobs <= 1`` and ``thread`` otherwise.
Results always come back in input order, so parallel runs are byte-identical
to serial ones for deterministic work.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Sequence, TypeVar

__all__ = ["ParallelRunner", "run_parallel"]

T = TypeVar("T")
R = TypeVar("R")

_MODES = ("auto", "serial", "thread", "process")


class ParallelRunner:
    """Order-preserving parallel map over a list of items."""

    def __init__(self, jobs: int = 1, mode: str = "auto") -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.jobs = max(1, int(jobs))
        if mode == "auto":
            mode = "serial" if self.jobs <= 1 else "thread"
        self.mode = mode

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in input order.

        Exceptions propagate to the caller; wrap ``fn`` if per-item error
        capture is wanted (see ``analysis.sweep.compare_schemes``).
        """
        items = list(items)
        if self.mode == "serial" or self.jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if self.mode == "thread":
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                return list(pool.map(fn, items))
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            return list(pool.map(fn, items))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelRunner(jobs={self.jobs}, mode={self.mode!r})"


def run_parallel(fn: Callable[[T], R], items: Sequence[T], jobs: int = 1,
                 mode: str = "auto") -> List[R]:
    """One-shot convenience wrapper around :class:`ParallelRunner`."""
    return ParallelRunner(jobs=jobs, mode=mode).map(fn, items)
