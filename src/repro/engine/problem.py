"""Declarative MCF problem specs and the formulation registry.

An :class:`MCFProblem` names *what* to solve — a registered formulation, a
topology, and formulation parameters — without saying *how*.  The engine
(:mod:`repro.engine.core`) looks up the formulation's assembler, builds the
LP, hands it to a backend, and caches the result under the problem's
content-addressed :meth:`~MCFProblem.cache_key`.

Formulation modules (:mod:`repro.core.mcf_link` etc.) register their
assembler with :func:`register_formulation` at import time; an assembler is a
callable ``(problem) -> LPBuilder`` that must derive everything it needs from
``problem.topology`` and ``problem.params`` so that two problems with equal
cache keys always assemble the same LP.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, TYPE_CHECKING

from ..topology.base import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.solver import LPBuilder

__all__ = ["MCFProblem", "register_formulation", "get_formulation",
           "formulation_names"]


def _code_version() -> str:
    """The installed repro version (lazy: the package imports this module)."""
    try:
        from .. import __version__

        return __version__
    except ImportError:  # pragma: no cover - mid-bootstrap edge
        return "unknown"


def canonical_value(obj: object) -> object:
    """Reduce ``obj`` to a deterministic, order-independent hashable form.

    Mappings become sorted key/value tuples, sets become sorted tuples, and
    sequences become tuples; numpy scalars and arrays (which vectorized
    callers naturally produce) are lowered to Python scalars / nested tuples
    so equal problems hash equally regardless of array vs list params.
    Anything else must round-trip through ``repr`` deterministically (true
    for ints, floats, strings, bools and None).
    """
    import numpy as np

    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return tuple(canonical_value(v) for v in obj.tolist())
    if isinstance(obj, Mapping):
        items = [(canonical_value(k), canonical_value(v)) for k, v in obj.items()]
        return ("mapping", tuple(sorted(items, key=repr)))
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted((canonical_value(v) for v in obj), key=repr)))
    if isinstance(obj, (list, tuple)):
        return tuple(canonical_value(v) for v in obj)
    return obj


@dataclass
class MCFProblem:
    """A declarative LP problem spec understood by the engine.

    Attributes
    ----------
    formulation:
        Name of a registered formulation (see :func:`register_formulation`).
    topology:
        The topology the LP is assembled over; its
        :meth:`~repro.topology.base.Topology.canonical_hash` anchors the
        cache key.
    params:
        Formulation parameters.  Assemblers must treat missing keys as
        defaults, so problems carry only what the caller supplied and cache
        keys stay small.
    maximize:
        Objective sense passed to the backend.
    """

    formulation: str
    topology: Topology
    params: Dict[str, object] = field(default_factory=dict)
    maximize: bool = False

    def canonical_params(self) -> object:
        """Order-independent canonical form of :attr:`params`."""
        return canonical_value(self.params)

    def cache_key(self) -> str:
        """Content-addressed key: topology content + formulation + params.

        The package version is part of the payload so that a persistent
        ``REPRO_CACHE_DIR`` from an older release (whose assemblers or
        solution schema may differ) reads as a miss instead of silently
        serving stale solutions.
        """
        payload = repr((_code_version(), self.topology.canonical_hash(),
                        self.formulation, bool(self.maximize),
                        self.canonical_params()))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MCFProblem(formulation={self.formulation!r}, "
                f"topology={self.topology.name!r}, params={sorted(self.params)})")


_FORMULATIONS: Dict[str, Callable[[MCFProblem], "LPBuilder"]] = {}


def register_formulation(name: str):
    """Decorator registering an assembler ``(MCFProblem) -> LPBuilder``."""

    def decorator(fn: Callable[[MCFProblem], "LPBuilder"]):
        _FORMULATIONS[name] = fn
        return fn

    return decorator


def get_formulation(name: str) -> Callable[[MCFProblem], "LPBuilder"]:
    """Look up a registered assembler, importing :mod:`repro.core` on miss.

    Formulations self-register when their module is imported; if the engine
    is used standalone (``import repro.engine``) the core package may not be
    loaded yet, so retry after importing it.
    """
    if name not in _FORMULATIONS:
        import repro.core  # noqa: F401 - triggers formulation registration

        if name not in _FORMULATIONS:
            raise KeyError(f"unknown formulation {name!r}; "
                           f"registered: {formulation_names()}")
    return _FORMULATIONS[name]


def formulation_names() -> List[str]:
    """Names of all registered formulations."""
    return sorted(_FORMULATIONS)
