"""DLRM-style embedding-exchange workload.

Deep Learning Recommendation Models shard huge embedding tables across ranks;
every training iteration performs an all-to-all to exchange embedding lookups
(forward) and gradients (backward).  The all-to-all buffer size is set by the
batch size, the number of sparse features and the embedding dimension, and the
exchange is frequently the iteration bottleneck -- the motivation the paper's
introduction cites for optimizing all-to-all.

This module models one hybrid-parallel iteration: per-rank compute (dense MLP
+ embedding lookups, estimated with a simple roofline-style model) plus two
all-to-alls timed on the simulated fabric with the schedule under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


from ..core.mcf_path import PathSchedule
from ..schedule.chunking import chunk_path_schedule
from ..schedule.ir import LinkSchedule, RoutedSchedule
from ..simulator.collective import run_link_collective, run_routed_collective
from ..simulator.fabric import FabricModel
from ..topology.base import Topology

__all__ = ["DLRMConfig", "DLRMIterationResult", "simulate_dlrm_iteration"]


@dataclass(frozen=True)
class DLRMConfig:
    """Model/batch parameters of the embedding exchange.

    Defaults follow a mid-size open-source DLRM configuration: 26 sparse
    features, 128-dim embeddings, 2048 global batch.
    """

    global_batch: int = 2048
    num_sparse_features: int = 26
    embedding_dim: int = 128
    bytes_per_element: int = 4      # fp32 activations/gradients
    dense_flops_per_sample: float = 5e6
    compute_flops: float = 100e12   # accelerator peak FLOP/s
    compute_efficiency: float = 0.35
    skew: float = 1.0               # >1 models hot embedding shards

    def alltoall_bytes_per_node(self, num_nodes: int) -> float:
        """Per-node all-to-all buffer for one direction of the exchange.

        Every rank gathers, for its local batch shard, one embedding vector per
        sparse feature from the rank owning that feature's table.
        """
        local_batch = self.global_batch / num_nodes
        lookups = local_batch * self.num_sparse_features
        return lookups * self.embedding_dim * self.bytes_per_element


@dataclass
class DLRMIterationResult:
    """Breakdown of one simulated DLRM iteration."""

    compute_seconds: float
    forward_alltoall_seconds: float
    backward_alltoall_seconds: float
    alltoall_bytes_per_node: float
    num_nodes: int
    schedule_label: str = ""

    @property
    def total_seconds(self) -> float:
        return (self.compute_seconds + self.forward_alltoall_seconds
                + self.backward_alltoall_seconds)

    @property
    def communication_fraction(self) -> float:
        total = self.total_seconds
        if total <= 0:
            return 0.0
        return (self.forward_alltoall_seconds + self.backward_alltoall_seconds) / total


def _simulate(schedule: Union[LinkSchedule, RoutedSchedule, PathSchedule],
              buffer_bytes: float, fabric: Optional[FabricModel]) -> float:
    if isinstance(schedule, PathSchedule):
        schedule = chunk_path_schedule(schedule)
    if isinstance(schedule, LinkSchedule):
        return run_link_collective(schedule, buffer_bytes, fabric=fabric,
                                   validate=False).completion_time
    if isinstance(schedule, RoutedSchedule):
        return run_routed_collective(schedule, buffer_bytes, fabric=fabric,
                                     validate=False).completion_time
    raise TypeError(f"unsupported schedule type {type(schedule)!r}")


def simulate_dlrm_iteration(topology: Topology,
                            schedule: Union[LinkSchedule, RoutedSchedule, PathSchedule],
                            config: Optional[DLRMConfig] = None,
                            fabric: Optional[FabricModel] = None,
                            schedule_label: str = "") -> DLRMIterationResult:
    """Simulate one DLRM training iteration (compute + 2 all-to-alls)."""
    config = config or DLRMConfig()
    n = topology.num_nodes
    buffer_bytes = config.alltoall_bytes_per_node(n)
    local_batch = config.global_batch / n
    compute_seconds = (local_batch * config.dense_flops_per_sample
                       / (config.compute_flops * config.compute_efficiency))
    forward = _simulate(schedule, buffer_bytes, fabric)
    # The backward exchange carries gradients of the same size.
    backward = _simulate(schedule, buffer_bytes, fabric)
    return DLRMIterationResult(
        compute_seconds=compute_seconds,
        forward_alltoall_seconds=forward,
        backward_alltoall_seconds=backward,
        alltoall_bytes_per_node=buffer_bytes,
        num_nodes=n,
        schedule_label=schedule_label,
    )
