"""Traffic matrix generators for collective and near-collective workloads.

The headline workload is the uniform all-to-all personalized exchange
(every ordered pair exchanges the same number of bytes), but the MCF
formulations accept arbitrary per-commodity demands, and the DLRM / MoE
workload models produce skewed matrices, so this module centralizes the
generators.
"""

from __future__ import annotations

import random
from typing import Dict

import numpy as np

from ..core.flow import Commodity

__all__ = [
    "uniform_alltoall",
    "skewed_alltoall",
    "permutation_traffic",
    "demand_matrix_to_dict",
    "total_bytes_per_node",
]


def uniform_alltoall(num_nodes: int, bytes_per_pair: float = 1.0) -> np.ndarray:
    """Uniform all-to-all demand matrix (zero diagonal)."""
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    mat = np.full((num_nodes, num_nodes), float(bytes_per_pair))
    np.fill_diagonal(mat, 0.0)
    return mat


def skewed_alltoall(num_nodes: int, bytes_per_pair: float = 1.0, skew: float = 2.0,
                    hot_fraction: float = 0.25, seed: int = 0) -> np.ndarray:
    """All-to-all matrix where a fraction of destination columns is ``skew`` x hotter.

    Models embedding-table hot spots in DLRM-style exchanges: every source
    still talks to every destination, but popular shards receive more bytes.
    """
    if skew < 1.0:
        raise ValueError("skew must be >= 1.0")
    rng = random.Random(seed)
    mat = uniform_alltoall(num_nodes, bytes_per_pair)
    num_hot = max(1, int(round(hot_fraction * num_nodes)))
    hot = rng.sample(range(num_nodes), num_hot)
    mat[:, hot] *= skew
    np.fill_diagonal(mat, 0.0)
    return mat


def permutation_traffic(num_nodes: int, bytes_per_pair: float = 1.0,
                        seed: int = 0) -> np.ndarray:
    """Permutation traffic: every node sends to exactly one (distinct) peer.

    A classic adversarial pattern for oblivious routing; useful to contrast
    with all-to-all in tests and examples.
    """
    rng = random.Random(seed)
    perm = list(range(num_nodes))
    while True:
        rng.shuffle(perm)
        if all(i != p for i, p in enumerate(perm)):
            break
    mat = np.zeros((num_nodes, num_nodes))
    for i, p in enumerate(perm):
        mat[i, p] = bytes_per_pair
    return mat


def demand_matrix_to_dict(matrix: np.ndarray) -> Dict[Commodity, float]:
    """Convert a demand matrix to the per-commodity dict the MCF solvers accept.

    Zero-demand off-diagonal entries are kept (with demand 0) so the commodity
    set stays the full all-to-all set; the MCF demand constraint for them is
    vacuous.
    """
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("demand matrix must be square")
    out: Dict[Commodity, float] = {}
    for s in range(n):
        for d in range(n):
            if s != d:
                out[(s, d)] = float(matrix[s, d])
    return out


def total_bytes_per_node(matrix: np.ndarray) -> float:
    """Maximum bytes any node sends (the per-node buffer size for the exchange)."""
    return float(matrix.sum(axis=1).max())
