"""Distributed 3D FFT with slab decomposition (Fig. 6).

The paper runs a 27-process FFTW-based 3D FFT on the torus testbed; each
process owns a slab of the grid and the transform proceeds in three phases:

1. 2D FFTs on the local slab planes + packing of the send buffer,
2. an all-to-all personalized exchange that transposes the distribution,
3. unpacking + 1D FFTs along the remaining dimension.

Here the per-rank compute is performed with NumPy on real in-memory slabs
(all ranks live in one process -- the paper's 27 MPI ranks are simulated), so
the *numerics* are exact and verified against ``numpy.fft.fftn``; the
communication phase is timed by the fabric simulator using whichever all-to-all
schedule is under test.  The reported phase breakdown mirrors the stacked bars
of Fig. 6, and the relative ordering of schedules is inherited directly from
their all-to-all times.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from ..core.mcf_path import PathSchedule
from ..schedule.chunking import chunk_path_schedule
from ..schedule.ir import LinkSchedule, RoutedSchedule
from ..simulator.collective import run_link_collective, run_routed_collective
from ..simulator.fabric import FabricModel
from ..topology.base import Topology

__all__ = ["FFT3DResult", "DistributedFFT3D"]

_COMPLEX_BYTES = 16  # complex128


@dataclass
class FFT3DResult:
    """Timing breakdown (Fig. 6 bands) and numerical error of one 3D FFT run."""

    grid_width: int
    num_ranks: int
    fft2d_pack_seconds: float
    alltoall_seconds: float
    unpack_fft1d_seconds: float
    alltoall_buffer_bytes: float
    max_abs_error: float
    schedule_label: str = ""

    @property
    def total_seconds(self) -> float:
        return self.fft2d_pack_seconds + self.alltoall_seconds + self.unpack_fft1d_seconds

    def bands(self) -> Dict[str, float]:
        """The three stacked bands of Fig. 6."""
        return {
            "fft2d+pack": self.fft2d_pack_seconds,
            "alltoall": self.alltoall_seconds,
            "unpack+fft1d": self.unpack_fft1d_seconds,
        }


class DistributedFFT3D:
    """Slab-decomposed distributed 3D FFT driven by a simulated all-to-all.

    Parameters
    ----------
    topology:
        The direct-connect topology; its node count is the rank count.
    grid_width:
        Grid size per dimension; must be divisible by the number of ranks.
    fabric:
        Fabric model used to time the all-to-all exchange.
    compute_scale:
        Multiplier applied to the *measured* local compute time to model
        faster/slower compute nodes than the machine running the simulation
        (1.0 = report the local NumPy timings as-is).
    """

    def __init__(self, topology: Topology, grid_width: int,
                 fabric: Optional[FabricModel] = None,
                 compute_scale: float = 1.0) -> None:
        if grid_width % topology.num_nodes != 0:
            raise ValueError(
                f"grid width {grid_width} must be divisible by the rank count "
                f"{topology.num_nodes} for slab decomposition")
        self.topology = topology
        self.grid_width = grid_width
        self.fabric = fabric
        self.compute_scale = compute_scale
        self.num_ranks = topology.num_nodes
        self.slab = grid_width // topology.num_nodes

    # ------------------------------------------------------------------ #
    def alltoall_buffer_bytes(self) -> float:
        """Total bytes each rank sends during the transpose (the Fig. 6 x-axis).

        Each rank owns ``slab * W * W`` complex values and re-distributes all
        of them (keeping its own share), i.e. the per-node all-to-all buffer is
        ``slab * W * W * 16`` bytes split into N shards.
        """
        return self.slab * self.grid_width * self.grid_width * _COMPLEX_BYTES

    # ------------------------------------------------------------------ #
    def run(self, schedule: Union[LinkSchedule, RoutedSchedule, PathSchedule],
            data: Optional[np.ndarray] = None, seed: int = 0,
            schedule_label: str = "", verify: bool = True) -> FFT3DResult:
        """Execute the distributed FFT and return the Fig. 6 style breakdown.

        ``schedule`` may be a link schedule, a routed schedule, or a weighted
        :class:`PathSchedule` (which is chunked on the fly).
        """
        w, n, slab = self.grid_width, self.num_ranks, self.slab
        rng = np.random.default_rng(seed)
        if data is None:
            data = rng.standard_normal((w, w, w)) + 1j * rng.standard_normal((w, w, w))
        if data.shape != (w, w, w):
            raise ValueError(f"data must have shape {(w, w, w)}")

        # Phase 1: per-rank 2D FFT over the local slab (planes along axis 0)
        # plus packing into per-destination shards.
        t0 = time.perf_counter()
        slabs = [data[r * slab:(r + 1) * slab, :, :] for r in range(n)]
        stage1 = [np.fft.fft2(s, axes=(1, 2)) for s in slabs]
        packed = [[stage1[r][:, :, d * slab:(d + 1) * slab].copy() for d in range(n)]
                  for r in range(n)]
        fft2d_pack = (time.perf_counter() - t0) * self.compute_scale

        # Phase 2: all-to-all transpose, timed on the simulated fabric.
        buffer_bytes = self.alltoall_buffer_bytes()
        alltoall_seconds = self._simulate_alltoall(schedule, buffer_bytes)

        # Phase 3: unpack (reassemble the transposed slabs) + 1D FFT along the
        # remaining axis.
        t0 = time.perf_counter()
        received = [[packed[s][r] for s in range(n)] for r in range(n)]
        stage2 = [np.concatenate(received[r], axis=0) for r in range(n)]
        result_slabs = [np.fft.fft(s, axis=0) for s in stage2]
        unpack_fft1d = (time.perf_counter() - t0) * self.compute_scale

        max_err = 0.0
        if verify:
            reference = np.fft.fftn(data)
            for r in range(n):
                # Rank r holds columns (last axis) [r*slab, (r+1)*slab) after
                # the transpose; compare against the reference.
                expected = reference[:, :, r * slab:(r + 1) * slab]
                max_err = max(max_err, float(np.max(np.abs(result_slabs[r] - expected))))
                if max_err > 1e-6 * w:
                    raise AssertionError(
                        f"distributed FFT numerically diverges (max err {max_err:.3e})")

        return FFT3DResult(
            grid_width=w,
            num_ranks=n,
            fft2d_pack_seconds=fft2d_pack,
            alltoall_seconds=alltoall_seconds,
            unpack_fft1d_seconds=unpack_fft1d,
            alltoall_buffer_bytes=buffer_bytes,
            max_abs_error=max_err,
            schedule_label=schedule_label,
        )

    # ------------------------------------------------------------------ #
    def _simulate_alltoall(self, schedule, buffer_bytes: float) -> float:
        if isinstance(schedule, PathSchedule):
            schedule = chunk_path_schedule(schedule)
        if isinstance(schedule, LinkSchedule):
            result = run_link_collective(schedule, buffer_bytes, fabric=self.fabric,
                                         validate=False)
        elif isinstance(schedule, RoutedSchedule):
            result = run_routed_collective(schedule, buffer_bytes, fabric=self.fabric,
                                           validate=False)
        else:
            raise TypeError(f"unsupported schedule type {type(schedule)!r}")
        return result.completion_time
