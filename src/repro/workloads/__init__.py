"""Application workloads exercising the all-to-all collective."""

from .dlrm import DLRMConfig, DLRMIterationResult, simulate_dlrm_iteration
from .fft3d import FFT3DResult, DistributedFFT3D
from .moe import MoEConfig, MoELayerResult, simulate_moe_layer, token_routing_matrix
from .traffic import (
    demand_matrix_to_dict,
    permutation_traffic,
    skewed_alltoall,
    total_bytes_per_node,
    uniform_alltoall,
)

__all__ = [
    "DLRMConfig",
    "DLRMIterationResult",
    "simulate_dlrm_iteration",
    "FFT3DResult",
    "DistributedFFT3D",
    "MoEConfig",
    "MoELayerResult",
    "simulate_moe_layer",
    "token_routing_matrix",
    "demand_matrix_to_dict",
    "permutation_traffic",
    "skewed_alltoall",
    "total_bytes_per_node",
    "uniform_alltoall",
]
