"""Mixture-of-Experts dispatch/combine workload.

MoE layers (GShard-style) route each token to its top-k experts, which live on
other ranks: every layer performs an all-to-all to *dispatch* tokens to the
experts and a second all-to-all to *combine* the expert outputs back.  Routing
is data dependent, so the traffic matrix can be imbalanced: popular experts
receive more tokens, which stresses exactly the non-uniform demands the MCF
formulation handles (the ``demand`` argument of the link MCF).

This module generates token-routing matrices (balanced or Zipf-skewed),
converts them to per-commodity demands, and simulates the dispatch/combine
exchanges for a schedule under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..core.mcf_path import PathSchedule
from ..schedule.chunking import chunk_path_schedule
from ..schedule.ir import LinkSchedule, RoutedSchedule
from ..simulator.collective import run_link_collective, run_routed_collective
from ..simulator.fabric import FabricModel
from ..topology.base import Topology

__all__ = ["MoEConfig", "MoELayerResult", "token_routing_matrix", "simulate_moe_layer"]


@dataclass(frozen=True)
class MoEConfig:
    """MoE layer parameters (one expert group per rank)."""

    tokens_per_rank: int = 4096
    model_dim: int = 1024
    top_k: int = 2
    bytes_per_element: int = 2          # bf16 activations
    expert_flops_per_token: float = 8e6
    compute_flops: float = 100e12
    compute_efficiency: float = 0.4
    zipf_alpha: float = 0.0             # 0 = perfectly balanced routing

    def token_bytes(self) -> float:
        return self.model_dim * self.bytes_per_element


def token_routing_matrix(num_nodes: int, config: MoEConfig, seed: int = 0) -> np.ndarray:
    """Tokens routed from each source rank to each expert rank.

    With ``zipf_alpha == 0`` the ``top_k * tokens_per_rank`` routed tokens are
    spread evenly across the other ranks; larger alpha concentrates them on a
    Zipf-distributed subset of popular experts.
    """
    rng = np.random.default_rng(seed)
    routed = config.tokens_per_rank * config.top_k
    mat = np.zeros((num_nodes, num_nodes))
    if config.zipf_alpha <= 0:
        per_dest = routed / (num_nodes - 1)
        mat[:, :] = per_dest
        np.fill_diagonal(mat, 0.0)
        return mat
    ranksizes = np.arange(1, num_nodes, dtype=float) ** (-config.zipf_alpha)
    for s in range(num_nodes):
        destinations = [d for d in range(num_nodes) if d != s]
        popularity = ranksizes / ranksizes.sum()
        # Rotate popularity so hot experts differ per source only by the seed.
        perm = rng.permutation(len(destinations))
        counts = routed * popularity[perm]
        for d, c in zip(destinations, counts):
            mat[s, d] = c
    return mat


@dataclass
class MoELayerResult:
    """Breakdown of one MoE layer forward pass."""

    expert_compute_seconds: float
    dispatch_seconds: float
    combine_seconds: float
    max_bytes_per_node: float
    imbalance: float                    # max/mean tokens received per expert
    schedule_label: str = ""

    @property
    def total_seconds(self) -> float:
        return self.expert_compute_seconds + self.dispatch_seconds + self.combine_seconds


def _simulate(schedule: Union[LinkSchedule, RoutedSchedule, PathSchedule],
              buffer_bytes: float, fabric: Optional[FabricModel]) -> float:
    if isinstance(schedule, PathSchedule):
        schedule = chunk_path_schedule(schedule)
    if isinstance(schedule, LinkSchedule):
        return run_link_collective(schedule, buffer_bytes, fabric=fabric,
                                   validate=False).completion_time
    if isinstance(schedule, RoutedSchedule):
        return run_routed_collective(schedule, buffer_bytes, fabric=fabric,
                                     validate=False).completion_time
    raise TypeError(f"unsupported schedule type {type(schedule)!r}")


def simulate_moe_layer(topology: Topology,
                       schedule: Union[LinkSchedule, RoutedSchedule, PathSchedule],
                       config: Optional[MoEConfig] = None,
                       fabric: Optional[FabricModel] = None,
                       seed: int = 0,
                       schedule_label: str = "") -> MoELayerResult:
    """Simulate one MoE layer: dispatch all-to-all, expert compute, combine all-to-all.

    The schedule was synthesised for uniform all-to-all; imbalanced routing is
    modelled by scaling the exchange to the *largest* per-node buffer (the
    straggler expert), which is how a static schedule behaves under skew.
    """
    config = config or MoEConfig()
    n = topology.num_nodes
    mat = token_routing_matrix(n, config, seed=seed)
    bytes_matrix = mat * config.token_bytes()
    max_send = float(bytes_matrix.sum(axis=1).max())
    max_recv = float(bytes_matrix.sum(axis=0).max())
    buffer_bytes = max(max_send, max_recv)

    tokens_received = mat.sum(axis=0)
    imbalance = float(tokens_received.max() / tokens_received.mean())

    dispatch = _simulate(schedule, buffer_bytes, fabric)
    combine = _simulate(schedule, buffer_bytes, fabric)
    expert_compute = (float(tokens_received.max()) * config.expert_flops_per_token
                      / (config.compute_flops * config.compute_efficiency))
    return MoELayerResult(
        expert_compute_seconds=expert_compute,
        dispatch_seconds=dispatch,
        combine_seconds=combine,
        max_bytes_per_node=buffer_bytes,
        imbalance=imbalance,
        schedule_label=schedule_label,
    )
