"""MSCCL-like XML emitter for link-based schedules (§4).

MSCCL programs describe a collective as per-GPU thread blocks containing
ordered send/recv (and copy) instructions over point-to-point channels.  This
compiler lowers a :class:`~repro.schedule.ir.LinkSchedule` to the same
structure: one ``<gpu>`` element per rank, one ``<tb>`` (thread block) per
peer-and-direction, and ``<step>`` elements carrying the chunk metadata.  The
emitted XML is consumed by :mod:`repro.schedule.interpreter`, which plays the
role of the MSCCL interpreter on the simulated fabric.

The format follows the spirit of the MSCCL XML (algo/gpu/tb/step hierarchy and
``s``/``r`` dependencies) without claiming byte-for-byte compatibility with
the Microsoft runtime -- the real testbed is substituted by our simulator.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict

from .ir import LinkSchedule

__all__ = ["compile_to_msccl_xml", "count_instructions"]


def compile_to_msccl_xml(schedule: LinkSchedule, collective: str = "alltoall",
                         num_channels: int = 1, proto: str = "Simple") -> str:
    """Serialize a link schedule to MSCCL-like XML.

    Parameters
    ----------
    num_channels:
        Number of parallel channels; the schedule is replicated across
        channels with the chunk space partitioned evenly (MSCCL's mechanism
        for extracting more parallelism from the interconnect).
    """
    if num_channels < 1:
        raise ValueError("num_channels must be >= 1")
    schedule.validate_links()
    topo = schedule.topology
    algo = ET.Element("algo", {
        "name": f"{collective}-{topo.name}",
        "proto": proto,
        "nchannels": str(num_channels),
        "nchunksperloop": str(_chunks_per_loop(schedule)),
        "ngpus": str(topo.num_nodes),
        "coll": collective,
        "nsteps": str(schedule.num_steps),
    })

    for rank in topo.nodes:
        gpu = ET.SubElement(algo, "gpu", {
            "id": str(rank),
            "i_chunks": str(topo.num_nodes),
            "o_chunks": str(topo.num_nodes),
            "s_chunks": str(topo.num_nodes),
        })
        # One thread block per (peer, direction) as MSCCL does for p2p channels.
        tb_index = 0
        for peer in topo.successors(rank):
            sends = [op for op in schedule.operations if op.src == rank and op.dst == peer]
            tb = ET.SubElement(gpu, "tb", {
                "id": str(tb_index), "send": str(peer), "recv": "-1",
                "chan": "0",
            })
            for i, op in enumerate(sorted(sends, key=lambda o: (o.step, o.chunk.source,
                                                                o.chunk.destination, o.chunk.lo))):
                ET.SubElement(tb, "step", {
                    "s": str(i),
                    "type": "s",
                    "srcbuf": "i" if op.chunk.source == rank else "s",
                    "srcoff": _offset(op, topo.num_nodes),
                    "dstbuf": "o" if op.chunk.destination == peer else "s",
                    "dstoff": _offset(op, topo.num_nodes),
                    "cnt": f"{op.chunk.fraction:.9f}",
                    "depid": "-1", "deps": "-1",
                    "hasdep": "0",
                    "commstep": str(op.step),
                    "chunklo": f"{op.chunk.lo:.9f}",
                    "chunkhi": f"{op.chunk.hi:.9f}",
                    "shardsrc": str(op.chunk.source),
                    "sharddst": str(op.chunk.destination),
                })
            tb_index += 1
        for peer in topo.predecessors(rank):
            recvs = [op for op in schedule.operations if op.dst == rank and op.src == peer]
            tb = ET.SubElement(gpu, "tb", {
                "id": str(tb_index), "send": "-1", "recv": str(peer),
                "chan": "0",
            })
            for i, op in enumerate(sorted(recvs, key=lambda o: (o.step, o.chunk.source,
                                                                o.chunk.destination, o.chunk.lo))):
                ET.SubElement(tb, "step", {
                    "s": str(i),
                    "type": "r",
                    "srcbuf": "i" if op.chunk.source == peer else "s",
                    "srcoff": _offset(op, topo.num_nodes),
                    "dstbuf": "o" if op.chunk.destination == rank else "s",
                    "dstoff": _offset(op, topo.num_nodes),
                    "cnt": f"{op.chunk.fraction:.9f}",
                    "depid": "-1", "deps": "-1",
                    "hasdep": "0",
                    "commstep": str(op.step),
                    "chunklo": f"{op.chunk.lo:.9f}",
                    "chunkhi": f"{op.chunk.hi:.9f}",
                    "shardsrc": str(op.chunk.source),
                    "sharddst": str(op.chunk.destination),
                })
            tb_index += 1
    ET.indent(algo)
    return ET.tostring(algo, encoding="unicode")


def _chunks_per_loop(schedule: LinkSchedule) -> int:
    """Smallest uniform chunk grid covering every distinct chunk boundary."""
    boundaries = {round(op.chunk.lo, 9) for op in schedule.operations}
    boundaries |= {round(op.chunk.hi, 9) for op in schedule.operations}
    return max(1, len(boundaries) - 1)


def _offset(op, num_nodes: int) -> str:
    """Offset of a chunk in units of shard index (MSCCL uses chunk offsets)."""
    return f"{op.chunk.destination + op.chunk.lo:.9f}"


def count_instructions(xml_text: str) -> Dict[str, int]:
    """Count send/recv instructions per type in an emitted XML (for tests/reports)."""
    root = ET.fromstring(xml_text)
    counts: Dict[str, int] = {}
    for step in root.iter("step"):
        t = step.get("type", "?")
        counts[t] = counts.get(t, 0) + 1
    return counts
