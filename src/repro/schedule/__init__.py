"""Schedule IR, chunking, XML compilers and the executing interpreter."""

from .chunking import chunk_path_schedule, chunk_timestepped_flow, quantize_weights
from .compile_msccl import compile_to_msccl_xml, count_instructions
from .compile_oneccl import compile_to_oneccl_xml, scratch_buffer_bytes
from .compile_ompi import compile_to_ompi_xml, count_queue_pairs
from .interpreter import (
    execute_link_xml,
    execute_routed_xml,
    parse_msccl_xml,
    parse_oneccl_xml,
    parse_ompi_xml,
)
from .ir import Chunk, LinkSchedule, LinkSendOp, RouteAssignment, RoutedSchedule
from .stats import (
    LinkScheduleStats,
    RoutedScheduleStats,
    link_schedule_stats,
    routed_schedule_stats,
)
from .validate import ScheduleValidationError, validate_link_schedule, validate_routed_schedule

__all__ = [
    "chunk_path_schedule",
    "chunk_timestepped_flow",
    "quantize_weights",
    "compile_to_msccl_xml",
    "count_instructions",
    "compile_to_oneccl_xml",
    "scratch_buffer_bytes",
    "compile_to_ompi_xml",
    "count_queue_pairs",
    "execute_link_xml",
    "execute_routed_xml",
    "parse_msccl_xml",
    "parse_oneccl_xml",
    "parse_ompi_xml",
    "LinkScheduleStats",
    "RoutedScheduleStats",
    "link_schedule_stats",
    "routed_schedule_stats",
    "Chunk",
    "LinkSchedule",
    "LinkSendOp",
    "RouteAssignment",
    "RoutedSchedule",
    "ScheduleValidationError",
    "validate_link_schedule",
    "validate_routed_schedule",
]
