"""Schedule intermediate representation (§2.2).

An all-to-all communication schedule specifies which *chunk* (a subinterval of
a shard ``B[s, d]``) is communicated over which link or route at which comm
step.  Two concrete forms are used:

* :class:`LinkSchedule` -- time-stepped, link-granular sends for fabrics
  without NIC forwarding (lowered to MSCCL / oneCCL XML);
* :class:`RoutedSchedule` -- per-commodity weighted routes with chunk-to-route
  assignments for fabrics with NIC forwarding (lowered to OMPI/UCX steering).

Chunks are expressed as fractional intervals ``[lo, hi) ⊆ [0, 1)`` of their
shard, so schedules are independent of the byte size ``m``; the compiler
multiplies by ``m`` when emitting XML for a specific buffer size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..topology.base import Edge, Topology
from ..core.flow import Commodity

__all__ = ["Chunk", "LinkSendOp", "LinkSchedule", "RouteAssignment", "RoutedSchedule"]


@dataclass(frozen=True)
class Chunk:
    """A contiguous fraction of shard (source, destination).

    ``lo`` and ``hi`` are fractions of the shard in ``[0, 1]`` with
    ``lo < hi``; the chunk size as a fraction of the shard is ``hi - lo``.
    """

    source: int
    destination: int
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.lo < self.hi <= 1.0 + 1e-12):
            raise ValueError(f"invalid chunk interval [{self.lo}, {self.hi})")

    @property
    def fraction(self) -> float:
        """Chunk size as a fraction of its shard."""
        return self.hi - self.lo

    @property
    def commodity(self) -> Commodity:
        return (self.source, self.destination)

    def bytes(self, shard_bytes: float) -> float:
        """Chunk size in bytes for a given shard size."""
        return self.fraction * shard_bytes


@dataclass(frozen=True)
class LinkSendOp:
    """One send of a chunk over a directly connected link at a given step."""

    chunk: Chunk
    src: int
    dst: int
    step: int

    def __post_init__(self) -> None:
        if self.step < 1:
            raise ValueError("steps are 1-based")
        if self.src == self.dst:
            raise ValueError("link send must cross a link")


@dataclass
class LinkSchedule:
    """Time-stepped link-granular schedule (ML-fabric form).

    The schedule is a list of :class:`LinkSendOp`; ``num_steps`` is the number
    of synchronized communication steps.
    """

    topology: Topology
    num_steps: int
    operations: List[LinkSendOp] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def ops_at_step(self, step: int) -> List[LinkSendOp]:
        """All sends scheduled for a given step."""
        return [op for op in self.operations if op.step == step]

    def ops_by_link(self, step: int) -> Dict[Edge, List[LinkSendOp]]:
        """Sends at a step grouped by link."""
        grouped: Dict[Edge, List[LinkSendOp]] = {}
        for op in self.ops_at_step(step):
            grouped.setdefault((op.src, op.dst), []).append(op)
        return grouped

    def link_bytes(self, step: int, shard_bytes: float) -> Dict[Edge, float]:
        """Bytes crossing each link during a step."""
        out: Dict[Edge, float] = {}
        for op in self.ops_at_step(step):
            e = (op.src, op.dst)
            out[e] = out.get(e, 0.0) + op.chunk.bytes(shard_bytes)
        return out

    def total_bytes(self, shard_bytes: float) -> float:
        """Total bytes moved across all links and steps."""
        return sum(op.chunk.bytes(shard_bytes) for op in self.operations)

    def validate_links(self) -> None:
        """Check every send uses an existing directed link."""
        for op in self.operations:
            if not self.topology.has_edge(op.src, op.dst):
                raise ValueError(f"operation {op} uses non-existent link ({op.src},{op.dst})")
            if not (1 <= op.step <= self.num_steps):
                raise ValueError(f"operation {op} outside step range 1..{self.num_steps}")


@dataclass(frozen=True)
class RouteAssignment:
    """A chunk assigned to an explicit multi-hop route (path-based schedules)."""

    chunk: Chunk
    route: Tuple[int, ...]
    layer: int = 0   # virtual-channel layer for deadlock freedom

    def __post_init__(self) -> None:
        if len(self.route) < 2:
            raise ValueError("route must contain at least source and destination")
        if self.route[0] != self.chunk.source or self.route[-1] != self.chunk.destination:
            raise ValueError("route endpoints must match the chunk's shard endpoints")

    @property
    def edges(self) -> Tuple[Edge, ...]:
        return tuple(zip(self.route[:-1], self.route[1:]))


@dataclass
class RoutedSchedule:
    """Path-based schedule: every chunk steered onto an explicit route."""

    topology: Topology
    assignments: List[RouteAssignment] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def routes_for(self, source: int, destination: int) -> List[RouteAssignment]:
        """Assignments belonging to one commodity."""
        return [a for a in self.assignments
                if a.chunk.source == source and a.chunk.destination == destination]

    def link_bytes(self, shard_bytes: float) -> Dict[Edge, float]:
        """Total bytes crossing each link over the whole collective."""
        out: Dict[Edge, float] = {}
        for a in self.assignments:
            for e in a.edges:
                out[e] = out.get(e, 0.0) + a.chunk.bytes(shard_bytes)
        return out

    def num_layers(self) -> int:
        """Number of distinct virtual-channel layers used."""
        return len({a.layer for a in self.assignments}) if self.assignments else 0

    def validate_links(self) -> None:
        """Check every route hop uses an existing directed link."""
        for a in self.assignments:
            for u, v in a.edges:
                if not self.topology.has_edge(u, v):
                    raise ValueError(f"route {a.route} uses non-existent link ({u},{v})")
