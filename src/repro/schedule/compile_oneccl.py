"""oneCCL-like XML emitter for link-based schedules on CPU runtimes (§4).

The paper extends Intel oneCCL with an interpreter analogous to MSCCL's: the
XML lists per-rank instructions (send / receive / copy / sync) and declares
scratch buffers used to stage chunks that are forwarded by intermediate ranks.
This compiler emits that structure from a :class:`LinkSchedule`: a global
``<sync>`` separates communication steps (store-and-forward semantics), sends
whose chunk terminates at the peer write into the peer's output buffer, and
sends that will be forwarded later write into the peer's scratch buffer.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict

from .ir import LinkSchedule

__all__ = ["compile_to_oneccl_xml", "scratch_buffer_bytes"]


def compile_to_oneccl_xml(schedule: LinkSchedule, collective: str = "alltoall") -> str:
    """Serialize a link schedule to oneCCL-like XML."""
    schedule.validate_links()
    topo = schedule.topology
    root = ET.Element("schedule", {
        "coll": collective,
        "topology": topo.name,
        "nranks": str(topo.num_nodes),
        "nsteps": str(schedule.num_steps),
        "runtime": "oneccl",
    })

    for rank in topo.nodes:
        rank_el = ET.SubElement(root, "rank", {"id": str(rank)})
        scratch = ET.SubElement(rank_el, "scratch", {
            "chunks": str(_scratch_chunks(schedule, rank)),
        })
        for step in range(1, schedule.num_steps + 1):
            step_el = ET.SubElement(rank_el, "commstep", {"t": str(step)})
            for op in sorted(schedule.ops_at_step(step),
                             key=lambda o: (o.src, o.dst, o.chunk.source, o.chunk.destination, o.chunk.lo)):
                if op.src == rank:
                    ET.SubElement(step_el, "send", {
                        "peer": str(op.dst),
                        "srcbuf": "input" if op.chunk.source == rank else "scratch",
                        "dstbuf": "output" if op.chunk.destination == op.dst else "scratch",
                        "shardsrc": str(op.chunk.source),
                        "sharddst": str(op.chunk.destination),
                        "lo": f"{op.chunk.lo:.9f}",
                        "hi": f"{op.chunk.hi:.9f}",
                    })
                if op.dst == rank:
                    ET.SubElement(step_el, "recv", {
                        "peer": str(op.src),
                        "dstbuf": "output" if op.chunk.destination == rank else "scratch",
                        "shardsrc": str(op.chunk.source),
                        "sharddst": str(op.chunk.destination),
                        "lo": f"{op.chunk.lo:.9f}",
                        "hi": f"{op.chunk.hi:.9f}",
                    })
            ET.SubElement(step_el, "sync", {})
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def _scratch_chunks(schedule: LinkSchedule, rank: int) -> int:
    """Number of foreign chunks this rank ever stages (sizes its scratch buffer)."""
    staged = set()
    for op in schedule.operations:
        if op.dst == rank and op.chunk.destination != rank:
            staged.add((op.chunk.source, op.chunk.destination, round(op.chunk.lo, 9)))
    return len(staged)


def scratch_buffer_bytes(schedule: LinkSchedule, shard_bytes: float) -> Dict[int, float]:
    """Scratch buffer size needed per rank for a given shard size.

    A rank must be able to hold every foreign chunk it stages simultaneously
    in the worst case (conservative upper bound; the interpreter can reuse
    space once a chunk is forwarded).
    """
    out: Dict[int, float] = {r: 0.0 for r in schedule.topology.nodes}
    for op in schedule.operations:
        if op.chunk.destination != op.dst:
            out[op.dst] += op.chunk.bytes(shard_bytes)
    return out
