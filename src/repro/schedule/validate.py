"""Schedule correctness validation.

A valid all-to-all schedule must deliver every shard ``B[s, d]`` from node
``s`` to node ``d`` in full, moving data only over existing links, and -- for
link-based schedules -- only forwarding bytes a node has already received
(store-and-forward causality).  These checks run on every schedule the
compilers emit and on everything the interpreter executes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..constants import SCHEDULE_TOL
from ..core.flow import Commodity
from .ir import LinkSchedule, RoutedSchedule

__all__ = ["validate_link_schedule", "validate_routed_schedule", "ScheduleValidationError"]


class ScheduleValidationError(ValueError):
    """Raised when a schedule fails a correctness check."""


def _merge(intervals: List[Tuple[float, float]], tol: float = 1e-12) -> List[Tuple[float, float]]:
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for lo, hi in intervals[1:]:
        plo, phi = merged[-1]
        if lo <= phi + tol:
            merged[-1] = (plo, max(phi, hi))
        else:
            merged.append((lo, hi))
    return merged


def _covered(intervals: List[Tuple[float, float]]) -> float:
    return sum(hi - lo for lo, hi in _merge(intervals))


def _expected_commodities(topology, meta: Dict) -> List[Tuple[int, int]]:
    """All-to-all commodity set, restricted to ``meta['terminals']`` when present."""
    terminals = meta.get("terminals")
    if terminals:
        terminals = sorted(set(terminals))
        return [(s, d) for s in terminals for d in terminals if s != d]
    return list(topology.commodities())


def validate_link_schedule(schedule: LinkSchedule, strict_causality: bool = True) -> None:
    """Validate a time-stepped link schedule.

    Checks: links exist; per-commodity causality (a node only forwards
    intervals it already holds at the start of the step); and completion
    (node d ends holding all of shard (s, d) for every commodity).  When the
    schedule's meta carries a ``terminals`` list (host-NIC augmented
    topologies), the commodity set is all-to-all over those terminals only.

    Raises :class:`ScheduleValidationError` on the first violation.
    """
    schedule.validate_links()
    topo = schedule.topology
    # holdings[(s, d)][node] = list of intervals of shard (s,d) held at node.
    holdings: Dict[Commodity, Dict[int, List[Tuple[float, float]]]] = {}
    for s, d in _expected_commodities(topo, schedule.meta):
        holdings[(s, d)] = {u: [] for u in topo.nodes}
        holdings[(s, d)][s] = [(0.0, 1.0)]

    for step in range(1, schedule.num_steps + 1):
        arrivals: List[Tuple[Commodity, int, Tuple[float, float]]] = []
        for op in schedule.ops_at_step(step):
            c = op.chunk.commodity
            if c not in holdings:
                raise ScheduleValidationError(f"operation for unexpected commodity {c}")
            interval = (op.chunk.lo, op.chunk.hi)
            if strict_causality:
                held = holdings[c][op.src]
                if not _interval_contained(interval, held):
                    raise ScheduleValidationError(
                        f"step {step}: node {op.src} sends {interval} of shard {c} "
                        f"but holds only {held}")
            arrivals.append((c, op.dst, interval))
            # Remove the sent interval from the sender (data is moved onward).
            holdings[c][op.src] = _subtract(holdings[c][op.src], interval)
        for c, dst, interval in arrivals:
            holdings[c][dst] = _merge(holdings[c][dst] + [interval])

    for (s, d), per_node in holdings.items():
        covered = _covered(per_node[d])
        if covered < 1.0 - SCHEDULE_TOL:
            raise ScheduleValidationError(
                f"shard ({s},{d}) only {covered:.6f} delivered to destination {d}")


def _interval_contained(interval: Tuple[float, float],
                        held: List[Tuple[float, float]], tol: float = 1e-6) -> bool:
    lo, hi = interval
    remaining = [(lo, hi)]
    for hlo, hhi in _merge(held):
        new_remaining = []
        for rlo, rhi in remaining:
            if hhi <= rlo + tol or hlo >= rhi - tol:
                new_remaining.append((rlo, rhi))
                continue
            if hlo > rlo + tol:
                new_remaining.append((rlo, hlo))
            if hhi < rhi - tol:
                new_remaining.append((hhi, rhi))
        remaining = new_remaining
    return sum(hi - lo for lo, hi in remaining) <= tol


def _subtract(held: List[Tuple[float, float]], interval: Tuple[float, float],
              tol: float = 1e-12) -> List[Tuple[float, float]]:
    lo, hi = interval
    out: List[Tuple[float, float]] = []
    for hlo, hhi in held:
        if hhi <= lo + tol or hlo >= hi - tol:
            out.append((hlo, hhi))
            continue
        if hlo < lo - tol:
            out.append((hlo, lo))
        if hhi > hi + tol:
            out.append((hi, hhi))
    return out


def validate_routed_schedule(schedule: RoutedSchedule) -> None:
    """Validate a path-based schedule.

    Checks: every route uses existing links and connects the chunk's source to
    its destination; and the chunks of every commodity cover its full shard
    without overlap.
    """
    schedule.validate_links()
    topo = schedule.topology
    per_commodity: Dict[Commodity, List[Tuple[float, float]]] = {
        c: [] for c in _expected_commodities(topo, schedule.meta)}
    for a in schedule.assignments:
        c = a.chunk.commodity
        if c not in per_commodity:
            raise ScheduleValidationError(f"assignment for unknown commodity {c}")
        per_commodity[c].append((a.chunk.lo, a.chunk.hi))
    for c, intervals in per_commodity.items():
        total = sum(hi - lo for lo, hi in intervals)
        covered = _covered(intervals)
        if covered < 1.0 - SCHEDULE_TOL:
            raise ScheduleValidationError(f"commodity {c} shard not fully covered ({covered:.6f})")
        if total > covered + SCHEDULE_TOL:
            raise ScheduleValidationError(f"commodity {c} has overlapping chunks")
