"""Chunking: turning fractional MCF rates into concrete chunk schedules (§4).

The MCF solutions give fractional rates per commodity per link (and per time
step for tsMCF) or fractional weights per path (pMCF / MCF-extP).  Lowering to
a runtime needs concrete chunks:

* for **link-based** schedules the compiler walks the time-stepped flows and
  assigns, per (commodity, step, link), a chunk covering the corresponding
  fraction of the shard -- chunk boundaries are tracked per commodity so the
  same bytes are never sent twice and forwarding at intermediate nodes only
  re-sends bytes already received;
* for **path-based** schedules the shard is divided into equal-sized chunks
  whose size is (approximately) the highest common factor of the path weights,
  and the right number of chunks is assigned to each route (the paper's
  approach on the Cerio fabric).
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.mcf_path import PathSchedule
from ..core.mcf_timestepped import TimeSteppedFlow
from .ir import Chunk, LinkSchedule, LinkSendOp, RouteAssignment, RoutedSchedule

__all__ = [
    "quantize_weights",
    "chunk_path_schedule",
    "chunk_timestepped_flow",
]


def quantize_weights(weights: Sequence[float], max_denominator: int = 64,
                     tol: float = 1e-6) -> Tuple[List[int], int]:
    """Approximate positive weights by integer chunk counts over a common denominator.

    Returns ``(counts, denominator)`` such that ``counts[i] / denominator``
    approximates ``weights[i] / sum(weights)`` and every positive weight gets
    at least one chunk.  This mirrors the paper's "highest common factor"
    rule: the base chunk size is ``1/denominator`` of the shard.
    """
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must have positive sum")
    fracs = [Fraction(w / total).limit_denominator(max_denominator) for w in weights]
    # Ensure every positive weight is represented.
    for i, (w, f) in enumerate(zip(weights, fracs)):
        if w > tol and f == 0:
            fracs[i] = Fraction(1, max_denominator)
    denom = 1
    for f in fracs:
        denom = denom * f.denominator // gcd(denom, f.denominator)
    if denom > max(max_denominator * max(len(weights), 4), max_denominator ** 2):
        # Pathological weight ratios can make the least common denominator (and
        # hence the chunk count) explode; fall back to largest-remainder
        # apportionment over a fixed grid instead.
        return _largest_remainder_counts(weights, max_denominator * len(weights))
    counts = [int(f * denom) for f in fracs]
    # Normalize so counts sum exactly to denom.  Rounding drift is absorbed by
    # the largest weights first (least relative distortion), never driving a
    # positive weight's count below one chunk.
    drift = denom - sum(counts)
    for idx in sorted(range(len(weights)), key=lambda i: -weights[i]):
        if drift == 0:
            break
        if drift > 0:
            counts[idx] += drift
            drift = 0
        else:
            take = min(-drift, counts[idx] - 1)
            counts[idx] -= take
            drift += take
    if drift != 0:
        raise ValueError("quantization failed: cannot absorb rounding drift")
    return counts, denom


def _largest_remainder_counts(weights: Sequence[float], denom: int) -> Tuple[List[int], int]:
    """Hamilton (largest remainder) apportionment of ``denom`` chunks to weights."""
    total = float(sum(weights))
    shares = [w / total * denom for w in weights]
    counts = [max(1, int(s)) for s in shares]
    drift = denom - sum(counts)
    remainders = sorted(range(len(weights)), key=lambda i: -(shares[i] - int(shares[i])))
    i = 0
    while drift > 0:
        counts[remainders[i % len(weights)]] += 1
        drift -= 1
        i += 1
    order = sorted(range(len(weights)), key=lambda i: -weights[i])
    for idx in order:
        if drift >= 0:
            break
        take = min(-drift, counts[idx] - 1)
        counts[idx] -= take
        drift += take
    if drift != 0:
        raise ValueError("quantization failed: cannot apportion chunks")
    return counts, denom


def chunk_path_schedule(schedule: PathSchedule, max_denominator: int = 64,
                        layers: Optional[Dict[Tuple[int, ...], int]] = None) -> RoutedSchedule:
    """Lower a weighted-path schedule to explicit chunk-to-route assignments.

    Each commodity's shard is split into ``denominator`` equal chunks; each
    route receives a number of chunks proportional to its weight.

    Parameters
    ----------
    layers:
        Optional mapping route -> virtual-channel layer (from
        :mod:`repro.routing.lash`); defaults to layer 0 for every route.
    """
    normalized = schedule.normalized()
    assignments: List[RouteAssignment] = []
    for (s, d), paths in normalized.paths.items():
        if not paths:
            raise ValueError(f"commodity {(s, d)} has no routes")
        weights = [p.weight for p in paths]
        counts, denom = quantize_weights(weights, max_denominator=max_denominator)
        chunk_fraction = Fraction(1, denom)
        next_chunk = 0
        for path, count in zip(paths, counts):
            for _ in range(count):
                lo = float(next_chunk * chunk_fraction)
                hi = float((next_chunk + 1) * chunk_fraction)
                chunk = Chunk(source=s, destination=d, lo=lo, hi=min(hi, 1.0))
                layer = 0 if layers is None else layers.get(tuple(path.nodes), 0)
                assignments.append(RouteAssignment(chunk=chunk, route=tuple(path.nodes),
                                                   layer=layer))
                next_chunk += 1
        if next_chunk != denom:
            raise AssertionError("chunk accounting error in path chunking")
    routed = RoutedSchedule(topology=schedule.topology, assignments=assignments,
                            meta={**schedule.meta, "max_denominator": max_denominator})
    routed.validate_links()
    return routed


def chunk_timestepped_flow(flow: TimeSteppedFlow, tol: float = 1e-9) -> LinkSchedule:
    """Lower a tsMCF solution to a time-stepped link schedule.

    For every commodity the algorithm tracks, per node, which fraction
    intervals of the shard the node holds after each step (the source starts
    holding ``[0, 1)``).  At each step, the fractional flow on each outgoing
    link is served from the oldest-held intervals, producing concrete chunk
    sends that respect store-and-forward causality by construction.
    """
    topo = flow.topology
    ops: List[LinkSendOp] = []

    for (s, d), per in flow.flows.items():
        # intervals held at each node (list of [lo, hi) tuples); data is
        # *moved* (not copied) since all-to-all forwards, never multicasts.
        holdings: Dict[int, List[Tuple[float, float]]] = {u: [] for u in topo.nodes}
        holdings[s] = [(0.0, 1.0)]
        # group flow by step
        by_step: Dict[int, List[Tuple[int, int, float]]] = {}
        for (u, v, t), val in per.items():
            if val > tol:
                by_step.setdefault(t, []).append((u, v, val))
        for t in range(1, flow.num_steps + 1):
            sends = sorted(by_step.get(t, []))
            # Serve each send from the sender's current holdings.
            staged: Dict[int, List[Tuple[float, float]]] = {}
            for u, v, amount in sends:
                remaining = amount
                new_hold: List[Tuple[float, float]] = []
                taken: List[Tuple[float, float]] = []
                for lo, hi in holdings[u]:
                    if remaining <= tol:
                        new_hold.append((lo, hi))
                        continue
                    size = hi - lo
                    if size <= remaining + tol:
                        taken.append((lo, hi))
                        remaining -= size
                    else:
                        taken.append((lo, lo + remaining))
                        new_hold.append((lo + remaining, hi))
                        remaining = 0.0
                if remaining > 1e-6:
                    raise ValueError(
                        f"tsMCF flow for commodity {(s, d)} sends {amount} over ({u},{v}) "
                        f"at step {t} but node {u} only holds {amount - remaining}")
                holdings[u] = new_hold
                for lo, hi in taken:
                    if hi - lo > tol:
                        ops.append(LinkSendOp(chunk=Chunk(s, d, lo, min(hi, 1.0)),
                                              src=u, dst=v, step=t))
                staged.setdefault(v, []).extend(taken)
            # Receivers gain the data only after the step completes
            # (store-and-forward), merging adjacent intervals for tidiness.
            for v, intervals in staged.items():
                holdings[v] = _merge_intervals(holdings[v] + intervals)
    schedule = LinkSchedule(topology=topo, num_steps=flow.num_steps, operations=ops,
                            meta={**flow.meta, "source": "tsmcf"})
    schedule.validate_links()
    return schedule


def _merge_intervals(intervals: List[Tuple[float, float]],
                     tol: float = 1e-12) -> List[Tuple[float, float]]:
    """Merge overlapping/adjacent fraction intervals."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for lo, hi in intervals[1:]:
        plo, phi = merged[-1]
        if lo <= phi + tol:
            merged[-1] = (plo, max(phi, hi))
        else:
            merged.append((lo, hi))
    return merged
