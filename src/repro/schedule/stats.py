"""Schedule statistics: instruction counts, load balance, buffer pressure.

These metrics summarise a lowered schedule the way a runtime engineer would
inspect it before deploying: how many steps / instructions per rank, how
evenly the links are loaded (directly tied to achievable throughput), how much
scratch space forwarding needs, and how many queue pairs a routed schedule
opens (§5.5 discusses QP pressure as the practical scaling limit of granular
chunking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..topology.base import Edge
from .ir import LinkSchedule, RoutedSchedule

__all__ = ["LinkScheduleStats", "RoutedScheduleStats", "link_schedule_stats",
           "routed_schedule_stats"]


@dataclass(frozen=True)
class LinkScheduleStats:
    """Summary statistics of a time-stepped link schedule."""

    num_steps: int
    num_operations: int
    operations_per_rank_max: int
    total_fraction_moved: float        # in shard units
    max_step_link_fraction: float      # busiest link in the busiest step
    load_imbalance: float              # max / mean link fraction over the whole schedule
    forwarded_fraction: float          # shard units staged at intermediate ranks


@dataclass(frozen=True)
class RoutedScheduleStats:
    """Summary statistics of a routed (path-based) schedule."""

    num_assignments: int
    num_distinct_routes: int
    num_layers: int
    max_route_hops: int
    mean_route_hops: float
    queue_pairs_per_rank_max: int
    load_imbalance: float              # max / mean link fraction


def link_schedule_stats(schedule: LinkSchedule) -> LinkScheduleStats:
    """Compute :class:`LinkScheduleStats` for a link schedule."""
    per_rank: Dict[int, int] = {}
    link_total: Dict[Edge, float] = {}
    max_step_link = 0.0
    forwarded = 0.0
    for op in schedule.operations:
        per_rank[op.src] = per_rank.get(op.src, 0) + 1
        link_total[(op.src, op.dst)] = link_total.get((op.src, op.dst), 0.0) + op.chunk.fraction
        if op.dst != op.chunk.destination:
            forwarded += op.chunk.fraction
    for step in range(1, schedule.num_steps + 1):
        loads = schedule.link_bytes(step, shard_bytes=1.0)
        if loads:
            max_step_link = max(max_step_link, max(loads.values()))
    totals = list(link_total.values())
    mean_load = sum(totals) / len(totals) if totals else 0.0
    imbalance = (max(totals) / mean_load) if mean_load > 0 else 0.0
    return LinkScheduleStats(
        num_steps=schedule.num_steps,
        num_operations=len(schedule.operations),
        operations_per_rank_max=max(per_rank.values(), default=0),
        total_fraction_moved=sum(op.chunk.fraction for op in schedule.operations),
        max_step_link_fraction=max_step_link,
        load_imbalance=imbalance,
        forwarded_fraction=forwarded,
    )


def routed_schedule_stats(schedule: RoutedSchedule) -> RoutedScheduleStats:
    """Compute :class:`RoutedScheduleStats` for a routed schedule."""
    routes = set()
    per_rank: Dict[int, int] = {}
    link_total: Dict[Edge, float] = {}
    hops: List[int] = []
    for a in schedule.assignments:
        routes.add((a.route, a.layer))
        per_rank[a.chunk.source] = per_rank.get(a.chunk.source, 0) + 1
        hops.append(len(a.route) - 1)
        for e in a.edges:
            link_total[e] = link_total.get(e, 0.0) + a.chunk.fraction
    totals = list(link_total.values())
    mean_load = sum(totals) / len(totals) if totals else 0.0
    return RoutedScheduleStats(
        num_assignments=len(schedule.assignments),
        num_distinct_routes=len(routes),
        num_layers=schedule.num_layers(),
        max_route_hops=max(hops, default=0),
        mean_route_hops=(sum(hops) / len(hops)) if hops else 0.0,
        queue_pairs_per_rank_max=max(per_rank.values(), default=0),
        load_imbalance=(max(totals) / mean_load) if mean_load > 0 else 0.0,
    )
