"""Interpreter: parse emitted XML schedules back and execute them on the simulator.

The paper's runtimes (MSCCL's GPU interpreter, the oneCCL extension, the
OMPI/UCX component) consume the XML emitted by the compilers and drive the
hardware.  Here the hardware is the simulator, so the interpreter closes the
loop: XML -> in-memory schedule -> simulated execution -> validated delivery
and measured throughput.  Round-tripping through XML (rather than executing
the in-memory schedule directly) exercises the same code path a real
deployment would use and catches lowering bugs.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional, Tuple

from ..simulator.collective import CollectiveResult, run_link_collective, run_routed_collective
from ..simulator.fabric import FabricModel
from ..topology.base import Topology
from .ir import Chunk, LinkSchedule, LinkSendOp, RouteAssignment, RoutedSchedule

__all__ = [
    "parse_msccl_xml",
    "parse_oneccl_xml",
    "parse_ompi_xml",
    "execute_link_xml",
    "execute_routed_xml",
]


def parse_msccl_xml(xml_text: str, topology: Topology) -> LinkSchedule:
    """Reconstruct a :class:`LinkSchedule` from MSCCL-like XML.

    Only send (``type="s"``) instructions are needed to rebuild the schedule;
    receives are the mirror image and are cross-checked for consistency.
    """
    root = ET.fromstring(xml_text)
    if root.tag != "algo":
        raise ValueError("not an MSCCL-like XML (missing <algo> root)")
    num_steps = int(root.get("nsteps", "0"))
    ops: List[LinkSendOp] = []
    recv_keys = set()
    for gpu in root.iter("gpu"):
        rank = int(gpu.get("id"))
        for tb in gpu.iter("tb"):
            send_peer = int(tb.get("send", "-1"))
            recv_peer = int(tb.get("recv", "-1"))
            for step in tb.iter("step"):
                kind = step.get("type")
                chunk = Chunk(
                    source=int(step.get("shardsrc")),
                    destination=int(step.get("sharddst")),
                    lo=float(step.get("chunklo")),
                    hi=float(step.get("chunkhi")),
                )
                comm_step = int(step.get("commstep"))
                if kind == "s" and send_peer >= 0:
                    ops.append(LinkSendOp(chunk=chunk, src=rank, dst=send_peer, step=comm_step))
                elif kind == "r" and recv_peer >= 0:
                    recv_keys.add((recv_peer, rank, comm_step, chunk.source,
                                   chunk.destination, round(chunk.lo, 9)))
    # Consistency: every send has a matching receive on the peer.
    for op in ops:
        key = (op.src, op.dst, op.step, op.chunk.source, op.chunk.destination,
               round(op.chunk.lo, 9))
        if recv_keys and key not in recv_keys:
            raise ValueError(f"send {key} has no matching receive instruction")
    schedule = LinkSchedule(topology=topology, num_steps=num_steps, operations=ops,
                            meta={"parsed_from": "msccl"})
    schedule.validate_links()
    return schedule


def parse_oneccl_xml(xml_text: str, topology: Topology) -> LinkSchedule:
    """Reconstruct a :class:`LinkSchedule` from oneCCL-like XML."""
    root = ET.fromstring(xml_text)
    if root.tag != "schedule" or root.get("runtime") != "oneccl":
        raise ValueError("not a oneCCL-like XML")
    num_steps = int(root.get("nsteps", "0"))
    ops: List[LinkSendOp] = []
    for rank_el in root.iter("rank"):
        rank = int(rank_el.get("id"))
        for step_el in rank_el.iter("commstep"):
            t = int(step_el.get("t"))
            for send in step_el.iter("send"):
                chunk = Chunk(source=int(send.get("shardsrc")),
                              destination=int(send.get("sharddst")),
                              lo=float(send.get("lo")), hi=float(send.get("hi")))
                ops.append(LinkSendOp(chunk=chunk, src=rank, dst=int(send.get("peer")), step=t))
    schedule = LinkSchedule(topology=topology, num_steps=num_steps, operations=ops,
                            meta={"parsed_from": "oneccl"})
    schedule.validate_links()
    return schedule


def parse_ompi_xml(xml_text: str, topology: Topology) -> RoutedSchedule:
    """Reconstruct a :class:`RoutedSchedule` from OMPI/UCX-like XML."""
    root = ET.fromstring(xml_text)
    if root.tag != "schedule" or root.get("runtime") != "ompi-ucx":
        raise ValueError("not an OMPI-like XML")
    routes: Dict[int, Tuple[Tuple[int, ...], int]] = {}
    for route in root.iter("route"):
        rid = int(route.get("id"))
        hops = tuple(int(h) for h in route.get("hops").split(","))
        routes[rid] = (hops, int(route.get("layer", "0")))
    assignments: List[RouteAssignment] = []
    for chunk_el in root.iter("chunk"):
        rid = int(chunk_el.get("route"))
        hops, layer = routes[rid]
        chunk = Chunk(source=int(chunk_el.get("shardsrc")),
                      destination=int(chunk_el.get("sharddst")),
                      lo=float(chunk_el.get("lo")), hi=float(chunk_el.get("hi")))
        assignments.append(RouteAssignment(chunk=chunk, route=hops, layer=layer))
    schedule = RoutedSchedule(topology=topology, assignments=assignments,
                              meta={"parsed_from": "ompi"})
    schedule.validate_links()
    return schedule


def execute_link_xml(xml_text: str, topology: Topology, buffer_bytes: float,
                     fabric: Optional[FabricModel] = None,
                     dialect: str = "msccl") -> CollectiveResult:
    """Parse and execute a link-based XML schedule, returning the measured result."""
    if dialect == "msccl":
        schedule = parse_msccl_xml(xml_text, topology)
    elif dialect == "oneccl":
        schedule = parse_oneccl_xml(xml_text, topology)
    else:
        raise ValueError(f"unknown link-schedule dialect {dialect!r}")
    return run_link_collective(schedule, buffer_bytes, fabric=fabric, validate=True)


def execute_routed_xml(xml_text: str, topology: Topology, buffer_bytes: float,
                       fabric: Optional[FabricModel] = None) -> CollectiveResult:
    """Parse and execute a path-based XML schedule, returning the measured result."""
    schedule = parse_ompi_xml(xml_text, topology)
    return run_routed_collective(schedule, buffer_bytes, fabric=fabric, validate=True)
