"""OMPI/UCX-like routed schedule emitter for path-based schedules (§4).

For fabrics with NIC forwarding the schedule is a set of weighted routes per
commodity.  The paper lowers these to the Cerio fabric by (1) installing the
source routes (egress port list + virtual-channel "layer" id per route) and
(2) steering equal-sized chunks onto routes at the application layer by
choosing the UDP source port of each RDMA queue pair so the fabric hashes the
flow onto the desired route.

This compiler emits the equivalent XML: a ``<routes>`` section listing each
installed route (hop list, layer) and a ``<steering>`` section mapping every
chunk of every shard to a route id (standing in for the QP/UDP-port choice).
The number of distinct layers is what the LASH/DF-SSSP assignment minimizes.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, Tuple

from .ir import RoutedSchedule

__all__ = ["compile_to_ompi_xml", "count_queue_pairs"]


def compile_to_ompi_xml(schedule: RoutedSchedule, collective: str = "alltoall") -> str:
    """Serialize a routed schedule to OMPI/UCX-like XML."""
    schedule.validate_links()
    topo = schedule.topology
    root = ET.Element("schedule", {
        "coll": collective,
        "topology": topo.name,
        "nranks": str(topo.num_nodes),
        "runtime": "ompi-ucx",
        "nlayers": str(max((a.layer for a in schedule.assignments), default=0) + 1),
    })

    # Deduplicate routes and give them stable ids.
    route_ids: Dict[Tuple[Tuple[int, ...], int], int] = {}
    routes_el = ET.SubElement(root, "routes")
    for a in schedule.assignments:
        key = (a.route, a.layer)
        if key not in route_ids:
            rid = len(route_ids)
            route_ids[key] = rid
            ET.SubElement(routes_el, "route", {
                "id": str(rid),
                "src": str(a.route[0]),
                "dst": str(a.route[-1]),
                "hops": ",".join(str(h) for h in a.route),
                "layer": str(a.layer),
            })

    steering_el = ET.SubElement(root, "steering")
    for a in sorted(schedule.assignments,
                    key=lambda a: (a.chunk.source, a.chunk.destination, a.chunk.lo)):
        ET.SubElement(steering_el, "chunk", {
            "shardsrc": str(a.chunk.source),
            "sharddst": str(a.chunk.destination),
            "lo": f"{a.chunk.lo:.9f}",
            "hi": f"{a.chunk.hi:.9f}",
            "route": str(route_ids[(a.route, a.layer)]),
        })
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def count_queue_pairs(schedule: RoutedSchedule) -> Dict[int, int]:
    """Number of queue pairs (distinct chunk flows) each source rank must open.

    §5.5 observes that granular chunking inflates the number of active QPs and
    degrades per-flow bandwidth on the real fabric; this metric quantifies
    that pressure for a schedule.
    """
    counts: Dict[int, int] = {r: 0 for r in schedule.topology.nodes}
    for a in schedule.assignments:
        counts[a.chunk.source] += 1
    return counts
