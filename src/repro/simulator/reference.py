"""Scalar reference implementation of the max-min fluid simulator.

This is the original, interpreter-bound progressive-filling simulator the
vectorized engine (:mod:`repro.simulator.engine`) replaced.  It is retained
verbatim (plus degraded-fabric awareness) as the trusted oracle:

* the differential test suite checks the vectorized engine against it on
  randomized topologies and flow sets (completion times within 1e-9);
* ``benchmarks/bench_sim.py`` measures the engine's speedup over it (the
  acceptance gate is >= 5x on a 1k-flow all-to-all fill).

Do not optimize this module — its value is being obviously correct and
independent of the engine's numpy formulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..constants import SIM_BYTES_EPS, SIM_EPS
from ..topology.base import Edge, Topology
from .engine import FluidFlow
from .fabric import FabricModel
from .flowsim import FlowSimResult

__all__ = ["simulate_flows_reference", "max_min_rates_reference"]


def max_min_rates_reference(flows: Sequence[FluidFlow], active: List[int],
                            topology: Topology,
                            fabric: FabricModel) -> Dict[int, float]:
    """Progressive-filling max-min fair rate allocation for the active flows.

    Resources: directed links (capacity = cap * effective link bandwidth),
    per-node injection (at the flow's source) and per-node forwarding (bytes
    relayed through intermediate nodes), when the fabric defines those caps.
    """
    down = set(fabric.down_links)
    link_bw = fabric.link_bandwidths(topology.edges)
    link_cap: Dict[Edge, float] = {e: topology.capacity(*e) * link_bw[e]
                                   for e in topology.edges}
    max_deg = topology.max_degree()
    inj_cap = fabric.effective_injection(max_deg)
    fwd_cap = fabric.forwarding_bandwidth

    # resource id -> capacity, and flow -> resources used.
    resources: Dict[object, float] = {}
    users: Dict[object, List[int]] = {}
    flow_resources: Dict[int, List[object]] = {}

    def add_use(res: object, cap: float, fid: int) -> None:
        if res not in resources:
            resources[res] = cap
            users[res] = []
        users[res].append(fid)
        flow_resources[fid].append(res)

    for fid in active:
        flow = flows[fid]
        flow_resources[fid] = []
        for e in flow.edges:
            if e in down:
                raise ValueError(f"flow {fid} (path {flow.path}) crosses down link {e}")
            add_use(("link", e), link_cap[e], fid)
        if fabric.injection_limited(max_deg):
            add_use(("inject", flow.path[0]), inj_cap, fid)
        if fwd_cap is not None:
            for node in flow.path[1:-1]:
                add_use(("forward", node), fwd_cap, fid)

    rates: Dict[int, float] = {fid: 0.0 for fid in active}
    frozen: Dict[int, bool] = {fid: False for fid in active}
    residual = dict(resources)
    unfrozen = set(active)

    while unfrozen:
        # Bottleneck resource: smallest fair share among resources with unfrozen users.
        best_share = None
        best_res = None
        for res, cap in residual.items():
            count = sum(1 for fid in users[res] if not frozen[fid])
            if count == 0:
                continue
            share = cap / count
            if best_share is None or share < best_share - SIM_EPS:
                best_share = share
                best_res = res
        if best_res is None:
            # No constraining resource (e.g. zero-size flows); give the rest
            # an effectively unbounded rate.
            for fid in unfrozen:
                rates[fid] = float("inf")
            break
        for fid in list(users[best_res]):
            if frozen[fid]:
                continue
            rates[fid] += best_share
            frozen[fid] = True
            unfrozen.discard(fid)
            for res in flow_resources[fid]:
                residual[res] = max(residual[res] - best_share, 0.0)
    return rates


def simulate_flows_reference(topology: Topology, flows: Sequence[FluidFlow],
                             fabric: Optional[FabricModel] = None,
                             max_rounds: int = 1_000_000) -> FlowSimResult:
    """Simulate concurrent fluid flows to completion (scalar oracle).

    Returns per-flow completion times and the overall completion time
    (including start-up latencies), exactly like
    :func:`repro.simulator.flowsim.simulate_flows`.
    """
    fabric = fabric or FabricModel()
    n = len(flows)
    if n == 0:
        return FlowSimResult(0.0, [], 0.0, 0.0)

    start_delay = [fabric.per_message_overhead + f.hops * fabric.per_hop_latency
                   for f in flows]
    remaining = [float(f.size_bytes) for f in flows]
    completion = [0.0] * n
    active = [i for i in range(n) if remaining[i] > SIM_EPS]
    # Zero-byte flows complete after their latency alone.
    for i in range(n):
        if remaining[i] <= SIM_EPS:
            completion[i] = start_delay[i]

    now = 0.0
    rounds = 0
    while active:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("fluid simulation did not converge")
        rates = max_min_rates_reference(flows, active, topology, fabric)
        # Time until the next flow finishes at current rates.
        dt = min(remaining[i] / rates[i] for i in active if rates[i] > SIM_EPS)
        now += dt
        still_active = []
        for i in active:
            remaining[i] -= rates[i] * dt
            if remaining[i] <= SIM_BYTES_EPS:
                remaining[i] = 0.0
                completion[i] = now + start_delay[i]
            else:
                still_active.append(i)
        active = still_active

    link_bytes: Dict[Edge, float] = {}
    for f in flows:
        for e in f.edges:
            link_bytes[e] = link_bytes.get(e, 0.0) + f.size_bytes
    return FlowSimResult(
        completion_time=max(completion),
        flow_completion_times=completion,
        max_link_bytes=max(link_bytes.values(), default=0.0),
        total_bytes=sum(f.size_bytes for f in flows),
    )
