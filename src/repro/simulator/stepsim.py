"""Store-and-forward step simulator for link-based (ML fabric) schedules.

Link-based schedules (tsMCF, TACCL/SCCL-style) execute in synchronized
communication steps: at each step every rank posts its sends and receives for
that step, all transfers proceed concurrently, and a global synchronization
closes the step (the paper's oneCCL/MSCCL lowering behaves this way, §4).

Each step is lowered to the unified flow IR — one single-hop fluid flow per
loaded link, carrying that link's aggregate bytes — and executed on the
vectorized engine (:mod:`repro.simulator.engine`), so link/injection caps and
degraded fabrics are accounted exactly like the cut-through regime:

    step_time = per_step_latency + per_message_overhead / num_channels
              + fluid completion of the step's link flows

and the collective time is the sum over steps.  When the fabric is not
injection-limited, the fluid completion is exactly
``max_over_links(bytes / link_bandwidth)`` — the classic closed form.  When
host injection *is* the bottleneck, both the send side (bytes leaving a
node) and the receive side (bytes arriving) are capped as shared fluid
resources.  Throughput is ``(N - 1) * shard_bytes / total_time``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..schedule.ir import LinkSchedule
from .engine import FluidFlow, simulate_program
from .fabric import FabricModel

__all__ = ["StepSimResult", "simulate_link_schedule"]


@dataclass
class StepSimResult:
    """Outcome of executing a link schedule step by step."""

    total_time: float
    step_times: List[float]
    shard_bytes: float
    num_nodes: int
    max_link_bytes_per_step: List[float] = field(default_factory=list)
    fill_rounds: int = 0
    events_processed: int = 0

    @property
    def algorithm_bandwidth(self) -> float:
        """Per-node all-to-all throughput (N-1 shards sent per node / total time)."""
        if self.total_time <= 0:
            return float("inf")
        return (self.num_nodes - 1) * self.shard_bytes / self.total_time


def simulate_link_schedule(schedule: LinkSchedule, shard_bytes: float,
                           fabric: Optional[FabricModel] = None,
                           num_channels: int = 1,
                           overlap: int = 1) -> StepSimResult:
    """Execute a time-stepped link schedule on the store-and-forward model.

    Parameters
    ----------
    shard_bytes:
        Size ``m`` of each shard B[s, d] in bytes (the buffer size divided by N).
    num_channels:
        Parallel channels (schedule copies on disjoint chunk halves); modelled
        as reducing the per-message overhead share per byte but not the
        bandwidth (channels share the same links).
    overlap:
        Concurrent copies of the collective sharing the fabric.  Steps stay
        globally synchronized, so every copy's link load lands in the same
        step's fluid system; all copies finish together at ``total_time``.
    """
    fabric = fabric or FabricModel(nic_forwarding=False)
    topo = schedule.topology
    if overlap < 1:
        raise ValueError(f"overlap must be >= 1, got {overlap}")

    step_times: List[float] = []
    max_link_bytes: List[float] = []
    fill_rounds = 0
    events = 0
    for step in range(1, schedule.num_steps + 1):
        link_bytes = schedule.link_bytes(step, shard_bytes)
        if not link_bytes:
            step_times.append(0.0)
            max_link_bytes.append(0.0)
            continue
        # One single-hop flow per (copy, loaded link); forwarding caps do not
        # apply to single-hop transfers, so only link/injection/ejection
        # resources constrain the step.
        flows = []
        set_ids = []
        for copy in range(overlap):
            for (u, v), nbytes in link_bytes.items():
                flows.append(FluidFlow(path=(u, v), size_bytes=nbytes,
                                       tag=(copy, u, v)))
                set_ids.append(copy)
        sim = simulate_program(topo, flows, fabric, set_ids=set_ids,
                               set_names=tuple(f"copy{c}" for c in range(overlap)),
                               include_latency=False, include_ejection=True)
        fill_rounds += sim.fill_rounds
        events += sim.events_processed
        per_message = fabric.per_message_overhead / max(num_channels, 1)
        step_times.append(fabric.per_step_latency + per_message + sim.completion_time)
        max_link_bytes.append(max(link_bytes.values()) * overlap)

    return StepSimResult(
        total_time=sum(step_times),
        step_times=step_times,
        shard_bytes=shard_bytes,
        num_nodes=topo.num_nodes,
        max_link_bytes_per_step=max_link_bytes,
        fill_rounds=fill_rounds,
        events_processed=events,
    )
