"""Store-and-forward step simulator for link-based (ML fabric) schedules.

Link-based schedules (tsMCF, TACCL/SCCL-style) execute in synchronized
communication steps: at each step every rank posts its sends and receives for
that step, all transfers proceed concurrently, and a global synchronization
closes the step (the paper's oneCCL/MSCCL lowering behaves this way, §4).

The time of a step is governed by its busiest resource:

    step_time = per_step_latency
              + max_over_links( bytes_on_link / link_bandwidth )
              + max_over_nodes( injected_bytes / injection_bandwidth )   [if capped]

and the collective time is the sum over steps.  Throughput is
``(N - 1) * shard_bytes / total_time``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..schedule.ir import LinkSchedule
from .fabric import FabricModel

__all__ = ["StepSimResult", "simulate_link_schedule"]


@dataclass
class StepSimResult:
    """Outcome of executing a link schedule step by step."""

    total_time: float
    step_times: List[float]
    shard_bytes: float
    num_nodes: int
    max_link_bytes_per_step: List[float] = field(default_factory=list)

    @property
    def algorithm_bandwidth(self) -> float:
        """Per-node all-to-all throughput (N-1 shards sent per node / total time)."""
        if self.total_time <= 0:
            return float("inf")
        return (self.num_nodes - 1) * self.shard_bytes / self.total_time


def simulate_link_schedule(schedule: LinkSchedule, shard_bytes: float,
                           fabric: Optional[FabricModel] = None,
                           num_channels: int = 1) -> StepSimResult:
    """Execute a time-stepped link schedule on the store-and-forward model.

    Parameters
    ----------
    shard_bytes:
        Size ``m`` of each shard B[s, d] in bytes (the buffer size divided by N).
    num_channels:
        Parallel channels (schedule copies on disjoint chunk halves); modelled
        as reducing the per-message overhead share per byte but not the
        bandwidth (channels share the same links).
    """
    fabric = fabric or FabricModel(nic_forwarding=False)
    topo = schedule.topology
    max_deg = topo.max_degree()
    injection_capped = fabric.injection_limited(max_deg)
    inj_bw = fabric.effective_injection(max_deg)

    step_times: List[float] = []
    max_link_bytes: List[float] = []
    for step in range(1, schedule.num_steps + 1):
        link_bytes = schedule.link_bytes(step, shard_bytes)
        if not link_bytes:
            step_times.append(0.0)
            max_link_bytes.append(0.0)
            continue
        # Per-link serialization time.
        link_time = 0.0
        for e, nbytes in link_bytes.items():
            bw = topo.capacity(*e) * fabric.link_bandwidth
            link_time = max(link_time, nbytes / bw)
        # Optional host injection bottleneck: all bytes a node sources this
        # step (i.e. that leave the node) must cross the host-NIC boundary.
        node_time = 0.0
        if injection_capped:
            out_bytes: Dict[int, float] = {}
            in_bytes: Dict[int, float] = {}
            for (u, v), nbytes in link_bytes.items():
                out_bytes[u] = out_bytes.get(u, 0.0) + nbytes
                in_bytes[v] = in_bytes.get(v, 0.0) + nbytes
            worst = max(max(out_bytes.values(), default=0.0),
                        max(in_bytes.values(), default=0.0))
            node_time = worst / inj_bw
        per_message = fabric.per_message_overhead / max(num_channels, 1)
        step_times.append(fabric.per_step_latency + per_message + max(link_time, node_time))
        max_link_bytes.append(max(link_bytes.values()))

    return StepSimResult(
        total_time=sum(step_times),
        step_times=step_times,
        shard_bytes=shard_bytes,
        num_nodes=topo.num_nodes,
        max_link_bytes_per_step=max_link_bytes,
    )
