"""Unified vectorized fluid simulation engine: one core for all regimes.

Every simulation regime in :mod:`repro.simulator` — cut-through path
schedules (:mod:`.flowsim`), stepped link schedules (:mod:`.stepsim`) and
whole collectives (:mod:`.collective`) — lowers to the same flow IR and runs
on this engine:

1. **compile** — :func:`compile_flows` turns a flow set into a
   :class:`FlowProgram`: flows, links, injection caps and forwarding caps
   become sparse resource-incidence arrays (COO triplets plus per-resource
   capacities, built once per schedule);
2. **fill** — progressive filling (max-min fairness) dispatches through
   the :mod:`repro.perf` kernel layer: a flat-CSR kernel JIT-compiled with
   numba when available, or vectorized numpy saturation rounds otherwise
   (per round, one ``bincount`` yields every resource's unfrozen-user
   count, the minimum fair share picks the bottleneck(s), and all their
   flows freeze at that rate).  ``REPRO_KERNEL`` selects explicitly;
   scratch arenas live in a :class:`~repro.perf.fillkernel.FillWorkspace`
   reused across fills;
3. **execute** — :func:`execute` advances from flow completion to flow
   completion through the :class:`~repro.simulator.events.EventQueue`
   scheduler, re-filling incrementally over the surviving flows only.

Max-min fair allocations are unique, so freezing *all* minimum-share
resources per round is exactly equivalent to the classic one-bottleneck-
per-iteration formulation (kept, interpreter-bound, in
:mod:`.reference` for differential testing); the two implementations agree
to float round-off.

Flows carry a *flow-set id* so multiple collectives can share the fabric in
one simulation (the overlap axis): :class:`EngineResult` reports a
completion time per flow set alongside the overall one.  Degraded fabrics
(per-link bandwidth scaling, link-down sets on
:class:`~repro.simulator.fabric.FabricModel`) enter through the per-link
capacities at compile time; a flow crossing a down link is a compile error.

Engine-wide counters (fill rounds, completion events, simulations) are kept
for the ``[stats]`` footer; read them with :func:`engine_counters`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..constants import SIM_BYTES_EPS, SIM_EPS
from ..perf.fillkernel import FillWorkspace, run_fill
from ..topology.base import Edge, Topology
from .events import EventQueue
from .fabric import FabricModel

__all__ = ["FluidFlow", "FlowProgram", "EngineResult", "FillWorkspace",
           "compile_flows", "execute", "fill_rates", "simulate_program",
           "engine_counters", "record_simulation", "record_fault_events",
           "reset_engine_counters"]


@dataclass
class FluidFlow:
    """One fluid flow: ``size_bytes`` to move along ``path`` (node sequence)."""

    path: Tuple[int, ...]
    size_bytes: float
    tag: object = None

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError("flow path needs at least two nodes")
        if self.size_bytes < 0:
            raise ValueError("flow size must be non-negative")

    @property
    def edges(self) -> Tuple[Edge, ...]:
        return tuple(zip(self.path[:-1], self.path[1:]))

    @property
    def hops(self) -> int:
        return len(self.path) - 1


# --------------------------------------------------------------------------- #
# Engine-wide counters (surfaced in the CLI's [stats] footer)
# --------------------------------------------------------------------------- #
_counters: Dict[str, object] = {"fill_rounds": 0, "events": 0,
                                "simulations": 0, "fill_seconds": 0.0,
                                "kernel": "", "fabric_events": 0,
                                "reroutes": 0,
                                "compile_seconds": 0.0,
                                "reroute_seconds": 0.0,
                                "delta_hits": 0, "delta_rebuilds": 0,
                                "route_cache_hits": 0,
                                "route_cache_misses": 0}
_counters_lock = threading.Lock()


def engine_counters() -> Dict[str, object]:
    """Cumulative simulator counters: fill rounds/seconds, events, runs.

    ``kernel`` names the fill kernel used by the most recent fill
    (``numba``, ``numpy`` or ``python-csr``); ``fill_seconds`` accumulates
    wall time inside :func:`fill_rates` across the process.
    ``fabric_events``/``reroutes`` count mid-run fabric mutations and flow
    re-steers credited by the fault runner (:mod:`repro.faults.runner`);
    ``compile_seconds``/``reroute_seconds`` split that runner's per-epoch
    program-targeting and repair/certification wall time out of
    ``fill_seconds``; ``delta_hits``/``delta_rebuilds`` count fabric epochs
    the delta engine (:mod:`repro.perf.delta`) absorbed in place versus
    arena reallocations, and ``route_cache_hits``/``route_cache_misses``
    track the shared reroute/certification cache.
    """
    with _counters_lock:
        return dict(_counters)


def reset_engine_counters() -> None:
    """Zero the cumulative counters (tests and benchmarks)."""
    with _counters_lock:
        _counters.update(fill_rounds=0, events=0, simulations=0,
                         fill_seconds=0.0, kernel="", fabric_events=0,
                         reroutes=0, compile_seconds=0.0, reroute_seconds=0.0,
                         delta_hits=0, delta_rebuilds=0, route_cache_hits=0,
                         route_cache_misses=0)


def _count(fill_rounds: int, events: int) -> None:
    with _counters_lock:
        _counters["fill_rounds"] += fill_rounds
        _counters["events"] += events
        _counters["simulations"] += 1


def record_simulation(fill_rounds: int, events: int) -> None:
    """Credit one externally-driven simulation to the engine counters.

    Drivers that run the fill loop themselves (e.g. the cluster runner,
    which interleaves flow injection with saturation rounds) use this so
    their work shows up in the same ``[stats]`` footer as :func:`execute`.
    """
    _count(fill_rounds, events)


def record_fault_events(fabric_events: int, reroutes: int,
                        compile_seconds: float = 0.0,
                        reroute_seconds: float = 0.0,
                        delta_hits: int = 0, delta_rebuilds: int = 0,
                        route_cache_hits: int = 0,
                        route_cache_misses: int = 0) -> None:
    """Credit fabric mutations / flow re-steers to the engine counters.

    Called by the fault runner after each faulted execution so the
    ``[stats]`` footer shows dynamic-failure work next to fill rounds,
    including the per-phase timing split (program targeting vs
    repair/certification) and the delta-engine / reroute-cache tallies.
    """
    with _counters_lock:
        _counters["fabric_events"] += fabric_events
        _counters["reroutes"] += reroutes
        _counters["compile_seconds"] += compile_seconds
        _counters["reroute_seconds"] += reroute_seconds
        _counters["delta_hits"] += delta_hits
        _counters["delta_rebuilds"] += delta_rebuilds
        _counters["route_cache_hits"] += route_cache_hits
        _counters["route_cache_misses"] += route_cache_misses


# --------------------------------------------------------------------------- #
# Flow IR
# --------------------------------------------------------------------------- #
@dataclass
class FlowProgram:
    """A compiled flow set: sizes, latencies and resource incidence.

    ``inc_res``/``inc_flow`` are parallel COO arrays — entry ``k`` says flow
    ``inc_flow[k]`` consumes resource ``inc_res[k]`` — and ``res_cap`` holds
    every resource's capacity in bytes/second (links first, then optional
    per-node injection and forwarding resources).  Built once per schedule;
    :func:`execute` only masks completed flows between fills.
    """

    num_flows: int
    sizes: np.ndarray                     # (F,) bytes
    start_delays: np.ndarray              # (F,) seconds of start-up latency
    set_ids: np.ndarray                   # (F,) flow-set (collective) index
    set_names: Tuple[str, ...]            # flow-set index -> display name
    res_cap: np.ndarray                   # (R,) bytes/second
    inc_res: np.ndarray                   # (NNZ,) resource index
    inc_flow: np.ndarray                  # (NNZ,) flow index
    max_link_bytes: float = 0.0           # busiest link's total byte load
    total_bytes: float = 0.0
    meta: Dict[str, object] = field(default_factory=dict)


def compile_flows(topology: Topology, flows: Sequence[FluidFlow],
                  fabric: Optional[FabricModel] = None,
                  set_ids: Optional[Sequence[int]] = None,
                  set_names: Optional[Sequence[str]] = None,
                  include_latency: bool = True,
                  include_ejection: bool = False) -> FlowProgram:
    """Lower a flow set to a :class:`FlowProgram`.

    Resources mirror the scalar reference exactly: one per directed link
    (capacity = ``cap * effective_link_bandwidth``), one per source node when
    the fabric is injection-limited, one per intermediate node when it
    defines a forwarding cap.  ``include_latency=False`` zeroes the per-flow
    start delays (the step simulator accounts latency per step instead).
    ``include_ejection=True`` additionally caps each flow's *destination*
    node at the injection bandwidth — the store-and-forward regime, where
    received bytes cross the host-NIC boundary too.
    """
    fabric = fabric or FabricModel()
    n = len(flows)
    down = set(fabric.down_links)
    edges = topology.edges
    edge_index = {e: i for i, e in enumerate(edges)}
    num_links = len(edges)
    num_nodes = topology.num_nodes

    link_bw = fabric.link_bandwidths(edges)
    link_cap = np.array(
        [topology.capacity(u, v) * link_bw[(u, v)] for u, v in edges], dtype=float)
    max_deg = topology.max_degree()
    injection_capped = fabric.injection_limited(max_deg)
    fwd_cap = fabric.forwarding_bandwidth

    caps = [link_cap]
    inj_base = num_links
    if injection_capped:
        caps.append(np.full(num_nodes, fabric.effective_injection(max_deg)))
    fwd_base = num_links + (num_nodes if injection_capped else 0)
    if fwd_cap is not None:
        caps.append(np.full(num_nodes, float(fwd_cap)))
    ej_base = fwd_base + (num_nodes if fwd_cap is not None else 0)
    ejection_capped = include_ejection and injection_capped
    if ejection_capped:
        caps.append(np.full(num_nodes, fabric.effective_injection(max_deg)))
    res_cap = np.concatenate(caps) if len(caps) > 1 else link_cap

    inc_res: List[int] = []
    inc_flow: List[int] = []
    link_load = np.zeros(num_links)
    for fid, flow in enumerate(flows):
        for e in flow.edges:
            if e in down:
                raise ValueError(
                    f"flow {fid} (path {flow.path}) crosses down link {e}; "
                    "re-synthesize the schedule for the degraded fabric or "
                    "drop the affected flows")
            idx = edge_index.get(e)
            if idx is None:
                raise ValueError(f"flow {fid} uses non-existent link {e}")
            inc_res.append(idx)
            inc_flow.append(fid)
            link_load[idx] += flow.size_bytes
        if injection_capped:
            inc_res.append(inj_base + flow.path[0])
            inc_flow.append(fid)
        if fwd_cap is not None:
            for node in flow.path[1:-1]:
                inc_res.append(fwd_base + node)
                inc_flow.append(fid)
        if ejection_capped:
            inc_res.append(ej_base + flow.path[-1])
            inc_flow.append(fid)

    if include_latency:
        delays = np.array([fabric.per_message_overhead + f.hops * fabric.per_hop_latency
                           for f in flows], dtype=float)
    else:
        delays = np.zeros(n)
    ids = (np.zeros(n, dtype=np.int64) if set_ids is None
           else np.asarray(list(set_ids), dtype=np.int64))
    if len(ids) != n:
        raise ValueError(f"set_ids length {len(ids)} != number of flows {n}")
    names = tuple(set_names) if set_names is not None else (
        tuple(f"set{i}" for i in range(int(ids.max()) + 1)) if n else ())

    return FlowProgram(
        num_flows=n,
        sizes=np.array([float(f.size_bytes) for f in flows]),
        start_delays=delays,
        set_ids=ids,
        set_names=names,
        res_cap=res_cap,
        inc_res=np.asarray(inc_res, dtype=np.int64),
        inc_flow=np.asarray(inc_flow, dtype=np.int64),
        max_link_bytes=float(link_load.max()) if num_links and n else 0.0,
        total_bytes=float(sum(f.size_bytes for f in flows)),
    )


# --------------------------------------------------------------------------- #
# Progressive filling (dispatched to the repro.perf kernel layer)
# --------------------------------------------------------------------------- #
def fill_rates(program: FlowProgram, active: np.ndarray,
               workspace: Optional[FillWorkspace] = None
               ) -> Tuple[np.ndarray, int]:
    """Max-min fair rates for the active flows via the selected fill kernel.

    Dispatches through :func:`repro.perf.fillkernel.run_fill` — the numba
    CSR kernel when available (``REPRO_KERNEL`` overrides), the vectorized
    numpy saturation rounds otherwise.  With a ``workspace`` (built once
    per program) scratch arenas *and the returned rate vector* are reused
    across calls; callers that keep rates past the next fill must copy
    them.  Returns the rate vector and the number of saturation rounds
    (the footer's ``fill_rounds`` counter); wall time and the kernel name
    accumulate in :func:`engine_counters`.
    """
    t0 = time.perf_counter()
    rates, rounds, kernel = run_fill(program, active, workspace)
    elapsed = time.perf_counter() - t0
    with _counters_lock:
        _counters["fill_seconds"] += elapsed
        _counters["kernel"] = kernel
    return rates, rounds


# --------------------------------------------------------------------------- #
# Event-driven execution
# --------------------------------------------------------------------------- #
@dataclass
class EngineResult:
    """Outcome of executing one :class:`FlowProgram`."""

    completion_time: float
    flow_completion_times: List[float]
    set_completion_times: Dict[str, float]
    fill_rounds: int
    events_processed: int
    max_link_bytes: float
    total_bytes: float


def execute(program: FlowProgram, max_events: int = 1_000_000) -> EngineResult:
    """Run a compiled program to completion on the event scheduler.

    Rates are re-filled only when a completion event fires, and only over
    the surviving flows; zero-byte flows complete after their start-up
    latency without entering the fill at all.
    """
    n = program.num_flows
    if n == 0:
        result = EngineResult(0.0, [], {}, 0, 0, 0.0, 0.0)
        _count(0, 0)
        return result

    remaining = program.sizes.astype(float, copy=True)
    active = remaining > SIM_EPS
    completion = np.where(active, 0.0, program.start_delays)
    queue = EventQueue()
    # One workspace per run: the CSR incidence is flattened once and every
    # fill reuses the same scratch arenas (including the rate vector, which
    # refill_and_schedule aliases into ``state`` instead of copying —
    # on_completion always drains the previous rates before the next fill
    # overwrites the buffer).
    workspace = FillWorkspace(program)
    state = {"rates": workspace.rates, "last": 0.0, "fill_rounds": 0}

    def refill_and_schedule() -> None:
        if not active.any():
            return
        rates, rounds = fill_rates(program, active, workspace)
        state["rates"] = rates
        state["fill_rounds"] += rounds
        eligible = active & (rates > SIM_EPS)
        if not eligible.any():
            raise RuntimeError(
                "fluid simulation stalled: active flows have zero rate "
                "(a resource is fully saturated by completed flows?)")
        state["last"] = queue.now
        dt = float(np.min(remaining[eligible] / rates[eligible]))
        queue.schedule(dt, on_completion)

    def on_completion() -> None:
        dt = queue.now - state["last"]
        rates = state["rates"]
        remaining[active] -= rates[active] * dt
        done = active & (remaining <= SIM_BYTES_EPS)
        remaining[done] = 0.0
        completion[done] = queue.now + program.start_delays[done]
        active[done] = False
        refill_and_schedule()

    refill_and_schedule()
    try:
        queue.run(max_events=max_events)
    except RuntimeError as exc:
        raise RuntimeError("fluid simulation did not converge") from exc

    set_times: Dict[str, float] = {}
    for idx, name in enumerate(program.set_names):
        members = program.set_ids == idx
        if members.any():
            set_times[name] = float(completion[members].max())
    result = EngineResult(
        completion_time=float(completion.max()),
        flow_completion_times=[float(t) for t in completion],
        set_completion_times=set_times,
        fill_rounds=state["fill_rounds"],
        events_processed=queue.processed,
        max_link_bytes=program.max_link_bytes,
        total_bytes=program.total_bytes,
    )
    _count(result.fill_rounds, result.events_processed)
    return result


def simulate_program(topology: Topology, flows: Sequence[FluidFlow],
                     fabric: Optional[FabricModel] = None,
                     set_ids: Optional[Sequence[int]] = None,
                     set_names: Optional[Sequence[str]] = None,
                     include_latency: bool = True,
                     include_ejection: bool = False,
                     max_events: int = 1_000_000) -> EngineResult:
    """Compile and execute in one call (the common front-end path)."""
    program = compile_flows(topology, flows, fabric, set_ids=set_ids,
                            set_names=set_names, include_latency=include_latency,
                            include_ejection=include_ejection)
    return execute(program, max_events=max_events)
