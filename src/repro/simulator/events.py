"""Discrete-event scheduler for the unified simulation engine.

The vectorized fluid core (:mod:`repro.simulator.engine`) advances time from
flow-completion event to flow-completion event; this module provides the
priority-queue scheduler it (and any future packet-level extensions) builds
on.  The queue counts the events it has processed (``processed``) so the
engine can report scheduler work alongside its fill-round counters.

Cancelled events are not removed eagerly (heap deletion is O(n)); they are
skipped when popped, and the heap is compacted lazily once more than half of
it is dead (:attr:`EventQueue.compactions` counts the sweeps).  Drivers that
cancel one pending completion per refill — the engine and the fault runner
both do — therefore keep the heap within a constant factor of the live event
count instead of growing it linearly with simulated time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Event", "EventQueue"]

# Compact only past this heap size: tiny heaps never pay the sweep and the
# growth bound (2x live events) still holds up to a constant.
_COMPACT_MIN = 64


@dataclass(order=True)
class Event:
    """A scheduled event: a callback firing at a simulated time.

    Tie-break contract (the fault runner depends on it): events with equal
    time fire in **insertion order** — the monotonically increasing
    ``sequence`` assigned at schedule time breaks ties deterministically.
    A driver that schedules fabric-epoch events before any completion
    event is therefore guaranteed the epoch fires first when the two
    collide on the same timestamp.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    executed: bool = field(default=False, compare=False)
    queue: Optional["EventQueue"] = field(default=None, compare=False,
                                          repr=False)

    def cancel(self) -> bool:
        """Mark the event cancelled so it is skipped when popped.

        Returns True if the cancellation took effect, False if the event
        already ran — cancelling an executed event is a harmless no-op (it
        must not corrupt queue state or un-run the callback), so callers
        holding a stale handle can always call this unconditionally.
        """
        if self.executed:
            return False
        if not self.cancelled:
            self.cancelled = True
            if self.queue is not None:
                self.queue._note_cancel()
        return True


class EventQueue:
    """Priority queue of events keyed by simulated time.

    Equal-time events run in insertion (schedule) order; cancelling an
    already-executed event is a no-op (see :meth:`Event.cancel`).  Dead
    (cancelled) entries are swept lazily once they outnumber the live ones.
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._dead = 0
        self.now: float = 0.0
        self.processed: int = 0
        self.compactions: int = 0

    def __len__(self) -> int:
        """Current heap size, dead entries included (compaction tests)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        event = Event(time=self.now + delay, sequence=next(self._counter),
                      callback=callback, queue=self)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        return self.schedule(time - self.now, callback)

    def empty(self) -> bool:
        """True when no (non-cancelled) events remain."""
        return len(self._heap) == self._dead

    def _note_cancel(self) -> None:
        self._dead += 1
        if self._dead * 2 > len(self._heap) and len(self._heap) >= _COMPACT_MIN:
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._dead = 0
        self.compactions += 1

    def step(self) -> bool:
        """Pop and run the next event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._dead -= 1
                continue
            # Mark executed *before* the callback so a handle cancelled from
            # inside the callback (or later) reports the no-op truthfully.
            event.executed = True
            self.now = event.time
            self.processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run events until the queue drains (or ``until`` / ``max_events`` hit).

        Returns the final simulated time.
        """
        executed = 0
        while self._heap:
            nxt = self._heap[0]
            if nxt.cancelled:
                heapq.heappop(self._heap)
                self._dead -= 1
                continue
            if until is not None and nxt.time > until:
                break
            if executed >= max_events:
                raise RuntimeError("event budget exhausted (runaway simulation?)")
            self.step()
            executed += 1
        return self.now
