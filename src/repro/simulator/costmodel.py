"""Closed-form (alpha-beta style) cost models and throughput upper bounds.

These analytic models complement the simulators: they give the theoretical
"Upper Bound" curves plotted in Fig. 3/4 and quick estimates used by tests to
cross-check the simulators' asymptotic behaviour.
"""

from __future__ import annotations

from typing import Optional

from ..topology.base import Topology
from .fabric import FabricModel

__all__ = ["alltoall_time_upper_bound", "throughput_upper_bound_curve",
           "steady_state_throughput", "latency_bandwidth_time"]


def steady_state_throughput(num_nodes: int, concurrent_flow: float,
                            fabric: FabricModel) -> float:
    """Asymptotic (large-buffer) all-to-all throughput ``(N-1) * f * b`` bytes/s.

    ``concurrent_flow`` is the MCF value computed with unit link capacities;
    multiplying by the physical link bandwidth converts to bytes/second
    (§5.2's 6.01 GB/s example on the bottlenecked 27-node torus).
    """
    return (num_nodes - 1) * concurrent_flow * fabric.link_bandwidth


def latency_bandwidth_time(total_bytes_per_node: float, steady_bw: float,
                           fixed_latency: float) -> float:
    """Simple alpha-beta completion time: latency + bytes / bandwidth."""
    if steady_bw <= 0:
        return float("inf")
    return fixed_latency + total_bytes_per_node / steady_bw


def alltoall_time_upper_bound(topology: Topology, concurrent_flow: float,
                              shard_bytes: float, fabric: FabricModel,
                              num_steps: Optional[int] = None) -> float:
    """Lower bound on all-to-all completion time (reciprocal throughput bound).

    The bandwidth term is ``(N - 1) * m / ((N - 1) * f * b) = m / (f * b)``;
    a latency term of ``num_steps * per_step_latency`` (store-and-forward) or
    ``diameter * per_hop_latency`` (cut-through) is added when applicable.
    """
    n = topology.num_nodes
    bw = steady_state_throughput(n, concurrent_flow, fabric)
    bandwidth_term = (n - 1) * shard_bytes / bw if bw > 0 else float("inf")
    if fabric.nic_forwarding:
        latency_term = topology.diameter() * fabric.per_hop_latency + fabric.per_message_overhead
    else:
        steps = num_steps if num_steps is not None else topology.diameter()
        latency_term = steps * fabric.per_step_latency
    return bandwidth_term + latency_term


def throughput_upper_bound_curve(topology: Topology, concurrent_flow: float,
                                 buffer_sizes: list, fabric: FabricModel,
                                 num_steps: Optional[int] = None) -> list:
    """Upper-bound throughput (bytes/s) at each total per-node buffer size.

    ``buffer_sizes`` are total per-node all-to-all buffer sizes ``N * m`` in
    bytes, matching the x-axis of Fig. 3/4; the returned values are the
    corresponding ``(N - 1) * m / T_bound`` curves.
    """
    n = topology.num_nodes
    out = []
    for buf in buffer_sizes:
        shard = buf / n
        t = alltoall_time_upper_bound(topology, concurrent_flow, shard, fabric, num_steps)
        out.append((n - 1) * shard / t if t > 0 else float("inf"))
    return out
