"""Direct-connect fabric simulator (the testbed substitute)."""

from .collective import CollectiveResult, run_link_collective, run_routed_collective, throughput_sweep
from .costmodel import (
    alltoall_time_upper_bound,
    latency_bandwidth_time,
    steady_state_throughput,
    throughput_upper_bound_curve,
)
from .events import Event, EventQueue
from .fabric import (
    GBPS,
    GIBI,
    FabricModel,
    a100_ml_fabric,
    cerio_hpc_fabric,
    fabric_from_spec,
    ideal_fabric,
)
from .flowsim import FlowSimResult, FluidFlow, simulate_flows
from .stepsim import StepSimResult, simulate_link_schedule

__all__ = [
    "CollectiveResult",
    "run_link_collective",
    "run_routed_collective",
    "throughput_sweep",
    "alltoall_time_upper_bound",
    "latency_bandwidth_time",
    "steady_state_throughput",
    "throughput_upper_bound_curve",
    "Event",
    "EventQueue",
    "GBPS",
    "GIBI",
    "FabricModel",
    "a100_ml_fabric",
    "cerio_hpc_fabric",
    "fabric_from_spec",
    "ideal_fabric",
    "FlowSimResult",
    "FluidFlow",
    "simulate_flows",
    "StepSimResult",
    "simulate_link_schedule",
]
