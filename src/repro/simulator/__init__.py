"""Direct-connect fabric simulator (the testbed substitute).

All regimes share one vectorized, event-driven fluid core
(:mod:`repro.simulator.engine`); :mod:`.flowsim`, :mod:`.stepsim` and
:mod:`.collective` are thin front-ends that lower their schedules to the
engine's flow IR.  :mod:`.reference` keeps the scalar implementation as a
differential-testing oracle.
"""

from .collective import (
    CollectiveResult,
    run_link_collective,
    run_routed_collective,
    throughput_sweep,
)
from .costmodel import (
    alltoall_time_upper_bound,
    latency_bandwidth_time,
    steady_state_throughput,
    throughput_upper_bound_curve,
)
from .engine import (
    EngineResult,
    FillWorkspace,
    FlowProgram,
    compile_flows,
    engine_counters,
    execute,
    fill_rates,
    record_fault_events,
    record_simulation,
    reset_engine_counters,
    simulate_program,
)
from .events import Event, EventQueue
from .fabric import (
    GBPS,
    GIBI,
    FabricModel,
    a100_ml_fabric,
    cerio_hpc_fabric,
    fabric_from_spec,
    ideal_fabric,
    parse_link_scales,
    parse_link_set,
)
from .flowsim import FlowSimResult, FluidFlow, simulate_flows
from .reference import simulate_flows_reference
from .stepsim import StepSimResult, simulate_link_schedule

__all__ = [
    "CollectiveResult",
    "run_link_collective",
    "run_routed_collective",
    "throughput_sweep",
    "alltoall_time_upper_bound",
    "latency_bandwidth_time",
    "steady_state_throughput",
    "throughput_upper_bound_curve",
    "EngineResult",
    "FillWorkspace",
    "FlowProgram",
    "compile_flows",
    "engine_counters",
    "execute",
    "fill_rates",
    "record_fault_events",
    "record_simulation",
    "reset_engine_counters",
    "simulate_program",
    "Event",
    "EventQueue",
    "GBPS",
    "GIBI",
    "FabricModel",
    "a100_ml_fabric",
    "cerio_hpc_fabric",
    "fabric_from_spec",
    "ideal_fabric",
    "parse_link_scales",
    "parse_link_set",
    "FlowSimResult",
    "FluidFlow",
    "simulate_flows",
    "simulate_flows_reference",
    "StepSimResult",
    "simulate_link_schedule",
]
