"""Max-min fair fluid flow simulator for cut-through, NIC-routed fabrics.

Path-based schedules (MCF-extP, pMCF, SSSP, DOR, ...) launch all chunk flows
simultaneously; the fabric's cut-through routing lets each flow stream along
its full path at a rate limited by the most contended resource it crosses.
This simulator models that regime as a fluid system:

* every flow has a fixed path, a remaining byte count, and a rate;
* rates are assigned by progressive filling (max-min fairness) subject to
  per-link capacities, per-node injection caps and per-node forwarding caps;
* the simulation advances from flow-completion to flow-completion, re-running
  progressive filling over the surviving flows (standard fluid approximation
  of long-lived TCP/RDMA flows sharing a network);
* flow start incurs a latency of ``per_message_overhead + hops * per_hop_latency``.

The completion time of the last flow is the all-to-all time.  For an MCF
schedule whose link loads are balanced this converges to
``max-link-load / bandwidth`` plus latency terms, matching the analytic model,
while unbalanced baselines (SSSP, native) finish later because their most
loaded link drains last -- which is exactly the effect Fig. 4/5 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..topology.base import Edge, Topology
from ..constants import SIM_EPS
from .fabric import FabricModel

__all__ = ["FluidFlow", "FlowSimResult", "simulate_flows"]


@dataclass
class FluidFlow:
    """One fluid flow: ``size_bytes`` to move along ``path`` (node sequence)."""

    path: Tuple[int, ...]
    size_bytes: float
    tag: object = None

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError("flow path needs at least two nodes")
        if self.size_bytes < 0:
            raise ValueError("flow size must be non-negative")

    @property
    def edges(self) -> Tuple[Edge, ...]:
        return tuple(zip(self.path[:-1], self.path[1:]))

    @property
    def hops(self) -> int:
        return len(self.path) - 1


@dataclass
class FlowSimResult:
    """Outcome of a fluid simulation."""

    completion_time: float
    flow_completion_times: List[float]
    max_link_bytes: float
    total_bytes: float

    @property
    def last_flow_index(self) -> int:
        return max(range(len(self.flow_completion_times)),
                   key=lambda i: self.flow_completion_times[i])


def _max_min_rates(flows: Sequence[FluidFlow], active: List[int],
                   remaining: List[float], topology: Topology,
                   fabric: FabricModel) -> Dict[int, float]:
    """Progressive-filling max-min fair rate allocation for the active flows.

    Resources: directed links (capacity = cap * link_bandwidth), per-node
    injection (at the flow's source) and per-node forwarding (bytes relayed
    through intermediate nodes), when the fabric defines those caps.
    """
    link_cap: Dict[Edge, float] = {e: topology.capacity(*e) * fabric.link_bandwidth
                                   for e in topology.edges}
    max_deg = topology.max_degree()
    inj_cap = fabric.effective_injection(max_deg)
    fwd_cap = fabric.forwarding_bandwidth

    # resource id -> capacity, and flow -> resources used.
    resources: Dict[object, float] = {}
    users: Dict[object, List[int]] = {}
    flow_resources: Dict[int, List[object]] = {}

    def add_use(res: object, cap: float, fid: int) -> None:
        if res not in resources:
            resources[res] = cap
            users[res] = []
        users[res].append(fid)
        flow_resources[fid].append(res)

    for fid in active:
        flow = flows[fid]
        flow_resources[fid] = []
        for e in flow.edges:
            add_use(("link", e), link_cap[e], fid)
        if fabric.injection_limited(max_deg):
            add_use(("inject", flow.path[0]), inj_cap, fid)
        if fwd_cap is not None:
            for node in flow.path[1:-1]:
                add_use(("forward", node), fwd_cap, fid)

    rates: Dict[int, float] = {fid: 0.0 for fid in active}
    frozen: Dict[int, bool] = {fid: False for fid in active}
    residual = dict(resources)
    unfrozen = set(active)

    while unfrozen:
        # Bottleneck resource: smallest fair share among resources with unfrozen users.
        best_share = None
        best_res = None
        for res, cap in residual.items():
            count = sum(1 for fid in users[res] if not frozen[fid])
            if count == 0:
                continue
            share = cap / count
            if best_share is None or share < best_share - SIM_EPS:
                best_share = share
                best_res = res
        if best_res is None:
            # No constraining resource (e.g. zero-size flows); give the rest
            # an effectively unbounded rate.
            for fid in unfrozen:
                rates[fid] = float("inf")
            break
        for fid in list(users[best_res]):
            if frozen[fid]:
                continue
            rates[fid] += best_share
            frozen[fid] = True
            unfrozen.discard(fid)
            for res in flow_resources[fid]:
                residual[res] = max(residual[res] - best_share, 0.0)
    return rates


def simulate_flows(topology: Topology, flows: Sequence[FluidFlow],
                   fabric: Optional[FabricModel] = None,
                   max_rounds: int = 1_000_000) -> FlowSimResult:
    """Simulate concurrent fluid flows to completion.

    Returns per-flow completion times and the overall completion time
    (including start-up latencies).
    """
    fabric = fabric or FabricModel()
    n = len(flows)
    if n == 0:
        return FlowSimResult(0.0, [], 0.0, 0.0)

    start_delay = [fabric.per_message_overhead + f.hops * fabric.per_hop_latency
                   for f in flows]
    remaining = [float(f.size_bytes) for f in flows]
    completion = [0.0] * n
    active = [i for i in range(n) if remaining[i] > SIM_EPS]
    # Zero-byte flows complete after their latency alone.
    for i in range(n):
        if remaining[i] <= SIM_EPS:
            completion[i] = start_delay[i]

    now = 0.0
    rounds = 0
    while active:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("fluid simulation did not converge")
        rates = _max_min_rates(flows, active, remaining, topology, fabric)
        # Time until the next flow finishes at current rates.
        dt = min(remaining[i] / rates[i] for i in active if rates[i] > SIM_EPS)
        now += dt
        still_active = []
        for i in active:
            remaining[i] -= rates[i] * dt
            if remaining[i] <= 1e-6:
                remaining[i] = 0.0
                completion[i] = now + start_delay[i]
            else:
                still_active.append(i)
        active = still_active

    link_bytes: Dict[Edge, float] = {}
    for f in flows:
        for e in f.edges:
            link_bytes[e] = link_bytes.get(e, 0.0) + f.size_bytes
    return FlowSimResult(
        completion_time=max(completion),
        flow_completion_times=completion,
        max_link_bytes=max(link_bytes.values(), default=0.0),
        total_bytes=sum(f.size_bytes for f in flows),
    )
