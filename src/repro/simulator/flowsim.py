"""Max-min fair fluid flow simulator for cut-through, NIC-routed fabrics.

Path-based schedules (MCF-extP, pMCF, SSSP, DOR, ...) launch all chunk flows
simultaneously; the fabric's cut-through routing lets each flow stream along
its full path at a rate limited by the most contended resource it crosses.
This module models that regime as a fluid system:

* every flow has a fixed path, a remaining byte count, and a rate;
* rates are assigned by progressive filling (max-min fairness) subject to
  per-link capacities, per-node injection caps and per-node forwarding caps;
* the simulation advances from flow-completion to flow-completion, re-filling
  over the surviving flows (standard fluid approximation of long-lived
  TCP/RDMA flows sharing a network);
* flow start incurs a latency of ``per_message_overhead + hops * per_hop_latency``.

The completion time of the last flow is the all-to-all time.  For an MCF
schedule whose link loads are balanced this converges to
``max-link-load / bandwidth`` plus latency terms, matching the analytic model,
while unbalanced baselines (SSSP, native) finish later because their most
loaded link drains last -- which is exactly the effect Fig. 4/5 measures.

Since the unified-engine refactor this module is a thin front-end: it lowers
the flow set to the shared flow IR and runs it on the vectorized core in
:mod:`repro.simulator.engine` (the original scalar implementation survives in
:mod:`repro.simulator.reference` for differential testing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..topology.base import Topology
from .engine import FluidFlow, simulate_program
from .fabric import FabricModel

__all__ = ["FluidFlow", "FlowSimResult", "simulate_flows"]


@dataclass
class FlowSimResult:
    """Outcome of a fluid simulation."""

    completion_time: float
    flow_completion_times: List[float]
    max_link_bytes: float
    total_bytes: float
    fill_rounds: int = 0
    events_processed: int = 0

    @property
    def last_flow_index(self) -> int:
        return max(range(len(self.flow_completion_times)),
                   key=lambda i: self.flow_completion_times[i])


def simulate_flows(topology: Topology, flows: Sequence[FluidFlow],
                   fabric: Optional[FabricModel] = None,
                   max_rounds: int = 1_000_000) -> FlowSimResult:
    """Simulate concurrent fluid flows to completion.

    Returns per-flow completion times and the overall completion time
    (including start-up latencies).
    """
    if not flows:
        return FlowSimResult(0.0, [], 0.0, 0.0)
    result = simulate_program(topology, flows, fabric, max_events=max_rounds)
    return FlowSimResult(
        completion_time=result.completion_time,
        flow_completion_times=result.flow_completion_times,
        max_link_bytes=result.max_link_bytes,
        total_bytes=result.total_bytes,
        fill_rounds=result.fill_rounds,
        events_processed=result.events_processed,
    )
