"""End-to-end execution of all-to-all schedules on the simulated fabric.

This is the substitute for the paper's hardware testbeds: given a schedule
(link-based :class:`LinkSchedule` or path-based :class:`RoutedSchedule`), a
fabric model and a buffer size, it validates the schedule, lowers it to the
unified flow IR, executes it on the vectorized engine and reports the
achieved throughput -- producing the same throughput-vs-buffer-size series as
Fig. 3/4/5.

The ``overlap`` axis runs several copies of the collective concurrently on
the same fabric (one flow set per copy); results then carry per-collective
completion times in ``meta["per_collective_seconds"]`` and the headline
``completion_time`` is the last copy's finish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..schedule.ir import LinkSchedule, RoutedSchedule
from ..schedule.validate import validate_link_schedule, validate_routed_schedule
from .engine import FluidFlow, simulate_program
from .fabric import FabricModel
from .stepsim import simulate_link_schedule

__all__ = ["CollectiveResult", "run_link_collective", "run_routed_collective",
           "throughput_sweep"]


@dataclass
class CollectiveResult:
    """Result of running one all-to-all collective at one buffer size."""

    buffer_bytes: float          # total per-node buffer (N shards)
    shard_bytes: float           # m = buffer / N
    completion_time: float       # seconds
    num_nodes: int
    schedule_kind: str
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """All-to-all throughput ``(N - 1) * m / T`` in bytes/second (§2.2).

        With overlap, ``completion_time`` is the *last* copy's finish, so
        this is the per-collective throughput under contention.
        """
        if self.completion_time <= 0:
            return float("inf")
        return (self.num_nodes - 1) * self.shard_bytes / self.completion_time

    @property
    def per_collective_seconds(self) -> List[float]:
        """Completion time of each overlapping copy (single entry without overlap)."""
        times = self.meta.get("per_collective_seconds")
        return list(times) if times else [self.completion_time]


def run_link_collective(schedule: LinkSchedule, buffer_bytes: float,
                        fabric: Optional[FabricModel] = None,
                        validate: bool = True,
                        num_channels: int = 1,
                        overlap: int = 1) -> CollectiveResult:
    """Execute a link-based schedule for a total per-node buffer size."""
    if validate:
        validate_link_schedule(schedule)
    n = schedule.topology.num_nodes
    shard = buffer_bytes / n
    sim = simulate_link_schedule(schedule, shard_bytes=shard, fabric=fabric,
                                 num_channels=num_channels, overlap=overlap)
    meta = {"step_times": sim.step_times, "num_steps": schedule.num_steps,
            "fill_rounds": sim.fill_rounds, "events": sim.events_processed}
    if overlap > 1:
        # Steps are globally synchronized, so every copy ends with the last step.
        meta["per_collective_seconds"] = [sim.total_time] * overlap
    return CollectiveResult(
        buffer_bytes=buffer_bytes,
        shard_bytes=shard,
        completion_time=sim.total_time,
        num_nodes=n,
        schedule_kind="link",
        meta=meta,
    )


def run_routed_collective(schedule: RoutedSchedule, buffer_bytes: float,
                          fabric: Optional[FabricModel] = None,
                          validate: bool = True,
                          overlap: int = 1) -> CollectiveResult:
    """Execute a path-based schedule for a total per-node buffer size.

    Every chunk assignment becomes one fluid flow along its route; flows run
    concurrently under max-min fair sharing (cut-through fabric behaviour).
    With ``overlap > 1`` each copy contributes its own flow set and completes
    independently (the per-copy times land in the result's meta).
    """
    if validate:
        validate_routed_schedule(schedule)
    if overlap < 1:
        raise ValueError(f"overlap must be >= 1, got {overlap}")
    topo = schedule.topology
    n = topo.num_nodes
    shard = buffer_bytes / n
    flows: List[FluidFlow] = []
    set_ids: List[int] = []
    for copy in range(overlap):
        for a in schedule.assignments:
            flows.append(FluidFlow(path=a.route, size_bytes=a.chunk.bytes(shard),
                                   tag=(copy, a.chunk.source, a.chunk.destination)))
            set_ids.append(copy)
    sim = simulate_program(topo, flows, fabric, set_ids=set_ids,
                           set_names=tuple(f"copy{c}" for c in range(overlap)))
    meta: Dict[str, object] = {
        "num_flows": len(flows), "max_link_bytes": sim.max_link_bytes,
        "fill_rounds": sim.fill_rounds, "events": sim.events_processed}
    if overlap > 1:
        meta["per_collective_seconds"] = [
            sim.set_completion_times[f"copy{c}"] for c in range(overlap)]
    return CollectiveResult(
        buffer_bytes=buffer_bytes,
        shard_bytes=shard,
        completion_time=sim.completion_time,
        num_nodes=n,
        schedule_kind="routed",
        meta=meta,
    )


def throughput_sweep(schedule: Union[LinkSchedule, RoutedSchedule],
                     buffer_sizes: Sequence[float],
                     fabric: Optional[FabricModel] = None,
                     validate_first: bool = True,
                     num_channels: int = 1,
                     overlap: int = 1) -> List[CollectiveResult]:
    """Run the schedule across a sweep of buffer sizes (the Fig. 3/4 x-axis).

    The schedule is validated once (on the first point) and then reused.
    """
    results: List[CollectiveResult] = []
    for i, buf in enumerate(buffer_sizes):
        validate = validate_first and i == 0
        if isinstance(schedule, LinkSchedule):
            results.append(run_link_collective(schedule, buf, fabric=fabric,
                                               validate=validate,
                                               num_channels=num_channels,
                                               overlap=overlap))
        elif isinstance(schedule, RoutedSchedule):
            results.append(run_routed_collective(schedule, buf, fabric=fabric,
                                                 validate=validate,
                                                 overlap=overlap))
        else:
            raise TypeError(f"unsupported schedule type {type(schedule)!r}")
    return results
