"""Fabric models: bandwidth and latency parameters of the simulated interconnect.

Table 1 of the paper contrasts HPC fabrics (NIC/hardware routing, cut-through
flow control, forwarding bandwidth >= injection bandwidth) with ML accelerator
fabrics (host/GPU forwarding, store-and-forward, synchronized schedules).  The
testbed parameters from §5.1 are provided as ready-made constructors:

* Cerio NC1225-like NIC: 12 x 25 Gbps links (b = 3.125 GB/s per link, up to
  300 Gbps forwarding), 100 Gbps (12.5 GB/s) host injection over PCIe gen3 x16;
* A100 GPU testbed: degree-3/4 topologies over the same 25 Gbps links.

All bandwidths are stored in bytes/second and latencies in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["FabricModel", "GBPS", "GIBI", "cerio_hpc_fabric", "a100_ml_fabric",
           "ideal_fabric", "fabric_from_spec"]

GBPS = 1e9 / 8.0          # 1 Gbps in bytes/second
GIBI = 2.0 ** 30


@dataclass(frozen=True)
class FabricModel:
    """Bandwidth/latency description of a direct-connect fabric.

    Attributes
    ----------
    link_bandwidth:
        Per-link bandwidth ``b`` in bytes/second.
    injection_bandwidth:
        Host/accelerator injection bandwidth ``B_host`` in bytes/second
        (None means not a bottleneck, i.e. >= degree * link_bandwidth).
    forwarding_bandwidth:
        NIC forwarding bandwidth in bytes/second (None = unlimited / equal to
        the sum of link bandwidths); only meaningful for NIC-routed fabrics.
    nic_forwarding:
        True for HPC-style fabrics where the NIC forwards traffic without
        host involvement (cut-through), False for ML-style store-and-forward.
    per_step_latency:
        Synchronization overhead per communication step (store-and-forward
        schedules pay it once per step).
    per_hop_latency:
        Per-hop propagation/switching latency for cut-through routing.
    per_message_overhead:
        Fixed software/NIC overhead per message or chunk transfer.
    """

    link_bandwidth: float = 25.0 * GBPS
    injection_bandwidth: Optional[float] = None
    forwarding_bandwidth: Optional[float] = None
    nic_forwarding: bool = True
    per_step_latency: float = 20e-6
    per_hop_latency: float = 1e-6
    per_message_overhead: float = 2e-6
    name: str = "fabric"

    def effective_injection(self, degree: int) -> float:
        """Injection bandwidth cap, defaulting to degree * link bandwidth."""
        full = degree * self.link_bandwidth
        if self.injection_bandwidth is None:
            return full
        return min(self.injection_bandwidth, full)

    def injection_limited(self, degree: int) -> bool:
        """True when the host injection bandwidth is below the NIC aggregate."""
        return (self.injection_bandwidth is not None
                and self.injection_bandwidth < degree * self.link_bandwidth)


def cerio_hpc_fabric(link_gbps: float = 25.0, injection_gbps: float = 100.0,
                     forwarding_gbps: float = 300.0) -> FabricModel:
    """Cerio NC1225-like HPC fabric (§5.1): NIC source routing + cut-through."""
    return FabricModel(
        link_bandwidth=link_gbps * GBPS,
        injection_bandwidth=injection_gbps * GBPS,
        forwarding_bandwidth=forwarding_gbps * GBPS,
        nic_forwarding=True,
        per_step_latency=20e-6,
        per_hop_latency=1e-6,
        per_message_overhead=2e-6,
        name="cerio-hpc",
    )


def a100_ml_fabric(link_gbps: float = 25.0, injection_gbps: Optional[float] = None) -> FabricModel:
    """A100 GPU testbed-like ML fabric: host/GPU forwarding, store-and-forward."""
    return FabricModel(
        link_bandwidth=link_gbps * GBPS,
        injection_bandwidth=None if injection_gbps is None else injection_gbps * GBPS,
        forwarding_bandwidth=None,
        nic_forwarding=False,
        per_step_latency=30e-6,
        per_hop_latency=2e-6,
        per_message_overhead=5e-6,
        name="a100-ml",
    )


def fabric_from_spec(spec) -> FabricModel:
    """Resolve a fabric spec to a :class:`FabricModel`.

    Accepts an existing :class:`FabricModel` (returned unchanged) or a compact
    string ``name[:key=value,...]`` where ``name`` is one of ``hpc``, ``ml``
    or ``ideal`` and the parameters are the keyword arguments of the matching
    constructor, e.g. ``"hpc:forwarding_gbps=100"`` or
    ``"ml:link_gbps=50"``.  This is the fabric analogue of
    :func:`repro.topology.from_spec` and is what the declarative
    :class:`~repro.experiments.Scenario` layer and the CLI parse.
    """
    if isinstance(spec, FabricModel):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"fabric spec must be a FabricModel or string, got {type(spec)!r}")
    from ..topology.spec import parse_spec

    name, raw = parse_spec(spec)
    params = {key: float(value) for key, value in raw.items()}
    makers = {"hpc": cerio_hpc_fabric, "ml": a100_ml_fabric, "ideal": ideal_fabric}
    if name not in makers:
        raise ValueError(f"unknown fabric {name!r} (expected one of {sorted(makers)})")
    return makers[name](**params)


def ideal_fabric(link_bandwidth: float = 1.0) -> FabricModel:
    """Zero-latency fabric with unit link bandwidth (for analytic comparisons)."""
    return FabricModel(
        link_bandwidth=link_bandwidth,
        injection_bandwidth=None,
        forwarding_bandwidth=None,
        nic_forwarding=True,
        per_step_latency=0.0,
        per_hop_latency=0.0,
        per_message_overhead=0.0,
        name="ideal",
    )
