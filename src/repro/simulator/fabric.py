"""Fabric models: bandwidth and latency parameters of the simulated interconnect.

Table 1 of the paper contrasts HPC fabrics (NIC/hardware routing, cut-through
flow control, forwarding bandwidth >= injection bandwidth) with ML accelerator
fabrics (host/GPU forwarding, store-and-forward, synchronized schedules).  The
testbed parameters from §5.1 are provided as ready-made constructors:

* Cerio NC1225-like NIC: 12 x 25 Gbps links (b = 3.125 GB/s per link, up to
  300 Gbps forwarding), 100 Gbps (12.5 GB/s) host injection over PCIe gen3 x16;
* A100 GPU testbed: degree-3/4 topologies over the same 25 Gbps links.

All bandwidths are stored in bytes/second and latencies in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

__all__ = ["FabricModel", "GBPS", "GIBI", "cerio_hpc_fabric", "a100_ml_fabric",
           "ideal_fabric", "fabric_from_spec", "parse_link_set", "parse_link_scales"]

GBPS = 1e9 / 8.0          # 1 Gbps in bytes/second
GIBI = 2.0 ** 30


@dataclass(frozen=True)
class FabricModel:
    """Bandwidth/latency description of a direct-connect fabric.

    Attributes
    ----------
    link_bandwidth:
        Per-link bandwidth ``b`` in bytes/second.
    injection_bandwidth:
        Host/accelerator injection bandwidth ``B_host`` in bytes/second
        (None means not a bottleneck, i.e. >= degree * link_bandwidth).
    forwarding_bandwidth:
        NIC forwarding bandwidth in bytes/second (None = unlimited / equal to
        the sum of link bandwidths); only meaningful for NIC-routed fabrics.
    nic_forwarding:
        True for HPC-style fabrics where the NIC forwards traffic without
        host involvement (cut-through), False for ML-style store-and-forward.
    per_step_latency:
        Synchronization overhead per communication step (store-and-forward
        schedules pay it once per step).
    per_hop_latency:
        Per-hop propagation/switching latency for cut-through routing.
    per_message_overhead:
        Fixed software/NIC overhead per message or chunk transfer.
    link_scale:
        Degraded-fabric axis: per-directed-link bandwidth multipliers as a
        sorted tuple of ``((u, v), factor)`` pairs (hashable, so scenario
        cache keys cover degradation for free).  Links not listed run at
        full ``link_bandwidth``.
    down_links:
        Degraded-fabric axis: directed links that are hard-down.  A schedule
        whose flows cross a down link fails to simulate (the error is
        recorded per scenario by the sweep layer), which is exactly the
        Fig. 9 "disabled links" experiment run *without* re-synthesis.
    """

    link_bandwidth: float = 25.0 * GBPS
    injection_bandwidth: Optional[float] = None
    forwarding_bandwidth: Optional[float] = None
    nic_forwarding: bool = True
    per_step_latency: float = 20e-6
    per_hop_latency: float = 1e-6
    per_message_overhead: float = 2e-6
    name: str = "fabric"
    link_scale: Tuple[Tuple[Tuple[int, int], float], ...] = ()
    down_links: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        # Canonicalize the degraded-link fields so two fabrics describing the
        # same degradation hash identically in scenario keys.
        object.__setattr__(self, "link_scale",
                           tuple(sorted(((int(u), int(v)), float(s))
                                        for (u, v), s in self.link_scale)))
        object.__setattr__(self, "down_links",
                           tuple(sorted((int(u), int(v)) for u, v in self.down_links)))
        for (u, v), factor in self.link_scale:
            if not 0.0 < factor:
                raise ValueError(f"link_scale factor for ({u},{v}) must be positive, "
                                 f"got {factor}")

    @property
    def degraded(self) -> bool:
        """True when any link is scaled down or hard-down."""
        return bool(self.link_scale or self.down_links)

    def link_scale_map(self) -> Dict[Tuple[int, int], float]:
        """Per-directed-link bandwidth multipliers as a dict."""
        return {edge: factor for edge, factor in self.link_scale}

    def link_bandwidths(self, edges) -> Dict[Tuple[int, int], float]:
        """Effective bandwidth of each given directed link (0.0 if down).

        Builds the scale map once, so per-edge lookups stay O(1) — the
        engine's compile path calls this with every topology edge.
        """
        scales = self.link_scale_map()
        down = set(self.down_links)
        return {e: (0.0 if e in down else self.link_bandwidth * scales.get(e, 1.0))
                for e in edges}

    def effective_link_bandwidth(self, u: int, v: int) -> float:
        """Bandwidth of directed link ``(u, v)`` after degradation (0 if down)."""
        return self.link_bandwidths(((u, v),))[(u, v)]

    def degrade(self, link_scale: Optional[Dict[Tuple[int, int], float]] = None,
                down_links: Optional[Tuple[Tuple[int, int], ...]] = None,
                symmetric: bool = False) -> "FabricModel":
        """A copy of this fabric with additional degradation applied.

        ``symmetric=True`` mirrors every ``(u, v)`` entry onto ``(v, u)``,
        matching the bidirectional physical links of the topologies here.
        """
        scales = dict(self.link_scale_map())
        for (u, v), factor in (link_scale or {}).items():
            scales[(u, v)] = factor
            if symmetric:
                scales[(v, u)] = factor
        down = set(self.down_links)
        for (u, v) in down_links or ():
            down.add((u, v))
            if symmetric:
                down.add((v, u))
        return replace(self, link_scale=tuple(scales.items()),
                       down_links=tuple(down))

    def effective_injection(self, degree: int) -> float:
        """Injection bandwidth cap, defaulting to degree * link bandwidth."""
        full = degree * self.link_bandwidth
        if self.injection_bandwidth is None:
            return full
        return min(self.injection_bandwidth, full)

    def injection_limited(self, degree: int) -> bool:
        """True when the host injection bandwidth is below the NIC aggregate."""
        return (self.injection_bandwidth is not None
                and self.injection_bandwidth < degree * self.link_bandwidth)


def cerio_hpc_fabric(link_gbps: float = 25.0, injection_gbps: float = 100.0,
                     forwarding_gbps: float = 300.0) -> FabricModel:
    """Cerio NC1225-like HPC fabric (§5.1): NIC source routing + cut-through."""
    return FabricModel(
        link_bandwidth=link_gbps * GBPS,
        injection_bandwidth=injection_gbps * GBPS,
        forwarding_bandwidth=forwarding_gbps * GBPS,
        nic_forwarding=True,
        per_step_latency=20e-6,
        per_hop_latency=1e-6,
        per_message_overhead=2e-6,
        name="cerio-hpc",
    )


def a100_ml_fabric(link_gbps: float = 25.0, injection_gbps: Optional[float] = None) -> FabricModel:
    """A100 GPU testbed-like ML fabric: host/GPU forwarding, store-and-forward."""
    return FabricModel(
        link_bandwidth=link_gbps * GBPS,
        injection_bandwidth=None if injection_gbps is None else injection_gbps * GBPS,
        forwarding_bandwidth=None,
        nic_forwarding=False,
        per_step_latency=30e-6,
        per_hop_latency=2e-6,
        per_message_overhead=5e-6,
        name="a100-ml",
    )


def parse_link_set(value: str) -> Tuple[Tuple[int, int], ...]:
    """Parse a ``u-v|u-v|...`` link list (``u~v`` adds both directions).

    Used by the ``down=`` fabric-spec parameter, e.g. ``"hpc:down=0~1"``
    takes the physical link between nodes 0 and 1 out of service.
    """
    links = []
    for token in value.split("|"):
        token = token.strip()
        if not token:
            continue
        symmetric = "~" in token
        sep = "~" if symmetric else "-"
        parts = token.split(sep)
        if len(parts) != 2:
            raise ValueError(f"malformed link token {token!r} (expected u-v or u~v)")
        u, v = int(parts[0]), int(parts[1])
        links.append((u, v))
        if symmetric:
            links.append((v, u))
    return tuple(links)


def parse_link_scales(value: str) -> Tuple[Tuple[Tuple[int, int], float], ...]:
    """Parse a ``u-v:factor|...`` scaled-link list (``u~v:factor`` = both directions).

    Used by the ``scale=`` fabric-spec parameter, e.g.
    ``"hpc:scale=0~1:0.5"`` halves the bandwidth of the physical link
    between nodes 0 and 1.
    """
    scales = []
    for token in value.split("|"):
        token = token.strip()
        if not token:
            continue
        if ":" not in token:
            raise ValueError(f"malformed scale token {token!r} (expected u-v:factor)")
        link_part, factor_part = token.rsplit(":", 1)
        factor = float(factor_part)
        for edge in parse_link_set(link_part):
            scales.append((edge, factor))
    return tuple(scales)


def fabric_from_spec(spec) -> FabricModel:
    """Resolve a fabric spec to a :class:`FabricModel`.

    Accepts an existing :class:`FabricModel` (returned unchanged) or a compact
    string ``name[:key=value,...]`` where ``name`` is one of ``hpc``, ``ml``
    or ``ideal`` and the parameters are the keyword arguments of the matching
    constructor, e.g. ``"hpc:forwarding_gbps=100"`` or
    ``"ml:link_gbps=50"``.  This is the fabric analogue of
    :func:`repro.topology.from_spec` and is what the declarative
    :class:`~repro.experiments.Scenario` layer and the CLI parse.

    Two parameters open the degraded-fabric axis (values use ``|`` between
    links because ``,`` separates spec parameters):

    * ``down=u-v|...`` — directed links out of service (``u~v`` downs both
      directions of the physical link), e.g. ``"hpc:down=0~1"``;
    * ``scale=u-v:f|...`` — per-link bandwidth multipliers,
      e.g. ``"hpc:scale=0~1:0.25,forwarding_gbps=100"``.
    """
    if isinstance(spec, FabricModel):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"fabric spec must be a FabricModel or string, got {type(spec)!r}")
    from ..topology.spec import parse_spec

    name, raw = parse_spec(spec)
    down = parse_link_set(raw.pop("down", ""))
    scale = parse_link_scales(raw.pop("scale", ""))
    params = {key: float(value) for key, value in raw.items()}
    makers = {"hpc": cerio_hpc_fabric, "ml": a100_ml_fabric, "ideal": ideal_fabric}
    if name not in makers:
        raise ValueError(f"unknown fabric {name!r} (expected one of {sorted(makers)})")
    fabric = makers[name](**params)
    if down or scale:
        fabric = replace(fabric, down_links=down, link_scale=scale,
                         name=f"{fabric.name}-degraded")
    return fabric


def ideal_fabric(link_bandwidth: float = 1.0) -> FabricModel:
    """Zero-latency fabric with unit link bandwidth (for analytic comparisons)."""
    return FabricModel(
        link_bandwidth=link_bandwidth,
        injection_bandwidth=None,
        forwarding_bandwidth=None,
        nic_forwarding=True,
        per_step_latency=0.0,
        per_hop_latency=0.0,
        per_message_overhead=0.0,
        name="ideal",
    )
