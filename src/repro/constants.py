"""Shared numerical tolerances.

Every tolerance used to interpret LP output or drive the fluid simulator
lives here so that the semantics are documented once and the values cannot
drift apart between modules.

FLOW_TOL
    Threshold below which an LP flow variable is treated as zero when a
    solution is read back from the solver.  HiGHS reports primal values with
    ~1e-10 noise around zero; 1e-9 cleanly separates genuine (rational) flow
    values from that noise for the unit-capacity problems solved here.  Used
    by every MCF formulation and by the path decomposition in
    :mod:`repro.core.flow`.

SIM_EPS
    Epsilon for the fluid (progressive-filling) simulator's *rate*
    comparisons: a rate below ``SIM_EPS`` bytes/second is treated as zero
    (the flow is stalled), and two resource fair-shares closer than
    ``SIM_EPS`` are considered tied.  It is much tighter than ``FLOW_TOL``
    because the simulator accumulates byte counts over many events and a
    loose epsilon would terminate transfers early.

SIM_BYTES_EPS
    Threshold below which a flow's *remaining bytes* count as delivered.
    Progressive filling advances time by ``remaining / rate`` divisions
    whose float round-off leaves residues far above ``SIM_EPS``; without
    this coarser cutoff a flow could survive its own completion event and
    spin the event loop.  Shared by the vectorized engine and the scalar
    reference simulator so their completion times stay comparable.

SCHEDULE_TOL
    Coverage tolerance for schedule validation: a commodity counts as fully
    covered when its chunk assignments sum to at least ``1 - SCHEDULE_TOL``.
    Chunking quantizes path weights to small rational fractions, so the
    round-off is far larger than LP noise.
"""

from __future__ import annotations

__all__ = ["FLOW_TOL", "SIM_EPS", "SIM_BYTES_EPS", "SCHEDULE_TOL"]

FLOW_TOL = 1e-9

SIM_EPS = 1e-12

SIM_BYTES_EPS = 1e-6

SCHEDULE_TOL = 1e-6
