"""Throughput/time normalization helpers used by the evaluation harness.

Fig. 8/9/10 plot the *normalized all-to-all time*: the time of a scheme
divided by either the optimal link-based MCF time (Figs. 8, 9) or the
Theorem 1 lower bound (Fig. 10).  Fig. 5 plots min/mean/max envelopes over
sampled punctured-torus instances.  These small helpers keep that arithmetic
in one place (and testable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

__all__ = ["normalize_times", "Envelope", "envelope", "speedup", "crossover_buffer"]


def normalize_times(times: Mapping[str, float], reference: float) -> Dict[str, float]:
    """Divide every scheme's all-to-all time by a reference time.

    ``reference`` is typically the link-based MCF optimum (Fig. 8/9) or the
    lower bound (Fig. 10); values >= 1 mean "this much slower than optimal".
    """
    if reference <= 0:
        raise ValueError("reference time must be positive")
    return {name: t / reference for name, t in times.items()}


@dataclass(frozen=True)
class Envelope:
    """Min/mean/max summary over repeated instances (Fig. 5 style)."""

    minimum: float
    mean: float
    maximum: float

    @staticmethod
    def of(values: Sequence[float]) -> "Envelope":
        if not values:
            raise ValueError("cannot build an envelope of zero values")
        return Envelope(minimum=min(values), mean=sum(values) / len(values),
                        maximum=max(values))


def envelope(values: Sequence[float]) -> Envelope:
    """Convenience alias for :meth:`Envelope.of`."""
    return Envelope.of(values)


def speedup(baseline_time: float, optimized_time: float) -> float:
    """Speedup factor of an optimized scheme over a baseline (>1 = faster)."""
    if optimized_time <= 0:
        return float("inf")
    return baseline_time / optimized_time


def crossover_buffer(buffer_sizes: Sequence[float], series_a: Sequence[float],
                     series_b: Sequence[float]) -> Optional[float]:
    """First buffer size at which series A's throughput overtakes series B's.

    Used to locate the small-buffer/large-buffer crossovers discussed with
    Fig. 4 (path-based schedules win at small buffers thanks to cut-through
    latency, both converge at large buffers).  Returns None if A never
    overtakes B in the sweep.
    """
    if not (len(buffer_sizes) == len(series_a) == len(series_b)):
        raise ValueError("series must have equal length")
    for buf, a, b in zip(buffer_sizes, series_a, series_b):
        if a >= b:
            return buf
    return None
