"""Plain-text table/series formatting for benchmark output and EXPERIMENTS.md.

The benchmark harness prints the same rows/series the paper's figures report;
these helpers render them as aligned text tables so the output of
``pytest benchmarks/ --benchmark-only`` can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

__all__ = ["format_table", "format_series", "format_throughput_sweep",
           "format_engine_footer", "human_bytes"]


def format_engine_footer(engine_stats: Mapping[str, object],
                         stage_stats: Mapping[str, object],
                         extra: str = "",
                         sim_stats: Optional[Mapping[str, object]] = None,
                         executor_stats: Optional[Mapping[str, object]] = None) -> str:
    """One-line LP/stage-cache/simulator accounting footer.

    The single source of the ``[stats] ...`` line printed (to stderr) by
    ``repro compare``, ``repro sweep``, ``repro simulate`` and
    ``repro report`` — one format string instead of one per call site, so
    the footers can never drift apart.  ``engine_stats`` is
    ``Engine.stats()`` (cache counters plus backend name); ``stage_stats``
    is the plan cache's :meth:`~repro.engine.cache.SolutionCache.stats`;
    ``sim_stats`` is :func:`repro.simulator.engine_counters` (fill rounds
    and completion events processed by the fluid engine), so sweep/report
    runs expose simulation cost the same way they expose LP cost.
    ``executor_stats`` is the ``to_dict()`` of an
    :class:`~repro.experiments.executor.ExecutorStats` — multiprocess sweep
    accounting (per-worker completed counts, steals, shared-artifact
    hits/misses, scenarios/sec), appended as an ``exec:`` section.
    """
    line = (f"[stats] lp-cache: {engine_stats['hits']} hits / "
            f"{engine_stats['misses']} misses "
            f"({engine_stats['disk_hits']} from disk) "
            f"backend={engine_stats['backend']}; "
            f"stage-cache: {stage_stats['hits']} hits / "
            f"{stage_stats['misses']} misses")
    if "basis_hits" in engine_stats:
        # Warm-started backends (highs-native) report basis reuse.
        line += (f"; warm-start: {engine_stats['basis_hits']} basis hits / "
                 f"{engine_stats.get('basis_misses', 0)} cold")
    if sim_stats is not None:
        line += (f"; sim: {sim_stats['fill_rounds']} fill rounds / "
                 f"{sim_stats['events']} events")
        kernel = sim_stats.get("kernel")
        if kernel:
            line += (f" [kernel={kernel}, "
                     f"{float(sim_stats.get('fill_seconds', 0.0)):.3f}s fill]")
        if sim_stats.get("fabric_events"):
            # Dynamic-failure accounting (repro.faults): only shown when a
            # fault runner actually mutated a fabric this process.
            line += (f"; faults: {sim_stats['fabric_events']} fabric events "
                     f"/ {sim_stats.get('reroutes', 0)} reroutes")
            compile_s = float(sim_stats.get("compile_seconds", 0.0))
            reroute_s = float(sim_stats.get("reroute_seconds", 0.0))
            if compile_s or reroute_s:
                line += (f" [{compile_s:.3f}s compile, "
                         f"{reroute_s:.3f}s reroute]")
        delta_ops = (sim_stats.get("delta_hits", 0)
                     or sim_stats.get("delta_rebuilds", 0))
        if delta_ops:
            # Incremental-engine accounting (repro.perf.delta).
            line += (f"; delta: {sim_stats.get('delta_hits', 0)} hits / "
                     f"{sim_stats.get('delta_rebuilds', 0)} rebuilds, "
                     f"route-cache: {sim_stats.get('route_cache_hits', 0)} "
                     f"hits / {sim_stats.get('route_cache_misses', 0)} misses")
    if executor_stats is not None:
        per_worker = "/".join(str(c) for c in executor_stats.get("completed", []))
        line += (f"; exec: {executor_stats.get('workers', 0)} workers "
                 f"({per_worker or '-'} per worker), "
                 f"{executor_stats.get('steals', 0)} steals, "
                 f"shared-artifacts {executor_stats.get('shared_hits', 0)} hits"
                 f" / {executor_stats.get('shared_misses', 0)} misses, "
                 f"{float(executor_stats.get('scenarios_per_sec', 0.0)):.2f} scen/s")
    return line + (f"; {extra}" if extra else "")


def human_bytes(num_bytes: float) -> str:
    """Human-readable byte count (powers of two, like the figure axes)."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or unit == "TiB":
            return f"{value:.0f}{unit}" if value >= 10 else f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}TiB"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def format_series(x_label: str, xs: Sequence[object],
                  series: Mapping[str, Sequence[float]],
                  title: Optional[str] = None) -> str:
    """Render several y-series against a shared x-axis (one figure line each)."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def format_throughput_sweep(results_by_scheme: Mapping[str, Sequence],
                            title: Optional[str] = None,
                            unit: float = 1e9) -> str:
    """Render throughput sweeps (CollectiveResult lists) as a Fig. 3/4 style table.

    ``unit`` converts bytes/s to the displayed unit (default GB/s).
    """
    schemes = list(results_by_scheme.keys())
    if not schemes:
        return title or ""
    buffers = [r.buffer_bytes for r in results_by_scheme[schemes[0]]]
    series = {}
    for name, results in results_by_scheme.items():
        series[name] = [r.throughput / unit for r in results]
    xs = [human_bytes(b) for b in buffers]
    return format_series("buffer", xs, series, title=title)
