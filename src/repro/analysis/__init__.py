"""Analysis helpers: normalization, envelopes, and report formatting."""

from .report import (
    format_engine_footer,
    format_series,
    format_table,
    format_throughput_sweep,
    human_bytes,
)
from .sweep import PATH_SCHEMES, SchemeResult, available_schemes, compare_schemes, run_scheme
from .throughput import Envelope, crossover_buffer, envelope, normalize_times, speedup

__all__ = [
    "format_engine_footer",
    "format_series",
    "format_table",
    "format_throughput_sweep",
    "human_bytes",
    "PATH_SCHEMES",
    "SchemeResult",
    "available_schemes",
    "compare_schemes",
    "run_scheme",
    "Envelope",
    "crossover_buffer",
    "envelope",
    "normalize_times",
    "speedup",
]
