"""Scheme registry and comparison sweeps.

The registry of named schedule-generation schemes (the algorithms compared in
the paper's figures) plus :func:`compare_schemes`, which since the
declarative experiment layer landed is a thin wrapper: each scheme becomes
one :class:`~repro.experiments.Scenario` and the batch executes through
:func:`~repro.experiments.run_scenarios` (same ordering, same error capture,
same parallel semantics as before).

All schemes share the engine's solution cache *and* the experiment layer's
stage-artifact cache, so re-running a comparison on the same topology solves
no new LPs and re-lowers no schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..baselines import (
    ilp_disjoint_schedule,
    ilp_shortest_schedule,
    native_alltoall_schedule,
)
from ..core import (
    solve_decomposed_mcf,
    solve_mcf_extract_paths,
    solve_path_mcf,
)
from ..core.mcf_path import PathSchedule
from ..experiments import Scenario, run_scenarios
from ..paths import (
    all_shortest_path_sets,
    dor_schedule,
    edge_disjoint_path_sets,
    ewsp_schedule,
    sssp_schedule,
)
from ..simulator import FabricModel, cerio_hpc_fabric
from ..topology.base import Topology

__all__ = ["SchemeResult", "PATH_SCHEMES", "available_schemes", "run_scheme",
           "compare_schemes"]


#: Registry of path-based schemes keyed by the label used in the paper's figures.
PATH_SCHEMES: Dict[str, Callable[[Topology], PathSchedule]] = {
    "mcf-extp": solve_mcf_extract_paths,
    "pmcf-disjoint": lambda t: solve_path_mcf(t, edge_disjoint_path_sets(t)),
    "pmcf-shortest": lambda t: solve_path_mcf(
        t, all_shortest_path_sets(t, limit_per_pair=16)),
    "ewsp": ewsp_schedule,
    "sssp": sssp_schedule,
    "dor": dor_schedule,
    "native": native_alltoall_schedule,
    "ilp-disjoint": lambda t: ilp_disjoint_schedule(t, mip_rel_gap=0.05, time_limit=120),
    "ilp-shortest": lambda t: ilp_shortest_schedule(t, mip_rel_gap=0.05, time_limit=120),
}

#: Parameters the PATH_SCHEMES lambdas bake in, replayed as ``scheme_params``
#: when the same scheme runs through the declarative layer so both paths
#: assemble byte-identical LPs (and therefore share cache entries).
_BAKED_PARAMS: Dict[str, Dict[str, object]] = {
    "pmcf-shortest": {"limit_per_pair": 16},
    "ilp-disjoint": {"mip_rel_gap": 0.05, "time_limit": 120},
    "ilp-shortest": {"mip_rel_gap": 0.05, "time_limit": 120},
}


def available_schemes() -> List[str]:
    """Names of all registered path-based schemes."""
    return sorted(PATH_SCHEMES.keys())


@dataclass
class SchemeResult:
    """Outcome of one scheme on one topology."""

    scheme: str
    concurrent_flow: float
    all_to_all_time: float
    normalized_time: Optional[float] = None
    throughputs: Dict[float, float] = field(default_factory=dict)   # buffer -> bytes/s
    error: Optional[str] = None


def run_scheme(scheme: str, topology: Topology) -> PathSchedule:
    """Run a registered scheme by name."""
    if scheme not in PATH_SCHEMES:
        raise KeyError(f"unknown scheme {scheme!r}; available: {available_schemes()}")
    return PATH_SCHEMES[scheme](topology)


def compare_schemes(topology: Topology, schemes: Sequence[str],
                    buffer_sizes: Optional[Sequence[float]] = None,
                    fabric: Optional[FabricModel] = None,
                    normalize: bool = True,
                    skip_failures: bool = True,
                    jobs: int = 1) -> List[SchemeResult]:
    """Run several schemes on a topology and collect comparable metrics.

    Parameters
    ----------
    buffer_sizes:
        If given, each scheme's schedule is also chunked and executed on the
        simulator at these per-node buffer sizes.
    normalize:
        If True, also compute each scheme's all-to-all time normalized by the
        optimal link-based (decomposed) MCF time, as in Fig. 8/9.
    skip_failures:
        If True, a scheme that raises (e.g. DOR on a non-torus) produces a
        :class:`SchemeResult` with the ``error`` field set instead of aborting
        the whole comparison.
    jobs:
        Number of schemes evaluated concurrently (threads; HiGHS releases the
        GIL during solves).  Results keep the order of ``schemes`` regardless.
    """
    fabric = fabric or cerio_hpc_fabric()
    reference = None
    if normalize:
        reference = 1.0 / solve_decomposed_mcf(topology).concurrent_flow

    buffers = tuple(buffer_sizes) if buffer_sizes else ()
    scenarios = [Scenario(topology=topology, scheme=name,
                          scheme_params=_BAKED_PARAMS.get(name, {}),
                          fabric=fabric, buffers=buffers, max_denominator=16)
                 for name in schemes]
    through = "simulate" if buffers else "synthesize"
    results = run_scenarios(scenarios, jobs=jobs, through=through)

    out: List[SchemeResult] = []
    for name, res in zip(schemes, results):
        if res.status == "error":
            if not skip_failures:
                raise res.exception
            out.append(SchemeResult(scheme=name, concurrent_flow=0.0,
                                    all_to_all_time=float("inf"), error=res.error))
            continue
        time = float(res.metrics.get("all_to_all_time", float("inf")))
        result = SchemeResult(
            scheme=name,
            concurrent_flow=float(res.metrics.get("concurrent_flow", 0.0)),
            all_to_all_time=time,
            normalized_time=None if reference is None else time / reference,
        )
        for buf, tp in (res.metrics.get("throughput_bytes_per_s") or {}).items():
            result.throughputs[float(buf)] = tp
        out.append(result)
    return out
