"""Command-line interface for schedule synthesis, simulation and comparison.

Mirrors the tool chain a user of the paper's system would drive:

* ``repro topology``    -- build a topology from a spec and print its properties;
* ``repro synthesize``  -- synthesise an all-to-all schedule (Fig. 1 pipeline)
  and optionally write the lowered XML;
* ``repro simulate``    -- run a synthesised schedule on the simulated fabric
  across a buffer sweep and print the throughput series;
* ``repro compare``     -- compare several schemes on one topology (Fig. 8 style);
* ``repro cluster``     -- co-simulate multi-job traces (compute/comm phases,
  stochastic arrivals, placement policies) sharing one fabric, reporting
  per-job slowdown, makespan and fabric utilization;
* ``repro sweep``       -- run a declarative scenario grid (topology x scheme x
  fabric x ...) with streaming JSONL results, resumable by scenario hash;
* ``repro report``      -- regenerate the paper's figures/tables as a
  provenance-stamped report directory (see ``docs/cli.md``).

Topology specs are compact strings such as ``genkautz:d=4,n=24``,
``torus:dims=3x3x3``, ``hypercube:dim=3``, ``bipartite:left=4,right=4``,
``xpander:d=4,lift=5``, ``rrg:d=4,n=20,seed=1``.

Run ``python -m repro.cli --help`` for the full usage.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import format_engine_footer, format_table
from .analysis.sweep import available_schemes, compare_schemes
from .core import (
    ForwardingModel,
    SchedulingRequest,
    generate_schedule,
)
from .core.mcf_path import PathSchedule
from .core.mcf_timestepped import TimeSteppedFlow
from .experiments import (
    SweepGrid,
    available_scenario_schemes,
    get_plan_cache,
    last_executor_stats,
    run_sweep,
    sweep_stats,
    write_csv,
)
from .routing import lash_sequential_assign
from .schedule import (
    chunk_path_schedule,
    chunk_timestepped_flow,
    compile_to_msccl_xml,
    compile_to_ompi_xml,
)
from .simulator import fabric_from_spec
from .topology import Topology, from_spec, properties

__all__ = ["build_topology", "main"]


def build_topology(spec: str) -> Topology:
    """Build a topology from a spec string (alias of :func:`repro.topology.from_spec`)."""
    return from_spec(spec)


def _fabric(name: str):
    return fabric_from_spec(name)


def _buffer_list(spec: str) -> List[float]:
    return [float(int(x)) for x in spec.split(",") if x]


def _apply_set_args(items, base: dict) -> dict:
    """Fold repeatable ``--set FIELD=VALUE`` flags into a scenario field dict."""
    for item in items or []:
        if "=" not in item:
            raise ValueError(f"malformed --set {item!r} (expected field=value)")
        key, value = item.split("=", 1)
        base[key.strip()] = value.strip()
    return base


# --------------------------------------------------------------------------- #
# Sub-commands
# --------------------------------------------------------------------------- #
def _cmd_topology(args: argparse.Namespace) -> int:
    topo = build_topology(args.topology)
    stats = properties.summary(topo)
    rows = [[key, value] for key, value in stats.items()]
    print(format_table(["property", "value"], rows, title=f"{topo.name} (N={topo.num_nodes})"))
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    topo = build_topology(args.topology)
    request = SchedulingRequest(
        forwarding=(ForwardingModel.NIC if _fabric(args.fabric).nic_forwarding
                    else ForwardingModel.HOST),
        host_bandwidth=args.host_bandwidth,
        n_jobs=args.jobs,
    )
    schedule = generate_schedule(topo, request)
    if isinstance(schedule, TimeSteppedFlow):
        link_schedule = chunk_timestepped_flow(schedule)
        xml = compile_to_msccl_xml(link_schedule)
        print(f"tsMCF schedule: {schedule.num_steps} steps, "
              f"total utilization {schedule.total_utilization:.3f} "
              f"(equivalent F = {schedule.equivalent_concurrent_flow():.4f})")
    elif isinstance(schedule, PathSchedule):
        routes = [tuple(p.nodes) for plist in schedule.paths.values() for p in plist]
        layers = lash_sequential_assign(routes)
        routed = chunk_path_schedule(schedule, layers=layers.layer_of)
        xml = compile_to_ompi_xml(routed)
        print(f"path schedule ({schedule.meta.get('pipeline', 'pmcf')}): "
              f"F = {schedule.concurrent_flow:.4f}, "
              f"{len(routed.assignments)} chunk assignments, "
              f"{layers.num_layers} VC layer(s)")
    else:  # pragma: no cover - defensive
        raise TypeError(f"unexpected schedule type {type(schedule)!r}")
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(xml)
        print(f"wrote {len(xml)} bytes of XML to {args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    """Scenario-driven simulation: one scenario through the staged Plan pipeline.

    The scenario comes from the positional topology plus flags, with
    ``--set field=value`` overriding any :class:`~repro.experiments.Scenario`
    field — including the new axes: ``--overlap 2`` runs two copies of the
    collective concurrently, and a degraded fabric rides on the fabric spec
    (``--fabric "hpc:down=0~1"``).  With ``--out`` the run appends one sweep
    JSONL record (resumable with ``--resume``), so ``repro simulate`` output
    composes with the same tooling as ``repro sweep``.
    """
    from .experiments import Scenario

    if args.kernel:
        from .perf import set_fill_kernel
        set_fill_kernel(args.kernel)
    base = {"scheme": args.scheme, "fabric": args.fabric,
            "buffers": tuple(_buffer_list(args.buffers)), "overlap": args.overlap}
    if args.faults:
        base["faults"] = args.faults
    if args.topology:
        base["topology"] = args.topology
    _apply_set_args(args.set, base)
    if "topology" not in base:
        raise ValueError("no topology: pass it positionally or via --set topology=...")
    scenario = Scenario.from_dict(base)

    results = run_sweep([scenario], out_path=args.out, resume=args.resume,
                        n_jobs=args.jobs)
    res = results[0]
    if res.status == "error":
        print(f"error: {res.scenario.label()}: {res.error}")
        _print_engine_stats()
        return 1

    throughputs = res.metrics.get("throughput_bytes_per_s") or {}
    completions = res.metrics.get("completion_seconds") or {}
    overlap_times = res.metrics.get("overlap_completion_seconds") or {}
    fault_slowdowns = res.metrics.get("robustness_slowdowns") or {}
    headers = ["buffer bytes", "time (s)", "throughput GB/s"]
    if overlap_times:
        headers.append("per-collective (s)")
    if fault_slowdowns:
        headers.append("slowdown")
    rows = []
    for buf, tp in throughputs.items():
        row = [int(buf), completions.get(buf, ""), tp / 1e9]
        if overlap_times:
            row.append(" ".join(f"{t:.6f}" for t in overlap_times.get(buf, [])))
        if fault_slowdowns:
            row.append(round(float(fault_slowdowns.get(buf, 1.0)), 4))
        rows.append(row)
    status = "resumed" if res.resumed else "ok"
    fabric_label = (scenario.fabric if isinstance(scenario.fabric, str)
                    else scenario.fabric.name)
    title = (f"{scenario.label()} ({fabric_label} fabric, "
             f"overlap={scenario.overlap}) [{status}]")
    print(format_table(headers, rows, title=title))
    if fault_slowdowns:
        print(f"faults: {res.metrics.get('fault_events', 0)} fabric event(s), "
              f"{res.metrics.get('reroute_count', 0)} reroute(s), "
              f"{res.metrics.get('stranded_bytes', 0.0):.0f} stranded bytes")
    if args.out:
        print(f"record appended to {args.out}")
    _print_engine_stats()
    return 0


def _print_engine_stats(extra: str = "", executor_stats=None) -> None:
    """Cache/solve/simulator accounting footer, printed to stderr.

    stderr so that stdout stays byte-identical across repeated invocations
    (hit counts and wall-clock seconds legitimately differ run to run).
    The format itself lives in :func:`repro.analysis.format_engine_footer`,
    shared by every subcommand that prints the footer.  ``executor_stats``
    (multiprocess sweeps) adds the ``exec:`` counters section.
    """
    from .engine import get_engine
    from .simulator import engine_counters

    print(format_engine_footer(get_engine().stats(), get_plan_cache().stats(),
                               extra, sim_stats=engine_counters(),
                               executor_stats=executor_stats),
          file=sys.stderr)


def _cmd_compare(args: argparse.Namespace) -> int:
    topo = build_topology(args.topology)
    schemes = args.schemes.split(",") if args.schemes else ["mcf-extp", "ewsp", "sssp", "native"]
    buffers = _buffer_list(args.buffers) if args.buffers else None
    results = compare_schemes(topo, schemes, buffer_sizes=buffers, fabric=_fabric(args.fabric),
                              jobs=args.jobs)
    rows = []
    for r in results:
        if r.error:
            rows.append([r.scheme, "error", "-", r.error[:40]])
            continue
        rows.append([r.scheme, r.all_to_all_time,
                     "-" if r.normalized_time is None else round(r.normalized_time, 3),
                     " ".join(f"{tp / 1e9:.2f}" for tp in r.throughputs.values()) or "-"])
    print(format_table(["scheme", "all-to-all time", "vs MCF", "throughput GB/s"],
                       rows, title=f"Scheme comparison on {topo.name}"))
    _print_engine_stats()
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Multi-job cluster co-simulation: one scenario per ``--trace``.

    Each trace spec (``cluster:jobs=4:arrival=poisson~2000:placement=packed``)
    becomes one cluster scenario on the given topology/scheme/fabric, executed
    through :func:`~repro.experiments.run_sweep` — so ``--out`` emits
    sweep-compatible JSONL and ``--resume``/``--jobs``/``--workers`` behave
    exactly as in ``repro sweep``.  Traces share the synthesized schedule
    (the trace enters the simulate stage key only).
    """
    from .experiments import Scenario

    traces = args.trace or [
        "cluster:jobs=4:arrival=poisson~2000:placement=packed:seed=0"]
    scenarios = []
    for trace in traces:
        base = {"topology": args.topology, "scheme": args.scheme,
                "fabric": args.fabric,
                "buffers": (float(args.buffer),), "cluster": trace}
        _apply_set_args(args.set, base)
        scenarios.append(Scenario.from_dict(base))

    try:
        results = run_sweep(scenarios, out_path=args.out, jobs=args.jobs,
                            resume=args.resume, n_jobs=args.lp_jobs,
                            workers=args.workers)
    except RuntimeError as exc:
        print(f"error: {exc}")
        return 1

    rows = []
    failures = []
    for res, trace in zip(results, traces):
        if res.status == "error":
            rows.append([trace, "error", "-", "-", "-", "-", "-"])
            failures.append((trace, res.error or "unknown error"))
            continue
        m = res.metrics
        rows.append([
            trace,
            "resumed" if res.resumed else "ok",
            m.get("cluster_jobs", "-"),
            "-" if m.get("makespan_seconds") is None
            else f"{float(m['makespan_seconds']):.6f}",
            "-" if m.get("job_slowdown_p50") is None
            else round(float(m["job_slowdown_p50"]), 3),
            "-" if m.get("job_slowdown_p99") is None
            else round(float(m["job_slowdown_p99"]), 3),
            "-" if m.get("fabric_utilization") is None
            else round(float(m["fabric_utilization"]), 3),
        ])
    print(format_table(
        ["trace", "status", "jobs", "makespan (s)", "slowdown p50",
         "slowdown p99", "utilization"],
        rows, title=f"Cluster co-simulation on {args.topology} ({args.scheme})"))
    for trace, message in failures:
        print(f"error: {trace}: {message}")
    if args.out:
        print(f"streaming results in {args.out}")
    exec_stats = last_executor_stats() if args.workers > 1 else None
    totals = sweep_stats(results, executor=exec_stats)
    _print_engine_stats(
        f"traces: {totals['ok']} ok / {totals['errors']} error "
        f"({totals['resumed']} resumed)",
        executor_stats=exec_stats.to_dict() if exec_stats else None)
    return 1 if totals["errors"] else 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    """Schedule robustness under dynamic fabric failures.

    Two modes compose in one invocation: each ``--faults`` spec becomes one
    fault-injection scenario executed through
    :func:`~repro.experiments.run_sweep` (sweep-compatible JSONL via
    ``--out``, resumable, fault specs share the synthesized schedule), and
    ``--adversarial K`` additionally searches the worst-case K-physical-link
    failure set against the schedule
    (:func:`~repro.faults.worst_case_failures`), printing the degradation
    table.  See docs/robustness.md for the fault grammar and knobs.
    """
    from .experiments import Plan, Scenario

    specs = args.faults or []
    scenarios = []
    for spec in specs:
        base = {"topology": args.topology, "scheme": args.scheme,
                "fabric": args.fabric,
                "buffers": (float(args.buffer),), "faults": spec}
        _apply_set_args(args.set, base)
        scenarios.append(Scenario.from_dict(base))

    failures = []
    results = []
    if scenarios:
        results = run_sweep(scenarios, out_path=args.out, jobs=args.jobs,
                            resume=args.resume, n_jobs=args.lp_jobs)
        rows = []
        for res, spec in zip(results, specs):
            if res.status == "error":
                rows.append([spec, "error", "-", "-", "-", "-"])
                failures.append((spec, res.error or "unknown error"))
                continue
            m = res.metrics
            rows.append([
                spec,
                "resumed" if res.resumed else "ok",
                "-" if m.get("robustness_slowdown") is None
                else round(float(m["robustness_slowdown"]), 4),
                m.get("reroute_count", "-"),
                "-" if m.get("stranded_bytes") is None
                else f"{float(m['stranded_bytes']):.0f}",
                m.get("fault_events", "-"),
            ])
        print(format_table(
            ["faults", "status", "slowdown", "reroutes", "stranded B",
             "epochs"],
            rows,
            title=f"Fault injection on {args.topology} ({args.scheme})"))
        for spec, message in failures:
            print(f"error: {spec}: {message}")
        if args.out:
            print(f"streaming results in {args.out}")

    if args.adversarial:
        from .faults import worst_case_failures

        scenario = Scenario.from_dict({
            "topology": args.topology, "scheme": args.scheme,
            "fabric": args.fabric, "buffers": (float(args.buffer),)})
        plan = Plan(scenario, n_jobs=args.lp_jobs)
        lowered = plan.run("validate").lowered
        adv = worst_case_failures(
            lowered, float(args.buffer), k=args.adversarial,
            fabric=scenario.resolved_fabric(), at=args.at,
            candidates=args.candidates, mode=args.mode, seed=args.seed,
            jobs=args.jobs)
        rows = []
        for ev in adv.evaluations:
            if len(ev["links"]) != adv.k:
                continue
            rows.append([
                "|".join(f"{u}~{v}" for u, v in ev["links"]),
                "stranded" if ev["stranded"]
                else round(float(ev["slowdown"]), 4),
                ev["reroute_count"],
                f"{float(ev['stranded_bytes']):.0f}",
            ])
        print(format_table(
            ["failed links", "slowdown", "reroutes", "stranded B"], rows,
            title=f"Worst-case {adv.k}-link failure on {args.topology} "
                  f"({adv.mode} over {args.candidates} candidates, "
                  f"at t={adv.at_seconds:.6f}s)"))
        worst = "|".join(f"{u}~{v}" for u, v in adv.worst_links)
        worst_label = ("disconnects the schedule" if adv.worst_stranded
                       else f"slowdown {adv.worst_slowdown:.4f}")
        print(f"worst case: down={worst} -> {worst_label}")

    totals = sweep_stats(results) if results else None
    extra = (f"faults: {totals['ok']} ok / {totals['errors']} error "
             f"({totals['resumed']} resumed)" if totals else "")
    _print_engine_stats(extra)
    return 1 if failures else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    base = {}
    axes = {}
    if args.grid:
        grid = SweepGrid.from_file(args.grid)
        base, axes = dict(grid.base), dict(grid.axes)
    _apply_set_args(args.set, base)
    for item in args.axis or []:
        if "=" not in item:
            raise ValueError(f"malformed --axis {item!r} (expected field=v1;v2;...)")
        key, values = item.split("=", 1)
        # ';' separates axis values because topology specs contain commas.
        axes[key.strip()] = [v for v in values.split(";") if v]
    if not base and not axes:
        raise ValueError("empty sweep: provide --grid and/or --set/--axis fields")
    grid = SweepGrid(base=base, axes=axes)
    scenarios = grid.scenarios()

    try:
        results = run_sweep(scenarios, out_path=args.out, jobs=args.jobs,
                            resume=args.resume, n_jobs=args.lp_jobs,
                            workers=args.workers)
    except RuntimeError as exc:
        # A died worker: partial results are merged and resumable; surface
        # the message and the standard nonzero exit instead of a traceback.
        print(f"error: {exc}")
        return 1

    rows = []
    failures = []
    for res in results:
        if res.status == "error":
            rows.append([res.scenario.label(), "error", "-", "-", "-"])
            failures.append((res.scenario.label(), res.error or "unknown error"))
            continue
        tps = res.metrics.get("throughput_bytes_per_s") or {}
        flow = res.metrics.get("concurrent_flow")
        rows.append([
            res.scenario.label(),
            "resumed" if res.resumed else "ok",
            "-" if flow is None else round(float(flow), 4),
            "-" if res.metrics.get("all_to_all_time") is None
            else round(float(res.metrics["all_to_all_time"]), 3),
            " ".join(f"{tp / 1e9:.2f}" for tp in tps.values()) or "-",
        ])
    print(format_table(["scenario", "status", "F", "all-to-all time", "throughput GB/s"],
                       rows, title=f"Sweep: {len(scenarios)} scenario(s)"))
    for label, message in failures:
        print(f"error: {label}: {message}")
    if args.csv:
        write_csv(results, args.csv)
        print(f"wrote CSV to {args.csv}")
    if args.out:
        print(f"streaming results in {args.out}")

    exec_stats = last_executor_stats() if args.workers > 1 else None
    totals = sweep_stats(results, executor=exec_stats)
    _print_engine_stats(
        f"scenarios: {totals['ok']} ok / {totals['errors']} error "
        f"({totals['resumed']} resumed); "
        f"assemble {totals['assemble_seconds']:.3f}s solve {totals['solve_seconds']:.3f}s",
        executor_stats=exec_stats.to_dict() if exec_stats else None)
    return 1 if totals["errors"] else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .report import available_specs, describe_registry, generate_report

    if args.list:
        print(describe_registry())
        return 0
    only = None
    if args.only is not None:
        only = [spec_id.strip() for spec_id in args.only.split(",") if spec_id.strip()]
        if not only:
            raise ValueError(f"--only {args.only!r} names no artifacts; "
                             f"available: {', '.join(available_specs())}")
        unknown = sorted(set(only) - set(available_specs()))
        if unknown:
            raise ValueError(f"unknown artifact(s) {unknown}; "
                             f"available: {', '.join(available_specs())}")
    summary = generate_report(out_dir=args.out, only=only, fast=args.fast,
                              jobs=args.jobs, n_jobs=args.lp_jobs,
                              resume=args.resume, workers=args.workers)
    rows = [[sr.spec_id, sr.kind, sr.status, round(sr.seconds, 3),
             sr.num_scenarios, sr.num_resumed]
            for sr in summary.spec_results]
    print(format_table(["artifact", "kind", "status", "seconds", "scenarios",
                        "resumed"], rows,
                       title=f"Report: {len(summary.spec_results)} artifact(s)"))
    for err in summary.errors:
        print(f"error: {err}")
    print(f"wrote {summary.index_path}"
          + (" (+ index.html)" if len(summary.index_files) > 1 else ""))
    exec_stats = last_executor_stats() if args.workers > 1 else None
    _print_engine_stats(
        f"artifacts: {sum(1 for sr in summary.spec_results if sr.status == 'ok')} ok "
        f"/ {sum(1 for sr in summary.spec_results if sr.status == 'error')} error; "
        f"new LP solves: {summary.provenance.get('new_lp_solves', 0)}",
        executor_stats=exec_stats.to_dict() if exec_stats else None)
    return 1 if summary.errors else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="All-to-all collective schedule synthesis for direct-connect topologies")
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_topo = sub.add_parser("topology", help="print properties of a topology spec")
    p_topo.add_argument("topology", help="topology spec, e.g. genkautz:d=4,n=24")
    p_topo.set_defaults(func=_cmd_topology)

    p_syn = sub.add_parser("synthesize", help="synthesise a schedule and emit XML")
    p_syn.add_argument("topology")
    p_syn.add_argument("--fabric", default="hpc",
                       help="fabric spec: hpc, ml, ideal, optionally with "
                            "params, e.g. hpc:forwarding_gbps=100")
    p_syn.add_argument("--host-bandwidth", type=float, default=None,
                       help="host injection bandwidth in link units (triggers Fig. 2 augmentation)")
    p_syn.add_argument("--output", "-o", default=None, help="write the lowered XML here")
    p_syn.add_argument("--jobs", type=int, default=1, help="parallel child-LP workers")
    p_syn.set_defaults(func=_cmd_synthesize)

    p_sim = sub.add_parser(
        "simulate",
        help="simulate one scenario on the unified fluid engine",
        description="Run one declarative scenario through the staged Plan "
                    "pipeline and print its throughput series.  Supports the "
                    "overlap axis (--overlap N copies sharing the fabric), "
                    "degraded fabrics on the fabric spec, e.g. "
                    "--fabric 'hpc:down=0~1' or 'hpc:scale=0~1:0.5', and "
                    "dynamic failures via --faults "
                    "'faults:down=0~1@0.5ms:up@1.2ms'.  With --out, appends "
                    "one sweep-compatible JSONL record.")
    p_sim.add_argument("topology", nargs="?", default=None,
                       help="topology spec (or use --set topology=...)")
    p_sim.add_argument("--fabric", default="hpc",
                       help="fabric spec, e.g. hpc, ml:link_gbps=50, hpc:down=0~1")
    p_sim.add_argument("--scheme", default="mcf-extp",
                       help=f"scheme name from: {', '.join(available_scenario_schemes())}")
    p_sim.add_argument("--buffers", default="1048576,16777216,268435456",
                       help="comma-separated per-node buffer sizes in bytes")
    p_sim.add_argument("--overlap", type=int, default=1,
                       help="concurrent copies of the collective sharing the fabric")
    p_sim.add_argument("--faults", default=None, metavar="SPEC",
                       help="timed fabric-event spec for dynamic failures, "
                            "e.g. 'faults:down=0~1@0.5ms:up@1.2ms' "
                            "(see docs/robustness.md)")
    p_sim.add_argument("--set", action="append", metavar="FIELD=VALUE",
                       help="set any scenario field (repeatable), "
                            "e.g. --set max_denominator=16")
    p_sim.add_argument("--out", "-o", default=None,
                       help="append one sweep JSONL record here")
    p_sim.add_argument("--resume", action="store_true",
                       help="skip the run if --out already has an ok record for it")
    p_sim.add_argument("--kernel", default=None,
                       choices=["auto", "numba", "numpy", "python-csr"],
                       help="fill kernel (default: REPRO_KERNEL env or auto; "
                            "numba falls back to numpy when not installed)")
    p_sim.add_argument("--jobs", type=int, default=1,
                       help="parallel child-LP workers for the decomposed MCF")
    p_sim.set_defaults(func=_cmd_simulate)

    p_cmp = sub.add_parser("compare", help="compare schemes on a topology")
    p_cmp.add_argument("topology")
    p_cmp.add_argument("--schemes", default=None,
                       help=f"comma-separated scheme names from: {', '.join(available_schemes())}")
    p_cmp.add_argument("--buffers", default=None)
    p_cmp.add_argument("--fabric", default="hpc")
    p_cmp.add_argument("--jobs", type=int, default=1,
                       help="schemes evaluated concurrently (output is identical to serial)")
    p_cmp.set_defaults(func=_cmd_compare)

    p_clu = sub.add_parser(
        "cluster",
        help="co-simulate multi-job cluster traces on one fabric",
        description="Run one or more cluster trace specs "
                    "(cluster:jobs=4:arrival=poisson~2000:placement=packed) "
                    "over a synthesized schedule, with every live job's comm "
                    "phases max-min fair sharing the fabric.  Emits "
                    "sweep-compatible JSONL via --out; see docs/cluster.md "
                    "for the trace grammar and metric definitions.")
    p_clu.add_argument("topology", help="topology spec, e.g. hypercube:dim=3")
    p_clu.add_argument("--trace", action="append", metavar="SPEC",
                       help="cluster trace spec (repeatable; one scenario "
                            "each); default: a 4-job Poisson/packed trace")
    p_clu.add_argument("--scheme", default="mcf-extp",
                       help="path-based scheme name (link-based schemes like "
                            "tsmcf cannot interleave jobs)")
    p_clu.add_argument("--fabric", default="hpc",
                       help="fabric spec, e.g. hpc, ml, hpc:scale=0~1:0.5")
    p_clu.add_argument("--buffer", type=float, default=float(2**20),
                       help="per-node all-to-all buffer bytes (used when a "
                            "trace has no buffer= field)")
    p_clu.add_argument("--set", action="append", metavar="FIELD=VALUE",
                       help="set any scenario field (repeatable), "
                            "e.g. --set max_denominator=16")
    p_clu.add_argument("--out", "-o", default=None,
                       help="JSONL results file (appended to, one record per trace)")
    p_clu.add_argument("--resume", action="store_true",
                       help="skip traces whose key already has an ok record in --out")
    p_clu.add_argument("--jobs", type=int, default=1,
                       help="traces executed concurrently (threads)")
    p_clu.add_argument("--workers", type=int, default=1,
                       help="work-stealing worker processes (as in repro sweep)")
    p_clu.add_argument("--lp-jobs", type=int, default=1,
                       help="child-LP workers within each scenario")
    p_clu.set_defaults(func=_cmd_cluster)

    p_rob = sub.add_parser(
        "robustness",
        help="evaluate schedule robustness under dynamic fabric failures",
        description="Run fault-injection scenarios "
                    "(faults:down=0~1@0.5ms:up@1.2ms) over a synthesized "
                    "schedule with online rerouting, and/or search the "
                    "worst-case k-link failure set (--adversarial K).  "
                    "Emits sweep-compatible JSONL via --out; see "
                    "docs/robustness.md for the fault grammar.")
    p_rob.add_argument("topology", help="topology spec, e.g. hypercube:dim=3")
    p_rob.add_argument("--faults", action="append", metavar="SPEC",
                       help="fault spec (repeatable; one scenario each), "
                            "e.g. 'faults:down=0~1@0.2ms:up@1ms:seed=7'")
    p_rob.add_argument("--adversarial", type=int, default=None, metavar="K",
                       help="also search the worst-case K-physical-link "
                            "failure set against the schedule")
    p_rob.add_argument("--scheme", default="mcf-extp",
                       help="path-based scheme name (link-based schemes "
                            "cannot be rerouted mid-step)")
    p_rob.add_argument("--fabric", default="hpc",
                       help="fabric spec, e.g. hpc, ml, hpc:scale=0~1:0.5")
    p_rob.add_argument("--buffer", type=float, default=float(2**20),
                       help="per-node all-to-all buffer bytes")
    p_rob.add_argument("--at", type=float, default=0.5,
                       help="adversarial failure instant as a fraction of "
                            "the zero-fault completion time (0 < at < 1)")
    p_rob.add_argument("--candidates", type=int, default=12,
                       help="adversarial candidate pool: heaviest-loaded "
                            "physical links considered")
    p_rob.add_argument("--mode", default="auto",
                       choices=["auto", "exhaustive", "greedy"],
                       help="adversarial search strategy (auto: exhaustive "
                            "while the subset count stays small)")
    p_rob.add_argument("--seed", type=int, default=0,
                       help="seed recorded with the adversarial search")
    p_rob.add_argument("--set", action="append", metavar="FIELD=VALUE",
                       help="set any scenario field (repeatable)")
    p_rob.add_argument("--out", "-o", default=None,
                       help="JSONL results file (appended to, one record "
                            "per fault spec)")
    p_rob.add_argument("--resume", action="store_true",
                       help="skip fault specs whose key already has an ok "
                            "record in --out")
    p_rob.add_argument("--jobs", type=int, default=1,
                       help="fault scenarios (and adversarial candidate "
                            "evaluations) executed concurrently (threads)")
    p_rob.add_argument("--lp-jobs", type=int, default=1,
                       help="child-LP workers within each scenario")
    p_rob.set_defaults(func=_cmd_robustness)

    p_swp = sub.add_parser(
        "sweep",
        help="run a declarative scenario grid with streaming JSONL results",
        description="Expand a scenario grid (base fields x axes) and execute "
                    "every scenario through the staged Plan pipeline.  One "
                    "JSONL record is appended per completed scenario, so a "
                    "killed sweep is resumable with --resume.  Scheme names: "
                    + ", ".join(available_scenario_schemes()))
    p_swp.add_argument("--grid", default=None,
                       help='JSON grid spec file: {"base": {...}, "axes": {...}}')
    p_swp.add_argument("--set", action="append", metavar="FIELD=VALUE",
                       help="fix a scenario field (repeatable); "
                            "e.g. --set fabric=ml --set buffers='1048576 16777216'")
    p_swp.add_argument("--axis", action="append", metavar="FIELD=V1;V2",
                       help="sweep a scenario field over ';'-separated values "
                            "(repeatable; ';' because topology specs contain "
                            "commas), e.g. --axis 'scheme=mcf-extp;ewsp'")
    p_swp.add_argument("--out", "-o", default=None,
                       help="JSONL results file (appended to, one record per scenario)")
    p_swp.add_argument("--csv", default=None, help="also write a flat CSV here")
    p_swp.add_argument("--workers", type=int, default=1,
                       help="work-stealing worker processes (per-worker "
                            "resumable shards + shared artifact plane); "
                            "1 keeps the in-process path")
    p_swp.add_argument("--jobs", type=int, default=1,
                       help="scenarios executed concurrently")
    p_swp.add_argument("--lp-jobs", type=int, default=1,
                       help="child-LP workers within each scenario")
    p_swp.add_argument("--resume", action="store_true",
                       help="skip scenarios whose key already has an ok record in --out")
    p_swp.set_defaults(func=_cmd_sweep)

    p_rep = sub.add_parser(
        "report",
        help="regenerate the paper's figures/tables as a provenance-stamped report",
        description="Run registered artifact specs (fig3, fig4, fig7, fig10, "
                    "table1, ...) through the scenario sweep pipeline and "
                    "render report/index.md with figures (matplotlib when "
                    "available, CSV/Markdown always), per-artifact timings, "
                    "git SHA and cache counters.")
    p_rep.add_argument("--only", default=None,
                       help="comma-separated artifact ids (default: all), "
                            "e.g. --only fig3,table1")
    p_rep.add_argument("--fast", action="store_true",
                       help="reduced grids sized for CI smoke runs")
    p_rep.add_argument("--out", "-o", default="report",
                       help="report output directory (default: report/)")
    p_rep.add_argument("--workers", type=int, default=1,
                       help="work-stealing worker processes per artifact "
                            "sweep (1 keeps the in-process path)")
    p_rep.add_argument("--jobs", type=int, default=1,
                       help="scenarios executed concurrently")
    p_rep.add_argument("--lp-jobs", type=int, default=1,
                       help="child-LP workers within each scenario")
    p_rep.add_argument("--resume", action="store_true",
                       help="reuse completed records from a previous run's "
                            "data/*.jsonl instead of starting fresh")
    p_rep.add_argument("--list", action="store_true",
                       help="list registered artifacts and exit")
    p_rep.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
