"""Command-line interface for schedule synthesis, simulation and comparison.

Mirrors the tool chain a user of the paper's system would drive:

* ``repro topology``    -- build a topology from a spec and print its properties;
* ``repro synthesize``  -- synthesise an all-to-all schedule (Fig. 1 pipeline)
  and optionally write the lowered XML;
* ``repro simulate``    -- run a synthesised schedule on the simulated fabric
  across a buffer sweep and print the throughput series;
* ``repro compare``     -- compare several schemes on one topology (Fig. 8 style).

Topology specs are compact strings such as ``genkautz:d=4,n=24``,
``torus:dims=3x3x3``, ``hypercube:dim=3``, ``bipartite:left=4,right=4``,
``xpander:d=4,lift=5``, ``rrg:d=4,n=20,seed=1``.

Run ``python -m repro.cli --help`` for the full usage.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from .analysis import format_table
from .analysis.sweep import available_schemes, compare_schemes
from .core import (
    ForwardingModel,
    SchedulingRequest,
    generate_schedule,
    solve_mcf_extract_paths,
)
from .core.mcf_path import PathSchedule
from .core.mcf_timestepped import TimeSteppedFlow
from .routing import lash_sequential_assign
from .schedule import (
    chunk_path_schedule,
    chunk_timestepped_flow,
    compile_to_msccl_xml,
    compile_to_ompi_xml,
)
from .simulator import a100_ml_fabric, cerio_hpc_fabric, throughput_sweep
from .topology import (
    Topology,
    complete_bipartite,
    generalized_kautz,
    hypercube,
    properties,
    random_regular,
    torus,
    twisted_hypercube,
    xpander,
)

__all__ = ["build_topology", "main"]


def _parse_kv(spec: str) -> Dict[str, str]:
    out: Dict[str, str] = {}
    if not spec:
        return out
    for item in spec.split(","):
        if not item:
            continue
        if "=" not in item:
            raise ValueError(f"malformed topology parameter {item!r} (expected key=value)")
        key, value = item.split("=", 1)
        out[key.strip()] = value.strip()
    return out


def build_topology(spec: str) -> Topology:
    """Build a topology from a ``family:key=value,...`` spec string."""
    if ":" in spec:
        family, rest = spec.split(":", 1)
    else:
        family, rest = spec, ""
    family = family.strip().lower()
    params = _parse_kv(rest)

    if family in ("genkautz", "kautz"):
        return generalized_kautz(int(params.get("d", 4)), int(params.get("n", 16)))
    if family == "hypercube":
        return hypercube(int(params.get("dim", 3)))
    if family in ("twisted", "twisted-hypercube"):
        return twisted_hypercube(int(params.get("dim", 3)))
    if family == "bipartite":
        left = int(params.get("left", 4))
        right = int(params.get("right", left))
        return complete_bipartite(left, right)
    if family in ("torus", "mesh"):
        dims = [int(x) for x in params.get("dims", "3x3").split("x")]
        return torus(dims, wrap=(family == "torus"))
    if family == "xpander":
        return xpander(int(params.get("d", 4)), int(params.get("lift", 4)),
                       seed=int(params.get("seed", 0)))
    if family in ("rrg", "random-regular", "jellyfish"):
        return random_regular(int(params.get("d", 4)), int(params.get("n", 16)),
                              seed=int(params.get("seed", 0)))
    raise ValueError(f"unknown topology family {family!r}")


def _fabric(name: str):
    if name == "hpc":
        return cerio_hpc_fabric()
    if name == "ml":
        return a100_ml_fabric()
    raise ValueError(f"unknown fabric {name!r} (expected 'hpc' or 'ml')")


def _buffer_list(spec: str) -> List[float]:
    return [float(int(x)) for x in spec.split(",") if x]


# --------------------------------------------------------------------------- #
# Sub-commands
# --------------------------------------------------------------------------- #
def _cmd_topology(args: argparse.Namespace) -> int:
    topo = build_topology(args.topology)
    stats = properties.summary(topo)
    rows = [[key, value] for key, value in stats.items()]
    print(format_table(["property", "value"], rows, title=f"{topo.name} (N={topo.num_nodes})"))
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    topo = build_topology(args.topology)
    request = SchedulingRequest(
        forwarding=ForwardingModel.NIC if args.fabric == "hpc" else ForwardingModel.HOST,
        host_bandwidth=args.host_bandwidth,
        n_jobs=args.jobs,
    )
    schedule = generate_schedule(topo, request)
    if isinstance(schedule, TimeSteppedFlow):
        link_schedule = chunk_timestepped_flow(schedule)
        xml = compile_to_msccl_xml(link_schedule)
        print(f"tsMCF schedule: {schedule.num_steps} steps, "
              f"total utilization {schedule.total_utilization:.3f} "
              f"(equivalent F = {schedule.equivalent_concurrent_flow():.4f})")
    elif isinstance(schedule, PathSchedule):
        routes = [tuple(p.nodes) for plist in schedule.paths.values() for p in plist]
        layers = lash_sequential_assign(routes)
        routed = chunk_path_schedule(schedule, layers=layers.layer_of)
        xml = compile_to_ompi_xml(routed)
        print(f"path schedule ({schedule.meta.get('pipeline', 'pmcf')}): "
              f"F = {schedule.concurrent_flow:.4f}, "
              f"{len(routed.assignments)} chunk assignments, "
              f"{layers.num_layers} VC layer(s)")
    else:  # pragma: no cover - defensive
        raise TypeError(f"unexpected schedule type {type(schedule)!r}")
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(xml)
        print(f"wrote {len(xml)} bytes of XML to {args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    topo = build_topology(args.topology)
    fabric = _fabric(args.fabric)
    schedule = solve_mcf_extract_paths(topo, n_jobs=args.jobs)
    routed = chunk_path_schedule(schedule)
    buffers = _buffer_list(args.buffers)
    results = throughput_sweep(routed, buffers, fabric=fabric)
    rows = [[int(r.buffer_bytes), r.completion_time, r.throughput / 1e9] for r in results]
    print(format_table(["buffer bytes", "time (s)", "throughput GB/s"], rows,
                       title=f"MCF-extP all-to-all on {topo.name} ({args.fabric} fabric)"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    topo = build_topology(args.topology)
    schemes = args.schemes.split(",") if args.schemes else ["mcf-extp", "ewsp", "sssp", "native"]
    buffers = _buffer_list(args.buffers) if args.buffers else None
    results = compare_schemes(topo, schemes, buffer_sizes=buffers, fabric=_fabric(args.fabric),
                              jobs=args.jobs)
    rows = []
    for r in results:
        if r.error:
            rows.append([r.scheme, "error", "-", r.error[:40]])
            continue
        rows.append([r.scheme, r.all_to_all_time,
                     "-" if r.normalized_time is None else round(r.normalized_time, 3),
                     " ".join(f"{tp / 1e9:.2f}" for tp in r.throughputs.values()) or "-"])
    print(format_table(["scheme", "all-to-all time", "vs MCF", "throughput GB/s"],
                       rows, title=f"Scheme comparison on {topo.name}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="All-to-all collective schedule synthesis for direct-connect topologies")
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_topo = sub.add_parser("topology", help="print properties of a topology spec")
    p_topo.add_argument("topology", help="topology spec, e.g. genkautz:d=4,n=24")
    p_topo.set_defaults(func=_cmd_topology)

    p_syn = sub.add_parser("synthesize", help="synthesise a schedule and emit XML")
    p_syn.add_argument("topology")
    p_syn.add_argument("--fabric", choices=["hpc", "ml"], default="hpc")
    p_syn.add_argument("--host-bandwidth", type=float, default=None,
                       help="host injection bandwidth in link units (triggers Fig. 2 augmentation)")
    p_syn.add_argument("--output", "-o", default=None, help="write the lowered XML here")
    p_syn.add_argument("--jobs", type=int, default=1, help="parallel child-LP workers")
    p_syn.set_defaults(func=_cmd_synthesize)

    p_sim = sub.add_parser("simulate", help="simulate the MCF-extP schedule on a fabric")
    p_sim.add_argument("topology")
    p_sim.add_argument("--fabric", choices=["hpc", "ml"], default="hpc")
    p_sim.add_argument("--buffers", default="1048576,16777216,268435456",
                       help="comma-separated per-node buffer sizes in bytes")
    p_sim.add_argument("--jobs", type=int, default=1,
                       help="parallel child-LP workers for the decomposed MCF")
    p_sim.set_defaults(func=_cmd_simulate)

    p_cmp = sub.add_parser("compare", help="compare schemes on a topology")
    p_cmp.add_argument("topology")
    p_cmp.add_argument("--schemes", default=None,
                       help=f"comma-separated scheme names from: {', '.join(available_schemes())}")
    p_cmp.add_argument("--buffers", default=None)
    p_cmp.add_argument("--fabric", choices=["hpc", "ml"], default="hpc")
    p_cmp.add_argument("--jobs", type=int, default=1,
                       help="schemes evaluated concurrently (output is identical to serial)")
    p_cmp.set_defaults(func=_cmd_compare)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
