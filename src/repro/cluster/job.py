"""Job and phase model for cluster co-simulation.

A :class:`Job` is an ordered sequence of phases executed after its arrival
time, with an implicit barrier between consecutive phases: a
:class:`ComputePhase` cannot start before the preceding comm phase's last
byte (including start-up latency) has landed, and a :class:`CommPhase`
cannot inject flows before the preceding compute finishes.  This mirrors
the bulk-synchronous structure of data-parallel training steps
(compute → all-to-all → compute → ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from .trace import ClusterSpec, arrival_times

__all__ = ["ComputePhase", "CommPhase", "Job", "jobs_from_spec"]


@dataclass(frozen=True)
class ComputePhase:
    """A compute phase: the job holds its nodes for ``seconds``, no traffic."""

    seconds: float


@dataclass(frozen=True)
class CommPhase:
    """An all-to-all communication phase over ``buffer_bytes`` per node."""

    buffer_bytes: float


Phase = Union[ComputePhase, CommPhase]


@dataclass(frozen=True)
class Job:
    """One job: ``phases`` run in order after ``arrival``, barrier-separated."""

    job_id: int
    arrival: float
    phases: Tuple[Phase, ...]
    name: str = ""


def jobs_from_spec(spec: ClusterSpec,
                   default_buffer: Optional[float] = None) -> List[Job]:
    """Expand a :class:`~repro.cluster.trace.ClusterSpec` into concrete jobs.

    Each job runs ``spec.rounds`` rounds of ``ComputePhase(spec.compute)``
    followed by ``CommPhase(buffer)``; the buffer comes from the spec's
    ``buffer=`` field, falling back to ``default_buffer`` (typically the
    scenario's first ``buffers`` entry).
    """
    buffer = spec.buffer if spec.buffer is not None else default_buffer
    if buffer is None:
        raise ValueError(
            "cluster spec has no buffer= field and no scenario buffer to "
            "fall back on; set buffer= in the trace spec or give the "
            "scenario a non-empty buffers tuple")
    times = arrival_times(spec)
    jobs: List[Job] = []
    for job_id, arrival in enumerate(times):
        phases: List[Phase] = []
        for _ in range(spec.rounds):
            phases.append(ComputePhase(float(spec.compute)))
            phases.append(CommPhase(float(buffer)))
        jobs.append(Job(job_id=job_id, arrival=float(arrival),
                        phases=tuple(phases), name=f"job{job_id}"))
    return jobs
