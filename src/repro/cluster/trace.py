"""Cluster trace specifications: grammar, parsing and arrival processes.

A *trace spec* is a compact string describing a multi-job workload::

    cluster:jobs=8:arrival=poisson~200:placement=packed:seed=0

Fields are ``key=value`` pairs, ``:``-separated, in any order after the
``cluster`` prefix; ``~`` attaches a parameter to a value:

- ``jobs=N`` — number of jobs (required, >= 1);
- ``arrival=fixed~DT`` — job *j* arrives at ``j * DT`` seconds;
  ``arrival=poisson~RATE`` — Poisson process with ``RATE`` arrivals/second,
  drawn from a ``seed``-keyed RNG; ``arrival=trace~T0|T1|...`` — explicit
  non-decreasing arrival times (exactly ``jobs`` values);
- ``placement=packed|spread|random`` — how each job's logical nodes map
  onto physical topology nodes (see :mod:`.placement`);
- ``seed=S`` — RNG seed for Poisson arrivals and random placement;
- ``rounds=K`` — compute+comm rounds per job;
- ``compute=SEC`` — seconds of compute before each comm phase;
- ``buffer=BYTES`` — per-node all-to-all buffer per comm phase (defaults
  to the scenario's first ``buffers`` entry when omitted).

Defaults: ``arrival=fixed~0`` (every job at t=0), ``placement=packed``,
``seed=0``, ``rounds=1``, ``compute=0``.  Parsing is strict — unknown or
duplicate keys raise ``ValueError`` — and :meth:`ClusterSpec.canonical` is
parameter-order invariant, so equivalent spellings hash identically in the
scenario layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["ClusterSpec", "parse_cluster_spec", "arrival_times",
           "PLACEMENT_POLICIES"]

PLACEMENT_POLICIES = ("packed", "spread", "random")

_KNOWN_KEYS = frozenset(
    {"jobs", "arrival", "placement", "seed", "rounds", "compute", "buffer"})


@dataclass(frozen=True)
class ClusterSpec:
    """A parsed cluster trace: job count, arrival process, placement, knobs.

    ``rate`` is the arrival parameter — arrivals/second for ``poisson``,
    inter-arrival seconds for ``fixed``, unused (0.0) for ``trace`` where
    ``times`` carries the explicit arrival instants instead.
    """

    jobs: int
    arrival: str                      # "fixed" | "poisson" | "trace"
    rate: float
    times: Tuple[float, ...]
    placement: str
    seed: int
    rounds: int
    compute: float
    buffer: Optional[float]

    def canonical(self) -> Tuple[object, ...]:
        """Parameter-order-invariant tuple used for scenario content hashing."""
        return ("cluster", self.jobs, self.arrival, float(self.rate),
                tuple(float(t) for t in self.times), self.placement,
                self.seed, self.rounds, float(self.compute),
                None if self.buffer is None else float(self.buffer))


def parse_cluster_spec(spec: str) -> ClusterSpec:
    """Parse a ``cluster:...`` trace spec string into a :class:`ClusterSpec`."""
    text = str(spec).strip()
    parts = text.split(":")
    if parts[0].strip().lower() != "cluster":
        raise ValueError(
            f"cluster spec must start with 'cluster:', got {spec!r}")
    fields = {}
    for part in parts[1:]:
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"cluster spec field {part!r} is not key=value (in {spec!r})")
        key, value = part.split("=", 1)
        key = key.strip().lower()
        if key in fields:
            raise ValueError(f"duplicate cluster spec key {key!r} in {spec!r}")
        fields[key] = value.strip()
    unknown = sorted(set(fields) - _KNOWN_KEYS)
    if unknown:
        raise ValueError(
            f"unknown cluster spec key(s) {unknown} in {spec!r}; "
            f"known keys: {sorted(_KNOWN_KEYS)}")
    if "jobs" not in fields:
        raise ValueError(f"cluster spec needs jobs=N (got {spec!r})")
    jobs = int(fields["jobs"])
    if jobs < 1:
        raise ValueError(f"cluster spec needs jobs >= 1, got {jobs}")

    arrival_text = fields.get("arrival", "fixed~0")
    kind, _, param = arrival_text.partition("~")
    kind = kind.strip().lower()
    times: Tuple[float, ...] = ()
    rate = 0.0
    if kind == "fixed":
        rate = float(param) if param else 0.0
        if rate < 0:
            raise ValueError(f"fixed inter-arrival must be >= 0, got {rate}")
    elif kind == "poisson":
        if not param:
            raise ValueError(
                "poisson arrivals need a rate: arrival=poisson~RATE")
        rate = float(param)
        if rate <= 0:
            raise ValueError(f"poisson rate must be > 0, got {rate}")
    elif kind == "trace":
        if not param:
            raise ValueError(
                "trace arrivals need times: arrival=trace~T0|T1|...")
        times = tuple(float(t) for t in param.split("|"))
        if len(times) != jobs:
            raise ValueError(
                f"trace lists {len(times)} arrival times for jobs={jobs}")
        if any(t < 0 for t in times):
            raise ValueError("trace arrival times must be >= 0")
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("trace arrival times must be non-decreasing")
    else:
        raise ValueError(
            f"unknown arrival process {kind!r}; "
            "expected fixed~DT, poisson~RATE or trace~T0|T1|...")

    placement = fields.get("placement", "packed").lower()
    if placement not in PLACEMENT_POLICIES:
        raise ValueError(
            f"unknown placement {placement!r}; expected one of "
            f"{PLACEMENT_POLICIES}")
    seed = int(fields.get("seed", "0"))
    rounds = int(fields.get("rounds", "1"))
    if rounds < 1:
        raise ValueError(f"cluster spec needs rounds >= 1, got {rounds}")
    compute = float(fields.get("compute", "0"))
    if compute < 0:
        raise ValueError(f"compute seconds must be >= 0, got {compute}")
    buffer = None
    if "buffer" in fields:
        buffer = float(fields["buffer"])
        if buffer <= 0:
            raise ValueError(f"buffer bytes must be > 0, got {buffer}")

    return ClusterSpec(jobs=jobs, arrival=kind, rate=rate, times=times,
                       placement=placement, seed=seed, rounds=rounds,
                       compute=compute, buffer=buffer)


def arrival_times(spec: ClusterSpec) -> Tuple[float, ...]:
    """Arrival instant of every job, deterministically from the spec.

    ``fixed`` spaces jobs ``rate`` seconds apart starting at 0; ``poisson``
    accumulates seeded exponential inter-arrivals (same seed → identical
    times on every run); ``trace`` returns the explicit times verbatim.
    """
    if spec.arrival == "trace":
        return spec.times
    if spec.arrival == "fixed":
        return tuple(j * spec.rate for j in range(spec.jobs))
    rng = random.Random(spec.seed)
    now = 0.0
    out = []
    for _ in range(spec.jobs):
        now += rng.expovariate(spec.rate)
        out.append(now)
    return tuple(out)
