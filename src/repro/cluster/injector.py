"""Flow injection into a live fluid program between saturation rounds.

The single-collective engine compiles one :class:`~repro.simulator.engine.
FlowProgram` and runs it to completion.  Cluster co-simulation needs the
opposite: flow *sets* appear when a job's comm phase starts and retire when
it drains, while the survivors keep max-min fair sharing the same fabric.
:class:`FlowInjector` owns that live program — it compiles each injected
batch with the engine's own :func:`~repro.simulator.engine.compile_flows`
(so degraded fabrics, injection and forwarding caps behave identically)
and concatenates the sparse incidence onto the live arrays.  Rates always
come from the engine's :func:`~repro.simulator.engine.fill_rates`, which is
why the zero-contention limit reproduces single-collective runs exactly.

Retirement is lazy, the same delta move :mod:`repro.perf.delta` makes for
fabric epochs: a completed flow is only *deactivated* (its row leaves the
fill mask, so the kernels pin its rate to zero) and the arrays are
compacted wholesale only once dead rows outnumber live ones — turning the
per-completion O(nnz) rebuild into an amortized one.  ``compactions``
counts the sweeps.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..constants import SIM_BYTES_EPS
from ..perf.fillkernel import FillWorkspace
from ..simulator.engine import FlowProgram, FluidFlow, compile_flows, fill_rates
from ..simulator.fabric import FabricModel
from ..topology.base import Topology

__all__ = ["FlowInjector"]


class FlowInjector:
    """A live, mutable flow program over one fabric: inject, fill, retire."""

    def __init__(self, topology: Topology,
                 fabric: Optional[FabricModel] = None) -> None:
        """Compile the (empty) resource layout once for ``topology``/``fabric``."""
        self.topology = topology
        self.fabric = fabric or FabricModel()
        base = compile_flows(topology, [], self.fabric)
        self.res_cap = base.res_cap
        self.num_links = len(topology.edges)
        self.link_bytes = 0.0           # total bytes x links-crossed injected
        self._sizes = np.zeros(0)
        self._remaining = np.zeros(0)
        self._delays = np.zeros(0)
        self._set_ids = np.zeros(0, dtype=np.int64)
        self._inc_res = np.zeros(0, dtype=np.int64)
        self._inc_flow = np.zeros(0, dtype=np.int64)
        self._live = np.zeros(0, dtype=bool)
        self._live_count = 0
        self.compactions = 0
        self._set_names: List[str] = []
        self._program: Optional[FlowProgram] = None
        self._workspace: Optional[FillWorkspace] = None

    @property
    def num_flows(self) -> int:
        """Number of live (not yet retired) flows.

        Dead rows may still sit in the arrays until the next lazy
        compaction; they are invisible here and carry zero rate in fills.
        """
        return self._live_count

    @property
    def remaining(self) -> np.ndarray:
        """Bytes left to transfer per live flow (parallel to fill rates)."""
        return self._remaining

    @property
    def link_capacity_total(self) -> float:
        """Sum of all directed-link capacities in bytes/second."""
        return float(self.res_cap[: self.num_links].sum())

    def inject(self, flows: Sequence[FluidFlow], name: str) -> int:
        """Add a flow set to the live program; returns its set id.

        The batch is compiled with the engine's ``compile_flows`` (same
        resource layout as the base compile by construction) and its
        incidence concatenated onto the live arrays with the flow indices
        offset past the current flows.
        """
        compiled = compile_flows(self.topology, flows, self.fabric)
        set_id = len(self._set_names)
        self._set_names.append(name)
        offset = len(self._sizes)
        self._inc_res = np.concatenate([self._inc_res, compiled.inc_res])
        self._inc_flow = np.concatenate(
            [self._inc_flow, compiled.inc_flow + offset])
        self._sizes = np.concatenate([self._sizes, compiled.sizes])
        self._remaining = np.concatenate(
            [self._remaining, compiled.sizes.copy()])
        self._delays = np.concatenate([self._delays, compiled.start_delays])
        self._set_ids = np.concatenate(
            [self._set_ids,
             np.full(len(flows), set_id, dtype=np.int64)])
        self._live = np.concatenate(
            [self._live, np.ones(len(flows), dtype=bool)])
        self._live_count += len(flows)
        link_entries = compiled.inc_res < self.num_links
        self.link_bytes += float(
            compiled.sizes[compiled.inc_flow[link_entries]].sum())
        self._invalidate()
        return set_id

    def _invalidate(self) -> None:
        """Drop the cached program/workspace after the flow set changed."""
        self._program = None
        self._workspace = None

    def program(self) -> FlowProgram:
        """A :class:`FlowProgram` view over the current live arrays.

        Cached until :meth:`inject` / :meth:`retire` change the flow set,
        so back-to-back fills between topology-of-flows changes skip the
        rebuild (and keep one :class:`FillWorkspace` warm).
        """
        if self._program is None:
            self._program = FlowProgram(
                num_flows=len(self._sizes),
                sizes=self._sizes,
                start_delays=self._delays,
                set_ids=self._set_ids,
                set_names=tuple(self._set_names),
                res_cap=self.res_cap,
                inc_res=self._inc_res,
                inc_flow=self._inc_flow,
            )
        return self._program

    def workspace(self) -> FillWorkspace:
        """The reusable fill workspace for the current program."""
        if self._workspace is None:
            self._workspace = FillWorkspace(self.program())
        return self._workspace

    def fill(self) -> Tuple[np.ndarray, int]:
        """Max-min fair rates over all live flows (engine ``fill_rates``).

        The returned rate vector aliases the cached workspace and is
        overwritten by the next fill; the cluster runner integrates it
        before re-filling, so no copy is taken.  Rows retired but not yet
        compacted are inactive — the kernels pin their rate to zero.
        """
        return fill_rates(self.program(), self._live, self.workspace())

    def advance(self, rates: np.ndarray, dt: float) -> None:
        """Drain ``rates * dt`` bytes from every live flow."""
        self._remaining -= rates * dt

    def force_finish(self, mask: np.ndarray) -> None:
        """Zero the remaining bytes of the masked flows.

        Used by the cluster runner for flows whose analytic finish time is
        closer to the current event time than one float ulp: the event
        queue cannot represent the sub-ulp edge, so the flows are declared
        done at the edge they were scheduled for instead of spinning on a
        delay that never advances the clock.
        """
        self._remaining[mask] = 0.0

    def retire(self) -> List[Tuple[int, float]]:
        """Retire completed flows (remaining <= eps); lazily compact.

        Returns one ``(set_id, start_delay)`` pair per retired flow — the
        caller timestamps the completion as ``now + start_delay``, matching
        the engine's completion semantics (latency lands after the
        transfer, without the flow holding bandwidth meanwhile).

        Retired rows are only deactivated here (O(live) per call, and the
        cached program/workspace stay warm); the O(nnz) array compaction
        runs once dead rows outnumber live ones.
        """
        done = self._live & (self._remaining <= SIM_BYTES_EPS)
        if not done.any():
            return []
        retired = [(int(self._set_ids[i]), float(self._delays[i]))
                   for i in np.nonzero(done)[0]]
        self._live &= ~done
        self._live_count -= int(done.sum())
        dead = len(self._sizes) - self._live_count
        if dead > self._live_count and len(self._sizes) >= 16:
            self._compact()
        return retired

    def _compact(self) -> None:
        """Drop every dead row and reindex the incidence entries."""
        keep = self._live
        new_index = np.cumsum(keep) - 1
        entry_keep = keep[self._inc_flow]
        self._inc_res = self._inc_res[entry_keep]
        self._inc_flow = new_index[self._inc_flow[entry_keep]]
        self._sizes = self._sizes[keep]
        self._remaining = self._remaining[keep]
        self._delays = self._delays[keep]
        self._set_ids = self._set_ids[keep]
        self._live = np.ones(self._live_count, dtype=bool)
        self.compactions += 1
        self._invalidate()
