"""Multi-job cluster co-simulation over the unified fluid engine.

This package adds the *cluster* layer on top of the single-collective
simulator: jobs (barrier-separated compute/comm phases, :mod:`.job`)
arrive over time (:mod:`.trace`), are placed onto topology nodes
(:mod:`.placement`), and their comm phases lower to the engine's flow IR
through a live :class:`~repro.cluster.injector.FlowInjector`
(:mod:`.injector`); :func:`~repro.cluster.runner.run_cluster`
(:mod:`.runner`) drives the whole trace and reports per-job slowdown,
makespan and time-weighted fabric utilization.  See ``docs/cluster.md``
for the model and the trace-spec grammar.
"""

from .injector import FlowInjector
from .job import CommPhase, ComputePhase, Job, jobs_from_spec
from .placement import place_route, placement_permutation
from .runner import ClusterResult, JobResult, run_cluster
from .trace import (PLACEMENT_POLICIES, ClusterSpec, arrival_times,
                    parse_cluster_spec)

__all__ = [
    "ClusterSpec", "parse_cluster_spec", "arrival_times",
    "PLACEMENT_POLICIES",
    "ComputePhase", "CommPhase", "Job", "jobs_from_spec",
    "placement_permutation", "place_route",
    "FlowInjector",
    "JobResult", "ClusterResult", "run_cluster",
]
