"""Placement policies: mapping a job's logical nodes onto physical nodes.

A placement is a permutation ``perm`` of the topology's node ids —
``perm[logical] = physical``.  Schedules are synthesized once for the
logical topology; placing a job relabels every route through the
permutation.  Because an arbitrary relabelling can map a scheduled hop
onto a non-existent physical link, :func:`place_route` repairs such hops
with a deterministic BFS shortest path, so any permutation yields a valid
(if longer) route.  The ``packed`` policy is the identity, which keeps the
placed routes exactly equal to the scheduled ones — the configuration the
zero-contention differential test pins against the single-collective
engine.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Optional, Tuple

from ..topology.base import Topology
from .trace import PLACEMENT_POLICIES

__all__ = ["placement_permutation", "place_route"]


def placement_permutation(policy: str, job_id: int, num_nodes: int,
                          num_jobs: int, seed: int = 0) -> Tuple[int, ...]:
    """The node permutation placing ``job_id`` under ``policy``.

    ``packed`` — identity (every job on the scheduled nodes); ``spread`` —
    rotate by ``job_id * max(1, num_nodes // num_jobs)`` so consecutive
    jobs anchor on well-separated nodes; ``random`` — a shuffle seeded by
    ``(seed, job_id)``, reproducible across runs.
    """
    if policy == "packed":
        return tuple(range(num_nodes))
    if policy == "spread":
        stride = max(1, num_nodes // max(1, num_jobs))
        shift = (job_id * stride) % num_nodes
        return tuple((i + shift) % num_nodes for i in range(num_nodes))
    if policy == "random":
        rng = random.Random(seed * 1_000_003 + job_id)
        perm = list(range(num_nodes))
        rng.shuffle(perm)
        return tuple(perm)
    raise ValueError(
        f"unknown placement policy {policy!r}; expected one of "
        f"{PLACEMENT_POLICIES}")


def _shortest_path(topology: Topology, src: int, dst: int) -> Tuple[int, ...]:
    """Deterministic BFS shortest path from ``src`` to ``dst`` (inclusive)."""
    prev: Dict[int, Optional[int]] = {src: None}
    frontier = deque([src])
    while frontier:
        u = frontier.popleft()
        if u == dst:
            break
        for v in topology.successors(u):
            if v not in prev:
                prev[v] = u
                frontier.append(v)
    if dst not in prev:
        raise ValueError(f"no path from node {src} to node {dst}")
    path = [dst]
    while prev[path[-1]] is not None:
        path.append(prev[path[-1]])  # type: ignore[arg-type]
    return tuple(reversed(path))


def place_route(route: Tuple[int, ...], perm: Tuple[int, ...],
                topology: Topology) -> Tuple[int, ...]:
    """Relabel a scheduled route through ``perm``, repairing missing links.

    Every hop of the mapped route that is not a physical link is replaced
    by the deterministic BFS shortest path between its endpoints (identity
    permutations return the route unchanged).
    """
    mapped = [perm[v] for v in route]
    out = [mapped[0]]
    for v in mapped[1:]:
        u = out[-1]
        if u == v:
            continue
        if topology.has_edge(u, v):
            out.append(v)
        else:
            out.extend(_shortest_path(topology, u, v)[1:])
    return tuple(out)
