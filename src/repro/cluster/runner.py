"""Multi-job cluster co-simulation on the unified fluid engine.

:func:`run_cluster` executes a trace of jobs — each a barrier-separated
sequence of compute and all-to-all comm phases — over one synthesized
routed schedule, with every live comm phase's flows max-min fair sharing
the fabric.  Arrivals, phase barriers and flow completions all advance
through the engine's :class:`~repro.simulator.events.EventQueue`; flow
sets are injected and retired at event boundaries with incremental
re-fills over the survivors (see :mod:`.injector`).

Reported metrics:

- **per-job slowdown** — ``(finish - arrival) / isolated_seconds``, where
  the isolated time runs the same placed flows alone on the same fabric
  through the single-collective engine (so a lone job has slowdown 1.0 to
  float round-off);
- **makespan** — last finish minus first arrival;
- **fabric utilization** — time-weighted mean link utilization:
  bytes x links-crossed delivered, over total link capacity x makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..constants import SIM_BYTES_EPS, SIM_EPS
from ..schedule.ir import LinkSchedule, RoutedSchedule
from ..schedule.validate import validate_routed_schedule
from ..simulator.engine import (FluidFlow, compile_flows, execute,
                                record_simulation)
from ..simulator.events import EventQueue
from ..simulator.fabric import FabricModel
from .injector import FlowInjector
from .job import CommPhase, ComputePhase, jobs_from_spec
from .placement import place_route, placement_permutation
from .trace import ClusterSpec, parse_cluster_spec

__all__ = ["JobResult", "ClusterResult", "run_cluster"]


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job: timing, slowdown and its phase spans.

    ``phase_spans`` lists ``(kind, start, end)`` per executed phase
    (``kind`` is ``"compute"`` or ``"comm"``), in order — consecutive
    spans never overlap, which is the barrier property tests assert.
    """

    job_id: int
    name: str
    arrival: float
    finish: float
    isolated_seconds: float
    slowdown: float
    phase_spans: Tuple[Tuple[str, float, float], ...]

    @property
    def completion_seconds(self) -> float:
        """Wall-clock the job spent in the system (finish - arrival)."""
        return self.finish - self.arrival


@dataclass
class ClusterResult:
    """Outcome of one cluster co-simulation run."""

    jobs: List[JobResult]
    makespan_seconds: float
    fabric_utilization: float
    fill_rounds: int
    events: int
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def slowdowns(self) -> List[float]:
        """Per-job slowdown factors, in job order."""
        return [j.slowdown for j in self.jobs]


def _isolated_comm_seconds(topology, flows, fabric) -> float:
    """Completion time of one comm phase run alone (engine differential)."""
    return execute(compile_flows(topology, flows, fabric)).completion_time


def run_cluster(schedule: Union[RoutedSchedule, LinkSchedule],
                spec: Union[ClusterSpec, str],
                fabric: Optional[FabricModel] = None,
                default_buffer: Optional[float] = None,
                validate: bool = True,
                max_events: int = 1_000_000) -> ClusterResult:
    """Co-simulate a multi-job trace over one synthesized schedule.

    ``spec`` is a :class:`ClusterSpec` or a ``cluster:...`` spec string;
    ``default_buffer`` backs the trace's ``buffer=`` field when absent.
    Only routed (path-based) schedules are supported: link schedules are
    globally step-synchronized, so their steps cannot interleave across
    independently-arriving jobs.
    """
    if isinstance(spec, str):
        spec = parse_cluster_spec(spec)
    if isinstance(schedule, LinkSchedule):
        raise ValueError(
            "cluster co-simulation supports routed (path-based) schedules "
            "only; LinkSchedule steps are globally synchronized and cannot "
            "interleave across jobs — use a cut-through scheme "
            "(e.g. mcf-extp)")
    if validate:
        validate_routed_schedule(schedule)
    topology = schedule.topology
    n = topology.num_nodes
    fabric = fabric or FabricModel()
    jobs = jobs_from_spec(spec, default_buffer=default_buffer)

    # Placed flow template per job (route, bytes), reused every round, and
    # the per-job isolated comm time (cached per distinct placement).
    templates: Dict[int, List[Tuple[Tuple[int, ...], float]]] = {}
    isolated_comm: Dict[int, float] = {}
    iso_cache: Dict[Tuple[Tuple[int, ...], float], float] = {}
    for job in jobs:
        perm = placement_permutation(spec.placement, job.job_id, n,
                                     spec.jobs, spec.seed)
        buffer = next(p.buffer_bytes for p in job.phases
                      if isinstance(p, CommPhase))
        shard = buffer / n
        template = [(place_route(a.route, perm, topology),
                     a.chunk.bytes(shard)) for a in schedule.assignments]
        templates[job.job_id] = template
        key = (perm, float(buffer))
        if key not in iso_cache:
            flows = [FluidFlow(path=path, size_bytes=size)
                     for path, size in template]
            iso_cache[key] = _isolated_comm_seconds(topology, flows, fabric)
        isolated_comm[job.job_id] = iso_cache[key]

    queue = EventQueue()
    injector = FlowInjector(topology, fabric)
    state: Dict[str, object] = {"last": 0.0, "rates": np.zeros(0),
                                "fill_rounds": 0, "pending": None,
                                "edge_mask": None}
    job_by_id = {job.job_id: job for job in jobs}
    phase_index = {job.job_id: 0 for job in jobs}
    comm_round = {job.job_id: 0 for job in jobs}
    spans: Dict[int, List[List[object]]] = {job.job_id: [] for job in jobs}
    finish: Dict[int, float] = {}
    # set id -> [job_id, flows outstanding, max completion time seen]
    set_state: Dict[int, List[object]] = {}

    def _advance() -> None:
        """Integrate the current rates from the last fill time to now."""
        dt = queue.now - state["last"]
        if dt > 0 and injector.num_flows:
            injector.advance(state["rates"], dt)
        state["last"] = queue.now

    def _refill() -> None:
        """Re-fill over the surviving flows; (re)schedule the next edge."""
        pending = state["pending"]
        if pending is not None:
            pending.cancel()
            state["pending"] = None
        state["last"] = queue.now
        if injector.num_flows == 0:
            state["rates"] = np.zeros(0)
            state["edge_mask"] = None
            return
        rates, rounds = injector.fill()
        state["rates"] = rates
        state["fill_rounds"] = int(state["fill_rounds"]) + rounds
        eligible = rates > SIM_EPS
        if not eligible.any():
            raise RuntimeError(
                "cluster simulation stalled: live flows have zero rate")
        dt = max(0.0, float(np.min(
            injector.remaining[eligible] / rates[eligible])))
        # Flows whose analytic finish lands on this edge.  They are forced
        # done when the edge fires: if ``now + dt == now`` in floats (late
        # arrival, sub-ulp dt), time cannot advance past the edge and the
        # residual bytes would respawn the same edge forever.
        state["edge_mask"] = eligible & (
            injector.remaining <= rates * (dt * (1.0 + 1e-12)) + SIM_BYTES_EPS)
        state["pending"] = queue.schedule(dt, _on_transfer_edge)

    def _drain_retired() -> None:
        """Retire drained flows; finish comm phases whose set is empty."""
        for set_id, delay in injector.retire():
            entry = set_state[set_id]
            entry[1] = int(entry[1]) - 1
            entry[2] = max(float(entry[2]), queue.now + delay)
            if entry[1] == 0:
                job_id = int(entry[0])
                queue.schedule_at(
                    float(entry[2]),
                    lambda job_id=job_id: _phase_done(job_id))

    def _on_transfer_edge() -> None:
        """A flow ran dry: retire completions, then re-fill the survivors."""
        state["pending"] = None
        _advance()
        if state["edge_mask"] is not None:
            injector.force_finish(state["edge_mask"])
            state["edge_mask"] = None
        _drain_retired()
        _refill()

    def _phase_done(job_id: int) -> None:
        """Barrier: close the job's running phase and start the next one."""
        _advance()
        spans[job_id][-1][2] = queue.now
        _start_next_phase(job_id)

    def _start_next_phase(job_id: int) -> None:
        """Start the job's next phase, or record its finish time."""
        job = job_by_id[job_id]
        index = phase_index[job_id]
        if index >= len(job.phases):
            finish[job_id] = queue.now
            return
        phase_index[job_id] = index + 1
        phase = job.phases[index]
        if isinstance(phase, ComputePhase):
            spans[job_id].append(["compute", queue.now, queue.now])
            queue.schedule(phase.seconds,
                           lambda job_id=job_id: _phase_done(job_id))
            return
        spans[job_id].append(["comm", queue.now, queue.now])
        round_id = comm_round[job_id]
        comm_round[job_id] = round_id + 1
        flows = [FluidFlow(path=path, size_bytes=size, tag=(job_id, round_id))
                 for path, size in templates[job_id]]
        set_id = injector.inject(flows, name=f"job{job_id}/round{round_id}")
        set_state[set_id] = [job_id, len(flows), queue.now]
        _drain_retired()        # zero-byte flows complete at injection
        _refill()

    def _on_arrival(job_id: int) -> None:
        """A job arrives: advance the fluid state and start its first phase."""
        _advance()
        _start_next_phase(job_id)

    for job in jobs:
        queue.schedule_at(job.arrival,
                          lambda job_id=job.job_id: _on_arrival(job_id))

    try:
        queue.run(max_events=max_events)
    except RuntimeError as exc:
        raise RuntimeError("cluster simulation did not converge") from exc
    if len(finish) != len(jobs):
        missing = sorted(set(job_by_id) - set(finish))
        raise RuntimeError(
            f"cluster simulation drained its event queue with unfinished "
            f"jobs {missing}")

    job_results: List[JobResult] = []
    for job in jobs:
        done = finish[job.job_id]
        isolated = (spec.rounds * spec.compute
                    + spec.rounds * isolated_comm[job.job_id])
        elapsed = done - job.arrival
        slowdown = elapsed / isolated if isolated > 0 else 1.0
        job_results.append(JobResult(
            job_id=job.job_id,
            name=job.name,
            arrival=job.arrival,
            finish=done,
            isolated_seconds=isolated,
            slowdown=slowdown,
            phase_spans=tuple((str(kind), float(start), float(end))
                              for kind, start, end in spans[job.job_id]),
        ))

    first_arrival = min(job.arrival for job in jobs)
    makespan = max(finish.values()) - first_arrival
    capacity = injector.link_capacity_total
    utilization = (injector.link_bytes / (capacity * makespan)
                   if makespan > 0 and capacity > 0 else 0.0)
    fill_rounds = int(state["fill_rounds"])
    record_simulation(fill_rounds, queue.processed)
    return ClusterResult(
        jobs=job_results,
        makespan_seconds=makespan,
        fabric_utilization=utilization,
        fill_rounds=fill_rounds,
        events=queue.processed,
        meta={
            "spec": spec.canonical(),
            "placement": spec.placement,
            "arrival": spec.arrival,
            "num_jobs": len(jobs),
            "rounds": spec.rounds,
            "arrival_times": [job.arrival for job in jobs],
        },
    )
