"""Tests for analysis helpers (normalization, envelopes, report formatting)."""

import pytest

from repro.analysis import (
    Envelope,
    crossover_buffer,
    envelope,
    format_series,
    format_table,
    format_throughput_sweep,
    human_bytes,
    normalize_times,
    speedup,
)


class TestNormalization:
    def test_normalize_times(self):
        out = normalize_times({"mcf": 4.0, "sssp": 6.0}, reference=4.0)
        assert out["mcf"] == pytest.approx(1.0)
        assert out["sssp"] == pytest.approx(1.5)

    def test_normalize_rejects_bad_reference(self):
        with pytest.raises(ValueError):
            normalize_times({"a": 1.0}, reference=0.0)

    def test_speedup(self):
        assert speedup(10.0, 5.0) == pytest.approx(2.0)
        assert speedup(10.0, 0.0) == float("inf")


class TestEnvelope:
    def test_envelope_of_values(self):
        env = envelope([3.0, 1.0, 2.0])
        assert env.minimum == 1.0
        assert env.maximum == 3.0
        assert env.mean == pytest.approx(2.0)

    def test_envelope_empty_rejected(self):
        with pytest.raises(ValueError):
            Envelope.of([])


class TestCrossover:
    def test_crossover_found(self):
        buffers = [1, 2, 4, 8]
        a = [1.0, 2.0, 5.0, 9.0]
        b = [3.0, 3.0, 3.0, 3.0]
        assert crossover_buffer(buffers, a, b) == 4

    def test_crossover_absent(self):
        assert crossover_buffer([1, 2], [0.1, 0.2], [1.0, 1.0]) is None

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            crossover_buffer([1], [1.0, 2.0], [1.0])


class TestFormatting:
    def test_human_bytes(self):
        assert human_bytes(512) == "512B"
        assert human_bytes(2 ** 20) == "1.0MiB"
        assert human_bytes(3 * 2 ** 30) == "3.0GiB"

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["mcf", 1.5], ["sssp", 2.25]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series("N", [8, 16], {"mcf": [1.0, 2.0], "sssp": [1.5, 3.0]})
        assert "mcf" in text and "sssp" in text
        assert "16" in text

    def test_format_throughput_sweep(self, cube3_link_schedule):
        from repro.simulator import a100_ml_fabric, throughput_sweep

        sweep = throughput_sweep(cube3_link_schedule, [2 ** 20, 2 ** 24],
                                 fabric=a100_ml_fabric())
        text = format_throughput_sweep({"tsMCF/G": sweep}, title="Fig3")
        assert "tsMCF/G" in text
        assert "1.0MiB" in text

    def test_format_throughput_sweep_empty(self):
        assert format_throughput_sweep({}, title="x") == "x"
